//! Streaming-era integration: events arrive continuously into a
//! hierarchical hypersparse stream *and* a SQL-queryable table; both
//! views stay consistent, and graph analytics run on snapshots.

use db::sql::{execute, execute_baseline, parse};
use db::{AssocTable, RowTable};
use graph::bfs::bfs_levels;
use graph::msbfs::{level_of, msbfs_levels};
use graph::pattern::pattern_u8;
use hypersparse::{Ix, StreamingMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

#[test]
fn streaming_and_sql_views_stay_consistent() {
    let s = PlusTimes::<f64>::new();
    let n_hosts: Ix = 50;
    let mut rng = StdRng::seed_from_u64(42);

    // Event stream: (src, dst, port) flows.
    let mut stream = StreamingMatrix::new(n_hosts, n_hosts, s);
    let mut records: Vec<(String, db::Record)> = Vec::new();
    for e in 0..6_000u64 {
        let src = rng.gen_range(0..n_hosts);
        let mut dst = rng.gen_range(0..n_hosts);
        if dst == src {
            dst = (dst + 1) % n_hosts;
        }
        let port = ["80", "443"][rng.gen_range(0..2)];
        stream.insert(src, dst, 1.0);
        records.push((
            format!("e{e:05}"),
            vec![
                ("src".into(), format!("h{src:02}")),
                ("dst".into(), format!("h{dst:02}")),
                ("port".into(), port.into()),
            ],
        ));
    }

    // Snapshot the stream as the graph view.
    let adj = stream.snapshot();
    assert_eq!(adj.iter().map(|(_, _, v)| *v as u64).sum::<u64>(), 6_000);

    // Table views answer the same aggregate.
    let table = AssocTable::from_records(records.clone());
    let baseline = RowTable::from_records(records);
    let total: usize = table.group_count("port").iter().map(|(_, c)| c).sum();
    assert_eq!(total, 6_000);

    // SQL against both table engines agrees (ResultSets are id-sorted,
    // so equality is direct).
    let q = parse("SELECT dst FROM flows WHERE src = 'h00' AND port = '443'").unwrap();
    assert_eq!(execute(&q, &table), execute_baseline(&q, &baseline));

    // The streaming graph's out-edge count for host 0 matches the table's.
    let h0_out_graph: f64 = adj.row(0).1.iter().sum();
    let h0_out_table = table.select_eq("src", "h00").len() as f64;
    assert_eq!(h0_out_graph, h0_out_table);

    // Graph analytics on the snapshot: single- and multi-source BFS agree.
    let pat = pattern_u8(&adj);
    let sources: Vec<Ix> = (0..8).collect();
    let ms = msbfs_levels(&pat, &sources);
    for (i, &src) in sources.iter().enumerate() {
        for (v, l) in bfs_levels(&pat, src) {
            assert_eq!(level_of(&ms, i as Ix, v), Some(l as u64));
        }
    }

    // Keep streaming after the snapshot; totals track.
    stream.insert(1, 2, 1.0);
    let snap2 = stream.snapshot();
    assert_eq!(snap2.iter().map(|(_, _, v)| *v as u64).sum::<u64>(), 6_001);
}
