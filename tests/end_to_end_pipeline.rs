//! One long end-to-end scenario exercising the entire stack in a single
//! story, as a digital-hyperspace pipeline: streaming events → hypergraph
//! incidence → adjacency projection → graph analytics → database views →
//! relational select → DNN scoring.

use db::{AssocTable, RowTable};
use graph::cc::{connected_components, count_components};
use graph::hypergraph::Hypergraph;
use graph::pagerank::{pagerank, top_k, PageRankOpts};
use graph::pattern::{pattern_u64, pattern_u8, symmetrize};
use graph::triangles::triangle_count;
use hypersparse::Ix;
use semiring::{PlusTimes, UnionIntersect};

#[test]
fn full_pipeline() {
    let s = PlusTimes::<f64>::new();
    let n_hosts: Ix = 64;

    // ---- 1. Stream events into a hyper-multi-graph (Figs. 2–3) ----
    let mut h = Hypergraph::new(n_hosts);
    let mut records: Vec<(String, db::Record)> = Vec::new();
    let push_flow =
        |h: &mut Hypergraph, recs: &mut Vec<(String, db::Record)>, src: Ix, dst: Ix, port: &str| {
            let k = h.add_edge(src, dst, 1.0);
            recs.push((
                format!("e{k:04}"),
                vec![
                    ("src".into(), format!("h{src:02}")),
                    ("dst".into(), format!("h{dst:02}")),
                    ("port".into(), port.into()),
                ],
            ));
        };
    // A dense cluster 0–5, a chain 10–14, and repeated (multi) edges.
    for i in 0..6u64 {
        for j in 0..6u64 {
            if i != j {
                push_flow(&mut h, &mut records, i, j, "443");
            }
        }
    }
    for i in 10..14u64 {
        push_flow(&mut h, &mut records, i, i + 1, "80");
    }
    push_flow(&mut h, &mut records, 0, 1, "80"); // multi-edge
                                                 // One broadcast hyper-event from host 3 to the chain.
    h.add_hyperedge(&[3], &[10, 11, 12], 1.0);

    // ---- 2. Project to adjacency (Fig. 3) and sanity-check ----
    let adj = h.adjacency(s);
    assert_eq!(adj.get(0, 1), Some(&2.0), "multi-edge multiplicity");
    assert_eq!(adj.get(3, 11), Some(&1.0), "hyperedge fan-out");

    // ---- 3. Graph analytics over semirings (Figs. 1, 5) ----
    let sym = symmetrize(&adj, s);
    let labels = connected_components(&pattern_u64(&sym));
    // Hyperedge 3→{10,11,12} bridges the clique and the chain: 1 component.
    assert_eq!(count_components(&labels), 1);

    let tri = triangle_count(&sym);
    assert!(tri >= 20, "K6 alone has 20 triangles, got {tri}");

    let levels = graph::bfs::bfs_levels(&pattern_u8(&adj), 0);
    assert!(levels.iter().any(|&(v, _)| v == 14), "0 reaches chain end");

    // PageRank over the compact host space.
    let mut coo = hypersparse::Coo::new(n_hosts, n_hosts);
    for (r, c, v) in adj.iter() {
        coo.push(r, c, *v);
    }
    let ranks = pagerank(&coo.build_dcsr(s), PageRankOpts::default());
    let top = top_k(&ranks, 3);
    assert!(top[0].1 > 0.0);

    // ---- 4. The same events as database views (Fig. 6) ----
    let sql = RowTable::from_records(records.clone());
    let d4m = AssocTable::from_records(records.clone());
    assert_eq!(sql.neighbors("h00"), d4m.neighbors("h00"));
    let by_port = d4m.group_count("port");
    let https = by_port.iter().find(|(p, _)| p == "443").unwrap().1;
    assert_eq!(https, 30, "clique flows");

    // ---- 5. Relational select via the semilink formula (§V.B) ----
    let (view, mut atoms) = AssocTable::set_view(&records);
    let v = atoms.intern("80");
    let col = "port".to_string();
    let sel = hyperspace_core::select::select_semilink(&view, &col, v).prune(UnionIntersect);
    assert_eq!(
        hyperspace_core::semilink::support_rows(&sel).len(),
        5, // 4 chain flows + 1 multi-edge flow
    );

    // ---- 6. Score flows with a sparse DNN (Fig. 8) ----
    let feat = d4m.array();
    let nf = feat.col_keys().len() as Ix;
    let mut batch = hypersparse::Coo::new(feat.row_keys().len() as Ix, nf);
    for (r, c, v) in feat.matrix().as_dcsr().iter() {
        batch.push(r, c, *v);
    }
    let batch = batch.build_dcsr(s);
    let net = dnn::radix::radix_net(
        dnn::radix::RadixNetParams {
            n_neurons: nf,
            fanin: 4,
            depth: 3,
            bias: -0.05,
        },
        1,
    );
    let scores = dnn::infer::infer_fused(&net, &batch);
    assert_eq!(scores, dnn::infer::infer_two_semiring(&net, &batch));
    assert!(scores.nnz() > 0);
}
