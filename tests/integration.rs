//! Cross-crate integration tests: each test exercises at least two
//! layers of the stack together.

use db::gen::{flows, FlowParams};
use db::{AssocTable, RowTable, TripleStore};
use graph::baseline::{bfs_queue, AdjList};
use graph::bfs::bfs_levels;
use graph::pattern::{pattern_u8, symmetrize};
use hyperspace_core::Assoc;
use hypersparse::{Format, Ix, Matrix};
use semiring::{MinPlus, PlusMonoid, PlusTimes, UnionIntersect};

fn sample_flows() -> Vec<(String, db::Record)> {
    flows(
        FlowParams {
            n_records: 800,
            n_hosts: 60,
            skew: 1.0,
        },
        77,
    )
}

#[test]
fn all_database_views_agree_on_every_host() {
    let records = sample_flows();
    let sql = RowTable::from_records(records.clone());
    let nosql = TripleStore::from_records(records.clone());
    let d4m = AssocTable::from_records(records);
    for i in 0..10 {
        let host = db::gen::ip_name(i);
        assert_eq!(sql.neighbors(&host), nosql.neighbors(&host), "{host}");
        assert_eq!(sql.neighbors(&host), d4m.neighbors(&host), "{host}");
    }
}

#[test]
fn table_to_graph_to_bfs_pipeline() {
    // Records → exploded table → adjacency array → BFS, with the
    // pointer-chasing baseline cross-checking the result.
    let records = sample_flows();
    let d4m = AssocTable::from_records(records);
    let adj = d4m.adjacency("src", "dst");

    // Reindex host keys compactly for the baseline comparison.
    let hosts: Vec<String> = {
        let mut h: Vec<String> = adj.row_keys().to_vec();
        h.extend(adj.col_keys().iter().cloned());
        h.sort();
        h.dedup();
        h
    };
    let idx = |k: &String| hosts.binary_search(k).unwrap() as Ix;
    let mut coo = hypersparse::Coo::new(hosts.len() as Ix, hosts.len() as Ix);
    for (a, b, w) in adj.to_triplets() {
        coo.push(idx(&a), idx(&b), w);
    }
    let g = coo.build_dcsr(PlusTimes::<f64>::new());

    let hub = idx(&"1.1.1.1".to_string());
    let by_array = bfs_levels(&pattern_u8(&g), hub);
    let by_queue = bfs_queue(&AdjList::from_pattern(&g), hub);
    for &(v, l) in &by_array {
        assert_eq!(by_queue[v as usize], l);
    }
    // The hub reaches most of the (skew-generated) graph.
    assert!(by_array.len() > hosts.len() / 2);
}

#[test]
fn semilink_select_on_generated_flows() {
    let records = sample_flows();
    let (view, mut atoms) = AssocTable::set_view(&records);
    let v = atoms.intern("443");
    let col = "port".to_string();
    let by_formula = hyperspace_core::select::select_semilink(&view, &col, v).prune(UnionIntersect);
    let by_scan = hyperspace_core::select::select_direct(&view, &col, v);
    assert_eq!(by_formula, by_scan);
    // Cross-check the matched row set against the row store.
    let sql = RowTable::from_records(records);
    let want: Vec<String> = sql
        .select_eq("port", "443")
        .into_iter()
        .map(String::from)
        .collect();
    let got = hyperspace_core::semilink::support_rows(&by_formula);
    assert_eq!(got, want);
}

#[test]
fn tropical_assoc_agrees_with_graph_sssp() {
    // The same shortest-path problem solved at the associative-array
    // level (min-plus matmul closure) and at the matrix level (sssp).
    let s = MinPlus::<f64>::new();
    let roads = Assoc::from_triplets(
        vec![
            ("bos", "nyc", 4.0),
            ("nyc", "dc", 4.0),
            ("bos", "dc", 9.5),
            ("dc", "atl", 9.0),
        ],
        s,
    );
    // Key-level closure: A ⊕ A² ⊕ A³.
    let a2 = roads.matmul(&roads, s);
    let a3 = a2.matmul(&roads, s);
    let closure = roads.ewise_add(&a2, s).ewise_add(&a3, s);
    assert_eq!(closure.get(&"bos", &"dc"), Some(8.0));
    assert_eq!(closure.get(&"bos", &"atl"), Some(17.0));

    // Matrix-level: compact ids via the array's own dictionaries.
    let keys: Vec<&str> = {
        let mut k = roads.row_keys().to_vec();
        k.extend(roads.col_keys().iter().copied());
        k.sort();
        k.dedup();
        k
    };
    let idx = |k: &str| keys.binary_search(&k).unwrap() as Ix;
    let mut coo = hypersparse::Coo::new(keys.len() as Ix, keys.len() as Ix);
    for (a, b, w) in roads.to_triplets() {
        coo.push(idx(a), idx(b), w);
    }
    let g = coo.build_dcsr(s);
    let d = graph::sssp::sssp(&g, idx("bos"));
    let dist = |k: &str| d.iter().find(|&&(v, _)| v == idx(k)).map(|&(_, x)| x);
    assert_eq!(dist("dc"), Some(8.0));
    assert_eq!(dist("atl"), Some(17.0));
}

#[test]
fn format_switching_survives_a_full_workflow() {
    // Build hypersparse → densifying product → selection back to sparse,
    // checking the opaque wrapper re-decides the format at each step.
    let s = PlusTimes::<f64>::new();
    let a = Matrix::from_dcsr(hypersparse::gen::random_dcsr(48, 48, 500, 5, s), s);
    let dense_product = a.mxm(&a, s);
    assert!(matches!(
        dense_product.format(),
        Format::Dense | Format::Bitmap
    ));
    let sparse_again = dense_product.select(|r, c, _| r + 1 == c, s);
    assert!(matches!(sparse_again.format(), Format::Csr | Format::Dcsr));
    // Mathematical equality is format-independent throughout.
    assert_eq!(
        sparse_again.nnz(),
        dense_product
            .to_triplets()
            .iter()
            .filter(|(r, c, _)| r + 1 == *c)
            .count()
    );
}

#[test]
fn dnn_on_table_derived_features() {
    // Features extracted from the flow table drive a sparse DNN — the
    // "machine learning on digital hyperspace" loop closed end-to-end.
    let records = sample_flows();
    let d4m = AssocTable::from_records(records);
    let feat = d4m.array(); // record × field|value one-hot features
    let n_features = feat.col_keys().len() as u64;

    // Compact one-hot batch for the first 32 records.
    let ids: Vec<String> = d4m.record_ids().into_iter().take(32).collect();
    let sub = feat.extract(ids, feat.col_keys().to_vec(), PlusTimes::<f64>::new());
    let mut coo = hypersparse::Coo::new(32, n_features);
    for (r, c, v) in sub.matrix().as_dcsr().iter() {
        coo.push(r, c, *v);
    }
    let batch = coo.build_dcsr(PlusTimes::<f64>::new());

    let net = dnn::radix::radix_net(
        dnn::radix::RadixNetParams {
            n_neurons: n_features,
            fanin: 16,
            depth: 2,
            bias: -0.0005,
        },
        3,
    );
    let out = dnn::infer::infer_fused(&net, &batch);
    let pair = dnn::infer::infer_two_semiring(&net, &batch);
    assert_eq!(out, pair);
    assert!(out.nnz() > 0);
}

#[test]
fn degree_reductions_match_between_layers() {
    // graph-level reduce vs assoc-level reduce on the same data.
    let records = sample_flows();
    let d4m = AssocTable::from_records(records);
    let adj = d4m.adjacency("src", "dst");
    let out_deg = adj.reduce_rows(PlusMonoid::<f64>::default());
    // Sum of out-degrees = number of flows.
    let total: f64 = out_deg.iter().map(|(_, w)| w).sum();
    assert_eq!(total as usize, 800);
    // Symmetrized pattern has even total degree.
    let all: Vec<String> = {
        let mut h: Vec<String> = adj.row_keys().to_vec();
        h.extend(adj.col_keys().iter().cloned());
        h.sort();
        h.dedup();
        h
    };
    let mut coo2 = hypersparse::Coo::new(all.len() as Ix, all.len() as Ix);
    for (a, b, w) in adj.to_triplets() {
        let i = all.binary_search(&a).unwrap() as Ix;
        let j = all.binary_search(&b).unwrap() as Ix;
        coo2.push(i, j, w);
    }
    let g = symmetrize(
        &coo2.build_dcsr(PlusTimes::<f64>::new()),
        PlusTimes::<f64>::new(),
    );
    assert_eq!(g.nnz() % 2, 0);
}
