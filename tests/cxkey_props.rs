//! Complex-index key property suite — the composite-key generalization
//! of the CIDR laws in `netflow_props.rs`, checked over random inputs
//! on two schemas (the 48-bit `ip.port` socket key and a 35-bit
//! `doc.section.para` key):
//!
//! 1. **Project/rollup is idempotent** at every component prefix, on
//!    both the string-keyed (`Assoc`) and bit-packed (`Dcsr`) layers.
//! 2. **Prefixes compose downward**: masking to a long prefix and then
//!    a short one equals masking straight to the short one
//!    (`/a ∘ /ab = /a`), again on both layers.
//! 3. **The two encodings agree**: rolling up packed indices and
//!    projecting padded string keys are the *same* aggregation — every
//!    packed cell maps 1:1 onto a string cell with the same ⊕-fold.

use hyperspace::prelude::*;
use hyperspace_core::cxkey::{self, CxField, CxPrefix, CxSchema, RollupAxes};
use hypersparse::Ix;
use proptest::prelude::*;
use std::sync::OnceLock;

fn socket() -> &'static CxSchema {
    static S: OnceLock<CxSchema> = OnceLock::new();
    S.get_or_init(|| CxSchema::new(vec![CxField::dotted_quad("ip"), CxField::bits("port", 16)]))
}

fn doc() -> &'static CxSchema {
    static S: OnceLock<CxSchema> = OnceLock::new();
    S.get_or_init(|| {
        CxSchema::new(vec![
            CxField::bits("doc", 24),
            CxField::bits("section", 8),
            CxField::bits("para", 3),
        ])
    })
}

/// Random parts for a schema: a uniform composite index, unpacked, so
/// every component ranges over its full field width.
fn parts_for(schema: &'static CxSchema) -> impl Strategy<Value = Vec<u64>> {
    let span = 1u64 << schema.total_bits();
    (0..span).prop_map(move |ix| schema.unpack(ix))
}

fn triples(schema: &'static CxSchema) -> impl Strategy<Value = Vec<(Vec<u64>, Vec<u64>, u64)>> {
    proptest::collection::vec((parts_for(schema), parts_for(schema), 1u64..100), 1..50)
}

/// Every meaningful prefix of a schema: each full-field cut plus a
/// mid-field bit cut in the first field.
fn prefixes(schema: &'static CxSchema) -> Vec<CxPrefix> {
    let mut out: Vec<CxPrefix> = (0..=schema.fields().len())
        .map(CxPrefix::full_fields)
        .collect();
    let first_bits = schema.fields()[0].codec().bits();
    if first_bits > 1 {
        out.push(CxPrefix::partial(0, first_bits / 2));
    }
    out
}

fn packed(schema: &'static CxSchema, t: &[(Vec<u64>, Vec<u64>, u64)]) -> Dcsr<u64> {
    let dim: Ix = 1u64 << schema.total_bits();
    let mut coo = Coo::new(dim, dim);
    coo.extend(
        t.iter()
            .map(|(r, c, v)| (schema.pack(r), schema.pack(c), *v)),
    );
    coo.build_dcsr(PlusTimes::<u64>::new())
}

fn keyed(schema: &'static CxSchema, t: &[(Vec<u64>, Vec<u64>, u64)]) -> Assoc<String, String, u64> {
    Assoc::from_triplets(
        t.iter()
            .map(|(r, c, v)| (schema.key(r), schema.key(c), *v))
            .collect::<Vec<_>>(),
        PlusTimes::<u64>::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Laws 1 + 2 on the packed (Dcsr) layer, both schemas.
    #[test]
    fn rollup_idempotent_and_composes_socket(t in triples(socket())) {
        check_packed_laws(socket(), &t)?;
    }

    #[test]
    fn rollup_idempotent_and_composes_doc(t in triples(doc())) {
        check_packed_laws(doc(), &t)?;
    }

    /// Laws 1 + 2 on the string-keyed (Assoc) layer.
    #[test]
    fn project_idempotent_and_composes_socket(t in triples(socket())) {
        check_string_laws(socket(), &t)?;
    }

    #[test]
    fn project_idempotent_and_composes_doc(t in triples(doc())) {
        check_string_laws(doc(), &t)?;
    }

    /// Law 3: packed rollup ≡ string projection, cell for cell.
    #[test]
    fn string_layer_agrees_with_packed_layer(t in triples(socket())) {
        let schema = socket();
        let s = PlusTimes::<u64>::new();
        let a = packed(schema, &t);
        let k = keyed(schema, &t);
        for prefix in prefixes(schema) {
            let rolled = cxkey::rollup(schema, &a, prefix, RollupAxes::Both, s);
            let projected = cxkey::project(schema, &k, prefix, s);
            prop_assert_eq!(rolled.nnz(), projected.nnz(),
                "layer nnz diverged at prefix {:?}", prefix);
            for (r, c, v) in rolled.iter() {
                let rk = schema.prefix_key(&schema.unpack(r), prefix);
                let ck = schema.prefix_key(&schema.unpack(c), prefix);
                prop_assert_eq!(projected.get(&rk, &ck), Some(*v),
                    "cell ({}, {}) diverged at prefix {:?}", rk, ck, prefix);
            }
        }
    }
}

fn check_packed_laws(
    schema: &'static CxSchema,
    t: &[(Vec<u64>, Vec<u64>, u64)],
) -> Result<(), String> {
    let s = PlusTimes::<u64>::new();
    let a = packed(schema, t);
    for prefix in prefixes(schema) {
        let once = cxkey::rollup(schema, &a, prefix, RollupAxes::Both, s);
        let twice = cxkey::rollup(schema, &once, prefix, RollupAxes::Both, s);
        prop_assert_eq!(&twice, &once, "rollup not idempotent at {:?}", prefix);
    }
    // Downward composition /a ∘ /ab = /a: long cut first, then short.
    let long = CxPrefix::full_fields(schema.fields().len());
    let short = CxPrefix::full_fields(1);
    let via_long = cxkey::rollup(
        schema,
        &cxkey::rollup(schema, &a, long, RollupAxes::Both, s),
        short,
        RollupAxes::Both,
        s,
    );
    let direct = cxkey::rollup(schema, &a, short, RollupAxes::Both, s);
    prop_assert_eq!(&via_long, &direct, "downward composition broke");
    Ok(())
}

fn check_string_laws(
    schema: &'static CxSchema,
    t: &[(Vec<u64>, Vec<u64>, u64)],
) -> Result<(), String> {
    let s = PlusTimes::<u64>::new();
    let k = keyed(schema, t);
    for prefix in prefixes(schema) {
        let once = cxkey::project(schema, &k, prefix, s);
        let twice = cxkey::project(schema, &once, prefix, s);
        prop_assert_eq!(&twice, &once, "project not idempotent at {:?}", prefix);
    }
    let long = CxPrefix::full_fields(schema.fields().len());
    let short = CxPrefix::full_fields(1);
    let via_long = cxkey::project(schema, &cxkey::project(schema, &k, long, s), short, s);
    let direct = cxkey::project(schema, &k, short, s);
    prop_assert_eq!(&via_long, &direct, "downward composition broke");
    Ok(())
}
