//! Netflow property suite — the subsystem's three load-bearing
//! invariants, checked over random inputs:
//!
//! 1. **Windowed ingest ≡ flat build.** Each closed window's traffic
//!    matrix is bit-identical to a flat COO build of exactly that
//!    window's events: rotation loses nothing, leaks nothing across
//!    window boundaries, and shard count is invisible.
//! 2. **CIDR projection is idempotent and composes downward.**
//!    `project(project(A, p), p) = project(A, p)` on the string-keyed
//!    layer, the same for `rollup` on the numeric layer, and
//!    `/8 ∘ /16 = /8`.
//! 3. **Detector determinism.** The full service — generator → sharded
//!    ingest → rotation → detectors and analytics queries — answers
//!    bit-identically at 1, 2, and 4 shards.

use hyperspace::prelude::*;
use hyperspace_core::cidr;
use hypersparse::Ix;
use netflow::{FlowEvent, NetflowBody, IP_SPACE};
use proptest::prelude::*;

/// Flat reference build: one window's events straight into COO.
fn flat(events: &[FlowEvent]) -> Dcsr<u64> {
    let mut coo = Coo::new(IP_SPACE, IP_SPACE);
    coo.extend(
        events
            .iter()
            .map(|&(s, d, p)| (Ix::from(s), Ix::from(d), p)),
    );
    coo.build_dcsr(PlusTimes::<u64>::new())
}

fn windows() -> impl Strategy<Value = Vec<Vec<FlowEvent>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..500u32, 0..500u32, 1u64..9), 0..120),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1: every closed window equals its flat reference, at
    /// every shard count, with ingest split into arbitrary batches.
    #[test]
    fn windowed_ingest_equals_flat_build_per_window(ws in windows(), chunk in 1..40usize) {
        for shards in [1usize, 2, 4] {
            let svc = netflow::NetflowService::new(
                NetflowConfig::new()
                    .with_retain_windows(ws.len().max(1))
                    .with_pipeline(PipelineConfig::new().with_shards(shards)),
            );
            for events in &ws {
                for batch in events.chunks(chunk.max(1)) {
                    svc.ingest(batch).unwrap();
                }
                let closed = svc.close_window().unwrap();
                prop_assert_eq!(closed.dcsr(), &flat(events),
                    "window {} diverged from flat build at {} shards",
                    closed.epoch(), shards);
            }
            svc.shutdown().unwrap();
        }
    }

    /// Invariant 2: CIDR projection/rollup is idempotent on both key
    /// layers and composes downward (`/8 ∘ /16 = /8`).
    #[test]
    fn cidr_rollup_is_idempotent_and_composes(
        t in proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..100), 1..60)
    ) {
        let s = PlusTimes::<u64>::new();
        // Numeric layer (Dcsr).
        let a = flat(&t);
        for prefix in [8u8, 16, 24] {
            let once = cidr::rollup(&a, prefix, cidr::RollupAxes::Both, s);
            let twice = cidr::rollup(&once, prefix, cidr::RollupAxes::Both, s);
            prop_assert_eq!(&twice, &once, "rollup not idempotent at /{}", prefix);
        }
        let via16 = cidr::rollup(
            &cidr::rollup(&a, 16, cidr::RollupAxes::Both, s),
            8,
            cidr::RollupAxes::Both,
            s,
        );
        prop_assert_eq!(&via16, &cidr::rollup(&a, 8, cidr::RollupAxes::Both, s));

        // String-keyed layer (Assoc).
        let assoc = Assoc::from_triplets(
            t.iter()
                .map(|&(r, c, v)| (cidr::ip_key(r), cidr::ip_key(c), v))
                .collect::<Vec<_>>(),
            s,
        );
        let p = cidr::project(&assoc, 16, s);
        prop_assert_eq!(&cidr::project(&p, 16, s), &p, "project not idempotent");
        prop_assert_eq!(&cidr::project(&p, 8, s), &cidr::project(&assoc, 8, s));
    }

    /// Invariant 3: detector and analytics answers are bit-identical at
    /// 1, 2, and 4 shards for the same generated traffic.
    #[test]
    fn detectors_are_deterministic_across_shard_counts(seed in 0..u64::MAX) {
        let gen = TrafficGen::new(
            GenConfig::new()
                .with_hosts(128)
                .with_events_per_window(800)
                .with_seed(seed)
                .with_scan(0, 96)
                .with_ddos(1, 80),
        );
        let queries = [
            NetflowQuery::TopTalkers { k: 5 },
            NetflowQuery::TopListeners { k: 5 },
            NetflowQuery::ScanSuspects { min_fanout: 64 },
            NetflowQuery::DdosVictims { min_fanin: 64 },
            NetflowQuery::Rollup { prefix: 16, k: 8 },
        ];
        let mut reference: Option<Vec<(netflow::WindowReport, Vec<NetflowBody>)>> = None;
        for shards in [1usize, 2, 4] {
            let svc = netflow::NetflowService::new(
                NetflowConfig::new()
                    .with_thresholds(96, 80)
                    .with_pipeline(PipelineConfig::new().with_shards(shards)),
            );
            let mut got = Vec::new();
            for w in 0..2usize {
                svc.ingest(&gen.window(w)).unwrap();
                let snap = svc.close_window().unwrap();
                let report = svc.detect_snapshot(&snap).unwrap();
                let answers = queries
                    .iter()
                    .map(|q| svc.query_snapshot(&snap, q).body)
                    .collect::<Vec<_>>();
                got.push((report, answers));
            }
            svc.shutdown().unwrap();
            match &reference {
                None => reference = Some(got),
                Some(r) => prop_assert_eq!(r, &got,
                    "detector output diverged at {} shards", shards),
            }
        }
        // The injected episodes are ground truth: zero false negatives.
        let runs = reference.unwrap();
        let scan_src = cidr::ip_key(match gen.episodes()[0] {
            netflow::Episode::Scan { source, .. } => source,
            _ => unreachable!(),
        });
        let ddos_dst = cidr::ip_key(match gen.episodes()[1] {
            netflow::Episode::Ddos { victim, .. } => victim,
            _ => unreachable!(),
        });
        prop_assert!(runs[0].0.scan_suspects.iter().any(|(s, _)| *s == scan_src));
        prop_assert!(runs[1].0.ddos_victims.iter().any(|(d, _)| *d == ddos_dst));
    }
}
