//! Lint-style guard: every kernel call outside `crates/hypersparse`
//! must go through a `_ctx` twin (or `with_default_ctx`), so metrics
//! and trace spans cover the whole stack. Bare `ops::mxm(` /
//! `ops::apply(` / friends in library sources silently bypass the
//! observability layer — this test greps them out of existence.
//!
//! Bench sources are exempt: ablation benches deliberately time the
//! bare seed paths against the ctx paths.

use std::path::{Path, PathBuf};

/// Kernel entry points that have `_ctx` twins. A match is a bare call
/// only when the name is not followed by `_` (which would make it the
/// `_ctx` spelling or another longer identifier).
const KERNELS: &[&str] = &[
    "mxm",
    "mxm_masked",
    "mxm_apply_prune",
    "apply",
    "apply_prune",
    "select",
    "transpose",
    "ewise_add",
    "ewise_mul",
    "reduce_rows",
    "reduce_cols",
    "extract",
    "kron",
    "top_k",
    "top_k_rows",
    "top_k_cols",
];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/hyperspace
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Offending `ops::<kernel>(` occurrences in one file.
fn bare_calls(text: &str) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || trimmed.starts_with("#!") {
            continue;
        }
        for kernel in KERNELS {
            let needle = format!("ops::{kernel}(");
            let mut from = 0;
            while let Some(pos) = line[from..].find(&needle) {
                hits.push((
                    lineno + 1,
                    format!("ops::{kernel}( — use ops::{kernel}_ctx"),
                ));
                from += pos + needle.len();
            }
        }
    }
    hits
}

#[test]
fn no_bare_kernel_calls_outside_hypersparse() {
    let root = repo_root();
    let mut files = Vec::new();
    for crate_dir in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let crate_dir = crate_dir.expect("crate entry").path();
        let name = crate_dir
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        // hypersparse owns the kernels; bench times bare seed paths on
        // purpose (ablations compare them against the ctx paths).
        if name == "hypersparse" || name == "bench" {
            continue;
        }
        let src = crate_dir.join("src");
        if src.is_dir() {
            rust_sources(&src, &mut files);
        }
    }
    // Root-level integration tests and examples must be ctx-clean too.
    for extra in ["tests", "examples"] {
        let dir = root.join(extra);
        if dir.is_dir() {
            rust_sources(&dir, &mut files);
        }
    }
    assert!(
        files.len() > 20,
        "lint walked only {} files — wrong root?",
        files.len()
    );

    let mut offenders = Vec::new();
    for file in &files {
        // This file carries bare-call fixtures for the self-test below.
        if file.file_name().is_some_and(|n| n == "ctx_kernel_lint.rs") {
            continue;
        }
        let text = std::fs::read_to_string(file).expect("readable source");
        for (line, what) in bare_calls(&text) {
            offenders.push(format!("{}:{line}: {what}", file.display()));
        }
    }
    assert!(
        offenders.is_empty(),
        "bare kernel calls bypass ctx metrics/tracing:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn lint_pattern_actually_matches() {
    // Guard the guard: the detector must flag the bare spelling and
    // pass the ctx spelling, or the lint above is vacuous.
    let bad = "let c = hypersparse::ops::mxm(&a, &b, s);";
    assert_eq!(bare_calls(bad).len(), 1);
    let good = "let c = hypersparse::ops::mxm_ctx(ctx, &a, &b, s);";
    assert!(bare_calls(good).is_empty());
    let comment = "// old: hypersparse::ops::mxm(&a, &b, s)";
    assert!(bare_calls(comment).is_empty());
    let masked = "let c = hypersparse::ops::mxm_masked(&a, &b, &m, true, s);";
    assert_eq!(bare_calls(masked).len(), 1);
}
