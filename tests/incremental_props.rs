//! Incremental-view property suite — the standing-query stack's two
//! load-bearing invariants, checked over random inputs:
//!
//! 1. **Incremental ≡ scratch.** A standing view folding the pipeline's
//!    delta waves (degree state, triangle state, PageRank refresh) gives
//!    exactly the same answer as the from-scratch algorithm on the full
//!    snapshot at every wave — including across `Rotate`, where the
//!    closing delta folds exactly once and the state then resets with
//!    the window.
//! 2. **Shard invariance.** The whole evolution — every wave's degrees,
//!    triangle counts, detector flags, and refreshed PageRank vector —
//!    is bit-identical at 1, 2, and 4 shards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use graph::incremental::{DegreeState, TriangleState};
use graph::pagerank::{pagerank, pagerank_refresh, PageRankOpts};
use graph::{netsec, pattern_f64, symmetrize, triangles};
use hyperspace::prelude::*;
use hypersparse::Ix;
use proptest::prelude::*;

const N: Ix = 64;

type S = PlusTimes<u64>;

/// Both incremental states behind one standing-view registration, the
/// way a real service wires them.
struct TestView {
    state: Mutex<(DegreeState, TriangleState)>,
    resets: AtomicU64,
}

impl TestView {
    fn new() -> Self {
        TestView {
            state: Mutex::new((DegreeState::new(N, N), TriangleState::new(N))),
            resets: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, (DegreeState, TriangleState)> {
        self.state.lock().unwrap()
    }
}

impl StandingView<S> for TestView {
    fn apply_delta(&self, delta: &EpochSnapshot<S>) {
        let mut g = self.lock();
        g.0.apply_delta(delta.dcsr());
        g.1.apply_delta(delta.dcsr());
    }

    fn reset(&self) {
        let mut g = self.lock();
        g.0.reset();
        g.1.reset();
        self.resets.fetch_add(1, Ordering::SeqCst);
    }
}

fn waves() -> impl Strategy<Value = Vec<Vec<(Ix, Ix, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..N, 0..N, 1u64..5), 0..50),
        1..4,
    )
}

/// One wave's observable record, for the cross-shard comparison.
type WaveRecord = (Vec<(Ix, u64)>, Vec<(Ix, u64)>, u64, Vec<u64>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incremental_matches_scratch_and_is_shard_invariant(
        ws in waves(),
        extra in proptest::collection::vec((0..N, 0..N, 1u64..5), 1..40),
    ) {
        let opts = PageRankOpts::default();
        let mut reference: Option<Vec<WaveRecord>> = None;
        for shards in [1usize, 2, 4] {
            let p = Pipeline::with_config(
                N, N, PlusTimes::<u64>::new(),
                PipelineConfig::new().with_shards(shards));
            let view = Arc::new(TestView::new());
            p.register_standing_query("props", Arc::clone(&view) as Arc<dyn StandingView<S>>);

            let mut got: Vec<WaveRecord> = Vec::new();
            let mut prior: Vec<f64> = Vec::new();
            for wave in &ws {
                for &(r, c, v) in wave {
                    p.ingest(r, c, v).unwrap();
                }
                let inc = p.snapshot_incremental().unwrap();
                let full = inc.full.dcsr();

                // Invariant 1a: degrees and detector flags ≡ scratch.
                let g = view.lock();
                prop_assert_eq!(g.0.fan_out(), &netsec::fan_out(full));
                prop_assert_eq!(g.0.fan_in(), &netsec::fan_in(full));
                prop_assert_eq!(g.0.scan_suspects(2), netsec::scan_suspects(full, 2));
                prop_assert_eq!(g.0.ddos_victims(2), netsec::ddos_victims(full, 2));

                // Invariant 1b: triangle count ≡ scratch masked SpGEMM.
                let sym = symmetrize(&pattern_f64(full), PlusTimes::<f64>::new());
                prop_assert_eq!(g.1.count(), triangles::triangle_count(&sym));

                // Invariant 1c: warm-started PageRank lands on the same
                // fixed point as a cold start (within tolerance).
                let pat = pattern_f64(full);
                let refreshed = pagerank_refresh(&pat, &prior, opts);
                for (a, b) in pagerank(&pat, opts).iter().zip(&refreshed) {
                    prop_assert!((a - b).abs() < 1e-6, "refresh {b} vs scratch {a}");
                }

                got.push((
                    g.0.scan_suspects(1),
                    g.0.ddos_victims(1),
                    g.1.count(),
                    refreshed.iter().map(|v| v.to_bits()).collect(),
                ));
                drop(g);
                prior = refreshed;
            }

            // Rotation: the closing delta folds exactly once (the state
            // right before the reset saw the whole window), then the
            // state resets with the window.
            for &(r, c, v) in &extra {
                p.ingest(r, c, v).unwrap();
            }
            p.rotate_shared().unwrap();
            prop_assert_eq!(view.resets.load(Ordering::SeqCst), 1);
            {
                let g = view.lock();
                prop_assert!(g.0.fan_out().is_empty());
                prop_assert_eq!(g.1.count(), 0);
            }

            // The next window starts clean: state ≡ scratch over the new
            // window only, with no bleed-through from the rotated one.
            for &(r, c, v) in &extra {
                p.ingest(r, c, v).unwrap();
            }
            let inc = p.snapshot_incremental().unwrap();
            {
                let g = view.lock();
                prop_assert_eq!(g.0.fan_out(), &netsec::fan_out(inc.full.dcsr()));
                let sym = symmetrize(&pattern_f64(inc.full.dcsr()), PlusTimes::<f64>::new());
                prop_assert_eq!(g.1.count(), triangles::triangle_count(&sym));
            }
            p.shutdown().unwrap();

            // Invariant 2: the whole evolution is bit-identical across
            // shard counts.
            match &reference {
                None => reference = Some(got),
                Some(r) => prop_assert_eq!(r, &got,
                    "incremental state diverged at {} shards", shards),
            }
        }
    }
}
