//! The conclusion's claim, end to end: associative arrays as "a plug-in
//! replacement for spreadsheets [and] database tables". One dataset
//! enters as a CSV spreadsheet, is manipulated with array algebra,
//! queried with SQL, and leaves as CSV again — the same mathematical
//! object wearing three costumes.
//!
//! ```sh
//! cargo run --release --example spreadsheet_db
//! ```

use db::sql::{execute, execute_baseline, parse};
use db::{AssocTable, RowTable};
use hyperspace_core::csv::{from_csv_spreadsheet, to_csv_spreadsheet, to_csv_triples};
use hyperspace_core::range::extract_col_prefix;
use semiring::{PlusMonoid, PlusTimes};

fn main() {
    let s = PlusTimes::<f64>::new();

    // ---- 1. A spreadsheet arrives as CSV ----
    let incoming = "\
,q1,q2,q3,q4
widgets,120,95,,180
gadgets,60,,75,90
gizmos,,40,55,
";
    let sales = from_csv_spreadsheet(incoming, s).expect("valid csv");
    println!("imported spreadsheet ({} cells):\n{sales}", sales.nnz());

    // ---- 2. Spreadsheet math is array algebra ----
    let yearly = sales.reduce_rows(PlusMonoid::<f64>::default());
    println!("yearly totals (row reduction): {yearly:?}");
    let per_quarter = sales.reduce_cols(PlusMonoid::<f64>::default());
    println!("per-quarter totals (column reduction): {per_quarter:?}");

    // Element-wise ⊕ merges a second spreadsheet — key alignment is free.
    let corrections = from_csv_spreadsheet(",q2,q5\nwidgets,5,20\n", s).unwrap();
    let merged = sales.ewise_add(&corrections, s);
    assert_eq!(merged.get(&"widgets".into(), &"q2".into()), Some(100.0));
    assert_eq!(merged.get(&"widgets".into(), &"q5".into()), Some(20.0));
    println!("after ⊕-merging corrections:\n{merged}");

    // Range algebra: first-half columns only.
    let h1 = extract_col_prefix(&merged, "q", s).extract(
        merged.row_keys().to_vec(),
        vec!["q1".into(), "q2".into()],
        s,
    );
    println!("H1 view:\n{h1}");

    // ---- 3. The same rows as a database, queried with SQL ----
    let records: Vec<(String, db::Record)> = merged
        .row_keys()
        .iter()
        .map(|product| {
            let rec: db::Record = merged
                .row(product)
                .into_iter()
                .map(|(q, v)| (q, format!("{v}")))
                .collect();
            (product.clone(), rec)
        })
        .collect();
    let table = AssocTable::from_records(records.clone());
    let baseline = RowTable::from_records(records);

    let q = parse("SELECT q1, q4 FROM sales WHERE q1 = '120'").unwrap();
    let hits = execute(&q, &table);
    // ResultSets are id-sorted: both engines' answers compare with ==.
    assert_eq!(hits, execute_baseline(&q, &baseline));
    println!("SQL query result:\n{hits}");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits.rows()[0].id(), "widgets");
    assert_eq!(hits.rows()[0].get("q1"), Some("120"));

    // ---- 4. And back out as CSV, both shapes ----
    let round = from_csv_spreadsheet(&to_csv_spreadsheet(&merged), s).unwrap();
    assert_eq!(round, merged, "spreadsheet round trip is exact");
    println!("triples export:\n{}", to_csv_triples(&h1));

    println!("spreadsheet_db OK — one object, three costumes");
}
