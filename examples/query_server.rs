//! The full ingest-to-answer loop: a live pipeline feeding a snapshot
//! query server, with concurrent readers answering SQL, predicate-tree,
//! neighbor, and group-by queries against pinned epochs while the feed
//! keeps publishing new ones.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```
//!
//! Runtime is bounded (fixed event/query budgets, no sleeps) so this
//! doubles as a CI smoke test.

use std::sync::Arc;
use std::time::Instant;

use hyperspace::prelude::*;
use hyperspace::serve::QueryClass;

const HOSTS: u64 = 256;
const EVENTS: u64 = 40_000;
const READERS: usize = 4;
const QUERIES_PER_READER: u64 = 500;

fn main() {
    let t0 = Instant::now();
    let p = Arc::new(Pipeline::with_config(
        HOSTS,
        HOSTS,
        PlusTimes::<f64>::new(),
        PipelineConfig::new().with_shards(2),
    ));

    // The server retains the last 4 epochs and caches 64 hot sub-views;
    // attaching it subscribes the registry to every published snapshot.
    let srv = Arc::new(QueryServer::<PlusTimes<f64>>::new(ViewSchema::flows()));
    srv.attach(&p);

    // ---- Seed epoch 1 and pin it for later historical queries ----
    for i in 0..EVENTS / 2 {
        p.ingest(i % HOSTS, (i * 13) % HOSTS, 1.0).unwrap();
    }
    p.snapshot_shared().unwrap();
    let pinned = srv.pin_latest().unwrap();
    println!(
        "epoch {} pinned: {} edges exploded into {} records",
        pinned.epoch(),
        pinned.nnz(),
        pinned.tables().rows.len()
    );

    // ---- Readers under fire: writer keeps publishing epochs ----
    let writer = {
        let p = Arc::clone(&p);
        std::thread::spawn(move || {
            for i in EVENTS / 2..EVENTS {
                p.ingest(i % HOSTS, (i * 31) % HOSTS, 1.0).unwrap();
                if i.is_multiple_of(8_192) {
                    p.snapshot_shared().unwrap();
                }
            }
            p.snapshot_shared().unwrap().epoch()
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let srv = Arc::clone(&srv);
            std::thread::spawn(move || {
                for i in 0..QUERIES_PER_READER {
                    let h = (r as u64 * 31 + i) % HOSTS;
                    let req = match i % 4 {
                        0 => QueryRequest::sql(format!("SELECT dst FROM flows WHERE src = 'h{h}'")),
                        1 => QueryRequest::Select {
                            view: View::Assoc,
                            expr: Pred::eq("src", &format!("h{h}"))
                                .or(Pred::eq("dst", &format!("h{h}"))),
                        },
                        2 => QueryRequest::Neighbors {
                            view: View::Triple,
                            host: format!("h{h}"),
                        },
                        _ => QueryRequest::GroupCount {
                            view: View::Row,
                            field: "src".into(),
                        },
                    };
                    let resp = srv.query(&req).unwrap();
                    assert!(resp.epoch >= 1);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    let final_epoch = writer.join().unwrap();
    println!(
        "served {} queries across {} readers while the writer reached epoch {final_epoch}",
        READERS as u64 * QUERIES_PER_READER,
        READERS
    );

    // ---- The three views agree, answered through the server ----
    let sql = srv
        .query(&QueryRequest::sql("SELECT dst FROM flows WHERE src = 'h1'"))
        .unwrap();
    let table = sql.body.as_table().unwrap();
    for view in [View::Assoc, View::Triple, View::Row] {
        let sel = srv
            .query(&QueryRequest::Select {
                view,
                expr: Pred::eq("src", "h1").expr(),
            })
            .unwrap();
        assert_eq!(
            sel.body.as_ids().unwrap().len(),
            table.len(),
            "{view:?} agrees with SQL"
        );
    }
    println!(
        "h1 sources {} flows at epoch {} — identical through SQL and all three engines",
        table.len(),
        sql.epoch
    );

    // ---- Historical epochs stay queryable while retained ----
    let old = srv
        .query_pinned(
            &pinned,
            &QueryRequest::GroupCount {
                view: View::Assoc,
                field: "src".into(),
            },
        )
        .unwrap();
    let old_total: usize = old.body.as_counts().unwrap().iter().map(|(_, c)| c).sum();
    assert_eq!(old.epoch, 1);
    assert_eq!(old_total, pinned.nnz(), "pinned epoch 1 is immutable");
    println!("epoch 1 (pinned) still answers: {old_total} records, untouched by later epochs");

    // ---- Typed errors, not strings ----
    match srv.query(&QueryRequest::sql("SELECT dst FROM flows WHERE")) {
        Err(ServeError::Sql(e)) => {
            println!("typed SQL error (position {:?}): {e}", e.position())
        }
        other => panic!("expected a typed SQL error, got {other:?}"),
    }

    // ---- One scrape body for the whole stack ----
    let m = srv.metrics();
    println!(
        "serving metrics: {} queries ({} cache hits), sql p99 {} ns",
        m.queries,
        m.cache_hits,
        m.class(QueryClass::Sql).quantile(0.99)
    );
    let exposition = srv.render_prometheus_with(&p);
    assert!(exposition.contains("pipeline_events_ingested_total"));
    assert!(exposition.contains("serve_queries_total"));
    assert!(exposition.contains("serve_query_latency_seconds_bucket"));
    println!(
        "merged exposition: {} lines of pipeline + serving metrics",
        exposition.lines().count()
    );

    let p = Arc::try_unwrap(p).ok().expect("writer joined");
    p.shutdown().unwrap();
    println!("query_server OK in {:.2?}", t0.elapsed());
}
