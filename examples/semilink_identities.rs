//! A guided tour of the §IV semilink identities, executed one by one on
//! concrete arrays under two different semirings.
//!
//! ```sh
//! cargo run --example semilink_identities
//! ```

use hyperspace_core::semilink::*;
use hyperspace_core::Assoc;
use semiring::{MinPlus, PlusTimes, Semiring};

fn demo<S>(name: &str, s: S)
where
    S: Semiring<Value = f64> + Copy,
{
    println!("== semilink over {name} ==");
    let keys = vec!["a", "b", "c", "d"];

    // (1) 𝟙 and 𝕀 preserve their identity roles across ⊗ and ⊕.⊗.
    assert!(check_identity_interplay(&keys, s));
    println!("  𝟙 ⊗ 𝕀 = 𝕀,   𝟙 ⊕.⊗ 𝕀 = 𝟙                              ✓");

    // (2) An array's own pattern acts as its element-wise identity.
    let a = Assoc::from_triplets(vec![("a", "c", 2.0), ("b", "a", 3.0), ("d", "d", 4.0)], s);
    assert!(check_pattern_is_ewise_identity(&a, s));
    println!("  |A|₀ = ℙ ⟹ A ⊗ ℙ = ℙ ⊗ A = A                           ✓");

    // (3) ⊕.⊗ against 𝟙 projects onto rows/columns.
    assert!(check_projection_rows(&a, &keys, s));
    assert!(check_projection_cols(&a, &keys, s));
    println!("  (A ⊕.⊗ 𝟙)(k₁,:) = ⊕_k₂ A(k₁,k₂)  (and the column dual)  ✓");

    // (4) Conditional distributivity through a shared permutation pattern.
    let a1 = Assoc::from_triplets(vec![("a", "b", 2.0), ("c", "d", 3.0)], s);
    let a2 = Assoc::from_triplets(vec![("a", "b", 5.0), ("c", "d", 7.0)], s);
    let b = Assoc::from_triplets(vec![("b", "a", 1.0), ("d", "c", 2.0), ("b", "c", 3.0)], s);
    let c = Assoc::from_triplets(vec![("b", "a", 4.0), ("d", "c", 6.0)], s);
    assert_eq!(
        check_conditional_distributivity(&a1, &a2, &b, &c, s),
        Some(true)
    );
    println!("  |A₁|₀=|A₂|₀=ℙ, A=A₁⊗A₂ ⟹ A⊕.⊗(B⊗C) = (A₁⊕.⊗B)⊗(A₂⊕.⊗C) ✓");

    // (5) Hybrid associativity holds in the trivial cases…
    assert!(check_hybrid_assoc_ones(&b, &c, &keys, s));
    assert!(check_hybrid_assoc_identity(&b, &c, &keys, s));
    println!("  A=𝟙 or C=𝕀 ⟹ A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C            ✓");

    // (6) …and disjoint supports annihilate everything.
    let ax = Assoc::from_triplets(vec![("a", "b", 1.0)], s);
    let bx = Assoc::from_triplets(vec![("c", "d", 2.0)], s);
    let cx = Assoc::from_triplets(vec![("d", "a", 3.0)], s);
    assert_eq!(check_annihilation_ewise_first(&ax, &bx, &cx, s), Some(true));
    assert_eq!(check_annihilation_matmul_last(&ax, &bx, &cx, s), Some(true));
    assert_eq!(check_annihilation_corollary(&ax, &bx, &cx, s), Some(true));
    println!("  row(A)∩row(B)=∅ ⟹ A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C = 𝕆    ✓");
}

fn main() {
    demo("(ℝ, +, ×, 0, 1)", PlusTimes::<f64>::new());
    demo("(ℝ ∪ +∞, min, +, +∞, 0)", MinPlus::<f64>::new());

    // The identities are *not* vacuous: drop the preconditions and the
    // hybrid associativity genuinely fails.
    let s = PlusTimes::<f64>::new();
    let a = Assoc::from_triplets(vec![("a", "c", 1.0)], s);
    let b = Assoc::from_triplets(vec![("a", "b", 1.0)], s);
    let c = Assoc::from_triplets(vec![("b", "c", 1.0)], s);
    let lhs = a.ewise_mul(&b.matmul(&c, s), s);
    let rhs = a.ewise_mul(&b, s).matmul(&c, s);
    assert_ne!(lhs, rhs);
    println!("\nwithout the preconditions, A ⊗ (B ⊕.⊗ C) ≠ (A ⊗ B) ⊕.⊗ C — the semilink is a genuinely new structure");
    println!("semilink_identities OK");
}
