//! Quickstart: associative arrays, semirings, and the graph–array duality
//! in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hyperspace::prelude::*;
use semiring::PlusMonoid;

fn main() {
    // ------------------------------------------------------------------
    // 1. Associative arrays: spreadsheets with algebra (§III, Table II).
    // ------------------------------------------------------------------
    let s = PlusTimes::<f64>::new();
    let purchases = Assoc::from_triplets(
        vec![
            ("alice", "apples", 2.0),
            ("alice", "pears", 1.0),
            ("bob", "apples", 5.0),
            ("carol", "figs", 4.0),
        ],
        s,
    );
    println!("purchases (person × fruit):\n{purchases}");

    // Different key spaces compose freely — only key overlap matters.
    let prices = Assoc::from_triplets(
        vec![
            ("apples", "usd", 0.50),
            ("pears", "usd", 0.75),
            ("figs", "usd", 2.00),
            ("durian", "usd", 9.00), // nobody bought durian: harmless
        ],
        s,
    );
    let bill = purchases.matmul(&prices, s);
    println!("bill = purchases ⊕.⊗ prices:\n{bill}");
    assert_eq!(bill.get(&"alice", &"usd"), Some(1.75));

    // Reductions are the ⊕.⊗-against-ones projections of §IV.
    println!(
        "total spend: {:?}",
        bill.reduce_cols(PlusMonoid::<f64>::default())
    );

    // ------------------------------------------------------------------
    // 2. Semirings change the *meaning* of the same operation (Table I).
    // ------------------------------------------------------------------
    let hops = MinPlus::<f64>::new();
    let flights = Assoc::from_triplets(
        vec![
            ("BOS", "ORD", 2.5),
            ("ORD", "SFO", 4.5),
            ("BOS", "SFO", 6.6),
        ],
        hops,
    );
    // One min-plus array square = best ≤2-hop itineraries.
    let two_hop = flights.matmul(&flights, hops).ewise_add(&flights, hops);
    println!(
        "best ≤2-hop BOS→SFO: {:?} hours",
        two_hop.get(&"BOS", &"SFO")
    );
    assert_eq!(two_hop.get(&"BOS", &"SFO"), Some(6.6_f64.min(2.5 + 4.5)));

    // ------------------------------------------------------------------
    // 3. The graph–array duality (Fig. 1): BFS is array multiplication.
    // ------------------------------------------------------------------
    let mut coo = Coo::new(1 << 40, 1 << 40); // a 2⁴⁰-key hypersparse space
    for (a, b) in [(0u64, 7), (7, 99), (99, 1 << 30), (7, 13)] {
        coo.push(a, b, 1.0);
    }
    let adj = coo.build_dcsr(PlusTimes::<f64>::new());
    let levels = graph::bfs::bfs_levels(&graph::pattern_u8(&adj), 0);
    println!("BFS levels from vertex 0 in a 2^40 key space: {levels:?}");
    assert_eq!(levels.len(), 5);

    // ------------------------------------------------------------------
    // 4. The storage engine switches formats by itself (Fig. 4).
    // ------------------------------------------------------------------
    let dense_ish = Matrix::from_triplets(
        16,
        16,
        (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j, 1.0)))
            .collect(),
        s,
    );
    let hyper = Matrix::from_triplets(1 << 50, 1 << 50, vec![(3, 9, 1.0)], s);
    println!(
        "full 16×16 stored as {:?}; one entry in 2^50×2^50 stored as {:?} ({} bytes)",
        dense_ish.format(),
        hyper.format(),
        hyper.bytes()
    );
    assert_eq!(dense_ish.format(), Format::Dense);
    assert_eq!(hyper.format(), Format::Dcsr);

    println!("quickstart OK");
}
