//! The Fig. 6 scenario end-to-end: one stream of network-flow records,
//! four simultaneous views (SQL row store, NoSQL triple store, D4M
//! associative array, graph adjacency), one query — *"find 1.1.1.1's
//! nearest neighbors"* — answered identically by all of them, plus the
//! §V.B semilink select executed literally.
//!
//! ```sh
//! cargo run --example network_flows
//! ```

use db::gen::{flows, FlowParams};
use db::{AssocTable, RowTable, TripleStore};
use hyperspace_core::select::{select_direct, select_semilink};
use semiring::UnionIntersect;

fn main() {
    let records = flows(
        FlowParams {
            n_records: 5_000,
            n_hosts: 200,
            skew: 1.1,
        },
        2026,
    );
    println!("generated {} flow records", records.len());

    // ---- Build all views of the same data ----
    let sql = RowTable::from_records(records.clone());
    let nosql = TripleStore::from_records(records.clone());
    let d4m = AssocTable::from_records(records.clone());
    let adj = d4m.adjacency("src", "dst"); // the graph view (Fig. 3 on tables)

    // ---- The Fig. 6 query in each representation ----
    let host = "1.1.1.1";
    let n_sql = sql.neighbors(host);
    let n_nosql = nosql.neighbors(host);
    let n_d4m = d4m.neighbors(host);
    assert_eq!(n_sql, n_nosql);
    assert_eq!(n_sql, n_d4m);
    println!(
        "neighbors of {host}: {} hosts — identical across SQL scan, \
         NoSQL index, and associative-array algebra",
        n_sql.len()
    );

    // The pure-graph reading: row + column support of the adjacency array.
    let graph_neighbors: std::collections::BTreeSet<String> = adj
        .row(&host.to_string())
        .into_iter()
        .map(|(k, _)| k)
        .chain(
            adj.transpose(semiring::PlusTimes::<f64>::new())
                .row(&host.to_string())
                .into_iter()
                .map(|(k, _)| k),
        )
        .collect();
    assert_eq!(graph_neighbors, n_sql);

    // ---- Relational algebra as semilink algebra (§V.B) ----
    let (set_view, mut atoms) = AssocTable::set_view(&records);
    let v = atoms.intern(host);
    let by_formula = select_semilink(&set_view, &"src".to_string(), v).prune(UnionIntersect);
    let by_scan = select_direct(&set_view, &"src".to_string(), v);
    assert_eq!(by_formula, by_scan);
    println!(
        "semilink select |((A ∪.∩ 𝕀(src)) ∩ {host}) ∪.∩ 𝟙|₀ ∩ A matched {} records \
         — identical to the direct scan",
        hyperspace_core::semilink::support_rows(&by_formula).len()
    );

    // ---- Analytics: group-by and top talkers, algebraically ----
    let mut ports = d4m.group_count("port");
    ports.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("flows by port: {ports:?}");
    let sql_ports = sql.group_count("port");
    for (p, c) in &ports {
        assert_eq!(sql_ports[p], *c);
    }

    let mut talkers = d4m
        .field_subarray("src")
        .reduce_cols(semiring::PlusMonoid::<f64>::default());
    talkers.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "top talkers: {:?}",
        talkers.iter().take(5).collect::<Vec<_>>()
    );
    assert_eq!(
        talkers[0].0, host,
        "the skewed generator makes {host} the hub"
    );

    println!("network_flows OK");
}
