//! The paper's streaming story as a running service: network-flow events
//! ingested from concurrent feed threads into a sharded hypersparse
//! pipeline, analyzed mid-stream through epoch-isolated snapshots (as
//! both a `Matrix` and an associative array), checkpointed to disk, and
//! restored — all while the feed keeps running.
//!
//! ```sh
//! cargo run --release --example streaming_service
//! ```
//!
//! Runtime is bounded (a fixed event budget, no sleeps) so this doubles
//! as a CI smoke test.

use std::sync::Arc;
use std::time::Instant;

use hyperspace::prelude::*;
use hyperspace::semiring::PlusMonoid;

const HOSTS: u64 = 1 << 20; // 2^20-host key space, hypersparse
const EVENTS_PER_FEED: u64 = 50_000;
const FEEDS: u64 = 4;

/// Deterministic pseudo-flow: (src, dst, bytes) for feed `t`, step `i`.
fn flow(t: u64, i: u64) -> (u64, u64, f64) {
    let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    // Skew sources toward a small hot set so the graph has hubs.
    let src = if x.is_multiple_of(4) {
        x % 16
    } else {
        x % HOSTS
    };
    let dst = (x >> 20) % HOSTS;
    (src, dst, ((x >> 7) % 1400 + 64) as f64)
}

fn main() {
    let t0 = Instant::now();
    let config = PipelineConfig::new()
        .with_shards(4)
        .with_channel_capacity(512);
    let p = Arc::new(Pipeline::with_config(
        HOSTS,
        HOSTS,
        PlusTimes::<f64>::new(),
        config,
    ));
    // Capture any pipeline stage or kernel slower than 5 ms, with its
    // input shapes — negligible cost until something actually is slow.
    p.set_trace_mode(TraceMode::SlowOnly);
    p.set_slow_threshold(Some(std::time::Duration::from_millis(5)));
    println!(
        "pipeline up: {} shards over a {HOSTS}×{HOSTS} key space",
        p.shards()
    );

    // ---- Concurrent feeds: 4 writer threads, bounded channels ----
    let feeds: Vec<_> = (0..FEEDS)
        .map(|t| {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_FEED {
                    let (src, dst, bytes) = flow(t, i);
                    // Backpressure-aware ingest: try first, fall back to
                    // blocking when the shard is saturated.
                    if let Err(PipelineError::Full { .. }) = p.try_ingest(src, dst, bytes) {
                        p.ingest(src, dst, bytes).unwrap();
                    }
                }
            })
        })
        .collect();

    // ---- Queries under fire: epoch-isolated snapshots ----
    let mid = p.snapshot().unwrap();
    let mid_nnz = mid.nnz();
    println!(
        "epoch {} snapshot mid-stream: {} edges from {} events (feed still running)",
        mid.epoch(),
        mid_nnz,
        mid.events()
    );
    // The held snapshot never moves, no matter what the feeds do.
    assert_eq!(mid.nnz(), mid_nnz);

    for f in feeds {
        f.join().unwrap();
    }
    let ingested = FEEDS * EVENTS_PER_FEED;

    // ---- Post-drain analytics through the Matrix view ----
    let snap = p.snapshot().unwrap();
    assert_eq!(snap.events(), ingested);
    let m = snap.to_matrix();
    let traffic = m.reduce_rows(PlusMonoid::<f64>::default());
    let (hub, hub_bytes) = traffic
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "epoch {} drained: {} edges, top talker host {hub} sent {hub_bytes:.0} bytes",
        snap.epoch(),
        snap.nnz()
    );

    // The associative-array view of the same epoch: re-key raw u64 host
    // ids into strings (a stand-in for a hostname dictionary).
    let assoc = snap.to_assoc(|h| format!("host-{h:05}"));
    assert_eq!(assoc.nnz(), snap.nnz());
    let row = assoc.row(&format!("host-{hub:05}"));
    println!(
        "assoc view: host-{hub:05} has {} distinct destinations",
        row.len()
    );

    // ---- Checkpoint, "crash", restore, verify, keep going ----
    let dir = std::env::temp_dir().join(format!("hyperspace-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = p.checkpoint(&dir).unwrap();
    println!(
        "checkpoint gen {} at epoch {}: {} shard files, {} events",
        manifest.generation,
        manifest.epoch,
        manifest.shards.len(),
        manifest.events
    );
    let before = p.snapshot().unwrap();

    let restored = Pipeline::restore(&dir, PlusTimes::<f64>::new(), config).unwrap();
    let after = restored.snapshot().unwrap();
    assert_eq!(after.dcsr(), before.dcsr(), "restore is bit-identical");
    restored.ingest(1, 2, 99.0).unwrap();
    assert!(restored.snapshot().unwrap().events() > before.events());
    println!("restore verified bit-identical; restored pipeline accepts new events");
    restored.shutdown().unwrap();

    // ---- Service + kernel metrics ----
    let metrics = p.metrics_snapshot();
    println!("{}", metrics.report());
    let kernels = p.kernel_metrics();
    let merges = kernels
        .kernels
        .iter()
        .find(|k| k.kernel.name() == "stream_merge")
        .expect("stream_merge is tracked");
    println!(
        "stream_merge across all shards: {} calls, {} entries in",
        merges.calls, merges.nnz_in
    );
    assert!(merges.calls > 0);

    // ---- /metrics payload + slow-span report on the way out ----
    let exposition = p.render_prometheus();
    assert!(exposition.contains("pipeline_events_ingested_total"));
    assert!(exposition.contains("pipeline_stage_latency_seconds_bucket"));
    assert!(exposition.contains("hypersparse_kernel_latency_seconds_bucket"));
    println!("--- prometheus exposition (shutdown scrape) ---\n{exposition}");
    let slow = p.trace_report();
    if !slow.is_empty() {
        println!("--- spans over the slow threshold ---\n{slow}");
    }

    // Drain-and-checkpoint shutdown: the service's clean exit path.
    let p = Arc::try_unwrap(p).ok().expect("all feeds joined");
    let final_manifest = p.shutdown_with_checkpoint(&dir).unwrap();
    assert_eq!(final_manifest.events, ingested);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "streaming_service OK: {} events in {:.2?}",
        ingested,
        t0.elapsed()
    );
}
