//! Graph analytics dashboard: one RMAT power-law graph pushed through the
//! whole algorithm suite — every result computed in the language of
//! linear algebra and cross-checked against its classical baseline where
//! one exists.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use graph::baseline::{bfs_queue, dijkstra, triangles_wedge, AdjList};
use graph::bfs::{bfs_levels, bfs_parents};
use graph::cc::{connected_components, count_components};
use graph::centrality::{betweenness, betweenness_baseline};
use graph::closure::{has_cycle, to_bool};
use graph::kcore::core_numbers;
use graph::mis::{is_independent, is_maximal, maximal_independent_set};
use graph::pagerank::{pagerank, top_k, PageRankOpts};
use graph::pattern::{pattern_u64, pattern_u8, symmetrize};
use graph::similarity::jaccard;
use graph::sssp::sssp;
use graph::triangles::{ktruss, triangle_count, vertices};
use hypersparse::gen::{rmat_dcsr, RmatParams};
use semiring::PlusTimes;

fn main() {
    let s = PlusTimes::<f64>::new();
    let g = rmat_dcsr(
        RmatParams {
            scale: 11,
            edge_factor: 8,
            ..Default::default()
        },
        2026,
        s,
    );
    let sym = symmetrize(&g, s);
    println!(
        "RMAT scale 11: N = {}, directed edges = {}, undirected pattern = {}",
        g.nrows(),
        g.nnz(),
        sym.nnz()
    );

    // BFS (Fig. 1, both sides of the duality).
    let levels = bfs_levels(&pattern_u8(&g), 0);
    let queue = bfs_queue(&AdjList::from_pattern(&g), 0);
    assert!(levels.iter().all(|&(v, l)| queue[v as usize] == l));
    let parents = bfs_parents(&pattern_u64(&g), 0);
    println!(
        "BFS from 0: {} reached, eccentricity {}, parent tree verified",
        levels.len(),
        levels.iter().map(|&(_, l)| l).max().unwrap_or(0)
    );
    assert_eq!(parents.len(), levels.len());

    // SSSP over min-plus, checked against Dijkstra.
    let dist = sssp(&g, 0);
    let d_dij = dijkstra(&AdjList::from_weighted(&g), 0);
    for &(v, d) in &dist {
        assert!((d - d_dij[v as usize]).abs() < 1e-9);
    }
    let farthest = dist
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "SSSP: {} reached, farthest = vertex {} at {:.3}",
        dist.len(),
        farthest.0,
        farthest.1
    );

    // Components.
    let labels = connected_components(&pattern_u64(&sym));
    println!("connected components: {}", count_components(&labels));

    // Triangles / k-truss / Jaccard.
    let tri = triangle_count(&sym);
    assert_eq!(tri, triangles_wedge(&AdjList::from_pattern(&sym)));
    let t4 = ktruss(&sym, 4);
    let jac = jaccard(&sym);
    let top_j = jac.iter().map(|(_, _, &v)| v).fold(0.0f64, f64::max);
    println!(
        "triangles = {tri}, 4-truss spans {} vertices, max edge Jaccard = {top_j:.3}",
        vertices(&t4).len()
    );

    // Cores.
    let cores = core_numbers(&sym);
    let kmax = cores.values().copied().max().unwrap_or(0);
    println!("degeneracy (max core) = {kmax}");

    // Maximal independent set.
    let mis = maximal_independent_set(&sym, 7);
    assert!(is_independent(&sym, &mis) && is_maximal(&sym, &mis));
    println!("MIS size = {}", mis.len());

    // PageRank.
    let pr = pagerank(&g, PageRankOpts::default());
    println!("PageRank top 3: {:?}", top_k(&pr, 3));

    // Betweenness from 32 pivot sources, against classical Brandes.
    let pivots: Vec<u64> = (0..32).collect();
    let bc = betweenness(&sym, &pivots);
    let bc_base = betweenness_baseline(&sym, &pivots);
    for (x, y) in bc.iter().zip(&bc_base) {
        assert!((x - y).abs() < 1e-6);
    }
    let top_bc = bc
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "betweenness (32 pivots) peaks at vertex {} = {:.1}",
        top_bc.0, top_bc.1
    );

    // Cycle structure.
    println!("directed graph has a cycle: {}", has_cycle(&to_bool(&g)));

    println!("graph_analytics OK — every algebraic result matched its baseline");
}
