//! The netflow analytics service end to end: a seeded synthetic packet
//! capture with labelled attack episodes streams through the sharded
//! windowed pipeline; detectors flag the injected scan and DDoS out of
//! the closed windows; heavy hitters, drill-downs, CIDR rollups, and
//! SQL-over-flows answer against the same snapshots; and one Prometheus
//! scrape body covers every layer.
//!
//! ```sh
//! cargo run --release --example netflow_service
//! ```
//!
//! Runtime is bounded (fixed window/event budgets, no sleeps) so this
//! doubles as a CI smoke test.

use std::time::Instant;

use hyperspace::core::cidr;
use hyperspace::netflow::Episode;
use hyperspace::prelude::*;

const WINDOWS: u64 = 4;

fn main() {
    let t0 = Instant::now();

    // A 512-host population with heavy-tailed popularity; window 1
    // carries a 400-target horizontal scan, window 2 a 350-source
    // fan-in flood. Detector thresholds sit above the benign head's
    // fan-out (~200 distinct peers at this population/volume), so the
    // clean windows must stay clean.
    let gen = TrafficGen::new(
        GenConfig::new()
            .with_hosts(512)
            .with_events_per_window(4000)
            .with_seed(0xBEEF)
            .with_scan(1, 400)
            .with_ddos(2, 350),
    );
    let svc = NetflowService::new(
        NetflowConfig::new()
            .with_pipeline(PipelineConfig::new().with_shards(4))
            .with_retain_windows(WINDOWS as usize)
            .with_thresholds(256, 256),
    );

    // ---- Stream four capture windows through the sharded pipeline ----
    let mut reports = Vec::new();
    for w in 0..WINDOWS {
        let events = gen.window(w as usize);
        for batch in events.chunks(512) {
            svc.ingest(batch).unwrap();
        }
        let snap = svc.close_window().unwrap();
        let report = svc.detect_snapshot(&snap).unwrap();
        println!(
            "window {} closed: {} events → {} distinct flows, {} scan suspect(s), {} ddos victim(s)",
            snap.epoch(),
            events.len(),
            snap.nnz(),
            report.scan_suspects.len(),
            report.ddos_victims.len()
        );
        reports.push(report);
    }

    // ---- Ground truth: the injected episodes, and only those ----
    let (scan_window, scan_src) = match gen.episodes()[0] {
        Episode::Scan { window, source, .. } => (window as u64, cidr::ip_key(source)),
        _ => unreachable!(),
    };
    let (ddos_window, ddos_dst) = match gen.episodes()[1] {
        Episode::Ddos { window, victim, .. } => (window as u64, cidr::ip_key(victim)),
        _ => unreachable!(),
    };
    for (i, report) in reports.iter().enumerate() {
        let w = i as u64;
        assert_eq!(
            report.scan_suspects.iter().any(|(s, _)| *s == scan_src),
            w == scan_window,
            "scan episode must be flagged in window {scan_window} and only there"
        );
        assert_eq!(
            report.ddos_victims.iter().any(|(d, _)| *d == ddos_dst),
            w == ddos_window,
            "ddos episode must be flagged in window {ddos_window} and only there"
        );
    }
    println!("detectors: zero false negatives, clean windows stayed clean");

    // ---- Analytics against retained windows (epoch = window + 1) ----
    let talkers = svc
        .query_window(scan_window + 1, &NetflowQuery::TopTalkers { k: 3 })
        .unwrap();
    let top = talkers.body.as_volumes().unwrap();
    assert_eq!(top.len(), 3);
    assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "volumes descend");
    println!(
        "top talkers in window {}: {:?}",
        talkers.epoch,
        top.iter()
            .map(|(s, v)| format!("{s}={v}"))
            .collect::<Vec<_>>()
    );

    let drill = svc
        .query_window(
            scan_window + 1,
            &NetflowQuery::SuspectTraffic {
                sources: reports[scan_window as usize]
                    .scan_suspects
                    .iter()
                    .filter_map(|(s, _)| cidr::parse_ip_key(s))
                    .collect(),
            },
        )
        .unwrap();
    let flows = drill.body.as_flows().unwrap();
    assert!(flows.len() >= 400, "drill-down returns every scan probe");
    println!(
        "drill-down: {} flows from the flagged source(s)",
        flows.len()
    );

    let rollup = svc
        .query_window(1, &NetflowQuery::Rollup { prefix: 16, k: 4 })
        .unwrap();
    let blocks = rollup.body.as_blocks().unwrap();
    assert!(!blocks.is_empty());
    assert!(
        blocks[0].0.ends_with("/16"),
        "rolled-up keys carry the prefix"
    );
    println!(
        "busiest /16 pair in window 1: {} → {} ({} packets)",
        blocks[0].0, blocks[0].1, blocks[0].2
    );

    // ---- Socket resolution: the same traffic on ip.port keys ----
    use hyperspace::netflow::flow::{host_rollup, socket_key, socket_matrix, top_sockets};
    let sockets = gen.socket_window(scan_window as usize);
    let sm = socket_matrix(&sockets);
    let hosts = host_rollup(&sm);
    assert!(
        hosts.nnz() <= sm.nnz(),
        "port rollup only merges, never splits"
    );
    let busiest = top_sockets(&sm, 3);
    assert!(!busiest.is_empty());
    println!(
        "socket view of window {scan_window}: {} socket flows → {} host flows; busiest socket {} sent {} packets",
        sm.nnz(),
        hosts.nnz(),
        socket_key(busiest[0].0, busiest[0].1),
        busiest[0].2
    );

    // ---- The embedded query server answers SQL over the same flows ----
    let pinned = svc.server().pin_epoch(scan_window + 1).unwrap();
    let sql = svc
        .server()
        .query_pinned(
            &pinned,
            &QueryRequest::sql(format!("SELECT dst FROM flows WHERE src = '{scan_src}'")),
        )
        .unwrap();
    let probes = sql.body.as_table().unwrap().len();
    assert!(probes >= 400, "SQL sees every scan probe as a record");
    println!(
        "SQL over flows at epoch {}: scanner '{scan_src}' explodes into {probes} records",
        sql.epoch
    );

    // ---- One scrape body across pipeline, serve, netflow, kernels ----
    let m = svc.metrics();
    println!(
        "netflow metrics: {} windows, {} queries, {} flagged endpoints",
        m.windows_closed, m.queries, m.detections
    );
    let exposition = svc.render_prometheus();
    for needle in [
        "pipeline_events_ingested_total",
        "serve_queries_total",
        "netflow_windows_closed_total",
        "netflow_query_latency_seconds_bucket",
    ] {
        assert!(
            exposition.contains(needle),
            "missing {needle} in merged exposition"
        );
    }
    println!(
        "merged exposition: {} lines across all four layers",
        exposition.lines().count()
    );

    svc.shutdown().unwrap();
    println!("netflow_service OK in {:.2?}", t0.elapsed());
}
