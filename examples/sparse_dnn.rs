//! The §V.C / Fig. 8 scenario: sparse DNN inference as a linear system
//! oscillating between the `+.×` and `max.+` semirings, validated
//! against a dense baseline and timed — driven through [`dnn::DnnCtx`]
//! so every layer lands in the kernel metrics/trace registries.
//!
//! ```sh
//! cargo run --release --example sparse_dnn
//! ```

use std::time::Instant;

use dnn::infer::{categories, equivalent, infer_dense};
use dnn::input::sparse_batch;
use dnn::radix::{radix_net, RadixNetParams};
use dnn::DnnCtx;
use hypersparse::DenseMat;
use semiring::PlusTimes;

fn main() {
    let p = RadixNetParams {
        n_neurons: 1024,
        fanin: 32,
        depth: 12,
        bias: -0.05,
    };
    let net = radix_net(p, 7);
    println!(
        "RadiX-Net: {} neurons × {} layers, {} weights ({:.2}% dense)",
        p.n_neurons,
        p.depth,
        net.n_weights(),
        100.0 * net.density()
    );

    let batch = 64;
    let y0 = sparse_batch(batch, p.n_neurons, 0.2, 99);
    println!("batch: {} samples, {} active features", batch, y0.nnz());

    // The engineering formulation: one fused mxm+bias+ReLU+prune kernel
    // per layer, scratch reused across layers by the driver.
    let driver = DnnCtx::new();
    let t = Instant::now();
    let fused = driver.infer(&net, &y0);
    let t_fused = t.elapsed();

    // The paper's S₁/S₂ oscillation, scalar-for-scalar through the
    // semiring objects.
    let t = Instant::now();
    let pair = driver.infer_two_semiring(&net, &y0);
    let t_pair = t.elapsed();
    assert_eq!(
        fused, pair,
        "Y_{{k+1}} = Y_k W_k ⊗ b_k ⊕ 0 must match ReLU(YW+b)"
    );

    // Dense baseline.
    let dense_in = DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new());
    let t = Instant::now();
    let dense = infer_dense(&net, &dense_in);
    let t_dense = t.elapsed();
    assert!(equivalent(&fused, &dense, 1e-9), "sparse ≠ dense!");

    println!(
        "output activations: {} stored ({:.2}% of batch × N)",
        fused.nnz(),
        100.0 * fused.nnz() as f64 / (batch * p.n_neurons) as f64
    );
    println!("fused sparse      : {t_fused:>10.3?}");
    println!("two-semiring (S₁/S₂): {t_pair:>8.3?}");
    println!("dense baseline    : {t_dense:>10.3?}");

    let cats = categories(&fused);
    println!(
        "sample categories (first 5): {:?}",
        cats.iter().take(5).collect::<Vec<_>>()
    );

    // Per-layer observability: both inferences above ran on this
    // driver's registries.
    println!("\nkernel metrics (Prometheus exposition):");
    for line in driver.render_prometheus().lines() {
        if line.contains("kernel_calls_total") {
            println!("  {line}");
        }
    }

    println!("sparse_dnn OK — all three formulations agree");
}
