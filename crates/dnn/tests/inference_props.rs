//! Property-based equivalence of the three inference formulations:
//! fused sparse ≡ two-semiring oscillation ≡ dense baseline, on random
//! RadiX-Net and unstructured networks with random sparse batches.

use dnn::infer::{categories, equivalent, infer_dense, infer_fused, infer_two_semiring};
use dnn::input::sparse_batch;
use dnn::radix::{radix_net, random_net, RadixNetParams};
use hypersparse::DenseMat;
use proptest::prelude::*;
use semiring::PlusTimes;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_three_formulations_agree_on_radix_nets(
        seed in 0u64..1000,
        fanin_pow in 1u32..4,
        depth in 1usize..8,
        density in 1u32..8,
    ) {
        let n = 64u64;
        let net = radix_net(
            RadixNetParams {
                n_neurons: n,
                fanin: 1 << fanin_pow,
                depth,
                bias: -0.1,
            },
            seed,
        );
        let y0 = sparse_batch(4, n, density as f64 / 10.0, seed ^ 0xBEEF);

        let fused = infer_fused(&net, &y0);
        let pair = infer_two_semiring(&net, &y0);
        prop_assert_eq!(&fused, &pair);

        let dense = infer_dense(&net, &DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new()));
        prop_assert!(equivalent(&fused, &dense, 1e-9));
    }

    #[test]
    fn all_three_formulations_agree_on_random_nets(
        seed in 0u64..1000,
        nnz in 50usize..400,
        depth in 1usize..6,
    ) {
        let n = 48u64;
        let net = random_net(n, nnz, depth, -0.05, seed);
        let y0 = sparse_batch(3, n, 0.25, seed ^ 0xF00D);

        let fused = infer_fused(&net, &y0);
        let pair = infer_two_semiring(&net, &y0);
        prop_assert_eq!(&fused, &pair);

        let dense = infer_dense(&net, &DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new()));
        prop_assert!(equivalent(&fused, &dense, 1e-9));
    }

    #[test]
    fn categories_are_stable_across_formulations(seed in 0u64..200) {
        let n = 64u64;
        let net = radix_net(
            RadixNetParams { n_neurons: n, fanin: 8, depth: 4, bias: -0.1 },
            seed,
        );
        let y0 = sparse_batch(6, n, 0.2, seed);
        prop_assert_eq!(
            categories(&infer_fused(&net, &y0)),
            categories(&infer_two_semiring(&net, &y0))
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Satellite: the fused kernel's deterministic row sharding must make
    // inference bit-identical at every thread count, and the fused and
    // two-semiring paths must agree under each of those counts too.
    #[test]
    fn inference_is_thread_invariant_on_radix_nets(
        seed in 0u64..500,
        depth in 2usize..8,
    ) {
        let n = 128u64;
        let net = radix_net(
            RadixNetParams { n_neurons: n, fanin: 4, depth, bias: -0.2 },
            seed,
        );
        let y0 = sparse_batch(8, n, 0.3, seed ^ 0xD00D);

        let single = dnn::DnnCtx::with_threads(1);
        let fused_1 = single.infer(&net, &y0);
        let pair_1 = single.infer_two_semiring(&net, &y0);
        prop_assert_eq!(&fused_1, &pair_1);

        for threads in [2usize, 4] {
            let driver = dnn::DnnCtx::with_threads(threads);
            let fused_t = driver.infer(&net, &y0);
            // Bit-identical: Dcsr equality is exact on values.
            prop_assert_eq!(&fused_t, &fused_1, "fused @ {} threads", threads);
            let pair_t = driver.infer_two_semiring(&net, &y0);
            prop_assert_eq!(&pair_t, &pair_1, "two-semiring @ {} threads", threads);
        }

        let dense = infer_dense(&net, &DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new()));
        prop_assert!(equivalent(&fused_1, &dense, 1e-9));
    }
}
