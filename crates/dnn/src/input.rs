//! Synthetic input batches for inference benchmarks.

use hypersparse::{Coo, Dcsr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

/// A sparse `batch × n` activation matrix with approximately
/// `density · n` active features per sample, values in `(0, 1]`.
pub fn sparse_batch(batch: u64, n: u64, density: f64, seed: u64) -> Dcsr<f64> {
    assert!((0.0..=1.0).contains(&density), "density in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row = ((n as f64 * density).ceil() as u64).clamp(1, n);
    let mut c = Coo::new(batch, n);
    for r in 0..batch {
        let mut seen = std::collections::HashSet::new();
        while (seen.len() as u64) < per_row {
            let j = rng.gen_range(0..n);
            if seen.insert(j) {
                c.push(r, j, rng.gen::<f64>().max(f64::MIN_POSITIVE));
            }
        }
    }
    c.build_dcsr(PlusTimes::<f64>::new())
}

/// "Categorical" batch: each sample activates one contiguous block of
/// features (a crude stand-in for MNIST-style structured inputs).
pub fn block_batch(batch: u64, n: u64, block: u64, seed: u64) -> Dcsr<f64> {
    assert!(block <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Coo::new(batch, n);
    for r in 0..batch {
        let start = rng.gen_range(0..n - block + 1);
        for j in start..start + block {
            c.push(r, j, 1.0);
        }
    }
    c.build_dcsr(PlusTimes::<f64>::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_respected() {
        let y = sparse_batch(10, 100, 0.1, 1);
        assert_eq!(y.nnz(), 10 * 10);
        assert_eq!(y.n_nonempty_rows(), 10);
    }

    #[test]
    fn deterministic() {
        assert_eq!(sparse_batch(4, 32, 0.2, 9), sparse_batch(4, 32, 0.2, 9));
        assert_ne!(sparse_batch(4, 32, 0.2, 9), sparse_batch(4, 32, 0.2, 10));
    }

    #[test]
    fn blocks_are_contiguous() {
        let y = block_batch(5, 64, 8, 2);
        for (_, cols, _) in y.iter_rows() {
            assert_eq!(cols.len(), 8);
            assert_eq!(cols[7] - cols[0], 7);
        }
    }

    #[test]
    fn values_never_zero() {
        let y = sparse_batch(20, 50, 0.3, 3);
        assert!(y.iter().all(|(_, _, &v)| v > 0.0));
    }
}
