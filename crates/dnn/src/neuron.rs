//! The 1955 network element of Fig. 7 (Clark & Farley).
//!
//! The paper reproduces the original weighted-sum neuron diagram: element
//! `j` fires when the weighted sum of incoming activity crosses a
//! threshold, and weights adapt toward co-active inputs. This module
//! implements that unit literally — it is the ancestor of the §V.C ReLU
//! layer, and its weighted sum is already the `S₁` half of the paper's
//! semiring pair.

/// A Clark–Farley network element: incoming weights and a firing
/// threshold.
#[derive(Clone, Debug)]
pub struct Neuron {
    /// Incoming connection weights `w_ij`.
    pub weights: Vec<f64>,
    /// Firing threshold `θ`.
    pub threshold: f64,
}

impl Neuron {
    /// A neuron with the given weights and threshold.
    pub fn new(weights: Vec<f64>, threshold: f64) -> Self {
        Neuron { weights, threshold }
    }

    /// The weighted input sum `Σ_i w_i x_i` — one `+.×` row product.
    pub fn net_input(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len());
        self.weights.iter().zip(x).map(|(w, xi)| w * xi).sum()
    }

    /// `true` if the element fires on input `x`.
    pub fn fires(&self, x: &[f64]) -> bool {
        self.net_input(x) >= self.threshold
    }

    /// One step of the 1955 adaptation rule: weights of co-active inputs
    /// grow by `rate` when the element fires (a Hebbian update).
    pub fn adapt(&mut self, x: &[f64], rate: f64) {
        if self.fires(x) {
            for (w, xi) in self.weights.iter_mut().zip(x) {
                *w += rate * xi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_sum_and_threshold() {
        let n = Neuron::new(vec![0.5, -0.25, 1.0], 0.6);
        assert!((n.net_input(&[1.0, 2.0, 0.5]) - 0.5).abs() < 1e-12);
        assert!(!n.fires(&[1.0, 2.0, 0.5]));
        assert!(n.fires(&[1.0, 0.0, 0.5]));
    }

    #[test]
    fn hebbian_adaptation_strengthens_active_paths() {
        let mut n = Neuron::new(vec![0.5, 0.5], 0.4);
        let x = [1.0, 0.0];
        let before = n.weights[0];
        n.adapt(&x, 0.1);
        assert!(n.weights[0] > before); // active input strengthened
        assert_eq!(n.weights[1], 0.5); // inactive unchanged
    }

    #[test]
    fn no_adaptation_below_threshold() {
        let mut n = Neuron::new(vec![0.1], 1.0);
        n.adapt(&[1.0], 0.1);
        assert_eq!(n.weights[0], 0.1);
    }
}
