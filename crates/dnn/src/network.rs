//! Sparse DNN model: hypersparse weight layers + per-layer biases.

use std::fmt;

use hypersparse::Dcsr;

/// Why a [`SparseDnn`] could not be assembled.
///
/// [`SparseDnn::new`] panics with these messages; [`SparseDnn::try_new`]
/// returns them, so a serving layer loading untrusted model files can
/// reject a bad network without unwinding.
#[derive(Clone, Debug, PartialEq)]
pub enum DnnError {
    /// `layers` and `biases` disagree on the network depth.
    BiasCount {
        /// Number of weight layers supplied.
        layers: usize,
        /// Number of biases supplied.
        biases: usize,
    },
    /// A weight matrix is not `n_neurons × n_neurons`.
    LayerShape {
        /// Which layer failed the check.
        layer: usize,
        /// Its actual `(nrows, ncols)`.
        got: (u64, u64),
        /// The required square width.
        n_neurons: u64,
    },
    /// A bias is positive, which breaks the sparse formulation: a neuron
    /// with *no* incoming activation would read `relu(0 + b) = b > 0` in
    /// the dense semantics, but sparse kernels never evaluate absent
    /// entries, so that contribution is silently dropped. The RadiX-Net
    /// invariant (see [`crate::radix`]) is `bias ≤ 0`; positive
    /// per-neuron biases need the explicit `B = b|Y𝟙|₀` construction in
    /// [`crate::bias`] instead.
    PositiveBias {
        /// Which layer carries the offending bias.
        layer: usize,
        /// The bias value.
        bias: f64,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::BiasCount { layers, biases } => {
                write!(f, "one bias per layer: {layers} layers, {biases} biases")
            }
            DnnError::LayerShape {
                layer,
                got,
                n_neurons,
            } => write!(
                f,
                "layer {layer} dimension mismatch: {}×{}, want {n_neurons}×{n_neurons}",
                got.0, got.1
            ),
            DnnError::PositiveBias { layer, bias } => write!(
                f,
                "layer {layer} bias {bias} > 0 breaks sparse/dense equivalence"
            ),
        }
    }
}

impl std::error::Error for DnnError {}

/// An `L`-layer sparse feed-forward network. Uses the graph convention
/// of §V.C: `W(i, j) ≠ 0` connects neuron `i` to neuron `j`, activations
/// are *row* vectors, and inference is left-multiplication `Y W`.
#[derive(Clone, Debug)]
pub struct SparseDnn {
    /// Neurons per layer (all layers equal width, as in the Challenge).
    pub n_neurons: u64,
    /// Weight matrices, one per layer (`n_neurons × n_neurons`).
    pub layers: Vec<Dcsr<f64>>,
    /// Per-layer scalar bias, applied to every active neuron.
    ///
    /// Must be ≤ 0: a non-positive bias keeps the sparse formulation
    /// exact, because an output with *no* incoming activation would get
    /// `relu(0 + b) = 0` — exactly what "not stored" means. (The Sparse
    /// DNN Challenge biases are negative for the same reason.)
    pub biases: Vec<f64>,
}

impl SparseDnn {
    /// Assemble a network, checking layer conformance and bias signs.
    /// Panics on a bad network; [`SparseDnn::try_new`] is the fallible
    /// twin with the same checks.
    pub fn new(n_neurons: u64, layers: Vec<Dcsr<f64>>, biases: Vec<f64>) -> Self {
        Self::try_new(n_neurons, layers, biases).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assemble a network, returning a typed [`DnnError`] instead of
    /// panicking when the layer count, a layer shape, or a bias sign is
    /// wrong. `bias ≤ 0` is a *validity* condition, not a convention:
    /// see [`DnnError::PositiveBias`].
    pub fn try_new(
        n_neurons: u64,
        layers: Vec<Dcsr<f64>>,
        biases: Vec<f64>,
    ) -> Result<Self, DnnError> {
        if layers.len() != biases.len() {
            return Err(DnnError::BiasCount {
                layers: layers.len(),
                biases: biases.len(),
            });
        }
        for (i, w) in layers.iter().enumerate() {
            if (w.nrows(), w.ncols()) != (n_neurons, n_neurons) {
                return Err(DnnError::LayerShape {
                    layer: i,
                    got: (w.nrows(), w.ncols()),
                    n_neurons,
                });
            }
        }
        for (i, b) in biases.iter().enumerate() {
            if *b > 0.0 {
                return Err(DnnError::PositiveBias { layer: i, bias: *b });
            }
        }
        Ok(SparseDnn {
            n_neurons,
            layers,
            biases,
        })
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total stored weights across layers.
    pub fn n_weights(&self) -> usize {
        self.layers.iter().map(|w| w.nnz()).sum()
    }

    /// Connection density: stored weights / (layers × N²).
    pub fn density(&self) -> f64 {
        let cells = self.depth() as f64 * (self.n_neurons as f64).powi(2);
        self.n_weights() as f64 / cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn w(n: u64, edges: &[(u64, u64, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(edges.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn construction_and_stats() {
        let net = SparseDnn::new(
            4,
            vec![w(4, &[(0, 1, 1.0), (1, 2, 1.0)]), w(4, &[(2, 3, 1.0)])],
            vec![-0.5, 0.0],
        );
        assert_eq!(net.depth(), 2);
        assert_eq!(net.n_weights(), 3);
        assert!((net.density() - 3.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bias")]
    fn positive_bias_rejected() {
        SparseDnn::new(4, vec![w(4, &[(0, 1, 1.0)])], vec![0.1]);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let e = SparseDnn::try_new(4, vec![w(4, &[(0, 1, 1.0)])], vec![0.1]).unwrap_err();
        assert_eq!(
            e,
            DnnError::PositiveBias {
                layer: 0,
                bias: 0.1
            }
        );
        assert!(e.to_string().contains("sparse/dense equivalence"), "{e}");

        let e = SparseDnn::try_new(4, vec![w(4, &[])], vec![-0.1, -0.2]).unwrap_err();
        assert_eq!(
            e,
            DnnError::BiasCount {
                layers: 1,
                biases: 2
            }
        );

        let e = SparseDnn::try_new(3, vec![w(4, &[])], vec![-0.1]).unwrap_err();
        assert_eq!(
            e,
            DnnError::LayerShape {
                layer: 0,
                got: (4, 4),
                n_neurons: 3
            }
        );
        assert!(e.to_string().contains("dimension mismatch"), "{e}");

        // Boundary: bias = 0.0 is valid (relu(0 + 0) = 0 = "not stored").
        assert!(SparseDnn::try_new(4, vec![w(4, &[(0, 1, 1.0)])], vec![0.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_layer_shape_rejected() {
        SparseDnn::new(4, vec![w(4, &[(0, 1, 1.0)])], vec![0.0]);
        let bad = {
            let mut c = Coo::new(3, 3);
            c.push(0, 1, 1.0);
            c.build_dcsr(PlusTimes::<f64>::new())
        };
        SparseDnn::new(4, vec![bad], vec![0.0]);
    }
}
