//! Sparse DNN model: hypersparse weight layers + per-layer biases.

use hypersparse::Dcsr;

/// An `L`-layer sparse feed-forward network. Uses the graph convention
/// of §V.C: `W(i, j) ≠ 0` connects neuron `i` to neuron `j`, activations
/// are *row* vectors, and inference is left-multiplication `Y W`.
#[derive(Clone, Debug)]
pub struct SparseDnn {
    /// Neurons per layer (all layers equal width, as in the Challenge).
    pub n_neurons: u64,
    /// Weight matrices, one per layer (`n_neurons × n_neurons`).
    pub layers: Vec<Dcsr<f64>>,
    /// Per-layer scalar bias, applied to every active neuron.
    ///
    /// Must be ≤ 0: a non-positive bias keeps the sparse formulation
    /// exact, because an output with *no* incoming activation would get
    /// `relu(0 + b) = 0` — exactly what "not stored" means. (The Sparse
    /// DNN Challenge biases are negative for the same reason.)
    pub biases: Vec<f64>,
}

impl SparseDnn {
    /// Assemble a network, checking layer conformance and bias signs.
    pub fn new(n_neurons: u64, layers: Vec<Dcsr<f64>>, biases: Vec<f64>) -> Self {
        assert_eq!(layers.len(), biases.len(), "one bias per layer");
        for (i, w) in layers.iter().enumerate() {
            assert_eq!(
                (w.nrows(), w.ncols()),
                (n_neurons, n_neurons),
                "layer {i} dimension mismatch"
            );
        }
        for (i, b) in biases.iter().enumerate() {
            assert!(
                *b <= 0.0,
                "layer {i} bias {b} > 0 breaks sparse/dense equivalence"
            );
        }
        SparseDnn {
            n_neurons,
            layers,
            biases,
        }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total stored weights across layers.
    pub fn n_weights(&self) -> usize {
        self.layers.iter().map(|w| w.nnz()).sum()
    }

    /// Connection density: stored weights / (layers × N²).
    pub fn density(&self) -> f64 {
        let cells = self.depth() as f64 * (self.n_neurons as f64).powi(2);
        self.n_weights() as f64 / cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn w(n: u64, edges: &[(u64, u64, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(edges.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn construction_and_stats() {
        let net = SparseDnn::new(
            4,
            vec![w(4, &[(0, 1, 1.0), (1, 2, 1.0)]), w(4, &[(2, 3, 1.0)])],
            vec![-0.5, 0.0],
        );
        assert_eq!(net.depth(), 2);
        assert_eq!(net.n_weights(), 3);
        assert!((net.density() - 3.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bias")]
    fn positive_bias_rejected() {
        SparseDnn::new(4, vec![w(4, &[(0, 1, 1.0)])], vec![0.1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_layer_shape_rejected() {
        SparseDnn::new(4, vec![w(4, &[(0, 1, 1.0)])], vec![0.0]);
        let bad = {
            let mut c = Coo::new(3, 3);
            c.push(0, 1, 1.0);
            c.build_dcsr(PlusTimes::<f64>::new())
        };
        SparseDnn::new(4, vec![bad], vec![0.0]);
    }
}
