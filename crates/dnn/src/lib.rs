//! Sparse deep neural network inference — §V.C and Fig. 8.
//!
//! The ReLU inference step `y_{ℓ+1} = h(y_ℓ W_ℓ + b_ℓ)`,
//! `h(y) = max(y, 0)`, looks nonlinear — but the paper rewrites it as a
//! *linear system oscillating over two semirings*:
//!
//! ```text
//! Y_{k+1} = Y_k W_k ⊗ b_k ⊕ 0
//! ```
//!
//! where `Y_k W_k` is computed in `S₁ = (ℝ, +, ×, 0, 1)` (correlation of
//! inputs) and the `⊗ b_k ⊕ 0` bias-and-rectify step in
//! `S₂ = (ℝ ∪ −∞, max, +, −∞, 0)` (optimal-path selection). This crate
//! implements both readings and a dense baseline, proves them pointwise
//! equal, and generates the synthetic RadiX-Net-style networks the
//! Sparse DNN Challenge popularized:
//!
//! * [`network::SparseDnn`] — layers of hypersparse weight matrices with
//!   per-layer biases;
//! * [`radix::radix_net`] — fixed-fan-in, stride-permuted synthetic
//!   topology (every neuron has exactly `fanin` inputs);
//! * [`infer`] — `infer_fused` (one fused SpGEMM+prune kernel per
//!   layer), `infer_two_semiring` (the literal S₁/S₂ oscillation), and
//!   `infer_dense` (row-major `Vec` baseline) — each sparse path in
//!   ctx-explicit, ctx-free, and fallible `try_*` spellings;
//! * [`ctx::DnnCtx`] — the serving driver: one
//!   [`hypersparse::OpCtx`] owned for the model's lifetime, so SpGEMM
//!   scratch pools across layers *and* batches, with per-layer
//!   `dnn_layer` metrics/trace spans and Prometheus exposition;
//! * [`input`] — sparse batch generators;
//! * [`bias`] — the paper's explicit bias replication `B = b|Y𝟙|₀`,
//!   supporting per-neuron (even positive) bias vectors;
//! * [`neuron`] — the 1955 weighted-sum neuron of Fig. 7, for
//!   completeness of the figure inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod ctx;
pub mod infer;
pub mod input;
pub mod network;
pub mod neuron;
pub mod radix;

pub use ctx::DnnCtx;
pub use infer::{
    densify_weights, infer_dense, infer_dense_full, infer_fused, infer_fused_ctx,
    infer_two_semiring, infer_two_semiring_ctx, try_infer_fused, try_infer_fused_ctx,
    try_infer_two_semiring, try_infer_two_semiring_ctx,
};
pub use network::{DnnError, SparseDnn};
pub use radix::{radix_net, RadixNetParams};
