//! RadiX-Net-style synthetic sparse DNN topologies.
//!
//! The Sparse DNN Challenge evaluates on RadiX-Net networks: layered,
//! equal-width, *fixed fan-in* topologies built from mixed-radix butterfly
//! permutations, so every neuron participates and paths mix across the
//! whole width. This generator reproduces the family's invariants —
//! exactly `fanin` inputs per neuron, a layer-varying stride permutation
//! for mixing, seeded weights — without the original's TensorFlow
//! tooling (substitution documented in DESIGN.md).

use hypersparse::{Coo, Dcsr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

use crate::network::SparseDnn;

/// RadiX-Net generator parameters.
#[derive(Copy, Clone, Debug)]
pub struct RadixNetParams {
    /// Neurons per layer.
    pub n_neurons: u64,
    /// Incoming connections per neuron (the Challenge uses 32).
    pub fanin: u64,
    /// Number of layers.
    pub depth: usize,
    /// Per-layer bias (must be ≤ 0; the Challenge uses negative biases
    /// matched to the fan-in).
    pub bias: f64,
}

/// Weight gain: weights are uniform in `±gain·√(6/fanin)` (signed
/// He-uniform). Around 2.0, negative biases carve out a *sustained*
/// sparse activation regime instead of the die-out/saturate knife edge
/// of all-positive weights.
pub const WEIGHT_GAIN: f64 = 2.0;

impl Default for RadixNetParams {
    fn default() -> Self {
        RadixNetParams {
            n_neurons: 1024,
            fanin: 32,
            depth: 12,
            bias: -0.3,
        }
    }
}

/// Generate a RadiX-Net-style [`SparseDnn`].
///
/// Layer ℓ connects input neuron `i` to outputs
/// `(i · stride_ℓ + k) mod N` for `k < fanin`, where `stride_ℓ` is an
/// odd (hence invertible mod 2^k widths) per-layer multiplier — a
/// butterfly-like permutation guaranteeing fixed fan-in *and* fan-out
/// mixing. Weights are signed He-uniform (`±WEIGHT_GAIN·√(6/fanin)`):
/// ReLU prunes the negative half, and the bias then tunes the
/// steady-state activation sparsity (≈2% at bias −0.4, ≈50% at −0.05
/// for fanin 32).
pub fn radix_net(p: RadixNetParams, seed: u64) -> SparseDnn {
    assert!(p.fanin <= p.n_neurons, "fanin exceeds width");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = p.n_neurons;
    let mut layers = Vec::with_capacity(p.depth);
    for l in 0..p.depth {
        let stride = ((2 * (l as u64) + 3) % n) | 1; // odd, layer-varying
        let a = WEIGHT_GAIN * (6.0 / p.fanin as f64).sqrt();
        let mut c = Coo::new(n, n);
        for i in 0..n {
            let base = (i * stride) % n;
            for k in 0..p.fanin {
                let j = (base + k) % n;
                let mut w = 0.0;
                while w == 0.0 {
                    // signed, never exactly zero (a zero weight would be
                    // dropped and break the fixed-fan-in invariant)
                    w = rng.gen_range(-a..a);
                }
                c.push(i, j, w);
            }
        }
        layers.push(c.build_dcsr(PlusTimes::<f64>::new()));
    }
    SparseDnn::new(n, layers, vec![p.bias; p.depth])
}

/// A uniformly random sparse layer stack (no fan-in guarantee) — the
/// "unstructured" contrast used by ablations.
pub fn random_net(
    n_neurons: u64,
    nnz_per_layer: usize,
    depth: usize,
    bias: f64,
    seed: u64,
) -> SparseDnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers = (0..depth)
        .map(|_| {
            let mut c = Coo::new(n_neurons, n_neurons);
            for _ in 0..nnz_per_layer {
                c.push(
                    rng.gen_range(0..n_neurons),
                    rng.gen_range(0..n_neurons),
                    rng.gen::<f64>() * 0.1,
                );
            }
            c.build_dcsr(PlusTimes::<f64>::new())
        })
        .collect();
    SparseDnn::new(n_neurons, layers, vec![bias; depth])
}

/// Dense layer stack (every connection present) — the Fig. 8 baseline's
/// model as a [`SparseDnn`], for apples-to-apples correctness checks.
pub fn dense_net(n_neurons: u64, depth: usize, bias: f64, seed: u64) -> SparseDnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers = (0..depth)
        .map(|_| {
            let mut c = Coo::new(n_neurons, n_neurons);
            for i in 0..n_neurons {
                for j in 0..n_neurons {
                    c.push(i, j, rng.gen::<f64>() / n_neurons as f64);
                }
            }
            c.build_dcsr(PlusTimes::<f64>::new())
        })
        .collect();
    SparseDnn::new(n_neurons, layers, vec![bias; depth])
}

/// Extract a [`Dcsr`] copy of one layer (bench helper).
pub fn layer(net: &SparseDnn, l: usize) -> &Dcsr<f64> {
    &net.layers[l]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_fanin_everywhere() {
        let p = RadixNetParams {
            n_neurons: 64,
            fanin: 8,
            depth: 4,
            bias: -0.1,
        };
        let net = radix_net(p, 5);
        for w in &net.layers {
            // Every row has exactly `fanin` outputs…
            assert_eq!(w.n_nonempty_rows(), 64);
            for (_, cols, _) in w.iter_rows() {
                assert_eq!(cols.len(), 8);
            }
            // …and column sums show every neuron receives input.
            let mut indeg = vec![0u32; 64];
            for (_, c, _) in w.iter() {
                indeg[c as usize] += 1;
            }
            assert!(indeg.iter().all(|&d| d > 0));
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let p = RadixNetParams::default();
        let a = radix_net(p, 1);
        let b = radix_net(p, 1);
        assert_eq!(a.layers[0], b.layers[0]);
        let c = radix_net(p, 2);
        assert_ne!(a.layers[0], c.layers[0]);
    }

    #[test]
    fn density_matches_fanin() {
        let p = RadixNetParams {
            n_neurons: 128,
            fanin: 16,
            depth: 3,
            bias: -0.1,
        };
        let net = radix_net(p, 3);
        assert!((net.density() - 16.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn dense_net_is_full() {
        let net = dense_net(8, 2, 0.0, 1);
        assert_eq!(net.n_weights(), 2 * 64);
    }
}
