//! Three readings of the same inference — proven pointwise equal.
//!
//! * [`infer_fused`]: the engineering formulation — one fused
//!   SpGEMM-with-epilogue per layer (`mxm_apply_prune_ctx`), the
//!   `max(x + b, 0)` prune running at accumulator-drain time so the
//!   intermediate product `Z = Y W` is never materialized;
//! * [`infer_two_semiring`]: the paper's §V.C formulation — `Y W` in
//!   `S₁ = +.×`, then literally `(· ⊗ b) ⊕ 0` in `S₂ = max.+`, every
//!   scalar step going through the semiring objects;
//! * [`infer_dense`]: a row-major `Vec<f64>` baseline with no sparse
//!   machinery at all.
//!
//! Every sparse path runs on the execution-context stack: the `*_ctx`
//! entry points thread one [`OpCtx`] through all layers (SpGEMM scratch
//! is leased from its arena and reused layer to layer, parallelism
//! follows its thread cap, and each layer records a
//! [`Kernel::DnnLayer`] metrics row plus a trace span). The classic
//! names wrap the thread-local default context, and `try_*` twins
//! return [`OpError::DimensionMismatch`] instead of panicking on a
//! batch whose width disagrees with the network.
//!
//! Batches are `batch × neurons` matrices; activations stay hypersparse
//! between layers, which is where the Fig. 8 speedups come from.

use std::time::Instant;

use hypersparse::{ops, with_default_ctx, Dcsr, DenseMat, IndexType, Kernel, OpCtx, OpError};
use semiring::semilink::DnnSemiringPair;
use semiring::{FnOp, MaxPlus, PlusTimes, Semiring};

use crate::network::SparseDnn;

type S1 = PlusTimes<f64>;

/// Batch width must equal the network width for `Y W` to conform.
fn check_batch(op: &'static str, net: &SparseDnn, y0: &Dcsr<f64>) -> Result<(), OpError> {
    if y0.ncols() != net.n_neurons {
        return Err(OpError::DimensionMismatch {
            op,
            a: (y0.nrows(), y0.ncols()),
            b: (net.n_neurons, net.n_neurons),
            rule: "batch width mismatch",
        });
    }
    Ok(())
}

/// Fused sparse inference: `Y ← relu(Y W + b)` with one fused
/// SpGEMM+prune kernel per layer (thread-local default ctx).
pub fn infer_fused(net: &SparseDnn, y0: &Dcsr<f64>) -> Dcsr<f64> {
    with_default_ctx(|ctx| infer_fused_ctx(ctx, net, y0))
}

/// [`infer_fused`] through an explicit execution context: one [`OpCtx`]
/// drives every layer, so SpGEMM scratch leased for layer `k` is a pool
/// hit for layer `k+1`, and per-layer counters land on the context's
/// [`Kernel::DnnLayer`] metrics row.
pub fn infer_fused_ctx(ctx: &OpCtx, net: &SparseDnn, y0: &Dcsr<f64>) -> Dcsr<f64> {
    try_infer_fused_ctx(ctx, net, y0).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`infer_fused`] (thread-local default ctx).
pub fn try_infer_fused(net: &SparseDnn, y0: &Dcsr<f64>) -> Result<Dcsr<f64>, OpError> {
    with_default_ctx(|ctx| try_infer_fused_ctx(ctx, net, y0))
}

/// Fallible [`infer_fused_ctx`]: a batch whose width disagrees with the
/// network becomes an [`OpError::DimensionMismatch`] instead of a panic.
pub fn try_infer_fused_ctx(
    ctx: &OpCtx,
    net: &SparseDnn,
    y0: &Dcsr<f64>,
) -> Result<Dcsr<f64>, OpError> {
    check_batch("dnn_infer_fused", net, y0)?;
    // Narrow-index auto-selection (DESIGN.md §13): when the batch key
    // space fits 32-bit column ids — and therefore the square weight
    // layers do too — re-store activations once and each layer's weights
    // on the fly, and run the whole fused loop over `u32` ids. The
    // O(nnz) re-stores are linear passes; the SpGEMM inner loops they
    // feed stream half the index bytes per multiply.
    if let Some(mut y) = y0.to_index_width::<u32>() {
        for (k, (w, &b)) in net.layers.iter().zip(&net.biases).enumerate() {
            let w32 = w
                .to_index_width::<u32>()
                .expect("layer dims equal checked batch dims");
            y = fused_layer(ctx, k, y, &w32, b);
        }
        return Ok(y.to_index_width().expect("widening always fits"));
    }
    let mut y = y0.clone();
    for (k, (w, &b)) in net.layers.iter().zip(&net.biases).enumerate() {
        y = fused_layer(ctx, k, y, w, b);
    }
    Ok(y)
}

/// One fused layer step `relu(Y W + b)`, generic over the physical
/// index width so the narrow and wide inference loops share one body.
fn fused_layer<I: IndexType>(
    ctx: &OpCtx,
    k: usize,
    y: Dcsr<f64, I>,
    w: &Dcsr<f64, I>,
    b: f64,
) -> Dcsr<f64, I> {
    let _span = ctx.kernel_span(Kernel::DnnLayer, || {
        format!("layer {k}: {} act · {} wt", y.nnz(), w.nnz())
    });
    let start = Instant::now();
    let nnz_in = (y.nnz() + w.nnz()) as u64;
    // One pass: Z = Y W in S₁ with the bias+ReLU epilogue applied as
    // each accumulator drains; entries pruned to the S₁ zero never
    // reach the output. (⊗ counts land on the Mxm row.)
    let s1 = S1::new();
    let y = ops::mxm_apply_prune_ctx(ctx, &y, w, s1, FnOp(move |x: f64| (x + b).max(0.0)), s1);
    let bytes = (y.bytes() + w.bytes()) as u64;
    ctx.metrics().record(
        Kernel::DnnLayer,
        start.elapsed(),
        nnz_in,
        y.nnz() as u64,
        0,
        bytes,
    );
    y
}

/// The literal two-semiring oscillation of §V.C (thread-local default
/// ctx): `Y_{k+1} = Y_k W_k ⊗ b_k ⊕ 0`, with the product in `S₁` and
/// the bias/rectification in `S₂ = max.+` — every scalar operation
/// routed through the [`DnnSemiringPair`] object.
pub fn infer_two_semiring(net: &SparseDnn, y0: &Dcsr<f64>) -> Dcsr<f64> {
    with_default_ctx(|ctx| infer_two_semiring_ctx(ctx, net, y0))
}

/// [`infer_two_semiring`] through an explicit execution context.
pub fn infer_two_semiring_ctx(ctx: &OpCtx, net: &SparseDnn, y0: &Dcsr<f64>) -> Dcsr<f64> {
    try_infer_two_semiring_ctx(ctx, net, y0).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`infer_two_semiring`] (thread-local default ctx).
pub fn try_infer_two_semiring(net: &SparseDnn, y0: &Dcsr<f64>) -> Result<Dcsr<f64>, OpError> {
    with_default_ctx(|ctx| try_infer_two_semiring_ctx(ctx, net, y0))
}

/// Fallible [`infer_two_semiring_ctx`].
///
/// Unlike the fused path this keeps the two-pass structure the paper
/// writes (an `S₁` multiply, then the `S₂` bias/rectify as its own
/// kernel), but the rectify step goes through
/// [`ops::apply_prune_ctx`] with the **dropped-zero semiring explicit**:
/// the values are computed in `S₂ = max.+`, yet the prune must use the
/// `S₁` zero (`0.0`), *not* the `S₂` zero (`−∞`). `max(x + b, 0)` can
/// produce `0.0` but never `−∞`, so pruning by the S₂ zero would store
/// every rectified-to-silence neuron and the activations would densify
/// instead of staying hypersparse — `0.0` is what "carries no signal
/// into the next S₁ correlation" means, and the next multiply is in S₁.
pub fn try_infer_two_semiring_ctx(
    ctx: &OpCtx,
    net: &SparseDnn,
    y0: &Dcsr<f64>,
) -> Result<Dcsr<f64>, OpError> {
    check_batch("dnn_infer_two_semiring", net, y0)?;
    let pair = DnnSemiringPair::default();
    let s2: MaxPlus<f64> = pair.select;
    let mut y = y0.clone();
    for (k, (w, &b)) in net.layers.iter().zip(&net.biases).enumerate() {
        let _span = ctx.kernel_span(Kernel::DnnLayer, || {
            format!("layer {k}: {} act · {} wt", y.nnz(), w.nnz())
        });
        let start = Instant::now();
        let nnz_in = (y.nnz() + w.nnz()) as u64;
        // S₁: correlation.
        let z = ops::mxm_ctx(ctx, &y, w, pair.correlate);
        // S₂: (z ⊗ b) ⊕ 0 = max(z + b, 0), pruned against the S₁ zero.
        y = ops::apply_prune_ctx(
            ctx,
            &z,
            FnOp(move |x: f64| s2.add(s2.mul(x, b), 0.0)),
            pair.correlate,
        );
        let bytes = (y.bytes() + w.bytes()) as u64;
        ctx.metrics().record(
            Kernel::DnnLayer,
            start.elapsed(),
            nnz_in,
            y.nnz() as u64,
            0,
            bytes,
        );
    }
    Ok(y)
}

/// Dense baseline: full `batch × n` activation rows, no sparsity.
/// Weights are read from the same sparse layers (their absent entries
/// are true zeros), so results are comparable entry-for-entry.
pub fn infer_dense(net: &SparseDnn, y0: &DenseMat<f64>) -> DenseMat<f64> {
    assert_eq!(y0.ncols(), net.n_neurons, "batch width mismatch");
    let batch = y0.nrows();
    let n = net.n_neurons;
    let mut y: Vec<Vec<f64>> = (0..batch).map(|r| y0.row(r).to_vec()).collect();
    let mut z = vec![0.0f64; n as usize];
    for (w, &b) in net.layers.iter().zip(&net.biases) {
        for row in y.iter_mut() {
            z.iter_mut().for_each(|x| *x = 0.0);
            // z = row · W, exploiting W's row sparsity only (the
            // activation row is treated as fully dense).
            for (i, cols, vals) in w.iter_rows() {
                let a = row[i as usize];
                if a != 0.0 {
                    for (&j, wv) in cols.iter().zip(vals) {
                        z[j as usize] += a * wv;
                    }
                }
            }
            for (x, zv) in row.iter_mut().zip(&z) {
                *x = (zv + b).max(0.0);
            }
        }
    }
    let mut out = DenseMat::filled(batch, n, 0.0);
    for (r, row) in y.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v != 0.0 {
                out.set(r as u64, c as u64, v);
            }
        }
    }
    out
}

/// Fully dense GEMM baseline: weights are materialized as dense row-major
/// buffers (outside the timed region via [`densify_weights`]) and every
/// layer performs the full `batch × N × N` multiply-accumulate — the
/// TensorFlow-style comparator of the Sparse DNN Challenge, blind to both
/// weight and activation sparsity.
pub fn infer_dense_full(
    net: &SparseDnn,
    dense_weights: &[Vec<f64>],
    y0: &DenseMat<f64>,
) -> DenseMat<f64> {
    assert_eq!(y0.ncols(), net.n_neurons, "batch width mismatch");
    assert_eq!(dense_weights.len(), net.depth());
    let batch = y0.nrows() as usize;
    let n = net.n_neurons as usize;
    let mut y: Vec<f64> = (0..y0.nrows())
        .flat_map(|r| y0.row(r).iter().copied())
        .collect();
    let mut z = vec![0.0f64; batch * n];
    for (w, &b) in dense_weights.iter().zip(&net.biases) {
        z.iter_mut().for_each(|x| *x = 0.0);
        for r in 0..batch {
            let yrow = &y[r * n..(r + 1) * n];
            let zrow = &mut z[r * n..(r + 1) * n];
            for (i, &a) in yrow.iter().enumerate() {
                let wrow = &w[i * n..(i + 1) * n];
                for (zj, wj) in zrow.iter_mut().zip(wrow) {
                    *zj += a * wj;
                }
            }
        }
        for (yv, zv) in y.iter_mut().zip(&z) {
            *yv = (zv + b).max(0.0);
        }
    }
    let mut out = DenseMat::filled(y0.nrows(), net.n_neurons, 0.0);
    for r in 0..batch {
        for c in 0..n {
            let v = y[r * n + c];
            if v != 0.0 {
                out.set(r as u64, c as u64, v);
            }
        }
    }
    out
}

/// Materialize each layer's weights as a dense row-major buffer (the
/// untimed setup step for [`infer_dense_full`]).
pub fn densify_weights(net: &SparseDnn) -> Vec<Vec<f64>> {
    let n = net.n_neurons as usize;
    net.layers
        .iter()
        .map(|w| {
            let mut d = vec![0.0f64; n * n];
            for (i, j, v) in w.iter() {
                d[i as usize * n + j as usize] = *v;
            }
            d
        })
        .collect()
}

/// Category readout: argmax neuron per batch row (ties → lowest id).
pub fn categories(y: &Dcsr<f64>) -> Vec<(u64, u64)> {
    y.iter_rows()
        .map(|(r, cols, vals)| {
            let mut best = (cols[0], vals[0]);
            for (&c, &v) in cols.iter().zip(vals) {
                if v > best.1 {
                    best = (c, v);
                }
            }
            (r, best.0)
        })
        .collect()
}

/// Entry-for-entry comparison of sparse and dense activations.
pub fn equivalent(sparse: &Dcsr<f64>, dense: &DenseMat<f64>, tol: f64) -> bool {
    if sparse.nrows() != dense.nrows() || sparse.ncols() != dense.ncols() {
        return false;
    }
    let s1 = S1::new();
    let mut nnz_dense = 0usize;
    for r in 0..dense.nrows() {
        for c in 0..dense.ncols() {
            let dv = *dense.get(r, c);
            if !s1.is_zero(&dv) {
                nnz_dense += 1;
                match sparse.get(r, c) {
                    Some(sv) if (sv - dv).abs() <= tol * dv.abs().max(1.0) => {}
                    _ => return false,
                }
            }
        }
    }
    nnz_dense == sparse.nnz()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::sparse_batch;
    use crate::radix::{radix_net, RadixNetParams};
    use hypersparse::Coo;

    fn small_net() -> SparseDnn {
        radix_net(
            RadixNetParams {
                n_neurons: 64,
                fanin: 8,
                depth: 6,
                bias: -0.05,
            },
            42,
        )
    }

    #[test]
    fn hand_computed_single_layer() {
        // One neuron chain: y=2 through w=3 with b=-1 → relu(6-1)=5.
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 3.0);
        let w = c.build_dcsr(S1::new());
        let net = SparseDnn::new(2, vec![w], vec![-1.0]);
        let mut y = Coo::new(1, 2);
        y.push(0, 0, 2.0);
        let y0 = y.build_dcsr(S1::new());
        let out = infer_fused(&net, &y0);
        assert_eq!(out.get(0, 1), Some(&5.0));
        assert_eq!(out.nnz(), 1);
    }

    #[test]
    fn rectification_drops_weak_signals() {
        // relu(0.5 - 1.0) = 0 → entry vanishes from the sparse output.
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 0.5);
        let w = c.build_dcsr(S1::new());
        let net = SparseDnn::new(2, vec![w], vec![-1.0]);
        let mut y = Coo::new(1, 2);
        y.push(0, 0, 1.0);
        let out = infer_fused(&net, &y.build_dcsr(S1::new()));
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn two_semiring_equals_fused() {
        let net = small_net();
        let y0 = sparse_batch(8, 64, 0.2, 7);
        let a = infer_fused(&net, &y0);
        let b = infer_two_semiring(&net, &y0);
        assert_eq!(a, b, "S1/S2 oscillation must equal the fused kernel");
    }

    #[test]
    fn narrow_auto_selection_matches_wide_loop() {
        // 64 neurons < 2³², so the public entry takes the u32 loop;
        // drive the shared layer body at wide indices and compare.
        let net = small_net();
        let y0 = sparse_batch(8, 64, 0.2, 99);
        let auto = infer_fused(&net, &y0);
        let wide = with_default_ctx(|ctx| {
            let mut y = y0.clone();
            for (k, (w, &b)) in net.layers.iter().zip(&net.biases).enumerate() {
                y = fused_layer(ctx, k, y, w, b);
            }
            y
        });
        assert_eq!(auto, wide, "u32 layer loop must be bit-identical to wide");
    }

    #[test]
    fn sparse_equals_dense_baseline() {
        let net = small_net();
        let y0 = sparse_batch(8, 64, 0.2, 8);
        let sparse = infer_fused(&net, &y0);
        let dense_in = DenseMat::from_dcsr(&y0, S1::new());
        let dense = infer_dense(&net, &dense_in);
        assert!(equivalent(&sparse, &dense, 1e-9));
    }

    #[test]
    fn full_dense_gemm_matches_sparse() {
        let net = small_net();
        let y0 = sparse_batch(4, 64, 0.25, 21);
        let sparse = infer_fused(&net, &y0);
        let dense_in = DenseMat::from_dcsr(&y0, S1::new());
        let dw = densify_weights(&net);
        let full = infer_dense_full(&net, &dw, &dense_in);
        assert!(equivalent(&sparse, &full, 1e-9));
    }

    #[test]
    fn densify_weights_round_trips() {
        let net = small_net();
        let dw = densify_weights(&net);
        let n = net.n_neurons as usize;
        for (w, d) in net.layers.iter().zip(&dw) {
            assert_eq!(d.len(), n * n);
            for (i, j, v) in w.iter() {
                assert_eq!(d[i as usize * n + j as usize], *v);
            }
            let dense_nnz = d.iter().filter(|x| **x != 0.0).count();
            assert_eq!(dense_nnz, w.nnz());
        }
    }

    #[test]
    fn categories_pick_argmax() {
        let mut c = Coo::new(2, 4);
        c.extend([(0, 1, 0.5), (0, 2, 0.9), (1, 3, 0.1)]);
        let y = c.build_dcsr(S1::new());
        assert_eq!(categories(&y), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn deep_network_stays_sparse() {
        let net = radix_net(
            RadixNetParams {
                n_neurons: 256,
                fanin: 8,
                depth: 20,
                bias: -0.2,
            },
            11,
        );
        let y0 = sparse_batch(4, 256, 0.05, 12);
        let out = infer_fused(&net, &y0);
        // The negative bias keeps activations from densifying completely.
        assert!(out.nnz() < 4 * 256, "output fully dense: {}", out.nnz());
    }
}
