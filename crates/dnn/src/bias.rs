//! The paper's bias replication `B_ℓ = b_ℓ |Y_ℓ 𝟙|₀`, literally.
//!
//! §V.C defines batch inference as `Y_{ℓ+1} = h(Y_ℓ W_ℓ + B_ℓ)` with the
//! bias *matrix* `B_ℓ` built by replicating the bias row-vector `b_ℓ`
//! into every **active** row of the batch: `|Y_ℓ 𝟙|₀` is the 0/1 column
//! vector marking rows with any activation, and `B_ℓ` is its outer
//! product with `b_ℓ`. This module implements that construction exactly
//! and uses it for *per-neuron* bias vectors — including positive
//! biases, which the scalar fused path cannot support (a positive bias
//! would activate neurons with no incoming signal, which "not stored"
//! cannot express; `B = b|Y𝟙|₀` handles it because the bias lands on
//! every column of every active row).

use hypersparse::{Coo, Dcsr, Ix, SparseVec};
use semiring::{FnOp, PlusMonoid, PlusTimes, ZeroNorm};

type S = PlusTimes<f64>;

fn s() -> S {
    S::new()
}

/// `|Y 𝟙|₀` — the 0/1 indicator of rows with at least one activation
/// (`Y 𝟙` is a row reduction; the zero-norm maps sums to 1).
pub fn active_rows(y: &Dcsr<f64>) -> SparseVec<f64> {
    let entries: Vec<(Ix, f64)> = y.iter_rows().map(|(r, _, _)| (r, 1.0)).collect();
    SparseVec::from_entries(y.nrows(), entries, s())
}

/// `B = b |Y 𝟙|₀` — the bias matrix: row `r` equals the bias vector `b`
/// whenever batch row `r` is active, and is empty otherwise.
pub fn bias_matrix(y: &Dcsr<f64>, b: &[f64]) -> Dcsr<f64> {
    assert_eq!(b.len() as Ix, y.ncols(), "bias vector width");
    let act = active_rows(y);
    let mut c = Coo::new(y.nrows(), y.ncols());
    for (r, _) in act.iter() {
        for (j, &bj) in b.iter().enumerate() {
            if bj != 0.0 {
                c.push(r, j as Ix, bj);
            }
        }
    }
    c.build_dcsr(s())
}

/// One inference layer with an explicit per-neuron bias vector, computed
/// exactly as the paper writes it: `Y' = h(Y W + b|Y𝟙|₀)`.
pub fn layer_with_bias_vector(y: &Dcsr<f64>, w: &Dcsr<f64>, b: &[f64]) -> Dcsr<f64> {
    hypersparse::with_default_ctx(|ctx| {
        let yw = hypersparse::ops::mxm_ctx(ctx, y, w, s());
        // B must mark the rows active in *Y* (the input batch), per the paper.
        let bias = bias_matrix_from_indicator(&active_rows(y), y.ncols(), b);
        let sum = hypersparse::ops::ewise_add_ctx(ctx, &yw, &bias, s());
        hypersparse::ops::apply_prune_ctx(ctx, &sum, FnOp(|x: f64| x.max(0.0)), s())
    })
}

fn bias_matrix_from_indicator(act: &SparseVec<f64>, ncols: Ix, b: &[f64]) -> Dcsr<f64> {
    let mut c = Coo::new(act.dim(), ncols);
    for (r, _) in act.iter() {
        for (j, &bj) in b.iter().enumerate() {
            if bj != 0.0 {
                c.push(r, j as Ix, bj);
            }
        }
    }
    c.build_dcsr(s())
}

/// Full-network inference with per-neuron bias vectors (one per layer).
pub fn infer_with_bias_vectors(
    layers: &[Dcsr<f64>],
    biases: &[Vec<f64>],
    y0: &Dcsr<f64>,
) -> Dcsr<f64> {
    assert_eq!(layers.len(), biases.len(), "one bias vector per layer");
    let mut y = y0.clone();
    for (w, b) in layers.iter().zip(biases) {
        y = layer_with_bias_vector(&y, w, b);
    }
    y
}

/// Dense oracle for one explicit-bias layer (bias applied to active rows
/// only, like the formula).
pub fn layer_oracle(y: &Dcsr<f64>, w: &Dcsr<f64>, b: &[f64]) -> Vec<(Ix, Ix, f64)> {
    let n = w.ncols() as usize;
    let mut out = Vec::new();
    for (r, ycols, yvals) in y.iter_rows() {
        let mut z = vec![0.0f64; n];
        for (&k, yv) in ycols.iter().zip(yvals) {
            let (wcols, wvals) = w.row(k);
            for (&j, wv) in wcols.iter().zip(wvals) {
                z[j as usize] += yv * wv;
            }
        }
        for (j, zj) in z.iter().enumerate() {
            let v = (zj + b[j]).max(0.0);
            if v != 0.0 {
                out.push((r, j as Ix, v));
            }
        }
    }
    out.sort_by_key(|&(r, c, _)| (r, c));
    out
}

/// The `Y 𝟙` reduction itself (row sums) — exposed because the paper's
/// formula names it; `active_rows` is its zero-norm.
pub fn row_sums(y: &Dcsr<f64>) -> SparseVec<f64> {
    hypersparse::with_default_ctx(|ctx| {
        hypersparse::ops::reduce_rows_ctx(ctx, y, PlusMonoid::<f64>::default())
    })
}

/// Zero-norm of a sparse vector (helper mirroring `| |₀` on matrices).
pub fn vec_zero_norm(v: &SparseVec<f64>) -> SparseVec<f64> {
    v.apply(ZeroNorm(s()), s())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_fused;
    use crate::input::sparse_batch;
    use crate::network::SparseDnn;
    use crate::radix::{radix_net, RadixNetParams};

    #[test]
    fn active_rows_is_zero_norm_of_row_sums() {
        let y = sparse_batch(6, 16, 0.2, 1);
        let a = active_rows(&y);
        let b = vec_zero_norm(&row_sums(&y));
        assert_eq!(a, b);
    }

    #[test]
    fn bias_matrix_covers_active_rows_only() {
        let mut c = Coo::new(4, 3);
        c.extend([(0, 1, 1.0), (2, 0, 1.0)]);
        let y = c.build_dcsr(s());
        let b = bias_matrix(&y, &[-0.1, 0.2, 0.0]);
        assert_eq!(b.get(0, 0), Some(&-0.1));
        assert_eq!(b.get(0, 1), Some(&0.2));
        assert_eq!(b.get(0, 2), None); // zero bias not stored
        assert_eq!(b.get(1, 0), None); // inactive row
        assert_eq!(b.get(2, 1), Some(&0.2));
        assert_eq!(b.nnz(), 4);
    }

    #[test]
    fn explicit_formula_matches_oracle_with_mixed_sign_biases() {
        let net = radix_net(
            RadixNetParams {
                n_neurons: 32,
                fanin: 4,
                depth: 1,
                bias: 0.0,
            },
            3,
        );
        let y = sparse_batch(4, 32, 0.25, 5);
        // Mixed positive/negative per-neuron biases.
        let b: Vec<f64> = (0..32)
            .map(|j| if j % 3 == 0 { 0.2 } else { -0.1 })
            .collect();
        let got: Vec<_> = layer_with_bias_vector(&y, &net.layers[0], &b)
            .iter()
            .map(|(r, c, &v)| (r, c, v))
            .collect();
        let want = layer_oracle(&y, &net.layers[0], &b);
        assert_eq!(got.len(), want.len());
        for ((gr, gc, gv), (wr, wc, wv)) in got.iter().zip(&want) {
            assert_eq!((gr, gc), (wr, wc));
            assert!((gv - wv).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_nonpositive_bias_vector_equals_scalar_fused_path() {
        let net = radix_net(
            RadixNetParams {
                n_neurons: 64,
                fanin: 8,
                depth: 4,
                bias: -0.05,
            },
            7,
        );
        let y0 = sparse_batch(4, 64, 0.2, 9);
        let biases: Vec<Vec<f64>> = (0..net.depth()).map(|_| vec![-0.05; 64]).collect();
        let explicit = infer_with_bias_vectors(&net.layers, &biases, &y0);
        let fused = infer_fused(&net, &y0);
        assert_eq!(explicit, fused);
    }

    #[test]
    fn positive_bias_activates_silent_neurons_only_via_explicit_formula() {
        // One active row, weight matrix empty: YW = 0 everywhere, yet the
        // paper's B = b|Y𝟙|₀ applies the positive bias to the active row.
        let w = Dcsr::<f64>::empty(4, 4);
        let mut c = Coo::new(1, 4);
        c.push(0, 0, 1.0);
        let y = c.build_dcsr(s());
        let b = vec![0.5, 0.0, 0.0, 0.0];
        let out = layer_with_bias_vector(&y, &w, &b);
        assert_eq!(out.get(0, 0), Some(&0.5));
        // The scalar fused path cannot express this (it asserts b ≤ 0).
        let err = std::panic::catch_unwind(|| {
            SparseDnn::new(4, vec![w.clone()], vec![0.5]);
        });
        assert!(err.is_err());
    }

    #[test]
    fn inactive_rows_stay_silent_even_with_positive_bias() {
        let w = Dcsr::<f64>::empty(4, 4);
        let y = Dcsr::<f64>::empty(2, 4); // no active rows at all
        let out = layer_with_bias_vector(&y, &w, &[0.5; 4]);
        assert_eq!(out.nnz(), 0);
    }
}
