//! [`DnnCtx`] — the inference driver that owns one execution context
//! for a whole model's lifetime.
//!
//! The free functions in [`crate::infer`] already accept an explicit
//! [`OpCtx`]; this type packages the recommended serving setup: build a
//! `DnnCtx` once, run every batch through it, and read the accumulated
//! per-layer observability out the other side. Because the context (and
//! so its workspace arena) outlives individual calls, the SpGEMM
//! scratch leased by layer 0 of batch 0 is still pooled when layer 11
//! of batch 999 asks for it — the allocation profile of steady-state
//! inference is flat.

use hypersparse::{Dcsr, MetricsSnapshot, OpCtx, OpError, TraceRegistry};

use crate::infer::{
    infer_fused_ctx, infer_two_semiring_ctx, try_infer_fused_ctx, try_infer_two_semiring_ctx,
};
use crate::network::SparseDnn;

/// Execution-context driver for sparse DNN inference.
///
/// Thin, deliberately: all inference logic lives in [`crate::infer`];
/// `DnnCtx` owns the [`OpCtx`] whose scratch arena, thread cap,
/// metrics, and trace spans every layer shares.
#[derive(Debug, Default)]
pub struct DnnCtx {
    ctx: OpCtx,
}

impl DnnCtx {
    /// A driver with automatic parallelism (thread cap 0 = all cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// A driver capped at `threads` OS threads (0 = automatic). Results
    /// are bit-identical at every setting.
    pub fn with_threads(threads: usize) -> Self {
        DnnCtx {
            ctx: OpCtx::new().with_threads(threads),
        }
    }

    /// Change the thread cap of an existing driver (0 = automatic).
    pub fn set_threads(&self, threads: usize) {
        self.ctx.set_threads(threads);
    }

    /// The underlying execution context, for anything this facade
    /// doesn't re-export (workspace introspection, trace modes, …).
    pub fn ctx(&self) -> &OpCtx {
        &self.ctx
    }

    /// Fused inference ([`crate::infer::infer_fused_ctx`]) through this
    /// driver's context. Panics on a batch-width mismatch.
    pub fn infer(&self, net: &SparseDnn, y0: &Dcsr<f64>) -> Dcsr<f64> {
        infer_fused_ctx(&self.ctx, net, y0)
    }

    /// Fallible [`DnnCtx::infer`]: returns
    /// [`OpError::DimensionMismatch`] when the batch width disagrees
    /// with the network.
    pub fn try_infer(&self, net: &SparseDnn, y0: &Dcsr<f64>) -> Result<Dcsr<f64>, OpError> {
        try_infer_fused_ctx(&self.ctx, net, y0)
    }

    /// The literal §V.C two-semiring oscillation
    /// ([`crate::infer::infer_two_semiring_ctx`]) through this driver's
    /// context.
    pub fn infer_two_semiring(&self, net: &SparseDnn, y0: &Dcsr<f64>) -> Dcsr<f64> {
        infer_two_semiring_ctx(&self.ctx, net, y0)
    }

    /// Fallible [`DnnCtx::infer_two_semiring`].
    pub fn try_infer_two_semiring(
        &self,
        net: &SparseDnn,
        y0: &Dcsr<f64>,
    ) -> Result<Dcsr<f64>, OpError> {
        try_infer_two_semiring_ctx(&self.ctx, net, y0)
    }

    /// Freeze the accumulated kernel counters (per-layer rows land on
    /// [`hypersparse::Kernel::DnnLayer`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.ctx.metrics().snapshot()
    }

    /// Prometheus text exposition of the accumulated counters.
    pub fn render_prometheus(&self) -> String {
        self.metrics().render_prometheus()
    }

    /// The trace registry (span modes, slow-op capture).
    pub fn trace(&self) -> &TraceRegistry {
        self.ctx.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::sparse_batch;
    use crate::radix::{radix_net, RadixNetParams};
    use hypersparse::Kernel;

    fn net() -> SparseDnn {
        radix_net(
            RadixNetParams {
                n_neurons: 64,
                fanin: 8,
                depth: 6,
                bias: -0.05,
            },
            42,
        )
    }

    #[test]
    fn driver_matches_free_function_and_records_layers() {
        let net = net();
        let y0 = sparse_batch(8, 64, 0.2, 7);
        let driver = DnnCtx::with_threads(1);
        let out = driver.infer(&net, &y0);
        assert_eq!(out, crate::infer::infer_fused(&net, &y0));
        let snap = driver.metrics();
        let layer = snap.kernel(Kernel::DnnLayer);
        assert_eq!(layer.calls, net.depth() as u64);
        assert!(layer.nnz_in > 0 && layer.nnz_out > 0);
        assert_eq!(snap.kernel(Kernel::Mxm).calls, net.depth() as u64);
    }

    #[test]
    fn prometheus_exposes_dnn_layer_counters() {
        let net = net();
        let y0 = sparse_batch(8, 64, 0.2, 9);
        let driver = DnnCtx::new();
        let _ = driver.infer(&net, &y0);
        let prom = driver.render_prometheus();
        assert!(
            prom.contains("hypersparse_kernel_calls_total{kernel=\"dnn_layer\"} 6"),
            "{prom}"
        );
        assert!(
            prom.contains("hypersparse_kernel_nnz_out_total{kernel=\"dnn_layer\"}"),
            "{prom}"
        );
    }

    #[test]
    fn workspace_is_reused_across_layers_and_batches() {
        let net = net();
        let driver = DnnCtx::with_threads(1);
        for seed in 0..4 {
            let y0 = sparse_batch(8, 64, 0.2, seed);
            let _ = driver.infer(&net, &y0);
        }
        let snap = driver.metrics();
        // 4 batches × 6 layers = 24 scratch leases; only the first one
        // may allocate.
        assert_eq!(snap.workspace_misses, 1, "{:?}", snap);
        assert_eq!(snap.workspace_hits, 23);
    }

    #[test]
    fn try_infer_reports_batch_mismatch() {
        let net = net();
        let bad = sparse_batch(8, 32, 0.2, 7); // 32-wide batch, 64-wide net
        let driver = DnnCtx::new();
        let e = driver.try_infer(&net, &bad).unwrap_err();
        assert!(
            matches!(
                e,
                OpError::DimensionMismatch {
                    op: "dnn_infer_fused",
                    rule: "batch width mismatch",
                    ..
                }
            ),
            "{e:?}"
        );
        let e = driver.try_infer_two_semiring(&net, &bad).unwrap_err();
        assert!(e.to_string().contains("batch width mismatch"), "{e}");
    }
}
