//! Netflow-service observability: window/event counters plus
//! per-detector latency histograms, rendered in the same Prometheus
//! text exposition as the pipeline and serving layers — one scrape
//! endpoint concatenates all three.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hypersparse::trace::{write_prometheus_header, write_prometheus_histogram};
use hypersparse::{Histogram, HistogramSnapshot};

use crate::query::NetflowQueryClass;

/// Live netflow counters; shared by reference, updated lock-free.
#[derive(Debug, Default)]
pub struct NetflowMetrics {
    windows_closed: AtomicU64,
    window_events: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    detections: AtomicU64,
    latency: [Histogram; NetflowQueryClass::ALL.len()],
}

impl NetflowMetrics {
    /// Record one closed window and the entries (distinct flows) its
    /// traffic matrix stored.
    pub fn record_window(&self, entries: u64) {
        self.windows_closed.fetch_add(1, Ordering::Relaxed);
        self.window_events.fetch_add(entries, Ordering::Relaxed);
    }

    /// Record one answered query; `flagged` counts detector hits in the
    /// answer (0 for non-detector classes).
    pub fn record_query(&self, class: NetflowQueryClass, elapsed: Duration, flagged: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.detections.fetch_add(flagged, Ordering::Relaxed);
        self.latency[class.index()].record(elapsed);
    }

    /// Record one failed query.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze everything into an owned snapshot.
    pub fn snapshot(&self) -> NetflowMetricsSnapshot {
        NetflowMetricsSnapshot {
            windows_closed: self.windows_closed.load(Ordering::Relaxed),
            window_events: self.window_events.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            detections: self.detections.load(Ordering::Relaxed),
            latency: std::array::from_fn(|i| self.latency[i].snapshot()),
        }
    }
}

/// Frozen netflow counters and histograms.
#[derive(Clone, Debug)]
pub struct NetflowMetricsSnapshot {
    /// Analysis windows closed (pipeline rotations).
    pub windows_closed: u64,
    /// Stored entries (distinct flows) in closed windows, cumulative.
    pub window_events: u64,
    /// Netflow queries answered.
    pub queries: u64,
    /// Netflow queries failed.
    pub errors: u64,
    /// Endpoints flagged by detector queries, cumulative.
    pub detections: u64,
    /// Per-class latency, indexed like [`NetflowQueryClass::ALL`].
    pub latency: [HistogramSnapshot; NetflowQueryClass::ALL.len()],
}

impl NetflowMetricsSnapshot {
    /// One class's latency histogram.
    pub fn class(&self, class: NetflowQueryClass) -> &HistogramSnapshot {
        &self.latency[class.index()]
    }

    /// The Prometheus text exposition: `netflow_*` counters plus
    /// `netflow_query_latency_seconds{detector="..."}` histograms.
    /// Designed to concatenate with the pipeline and serve expositions.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, help, v) in [
            (
                "netflow_windows_closed_total",
                "Analysis windows closed",
                self.windows_closed,
            ),
            (
                "netflow_window_events_total",
                "Stored entries in closed windows",
                self.window_events,
            ),
            (
                "netflow_queries_total",
                "Netflow queries answered",
                self.queries,
            ),
            (
                "netflow_query_errors_total",
                "Netflow queries failed",
                self.errors,
            ),
            (
                "netflow_detections_total",
                "Endpoints flagged by detectors",
                self.detections,
            ),
        ] {
            write_prometheus_header(&mut out, name, "counter", help);
            let _ = writeln!(out, "{name} {v}");
        }
        write_prometheus_header(
            &mut out,
            "netflow_query_latency_seconds",
            "histogram",
            "Netflow query latency by detector class",
        );
        for class in NetflowQueryClass::ALL {
            let h = self.class(class);
            if h.count() == 0 {
                continue;
            }
            write_prometheus_histogram(
                &mut out,
                "netflow_query_latency_seconds",
                &format!("detector=\"{}\"", class.label()),
                h,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_by_class() {
        let m = NetflowMetrics::default();
        m.record_window(100);
        m.record_window(50);
        m.record_query(NetflowQueryClass::ScanSuspects, Duration::from_micros(5), 2);
        m.record_query(NetflowQueryClass::TopTalkers, Duration::from_micros(3), 0);
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.windows_closed, 2);
        assert_eq!(s.window_events, 150);
        assert_eq!(s.queries, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.detections, 2);
        assert_eq!(s.class(NetflowQueryClass::ScanSuspects).count(), 1);
        assert_eq!(s.class(NetflowQueryClass::DdosVictims).count(), 0);
    }

    #[test]
    fn prometheus_exposition_is_labelled_per_detector() {
        let m = NetflowMetrics::default();
        m.record_query(NetflowQueryClass::DdosVictims, Duration::from_micros(7), 1);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# TYPE netflow_windows_closed_total counter"));
        assert!(text.contains("netflow_detections_total 1"));
        assert!(text.contains("netflow_query_latency_seconds_bucket{detector=\"ddos_victims\""));
        assert!(!text.contains("detector=\"rollup\""));
    }
}
