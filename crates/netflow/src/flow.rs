//! Socket-resolution flow keys — the `ip.port` complex index.
//!
//! PR 10's complex-index layer ([`hyperspace_core::cxkey`]) generalizes
//! the CIDR hierarchy to composite keys; this module is its demo
//! consumer. Traffic is keyed by **socket** — the ordered pair
//! `(address, port)` packed as the 48-bit composite `ip.port` — so the
//! same window of packets answers questions at three resolutions with
//! nothing but key algebra:
//!
//! * **socket × socket** (who talks to which service, which ephemeral
//!   port): the native matrix this module builds;
//! * **host × host**: [`host_rollup`] projects the port component away
//!   with one monotone `O(nnz)` ⊕-merge ([`cxkey::rollup_ctx`] at
//!   [`CxPrefix::full_fields`]`(1)`) and re-bases the index space, and
//!   is proven equal to building the `ip × ip` matrix directly;
//! * **CIDR blocks**: further prefixes (`/16` on the address bits) keep
//!   composing downward, exactly as in [`hyperspace_core::cidr`].
//!
//! String keys round-trip through the same schema
//! (`"010.000.000.007.00443"`), so `Assoc`-layer drill-downs sort and
//! range-extract sockets lexicographically, numerically, and
//! hierarchically all at once.

use std::sync::OnceLock;

use hyperspace_core::cxkey::{self, CxField, CxPrefix, CxSchema, RollupAxes};
use hypersparse::ctx::{with_default_ctx, OpCtx};
use hypersparse::ops::{reduce_rows_ctx, top_k_ctx};
use hypersparse::{Coo, Dcsr, Ix};
use semiring::traits::AddMonoidOf;

use crate::window::TrafficSemiring;

/// One socket-resolution flow event:
/// `(src_ip, src_port, dst_ip, dst_port, packets)`.
pub type SocketFlowEvent = (u32, u16, u32, u16, u64);

/// The socket key space: 32 address bits above 16 port bits.
pub const SOCKET_SPACE: Ix = 1 << 48;

/// The two-component socket schema: a dotted-quad `ip` field over a
/// 16-bit `port` field. Address bits sit above port bits, so sorted
/// socket order groups every port of a host together and CIDR prefixes
/// of the address are index prefixes of the composite.
pub fn socket_schema() -> &'static CxSchema {
    static SCHEMA: OnceLock<CxSchema> = OnceLock::new();
    SCHEMA
        .get_or_init(|| CxSchema::new(vec![CxField::dotted_quad("ip"), CxField::bits("port", 16)]))
}

/// Pack a socket into its 48-bit composite index.
#[inline]
pub fn socket_ix(ip: u32, port: u16) -> Ix {
    socket_schema().pack(&[u64::from(ip), u64::from(port)])
}

/// Unpack a composite index back to `(ip, port)`.
#[inline]
pub fn socket_parts(ix: Ix) -> (u32, u16) {
    let parts = socket_schema().unpack(ix);
    (parts[0] as u32, parts[1] as u16)
}

/// The sortable string key of a socket: `"010.000.000.007.00443"`.
pub fn socket_key(ip: u32, port: u16) -> String {
    socket_schema().key(&[u64::from(ip), u64::from(port)])
}

/// Build the socket × socket traffic matrix of one window's events:
/// `A(src_socket, dst_socket) = packets`, duplicate flows ⊕-merged
/// under the traffic semiring.
pub fn socket_matrix(events: &[SocketFlowEvent]) -> Dcsr<u64> {
    let mut coo = Coo::new(SOCKET_SPACE, SOCKET_SPACE);
    coo.extend(
        events
            .iter()
            .map(|&(si, sp, di, dp, pk)| (socket_ix(si, sp), socket_ix(di, dp), pk)),
    );
    coo.build_dcsr(TrafficSemiring::new())
}

/// Roll a socket matrix down to host resolution: project the `port`
/// component away on both axes (one monotone `O(nnz)` ⊕-merge under
/// `Kernel::Rollup`), then re-base indices from `ip << 16` to plain
/// `ip` so the result lives in the `ip × ip` space every CIDR and
/// detector path already speaks. The shift is monotone, so the re-base
/// is a sorted streaming rebuild, not a re-sort.
pub fn host_rollup_ctx(ctx: &OpCtx, a: &Dcsr<u64>) -> Dcsr<u64> {
    let s = TrafficSemiring::new();
    let hosts = cxkey::rollup_ctx(
        ctx,
        socket_schema(),
        a,
        CxPrefix::full_fields(1),
        RollupAxes::Both,
        s,
    );
    let port_bits = socket_schema().total_bits() - 32;
    let mut coo = Coo::new(crate::window::IP_SPACE, crate::window::IP_SPACE);
    coo.extend(
        hosts
            .iter()
            .map(|(r, c, v)| (r >> port_bits, c >> port_bits, *v)),
    );
    coo.build_dcsr(s)
}

/// [`host_rollup_ctx`] through the thread-local default context.
pub fn host_rollup(a: &Dcsr<u64>) -> Dcsr<u64> {
    with_default_ctx(|ctx| host_rollup_ctx(ctx, a))
}

/// The `k` busiest source sockets by total packets sent: ⊕-reduce the
/// socket matrix's rows, top-k the folds, unpack the winners back to
/// `(ip, port, packets)`. Deterministic: ties break toward the smaller
/// socket index (lower address, then lower port).
pub fn top_sockets_ctx(ctx: &OpCtx, a: &Dcsr<u64>, k: usize) -> Vec<(u32, u16, u64)> {
    let m = AddMonoidOf(TrafficSemiring::new());
    let reduced = reduce_rows_ctx(ctx, a, m);
    top_k_ctx(ctx, &reduced, k)
        .into_iter()
        .map(|(ix, pk)| {
            let (ip, port) = socket_parts(ix);
            (ip, port, pk)
        })
        .collect()
}

/// [`top_sockets_ctx`] through the thread-local default context.
pub fn top_sockets(a: &Dcsr<u64>, k: usize) -> Vec<(u32, u16, u64)> {
    with_default_ctx(|ctx| top_sockets_ctx(ctx, a, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, TrafficGen};
    use hyperspace_core::cidr;
    use hypersparse::metrics::Kernel;

    fn sample_events() -> Vec<SocketFlowEvent> {
        let web = cidr::ip(10, 0, 0, 7);
        let db = cidr::ip(10, 0, 1, 9);
        let client = cidr::ip(10, 2, 3, 4);
        vec![
            (client, 50_001, web, 443, 10),
            (client, 50_002, web, 443, 5), // same hosts, new src port
            (client, 50_001, web, 80, 2),  // same hosts, new dst port
            (web, 33_000, db, 5432, 7),
        ]
    }

    #[test]
    fn socket_keys_pack_and_print() {
        let ip = cidr::ip(10, 0, 0, 7);
        assert_eq!(socket_ix(ip, 443), (u64::from(ip) << 16) | 443);
        assert_eq!(socket_parts(socket_ix(ip, 443)), (ip, 443));
        assert_eq!(socket_key(ip, 443), "010.000.000.007.00443");
        assert_eq!(
            socket_schema().parse_key("010.000.000.007.00443"),
            Some(vec![u64::from(ip), 443])
        );
    }

    #[test]
    fn socket_matrix_keeps_port_resolution() {
        let a = socket_matrix(&sample_events());
        assert_eq!(a.nnz(), 4); // distinct socket pairs stay distinct
        let client = cidr::ip(10, 2, 3, 4);
        let web = cidr::ip(10, 0, 0, 7);
        assert_eq!(
            a.get(socket_ix(client, 50_001), socket_ix(web, 443))
                .copied(),
            Some(10)
        );
    }

    #[test]
    fn host_rollup_equals_direct_host_matrix() {
        // The tentpole equivalence: rolling the socket matrix up must be
        // bit-identical to never having keyed by port at all.
        let events = sample_events();
        let rolled = host_rollup(&socket_matrix(&events));
        let mut coo = Coo::new(crate::window::IP_SPACE, crate::window::IP_SPACE);
        coo.extend(
            events
                .iter()
                .map(|&(si, _, di, _, pk)| (Ix::from(si), Ix::from(di), pk)),
        );
        let direct = coo.build_dcsr(TrafficSemiring::new());
        assert_eq!(rolled.nnz(), direct.nnz());
        assert!(rolled.iter().eq(direct.iter()));
        // And the merged cell really summed across ports.
        let client = cidr::ip(10, 2, 3, 4);
        let web = cidr::ip(10, 0, 0, 7);
        assert_eq!(
            rolled.get(Ix::from(client), Ix::from(web)).copied(),
            Some(17)
        );
    }

    #[test]
    fn host_rollup_records_rollup_kernel() {
        let ctx = OpCtx::new();
        let _ = host_rollup_ctx(&ctx, &socket_matrix(&sample_events()));
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::Rollup).calls, 1);
    }

    #[test]
    fn top_sockets_ranks_by_sent_volume() {
        let a = socket_matrix(&sample_events());
        let top = top_sockets(&a, 2);
        let client = cidr::ip(10, 2, 3, 4);
        // client:50001 sent 10 + 2 = 12, web:33000 sent 7.
        assert_eq!(top[0], (client, 50_001, 12));
        assert_eq!(top[1], (cidr::ip(10, 0, 0, 7), 33_000, 7));
    }

    #[test]
    fn generated_socket_windows_roll_up_to_flow_windows() {
        // The generator's socket stream must be the same traffic as its
        // host stream, just at finer key resolution.
        let g = TrafficGen::new(GenConfig::new().with_events_per_window(300).with_seed(9));
        let sockets = g.socket_window(0);
        let hosts = g.window(0);
        assert_eq!(sockets.len(), hosts.len());
        for (&(si, _, di, _, pk), &(hs, hd, hp)) in sockets.iter().zip(&hosts) {
            assert_eq!((si, di, pk), (hs, hd, hp));
        }
        // Determinism: socket windows are pure functions of the seed.
        assert_eq!(g.socket_window(0), g.socket_window(0));
        // And the rollup equivalence holds on generated traffic too.
        let rolled = host_rollup(&socket_matrix(&sockets));
        let mut coo = Coo::new(crate::window::IP_SPACE, crate::window::IP_SPACE);
        coo.extend(hosts.iter().map(|&(s, d, p)| (Ix::from(s), Ix::from(d), p)));
        let direct = coo.build_dcsr(TrafficSemiring::new());
        assert!(rolled.iter().eq(direct.iter()));
    }
}
