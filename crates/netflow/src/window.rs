//! Windowed traffic-matrix ingest over the sharded pipeline.
//!
//! Streaming traffic analysis works in fixed windows: accumulate one
//! window's packets into a hypersparse `A(src, dst) = packets` matrix,
//! close the window, analyse the closed (immutable) matrix while the
//! next accumulates. [`TrafficWindows`] is that discipline over
//! [`pipeline::Pipeline`]: ingest routes through the sharded workers
//! exactly like any other workload, and closing a window is the
//! pipeline's epoch-aligned [`Pipeline::rotate_shared`] — a marker wave
//! that snapshots *and resets* every shard atomically with respect to
//! the event stream, so each event lands in exactly one window and the
//! closed window's epoch number is its window id.

use std::sync::Arc;

use hypersparse::Ix;
use pipeline::{
    EpochSnapshot, IncrementalEpoch, Pipeline, PipelineConfig, PipelineError, SnapshotSink,
    StandingView,
};
use semiring::PlusTimes;

use crate::gen::FlowEvent;

/// The semiring traffic matrices accumulate in: ⊕ = `+` over packet
/// counts.
pub type TrafficSemiring = PlusTimes<u64>;

/// The full IPv4 key space: addresses are the low 32 bits of the index.
pub const IP_SPACE: Ix = 1 << 32;

/// A windowed traffic-matrix ingester: one sharded pipeline whose
/// epochs are analysis windows.
pub struct TrafficWindows {
    pipeline: Pipeline<TrafficSemiring>,
}

impl TrafficWindows {
    /// A windowed ingester over the full IPv4 × IPv4 key space.
    pub fn new(config: PipelineConfig) -> Self {
        TrafficWindows {
            pipeline: Pipeline::with_config(IP_SPACE, IP_SPACE, PlusTimes::new(), config),
        }
    }

    /// Ingest one batch of flow events into the current window.
    pub fn ingest(&self, events: &[FlowEvent]) -> Result<(), PipelineError> {
        self.pipeline.ingest_batch(
            events
                .iter()
                .map(|&(s, d, p)| (Ix::from(s), Ix::from(d), p)),
        )
    }

    /// Close the current window: snapshot-and-reset every shard behind
    /// one marker wave, publish the closed window to every registered
    /// sink, and return it. The new window starts empty; ingest running
    /// concurrently with the close lands in the new window.
    pub fn close(&self) -> Result<Arc<EpochSnapshot<TrafficSemiring>>, PipelineError> {
        self.pipeline.rotate_shared()
    }

    /// Peek at the current (still-open) window without closing it.
    pub fn peek(&self) -> Result<Arc<EpochSnapshot<TrafficSemiring>>, PipelineError> {
        self.pipeline.snapshot_shared()
    }

    /// Incremental peek: full view plus the delta since the previous
    /// delta cut, both at the same marker wave. Registered standing
    /// views absorb the delta on the way; the window stays open.
    pub fn refresh(&self) -> Result<IncrementalEpoch<TrafficSemiring>, PipelineError> {
        self.pipeline.snapshot_incremental()
    }

    /// Register a standing view: it folds every later delta wave
    /// (including a closing window's final delta) and resets when the
    /// window rotates.
    pub fn register_standing_query(
        &self,
        name: impl Into<String>,
        view: Arc<dyn StandingView<TrafficSemiring>>,
    ) {
        self.pipeline.register_standing_query(name, view);
    }

    /// Subscribe a sink (e.g. a [`serve::SnapshotRegistry`]) to closed
    /// windows.
    pub fn add_sink(&self, sink: Arc<dyn SnapshotSink<TrafficSemiring>>) {
        self.pipeline.add_snapshot_sink(sink);
    }

    /// The underlying pipeline (metrics, tracing, checkpointing).
    pub fn pipeline(&self) -> &Pipeline<TrafficSemiring> {
        &self.pipeline
    }

    /// Graceful shutdown of the shard workers.
    pub fn shutdown(self) -> Result<(), PipelineError> {
        self.pipeline.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_exactly_one_window() {
        let w = TrafficWindows::new(PipelineConfig::new().with_shards(2));
        w.ingest(&[(10, 20, 1), (10, 20, 2), (30, 40, 5)]).unwrap();
        let first = w.close().unwrap();
        assert_eq!(first.nnz(), 2);
        assert_eq!(first.get(10, 20), Some(&3));

        w.ingest(&[(10, 20, 7)]).unwrap();
        let second = w.close().unwrap();
        assert_eq!(second.get(10, 20), Some(&7), "window reset between epochs");
        assert_eq!(second.nnz(), 1);
        assert_eq!(second.epoch(), first.epoch() + 1);
        w.shutdown().unwrap();
    }

    #[test]
    fn refresh_reports_deltas_without_closing() {
        let w = TrafficWindows::new(PipelineConfig::new().with_shards(2));
        w.ingest(&[(1, 2, 1), (3, 4, 1)]).unwrap();
        let first = w.refresh().unwrap();
        assert_eq!(first.full.nnz(), 2);
        assert_eq!(first.delta.nnz(), 2, "first delta covers everything");
        w.ingest(&[(5, 6, 1)]).unwrap();
        let second = w.refresh().unwrap();
        assert_eq!(second.full.nnz(), 3);
        assert_eq!(second.delta.nnz(), 1, "later deltas see only new entries");
        // The window never closed: everything lands in one rotation.
        assert_eq!(w.close().unwrap().nnz(), 3);
        w.shutdown().unwrap();
    }

    #[test]
    fn peek_observes_without_closing() {
        let w = TrafficWindows::new(PipelineConfig::new().with_shards(1));
        w.ingest(&[(1, 2, 1)]).unwrap();
        assert_eq!(w.peek().unwrap().nnz(), 1);
        w.ingest(&[(3, 4, 1)]).unwrap();
        // The window kept accumulating across the peek.
        assert_eq!(w.close().unwrap().nnz(), 2);
        w.shutdown().unwrap();
    }
}
