//! Typed netflow-service errors.

use pipeline::PipelineError;
use serve::ServeError;

/// Anything the netflow service can fail with — a thin sum over the
/// layers it composes, so callers match on one type.
#[derive(Debug)]
pub enum NetflowError {
    /// Ingest/rotation failed in the sharded pipeline.
    Pipeline(PipelineError),
    /// Epoch pinning or table queries failed in the serving layer.
    Serve(ServeError),
}

impl std::fmt::Display for NetflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetflowError::Pipeline(e) => write!(f, "pipeline: {e}"),
            NetflowError::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for NetflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetflowError::Pipeline(e) => Some(e),
            NetflowError::Serve(e) => Some(e),
        }
    }
}

impl From<PipelineError> for NetflowError {
    fn from(e: PipelineError) -> Self {
        NetflowError::Pipeline(e)
    }
}

impl From<ServeError> for NetflowError {
    fn from(e: ServeError) -> Self {
        NetflowError::Serve(e)
    }
}
