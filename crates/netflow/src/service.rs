//! The netflow analytics service: generator → windowed ingest →
//! detectors → serving, in one handle.
//!
//! [`NetflowService`] composes the whole stack the deployment papers
//! describe: packets stream through the sharded [`TrafficWindows`]
//! pipeline; closing a window publishes the immutable traffic matrix
//! into an embedded [`serve::QueryServer`] (under the
//! [`serve::ViewSchema::netflow`] schema, so SQL/select/neighbor
//! queries work over flows); and the typed [`NetflowQuery`] surface
//! answers detector queries against any retained window with the
//! `_ctx` kernel stack — every reduce, top-k, select, and rollup a
//! detector runs lands in the service's kernel metrics and the
//! per-detector latency histograms, all of it scrape-able from one
//! Prometheus exposition.
//!
//! Determinism: detector answers are a pure function of the closed
//! window's matrix, which the pipeline guarantees is bit-identical for
//! a fixed event order at any shard count — so detector output is too
//! (the property suite proves it at 1/2/4 shards).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use graph::incremental::DegreeState;
use hyperspace_core::cidr::{self, RollupAxes};
use hypersparse::ops as kernels;
use hypersparse::{Dcsr, Ix, OpCtx};
use pipeline::{EpochSnapshot, PipelineConfig, StandingView};
use semiring::{PlusMonoid, PlusTimes};
use serve::{QueryServer, ViewSchema};

use crate::error::NetflowError;
use crate::gen::FlowEvent;
use crate::metrics::{NetflowMetrics, NetflowMetricsSnapshot};
use crate::query::{NetflowBody, NetflowQuery, NetflowResponse};
use crate::window::{TrafficSemiring, TrafficWindows, IP_SPACE};

/// Service parameters.
#[derive(Clone, Debug)]
pub struct NetflowConfig {
    /// Sharded-pipeline knobs (shard count, channel depth, stream).
    pub pipeline: PipelineConfig,
    /// Closed windows retained for querying.
    pub retain_windows: usize,
    /// Default fan-out threshold for [`NetflowService::detect`].
    pub scan_fanout: u64,
    /// Default fan-in threshold for [`NetflowService::detect`].
    pub ddos_fanin: u64,
}

impl Default for NetflowConfig {
    fn default() -> Self {
        NetflowConfig {
            pipeline: PipelineConfig::default(),
            retain_windows: 4,
            scan_fanout: 64,
            ddos_fanin: 64,
        }
    }
}

impl NetflowConfig {
    /// Default parameters (4 retained windows, thresholds at 64).
    pub fn new() -> Self {
        NetflowConfig::default()
    }

    /// Builder-style pipeline configuration.
    pub fn with_pipeline(mut self, p: PipelineConfig) -> Self {
        self.pipeline = p;
        self
    }

    /// Builder-style window retention (≥ 1).
    pub fn with_retain_windows(mut self, n: usize) -> Self {
        self.retain_windows = n;
        self
    }

    /// Builder-style detector thresholds.
    pub fn with_thresholds(mut self, scan_fanout: u64, ddos_fanin: u64) -> Self {
        self.scan_fanout = scan_fanout;
        self.ddos_fanin = ddos_fanin;
        self
    }
}

/// One window's detector verdict (the [`NetflowService::detect`]
/// convenience bundle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowReport {
    /// The window (epoch) analysed.
    pub epoch: u64,
    /// `(src, fan_out)` scan suspects, fan-out descending.
    pub scan_suspects: Vec<(String, u64)>,
    /// `(dst, fan_in)` DDoS victims, fan-in descending.
    pub ddos_victims: Vec<(String, u64)>,
}

/// The incrementally maintained detector state behind the
/// `Standing*` query classes: one [`DegreeState`] folding every delta
/// wave the pipeline publishes, registered as a [`StandingView`] so it
/// updates at snapshot cuts (and the final cut of a closing window)
/// and resets when the window rotates. Answering a standing detector
/// query is then a threshold scan of maintained degrees — `O(Δ)` per
/// epoch instead of rescanning the accumulated window.
struct StandingDetectors {
    state: Mutex<DegreeState>,
    /// Epoch of the last absorbed delta (what standing answers are
    /// stamped with).
    epoch: AtomicU64,
    /// Shared with the service's detector context, so `DeltaDegree`
    /// cost lands in the same kernel registry as the scratch detectors.
    ctx: Arc<OpCtx>,
}

impl StandingDetectors {
    fn new(ctx: Arc<OpCtx>) -> Self {
        StandingDetectors {
            state: Mutex::new(DegreeState::new(IP_SPACE, IP_SPACE)),
            epoch: AtomicU64::new(0),
            ctx,
        }
    }

    fn lock(&self) -> MutexGuard<'_, DegreeState> {
        // A panic mid-detector cannot leave the degree state torn
        // (apply_delta mutates through &mut but each field assignment
        // is whole-value), so recover the guard rather than poisoning
        // every later query.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

impl StandingView<TrafficSemiring> for StandingDetectors {
    fn apply_delta(&self, delta: &EpochSnapshot<TrafficSemiring>) {
        self.lock().apply_delta_ctx(&self.ctx, delta.dcsr());
        self.epoch.store(delta.epoch(), Ordering::Release);
    }

    fn reset(&self) {
        self.lock().reset();
    }
}

/// The end-to-end netflow analytics service.
pub struct NetflowService {
    windows: TrafficWindows,
    server: Arc<QueryServer<TrafficSemiring>>,
    metrics: NetflowMetrics,
    /// Detector kernels run through this context: one metrics registry
    /// for every reduce/top-k/select/rollup the query surface performs.
    ctx: Arc<OpCtx>,
    standing: Arc<StandingDetectors>,
    config: NetflowConfig,
}

impl NetflowService {
    /// Launch a service: spawns the pipeline shards, wires the serving
    /// registry to window closure, and registers the standing detector
    /// state for delta-wave maintenance.
    pub fn new(config: NetflowConfig) -> Self {
        let windows = TrafficWindows::new(config.pipeline);
        let server = Arc::new(QueryServer::with_capacity(
            config.retain_windows,
            serve::DEFAULT_CACHE_ENTRIES,
            ViewSchema::netflow(),
        ));
        server.attach(windows.pipeline());
        let ctx = Arc::new(OpCtx::new());
        let standing = Arc::new(StandingDetectors::new(Arc::clone(&ctx)));
        windows.register_standing_query(
            "detectors",
            Arc::clone(&standing) as Arc<dyn StandingView<TrafficSemiring>>,
        );
        NetflowService {
            windows,
            server,
            metrics: NetflowMetrics::default(),
            ctx,
            standing,
            config: NetflowConfig {
                pipeline: config.pipeline,
                ..config
            },
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &NetflowConfig {
        &self.config
    }

    /// Ingest one batch of flow events into the current window.
    pub fn ingest(&self, events: &[FlowEvent]) -> Result<(), NetflowError> {
        self.windows.ingest(events)?;
        Ok(())
    }

    /// Close the current window: the immutable traffic matrix publishes
    /// into the serving registry (window id = epoch) and is returned.
    pub fn close_window(&self) -> Result<Arc<EpochSnapshot<TrafficSemiring>>, NetflowError> {
        let snap = self.windows.close()?;
        self.metrics.record_window(snap.nnz() as u64);
        Ok(snap)
    }

    /// Advance the standing views without closing the window: one
    /// incremental marker wave — the full cut publishes into the
    /// serving registry (queryable like any refresh), the delta folds
    /// into every standing view. Returns `(epoch, delta_nnz)`.
    pub fn refresh(&self) -> Result<(u64, u64), NetflowError> {
        Ok(self.server.refresh_incremental(self.windows.pipeline())?)
    }

    /// The embedded query server: SQL / select / neighbor / group-count
    /// queries over closed windows under the netflow schema.
    pub fn server(&self) -> &QueryServer<TrafficSemiring> {
        &self.server
    }

    /// Answer a typed netflow query against the newest closed window.
    /// Standing-query classes answer from maintained state and need no
    /// published window at all.
    pub fn query(&self, q: &NetflowQuery) -> Result<NetflowResponse, NetflowError> {
        if let Some(resp) = self.answer_standing(q) {
            return Ok(resp);
        }
        let view = self
            .server
            .pin_latest()
            .inspect_err(|_| self.metrics.record_error())?;
        Ok(self.query_snapshot(view.snapshot(), q))
    }

    /// Answer a typed netflow query against a specific retained window.
    pub fn query_window(
        &self,
        epoch: u64,
        q: &NetflowQuery,
    ) -> Result<NetflowResponse, NetflowError> {
        let view = self
            .server
            .pin_epoch(epoch)
            .inspect_err(|_| self.metrics.record_error())?;
        Ok(self.query_snapshot(view.snapshot(), q))
    }

    /// Answer a typed netflow query against an already-held window
    /// snapshot (e.g. the return value of [`NetflowService::close_window`]).
    pub fn query_snapshot(
        &self,
        snap: &Arc<EpochSnapshot<TrafficSemiring>>,
        q: &NetflowQuery,
    ) -> NetflowResponse {
        if let Some(resp) = self.answer_standing(q) {
            return resp;
        }
        let class = q.class();
        let t = Instant::now();
        let a = snap.dcsr();
        let body = self.answer(a, q);
        let flagged = match &body {
            NetflowBody::Flagged(v) => v.len() as u64,
            _ => 0,
        };
        self.metrics.record_query(class, t.elapsed(), flagged);
        NetflowResponse {
            epoch: snap.epoch(),
            body,
        }
    }

    /// Answer the standing detector classes from maintained state (no
    /// window snapshot involved; the epoch stamp is the last delta
    /// wave's). Returns `None` for snapshot-backed queries.
    fn answer_standing(&self, q: &NetflowQuery) -> Option<NetflowResponse> {
        let t = Instant::now();
        let ip = |i: Ix| cidr::ip_key(i as u32);
        let flagged = match *q {
            NetflowQuery::StandingScanSuspects { min_fanout } => {
                self.standing.lock().scan_suspects(min_fanout)
            }
            NetflowQuery::StandingDdosVictims { min_fanin } => {
                self.standing.lock().ddos_victims(min_fanin)
            }
            _ => return None,
        };
        self.metrics
            .record_query(q.class(), t.elapsed(), flagged.len() as u64);
        Some(NetflowResponse {
            epoch: self.standing.epoch(),
            body: NetflowBody::Flagged(flagged.into_iter().map(|(i, d)| (ip(i), d)).collect()),
        })
    }

    /// The kernel dispatch: every arm runs `_ctx` kernels on the
    /// service's detector context.
    fn answer(&self, a: &Dcsr<u64>, q: &NetflowQuery) -> NetflowBody {
        let ip = |i: Ix| cidr::ip_key(i as u32);
        match *q {
            NetflowQuery::TopTalkers { k } => NetflowBody::Volumes(
                kernels::top_k_rows_ctx(&self.ctx, a, k, PlusMonoid::<u64>::default())
                    .into_iter()
                    .map(|(i, v)| (ip(i), v))
                    .collect(),
            ),
            NetflowQuery::TopListeners { k } => NetflowBody::Volumes(
                kernels::top_k_cols_ctx(&self.ctx, a, k, PlusMonoid::<u64>::default())
                    .into_iter()
                    .map(|(i, v)| (ip(i), v))
                    .collect(),
            ),
            NetflowQuery::ScanSuspects { min_fanout } => NetflowBody::Flagged(
                graph::netsec::scan_suspects_ctx(&self.ctx, a, min_fanout)
                    .into_iter()
                    .map(|(i, d)| (ip(i), d))
                    .collect(),
            ),
            NetflowQuery::DdosVictims { min_fanin } => NetflowBody::Flagged(
                graph::netsec::ddos_victims_ctx(&self.ctx, a, min_fanin)
                    .into_iter()
                    .map(|(i, d)| (ip(i), d))
                    .collect(),
            ),
            NetflowQuery::SuspectTraffic { ref sources } => {
                let rows: Vec<Ix> = sources.iter().map(|&s| Ix::from(s)).collect();
                NetflowBody::Flows(
                    graph::netsec::suspect_traffic_ctx(&self.ctx, a, &rows)
                        .iter()
                        .map(|(r, c, &v)| (ip(r), ip(c), v))
                        .collect(),
                )
            }
            NetflowQuery::Rollup { prefix, k } => {
                let rolled =
                    cidr::rollup_ctx(&self.ctx, a, prefix, RollupAxes::Both, PlusTimes::new());
                let mut blocks: Vec<(Ix, Ix, u64)> =
                    rolled.iter().map(|(r, c, &v)| (r, c, v)).collect();
                blocks.sort_by(|x, y| {
                    y.2.cmp(&x.2)
                        .then_with(|| x.0.cmp(&y.0))
                        .then_with(|| x.1.cmp(&y.1))
                });
                blocks.truncate(k);
                NetflowBody::Blocks(
                    blocks
                        .into_iter()
                        .map(|(r, c, v)| {
                            (
                                cidr::cidr_key(r as u32, prefix),
                                cidr::cidr_key(c as u32, prefix),
                                v,
                            )
                        })
                        .collect(),
                )
            }
            NetflowQuery::StandingScanSuspects { .. }
            | NetflowQuery::StandingDdosVictims { .. } => {
                unreachable!("standing queries answer from maintained state before dispatch")
            }
        }
    }

    /// Run both default-threshold detectors against the newest window.
    pub fn detect(&self) -> Result<WindowReport, NetflowError> {
        let view = self
            .server
            .pin_latest()
            .inspect_err(|_| self.metrics.record_error())?;
        self.detect_snapshot(view.snapshot())
    }

    /// Run both default-threshold detectors against a held window.
    pub fn detect_snapshot(
        &self,
        snap: &Arc<EpochSnapshot<TrafficSemiring>>,
    ) -> Result<WindowReport, NetflowError> {
        let scans = self.query_snapshot(
            snap,
            &NetflowQuery::ScanSuspects {
                min_fanout: self.config.scan_fanout,
            },
        );
        let ddos = self.query_snapshot(
            snap,
            &NetflowQuery::DdosVictims {
                min_fanin: self.config.ddos_fanin,
            },
        );
        Ok(WindowReport {
            epoch: snap.epoch(),
            scan_suspects: match scans.body {
                NetflowBody::Flagged(v) => v,
                _ => unreachable!("scan query answers Flagged"),
            },
            ddos_victims: match ddos.body {
                NetflowBody::Flagged(v) => v,
                _ => unreachable!("ddos query answers Flagged"),
            },
        })
    }

    /// Frozen netflow counters (windows, queries, detections).
    pub fn metrics(&self) -> NetflowMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The detector context's kernel registry: reduce/top-k/select/
    /// rollup traffic from the query surface.
    pub fn kernel_metrics(&self) -> hypersparse::MetricsSnapshot {
        self.ctx.metrics().snapshot()
    }

    /// The full Prometheus text exposition: pipeline stages and kernel
    /// counters, serving counters, netflow counters and per-detector
    /// histograms, and the detector-kernel registry — one scrape body.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.windows.pipeline().render_prometheus();
        out.push_str(&self.server.metrics().render_prometheus());
        out.push_str(&self.metrics.snapshot().render_prometheus());
        out.push_str(&self.kernel_metrics().render_prometheus());
        out
    }

    /// Graceful shutdown of the pipeline shard workers.
    pub fn shutdown(self) -> Result<(), NetflowError> {
        self.windows.shutdown()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, TrafficGen};

    fn service(shards: usize) -> NetflowService {
        // Detector thresholds must clear the benign baseline: the
        // heavy-tailed head of a 512-host population at 4000 events
        // peaks under ~200 distinct peers, the episodes sit well above.
        NetflowService::new(
            NetflowConfig::new()
                .with_pipeline(PipelineConfig::new().with_shards(shards))
                .with_thresholds(256, 256),
        )
    }

    #[test]
    fn end_to_end_detects_injected_episodes() {
        let gen = TrafficGen::new(
            GenConfig::new()
                .with_hosts(512)
                .with_events_per_window(4000)
                .with_scan(1, 400)
                .with_ddos(1, 350),
        );
        let svc = service(2);
        // Window 0: clean traffic — no detections at the thresholds.
        svc.ingest(&gen.window(0)).unwrap();
        svc.close_window().unwrap();
        let clean = svc.detect().unwrap();
        assert!(clean.scan_suspects.is_empty(), "{:?}", clean.scan_suspects);
        assert!(clean.ddos_victims.is_empty(), "{:?}", clean.ddos_victims);

        // Window 1: both episodes must be flagged (zero false negatives).
        svc.ingest(&gen.window(1)).unwrap();
        svc.close_window().unwrap();
        let report = svc.detect().unwrap();
        assert_eq!(report.epoch, 2);
        let scan_src = cidr::ip_key(match gen.episodes()[0] {
            crate::gen::Episode::Scan { source, .. } => source,
            _ => unreachable!(),
        });
        let ddos_dst = cidr::ip_key(match gen.episodes()[1] {
            crate::gen::Episode::Ddos { victim, .. } => victim,
            _ => unreachable!(),
        });
        assert!(report
            .scan_suspects
            .iter()
            .any(|(s, d)| *s == scan_src && *d >= 400));
        assert!(report
            .ddos_victims
            .iter()
            .any(|(s, d)| *s == ddos_dst && *d >= 350));
        svc.shutdown().unwrap();
    }

    #[test]
    fn typed_queries_answer_against_retained_windows() {
        let svc = service(1);
        svc.ingest(&[(1, 2, 10), (1, 3, 5), (4, 2, 1)]).unwrap();
        svc.close_window().unwrap();

        let talkers = svc.query(&NetflowQuery::TopTalkers { k: 1 }).unwrap();
        assert_eq!(talkers.epoch, 1);
        assert_eq!(
            talkers.body.as_volumes().unwrap(),
            &[("000.000.000.001".to_string(), 15)]
        );
        let listeners = svc.query(&NetflowQuery::TopListeners { k: 2 }).unwrap();
        assert_eq!(
            listeners.body.as_volumes().unwrap(),
            &[
                ("000.000.000.002".to_string(), 11),
                ("000.000.000.003".to_string(), 5)
            ]
        );
        let drill = svc
            .query(&NetflowQuery::SuspectTraffic { sources: vec![1] })
            .unwrap();
        assert_eq!(drill.body.as_flows().unwrap().len(), 2);

        // The serving layer sees the same window under the netflow schema.
        let resp = svc
            .server()
            .query(&serve::QueryRequest::Neighbors {
                view: serve::View::Triple,
                host: "000.000.000.001".into(),
            })
            .unwrap();
        assert_eq!(
            resp.body.as_hosts().unwrap(),
            &["000.000.000.002".to_string(), "000.000.000.003".to_string()]
        );

        // Metrics partitioned by class; detector kernel calls recorded.
        let m = svc.metrics();
        assert_eq!(m.queries, 3);
        assert_eq!(m.windows_closed, 1);
        assert!(svc.kernel_metrics().kernel(hypersparse::Kernel::TopK).calls >= 2);
        svc.shutdown().unwrap();
    }

    #[test]
    fn rollup_query_aggregates_blocks() {
        let svc = service(1);
        // Two /16 sibling sources, one distinct /16.
        svc.ingest(&[
            (cidr::ip(10, 1, 0, 5), cidr::ip(10, 9, 0, 1), 3),
            (cidr::ip(10, 1, 200, 7), cidr::ip(10, 9, 4, 2), 4),
            (cidr::ip(10, 2, 0, 1), cidr::ip(10, 9, 0, 1), 1),
        ])
        .unwrap();
        svc.close_window().unwrap();
        let resp = svc
            .query(&NetflowQuery::Rollup { prefix: 16, k: 8 })
            .unwrap();
        let blocks = resp.body.as_blocks().unwrap();
        assert_eq!(
            blocks[0],
            (
                "010.001.000.000/16".to_string(),
                "010.009.000.000/16".to_string(),
                7
            )
        );
        assert_eq!(blocks.len(), 2);
        assert!(
            svc.kernel_metrics()
                .kernel(hypersparse::Kernel::Rollup)
                .calls
                >= 1
        );
        svc.shutdown().unwrap();
    }

    #[test]
    fn rollup_query_at_slash_zero_folds_all_traffic() {
        // The /0 path end-to-end through the service: every flow in the
        // window folds into the single whole-address-space block, and
        // asking twice (idempotence at the query layer) returns the
        // same answer.
        let svc = service(1);
        svc.ingest(&[
            (cidr::ip(10, 1, 0, 5), cidr::ip(192, 168, 0, 1), 3),
            (cidr::ip(172, 16, 3, 9), cidr::ip(8, 8, 8, 8), 4),
            (cidr::ip(255, 255, 255, 254), cidr::ip(0, 0, 0, 1), 1),
        ])
        .unwrap();
        svc.close_window().unwrap();
        let resp = svc
            .query(&NetflowQuery::Rollup { prefix: 0, k: 8 })
            .unwrap();
        let blocks = resp.body.as_blocks().unwrap();
        assert_eq!(
            blocks,
            &[(
                "000.000.000.000/0".to_string(),
                "000.000.000.000/0".to_string(),
                8
            )]
        );
        let again = svc
            .query(&NetflowQuery::Rollup { prefix: 0, k: 8 })
            .unwrap();
        assert_eq!(again.body.as_blocks().unwrap(), blocks);
        svc.shutdown().unwrap();
    }

    #[test]
    fn standing_detectors_fold_deltas_and_reset_on_rotation() {
        let svc = NetflowService::new(
            NetflowConfig::new()
                .with_pipeline(PipelineConfig::new().with_shards(2))
                .with_thresholds(3, 3),
        );
        // Wave 1: a scanner warming up (2 distinct destinations).
        svc.ingest(&[(7, 100, 1), (7, 101, 1), (1, 2, 5)]).unwrap();
        let (epoch1, delta1) = svc.refresh().unwrap();
        assert_eq!(delta1, 3, "first wave's delta covers everything");
        let none = svc
            .query(&NetflowQuery::StandingScanSuspects { min_fanout: 3 })
            .unwrap();
        assert_eq!(none.epoch, epoch1);
        assert!(none.body.as_flagged().unwrap().is_empty());

        // Wave 2: the scanner crosses the threshold; a DDoS converges.
        svc.ingest(&[(7, 102, 1), (7, 100, 9), (3, 50, 1), (4, 50, 1), (5, 50, 1)])
            .unwrap();
        let (epoch2, delta2) = svc.refresh().unwrap();
        // The repeat flow (7,100) reappears in the delta (it ⊕-merges
        // into the full view); the degree state must *not* recount it.
        assert_eq!(delta2, 5);
        let scans = svc
            .query(&NetflowQuery::StandingScanSuspects { min_fanout: 3 })
            .unwrap();
        assert_eq!(scans.epoch, epoch2);
        assert_eq!(
            scans.body.as_flagged().unwrap(),
            &[("000.000.000.007".to_string(), 3)]
        );
        // The standing answer matches the scratch detector on the same
        // published cut, order included.
        let scratch = svc
            .query(&NetflowQuery::ScanSuspects { min_fanout: 3 })
            .unwrap();
        assert_eq!(scans.body, scratch.body);
        let ddos = svc
            .query(&NetflowQuery::StandingDdosVictims { min_fanin: 3 })
            .unwrap();
        assert_eq!(
            ddos.body.as_flagged().unwrap(),
            &[("000.000.000.050".to_string(), 3)]
        );

        // Rotation: the closing delta folds (exactly once), then the
        // standing state resets with the window.
        svc.close_window().unwrap();
        let after = svc
            .query(&NetflowQuery::StandingScanSuspects { min_fanout: 1 })
            .unwrap();
        assert!(after.body.as_flagged().unwrap().is_empty());

        // Delta maintenance billed to the shared kernel registry.
        let dd = svc
            .kernel_metrics()
            .kernel(hypersparse::Kernel::DeltaDegree);
        assert!(dd.calls >= 3, "two refresh waves + the closing delta");

        // The standing view's latency histogram rides the pipeline
        // exposition; the new detector classes ride the netflow one.
        let text = svc.render_prometheus();
        assert!(text.contains("pipeline_standing_updates_total{view=\"detectors\"}"));
        assert!(text.contains("detector=\"standing_scan\""));
        svc.shutdown().unwrap();
    }

    #[test]
    fn prometheus_exposition_spans_all_layers() {
        let svc = service(1);
        svc.ingest(&[(1, 2, 1)]).unwrap();
        svc.close_window().unwrap();
        let _ = svc
            .query(&NetflowQuery::ScanSuspects { min_fanout: 1 })
            .unwrap();
        let text = svc.render_prometheus();
        for needle in [
            "pipeline_events_ingested_total",
            "serve_queries_total",
            "netflow_windows_closed_total",
            "netflow_query_latency_seconds_bucket{detector=\"scan_suspects\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in exposition");
        }
        svc.shutdown().unwrap();
    }
}
