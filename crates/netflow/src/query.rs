//! The typed netflow query surface.
//!
//! Detector and analytics queries against closed traffic windows,
//! mirroring the shape of [`serve::QueryRequest`]: one request enum,
//! one class-per-histogram-bucket enum, responses stamped with the
//! epoch (= window id) they were answered at. Endpoints come back as
//! zero-padded dotted quads (the [`hyperspace_core::cidr`] string
//! encoding), so responses join directly against the serving layer's
//! netflow schema records.

use std::fmt;

use hyperspace_core::cidr::PrefixLen;

/// One analytics query against a closed traffic window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetflowQuery {
    /// The `k` sources sending the most packets (volume heavy hitters).
    TopTalkers {
        /// How many heavy hitters to return.
        k: usize,
    },
    /// The `k` destinations receiving the most packets.
    TopListeners {
        /// How many heavy hitters to return.
        k: usize,
    },
    /// Horizontal-scan detector: sources contacting at least
    /// `min_fanout` distinct destinations.
    ScanSuspects {
        /// Distinct-destination threshold.
        min_fanout: u64,
    },
    /// Fan-in-DDoS detector: destinations contacted by at least
    /// `min_fanin` distinct sources.
    DdosVictims {
        /// Distinct-source threshold.
        min_fanin: u64,
    },
    /// Masked drill-down: every flow from the named source addresses.
    SuspectTraffic {
        /// Source addresses to extract (need not be sorted).
        sources: Vec<u32>,
    },
    /// CIDR rollup: the `k` busiest block→block flows at `/prefix`
    /// resolution.
    Rollup {
        /// CIDR prefix length (8–32).
        prefix: PrefixLen,
        /// How many block pairs to return.
        k: usize,
    },
    /// Standing horizontal-scan detector: answers from the service's
    /// incrementally maintained fan-out state (updated `O(Δ)` per
    /// delta wave) instead of rescanning a window snapshot.
    StandingScanSuspects {
        /// Distinct-destination threshold.
        min_fanout: u64,
    },
    /// Standing fan-in-DDoS detector over the incrementally maintained
    /// fan-in state.
    StandingDdosVictims {
        /// Distinct-source threshold.
        min_fanin: u64,
    },
}

impl NetflowQuery {
    /// The request's class (histogram bucket).
    pub fn class(&self) -> NetflowQueryClass {
        match self {
            NetflowQuery::TopTalkers { .. } => NetflowQueryClass::TopTalkers,
            NetflowQuery::TopListeners { .. } => NetflowQueryClass::TopListeners,
            NetflowQuery::ScanSuspects { .. } => NetflowQueryClass::ScanSuspects,
            NetflowQuery::DdosVictims { .. } => NetflowQueryClass::DdosVictims,
            NetflowQuery::SuspectTraffic { .. } => NetflowQueryClass::Drilldown,
            NetflowQuery::Rollup { .. } => NetflowQueryClass::Rollup,
            NetflowQuery::StandingScanSuspects { .. } => NetflowQueryClass::StandingScan,
            NetflowQuery::StandingDdosVictims { .. } => NetflowQueryClass::StandingDdos,
        }
    }

    /// Whether this query answers from standing (incrementally
    /// maintained) state rather than a window snapshot.
    pub fn is_standing(&self) -> bool {
        matches!(
            self,
            NetflowQuery::StandingScanSuspects { .. } | NetflowQuery::StandingDdosVictims { .. }
        )
    }
}

/// Per-detector latency buckets (the Prometheus `detector` label).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetflowQueryClass {
    /// Source volume heavy hitters.
    TopTalkers,
    /// Destination volume heavy hitters.
    TopListeners,
    /// Horizontal-scan detection.
    ScanSuspects,
    /// Fan-in-DDoS detection.
    DdosVictims,
    /// Masked traffic drill-downs.
    Drilldown,
    /// CIDR block rollups.
    Rollup,
    /// Standing scan detection (incremental fan-out state).
    StandingScan,
    /// Standing DDoS detection (incremental fan-in state).
    StandingDdos,
}

impl NetflowQueryClass {
    /// Every class, in histogram-index order.
    pub const ALL: [NetflowQueryClass; 8] = [
        NetflowQueryClass::TopTalkers,
        NetflowQueryClass::TopListeners,
        NetflowQueryClass::ScanSuspects,
        NetflowQueryClass::DdosVictims,
        NetflowQueryClass::Drilldown,
        NetflowQueryClass::Rollup,
        NetflowQueryClass::StandingScan,
        NetflowQueryClass::StandingDdos,
    ];

    /// Stable lowercase label (the Prometheus `detector` label value).
    pub fn label(self) -> &'static str {
        match self {
            NetflowQueryClass::TopTalkers => "top_talkers",
            NetflowQueryClass::TopListeners => "top_listeners",
            NetflowQueryClass::ScanSuspects => "scan_suspects",
            NetflowQueryClass::DdosVictims => "ddos_victims",
            NetflowQueryClass::Drilldown => "drilldown",
            NetflowQueryClass::Rollup => "rollup",
            NetflowQueryClass::StandingScan => "standing_scan",
            NetflowQueryClass::StandingDdos => "standing_ddos",
        }
    }

    /// Index into per-class arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            NetflowQueryClass::TopTalkers => 0,
            NetflowQueryClass::TopListeners => 1,
            NetflowQueryClass::ScanSuspects => 2,
            NetflowQueryClass::DdosVictims => 3,
            NetflowQueryClass::Drilldown => 4,
            NetflowQueryClass::Rollup => 5,
            NetflowQueryClass::StandingScan => 6,
            NetflowQueryClass::StandingDdos => 7,
        }
    }
}

impl fmt::Display for NetflowQueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The payload of a [`NetflowResponse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetflowBody {
    /// `(endpoint, packet volume)` — heavy-hitter answers, volume
    /// descending, address ascending on ties.
    Volumes(Vec<(String, u64)>),
    /// `(endpoint, distinct-peer degree)` — detector answers, degree
    /// descending, address ascending on ties.
    Flagged(Vec<(String, u64)>),
    /// `(src, dst, packets)` flows — drill-down answers, row-major.
    Flows(Vec<(String, String, u64)>),
    /// `(src block, dst block, packets)` — rollup answers, volume
    /// descending.
    Blocks(Vec<(String, String, u64)>),
}

impl NetflowBody {
    /// The volumes payload, if this is a heavy-hitter response.
    pub fn as_volumes(&self) -> Option<&[(String, u64)]> {
        match self {
            NetflowBody::Volumes(v) => Some(v),
            _ => None,
        }
    }

    /// The flagged-endpoint payload, if this is a detector response.
    pub fn as_flagged(&self) -> Option<&[(String, u64)]> {
        match self {
            NetflowBody::Flagged(v) => Some(v),
            _ => None,
        }
    }

    /// The flow-list payload, if this is a drill-down response.
    pub fn as_flows(&self) -> Option<&[(String, String, u64)]> {
        match self {
            NetflowBody::Flows(v) => Some(v),
            _ => None,
        }
    }

    /// The block-pair payload, if this is a rollup response.
    pub fn as_blocks(&self) -> Option<&[(String, String, u64)]> {
        match self {
            NetflowBody::Blocks(v) => Some(v),
            _ => None,
        }
    }
}

/// An answered netflow query: the window (epoch) it is consistent with
/// and the typed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetflowResponse {
    /// The closed window (pipeline epoch) this answer describes.
    pub epoch: u64,
    /// The payload.
    pub body: NetflowBody,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_stable_labels_and_indexes() {
        assert_eq!(NetflowQueryClass::ALL.len(), 8);
        for (i, c) in NetflowQueryClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(NetflowQueryClass::ScanSuspects.to_string(), "scan_suspects");
        assert_eq!(NetflowQueryClass::StandingScan.to_string(), "standing_scan");
        assert_eq!(
            NetflowQuery::Rollup { prefix: 16, k: 5 }.class(),
            NetflowQueryClass::Rollup
        );
        let standing = NetflowQuery::StandingDdosVictims { min_fanin: 3 };
        assert!(standing.is_standing());
        assert_eq!(standing.class(), NetflowQueryClass::StandingDdos);
        assert!(!NetflowQuery::TopTalkers { k: 1 }.is_standing());
    }
}
