//! Synthetic packet-capture generator.
//!
//! Deterministic per seed, heavy-tailed, and labelled: the generator
//! produces per-window event streams `(src_ip, dst_ip, packets)` whose
//! endpoint popularity follows a log-uniform (Zipf-like) law — a few
//! busy servers, a long tail of quiet hosts, exactly the shape that
//! makes real traffic matrices hypersparse — and injects configurable
//! **attack episodes** (horizontal scans, fan-in DDoS) into chosen
//! windows. Because every episode is recorded as ground truth
//! ([`TrafficGen::episodes`]), detector tests can assert *zero false
//! negatives* instead of eyeballing.
//!
//! Addresses: benign hosts draw from `10.0.0.0/8` (rank `r` maps to the
//! address `10.r₁.r₂.r₃`), so CIDR rollups of generated traffic have
//! real block structure. Attack endpoints draw from the same space,
//! offset away from the popular head so scans/DDoS never hide inside
//! the benign hot set.

use hyperspace_core::cidr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One `(src, dst, packets)` packet-flow event.
pub type FlowEvent = (u32, u32, u64);

/// Service ports generated destinations listen on; a destination's port
/// is a pure function of its address, so the same host always serves
/// the same service across windows.
const SERVICE_PORTS: [u16; 6] = [22, 25, 53, 80, 443, 5432];

/// SplitMix64 finalizer — a cheap, seedless bit mixer for deriving
/// deterministic per-event attributes (ports) from addresses.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An injected attack episode — the generator's ground-truth label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Episode {
    /// A horizontal scan in `window`: `source` probes `fanout` distinct
    /// destinations (one packet each).
    Scan {
        /// Window index the episode lands in.
        window: usize,
        /// The scanning source address.
        source: u32,
        /// Distinct destinations probed.
        fanout: u32,
    },
    /// A fan-in DDoS in `window`: `sources` distinct attackers flood
    /// `victim` (one packet each).
    Ddos {
        /// Window index the episode lands in.
        window: usize,
        /// The flooded destination address.
        victim: u32,
        /// Distinct attacking sources.
        sources: u32,
    },
}

impl Episode {
    /// The window this episode was injected into.
    pub fn window(&self) -> usize {
        match *self {
            Episode::Scan { window, .. } | Episode::Ddos { window, .. } => window,
        }
    }
}

/// Generator parameters. Defaults model a small busy edge network:
/// 4096 hosts, 20k events per window, episodes off (inject explicitly).
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Benign endpoint population (addresses allocated from
    /// `10.0.0.0/8` by popularity rank).
    pub hosts: u32,
    /// Benign flow events per window.
    pub events_per_window: usize,
    /// RNG seed; every stream is a pure function of the config.
    pub seed: u64,
    /// Attack episodes to inject (any number per window).
    pub episodes: Vec<Episode>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            hosts: 4096,
            events_per_window: 20_000,
            seed: 0xD4A7,
            episodes: Vec::new(),
        }
    }
}

impl GenConfig {
    /// Default parameters (see type docs).
    pub fn new() -> Self {
        GenConfig::default()
    }

    /// Builder-style endpoint population.
    pub fn with_hosts(mut self, hosts: u32) -> Self {
        assert!(hosts >= 2, "need at least two hosts");
        self.hosts = hosts;
        self
    }

    /// Builder-style benign event volume per window.
    pub fn with_events_per_window(mut self, n: usize) -> Self {
        self.events_per_window = n;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject a horizontal scan into `window`. The attacker address sits
    /// outside the benign popularity head (`10.128.x.x` block offset by
    /// episode count so multiple episodes never collide).
    pub fn with_scan(mut self, window: usize, fanout: u32) -> Self {
        let n = self.episodes.len() as u32;
        self.episodes.push(Episode::Scan {
            window,
            source: cidr::ip(10, 128, (n >> 8) as u8, n as u8),
            fanout,
        });
        self
    }

    /// Inject a fan-in DDoS into `window`; the victim sits in the
    /// `10.129.x.x` block, disjoint from scan attackers and the benign
    /// head.
    pub fn with_ddos(mut self, window: usize, sources: u32) -> Self {
        let n = self.episodes.len() as u32;
        self.episodes.push(Episode::Ddos {
            window,
            victim: cidr::ip(10, 129, (n >> 8) as u8, n as u8),
            sources,
        });
        self
    }
}

/// The seeded generator: an iterator-style factory of per-window event
/// batches plus the episode ground truth.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    config: GenConfig,
}

impl TrafficGen {
    /// A generator for `config`.
    pub fn new(config: GenConfig) -> Self {
        TrafficGen { config }
    }

    /// The configuration this generator runs.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// The injected ground truth, all windows.
    pub fn episodes(&self) -> &[Episode] {
        &self.config.episodes
    }

    /// The injected ground truth for one window.
    pub fn episodes_in(&self, window: usize) -> Vec<Episode> {
        self.config
            .episodes
            .iter()
            .filter(|e| e.window() == window)
            .copied()
            .collect()
    }

    /// The address of benign popularity rank `r` (0 = most popular):
    /// `10.r₁.r₂.r₃` with the rank in the low 24 bits.
    pub fn host_addr(&self, rank: u32) -> u32 {
        debug_assert!(rank < (1 << 24));
        cidr::ip(10, 0, 0, 0) | rank
    }

    /// Draw one endpoint by heavy-tailed popularity: ranks are
    /// log-uniform over `[0, hosts)`, so rank 0 is drawn orders of
    /// magnitude more often than the tail — the Zipf-like shape of real
    /// endpoint popularity.
    fn draw_host(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        let rank = (f64::from(self.config.hosts).powf(u) - 1.0) as u32;
        self.host_addr(rank.min(self.config.hosts - 1))
    }

    /// Generate window `w`'s event batch: benign heavy-tailed flows with
    /// this window's episodes appended. A pure function of
    /// `(config, w)` — regenerating any window is bit-identical, and
    /// windows are independent (each draws from its own seeded stream).
    pub fn window(&self, w: usize) -> Vec<FlowEvent> {
        // Per-window seed: windows can regenerate independently.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ ((w as u64 + 1) * 0x9E37));
        let mut events = Vec::with_capacity(self.config.events_per_window);
        for _ in 0..self.config.events_per_window {
            let src = self.draw_host(&mut rng);
            let mut dst = self.draw_host(&mut rng);
            if dst == src {
                // Self-flows carry no analytic signal; redraw once and
                // fall back to the neighbor address.
                dst = self.draw_host(&mut rng);
                if dst == src {
                    dst ^= 1;
                }
            }
            // Busy pairs exchange short bursts, not single packets.
            let packets = 1 + rng.gen_range(0..4u64);
            events.push((src, dst, packets));
        }
        for ep in self.episodes_in(w) {
            match ep {
                Episode::Scan { source, fanout, .. } => {
                    // Probe a contiguous block: scans sweep address
                    // ranges in order.
                    let base = cidr::ip(10, 130, 0, 0);
                    for d in 0..fanout {
                        events.push((source, base + d, 1));
                    }
                }
                Episode::Ddos {
                    victim, sources, ..
                } => {
                    let base = cidr::ip(10, 131, 0, 0);
                    for s in 0..sources {
                        events.push((base + s, victim, 1));
                    }
                }
            }
        }
        events
    }

    /// Socket-resolution variant of [`TrafficGen::window`]: the same
    /// event stream (same addresses, same packet counts, same order)
    /// with ports attached — destination ports are service ports chosen
    /// per destination address, source ports are ephemeral
    /// (`49152..65536`) derived per event. A pure function of
    /// `(config, w)`, and rolling the port component away recovers
    /// [`TrafficGen::window`]'s traffic exactly (proven in
    /// `flow::tests`).
    pub fn socket_window(&self, w: usize) -> Vec<crate::flow::SocketFlowEvent> {
        self.window(w)
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst, packets))| {
                let dst_port =
                    SERVICE_PORTS[(mix(u64::from(dst)) % SERVICE_PORTS.len() as u64) as usize];
                let src_port = 49_152 + (mix(u64::from(src) ^ ((i as u64) << 32)) % 16_384) as u16;
                (src, src_port, dst, dst_port, packets)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn windows_are_deterministic_and_independent() {
        let g = TrafficGen::new(GenConfig::new().with_events_per_window(500).with_seed(42));
        assert_eq!(g.window(0), g.window(0));
        assert_ne!(g.window(0), g.window(1));
        let g2 = TrafficGen::new(GenConfig::new().with_events_per_window(500).with_seed(43));
        assert_ne!(g.window(0), g2.window(0));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let g = TrafficGen::new(
            GenConfig::new()
                .with_hosts(1024)
                .with_events_per_window(20_000),
        );
        let events = g.window(0);
        let mut counts = std::collections::HashMap::new();
        for (s, _, _) in &events {
            *counts.entry(*s).or_insert(0u64) += 1;
        }
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        // Head dominance: the busiest host alone beats the entire
        // bottom half of active hosts combined.
        let tail: u64 = by_count[by_count.len() / 2..].iter().sum();
        assert!(
            by_count[0] > tail,
            "head {} vs tail-half {tail}",
            by_count[0]
        );
        // And the matrix is sparse: far fewer distinct pairs than a
        // dense 1024² grid.
        let pairs: HashSet<(u32, u32)> = events.iter().map(|&(s, d, _)| (s, d)).collect();
        assert!(pairs.len() < 1024 * 1024 / 10);
    }

    #[test]
    fn episodes_land_in_their_window_with_exact_shape() {
        let g = TrafficGen::new(
            GenConfig::new()
                .with_events_per_window(1000)
                .with_scan(1, 300)
                .with_ddos(2, 250),
        );
        assert_eq!(g.episodes().len(), 2);
        let (scan_src, ddos_victim) = match (g.episodes()[0], g.episodes()[1]) {
            (Episode::Scan { source, .. }, Episode::Ddos { victim, .. }) => (source, victim),
            other => panic!("unexpected: {other:?}"),
        };
        // Window 0 is clean.
        assert!(g
            .window(0)
            .iter()
            .all(|&(s, d, _)| s != scan_src && d != ddos_victim));
        // Window 1 carries exactly the scan: 300 distinct destinations.
        let dsts: HashSet<u32> = g
            .window(1)
            .iter()
            .filter(|&&(s, _, _)| s == scan_src)
            .map(|&(_, d, _)| d)
            .collect();
        assert_eq!(dsts.len(), 300);
        // Window 2 carries exactly the DDoS: 250 distinct sources.
        let srcs: HashSet<u32> = g
            .window(2)
            .iter()
            .filter(|&&(_, d, _)| d == ddos_victim)
            .map(|&(s, _, _)| s)
            .collect();
        assert_eq!(srcs.len(), 250);
    }

    #[test]
    fn attack_addresses_stay_out_of_the_benign_space() {
        let g = TrafficGen::new(
            GenConfig::new()
                .with_hosts(4096)
                .with_scan(0, 10)
                .with_ddos(0, 10),
        );
        for ep in g.episodes() {
            match *ep {
                Episode::Scan { source, .. } => assert_eq!(source >> 24, 10),
                Episode::Ddos { victim, .. } => assert_eq!(victim >> 24, 10),
            }
        }
        // Benign hosts live in 10.0.0.0/11 for hosts ≤ 2^21; attacker
        // blocks 10.128/10.129 can't collide.
        assert_eq!(g.host_addr(4095) >> 21, 10 << 3);
    }
}
