//! Real-time network-traffic analytics over hypersparse traffic
//! matrices — the paper's headline deployment, end to end.
//!
//! Internet-scale traffic analysis keys a hypersparse associative array
//! by source and destination address, `A(src, dst) = packets`, and asks
//! streaming questions of it: who talks the most, who is scanning, who
//! is being flooded, what does the traffic look like at `/16`
//! resolution. This crate composes the rest of the workspace into that
//! service:
//!
//! * [`gen`] — a seeded synthetic packet-capture generator:
//!   heavy-tailed endpoint popularity and labelled scan/DDoS attack
//!   episodes, so detector tests assert zero false negatives against
//!   ground truth;
//! * [`window`] — windowed ingest through the sharded
//!   [`pipeline::Pipeline`], with epoch-aligned window rotation
//!   (snapshot + reset behind one marker wave);
//! * [`query`] — the typed detector/analytics query surface
//!   ([`NetflowQuery`]), answered with the `_ctx` kernel stack:
//!   heavy hitters via reduce + top-k, scan/DDoS signatures via pattern
//!   degree distributions, drill-downs via masked selection, and CIDR
//!   block rollups via [`hyperspace_core::cidr`];
//! * [`flow`] — socket-resolution (`ip.port`) flow keys over the
//!   complex-index layer ([`hyperspace_core::cxkey`]): socket × socket
//!   matrices, an `O(nnz)` port rollup proven equal to host-keyed
//!   ingest, and per-socket heavy hitters;
//! * [`service`] — [`NetflowService`]: the handle tying generator
//!   output, windowed ingest, an embedded [`serve::QueryServer`]
//!   (netflow schema — SQL over flows works too), per-detector latency
//!   histograms, and a single all-layer Prometheus exposition together.
//!
//! Everything is deterministic: generator streams are pure functions of
//! their seed, window contents are bit-identical at any shard count
//! (the pipeline's marker-wave contract), and detector answers are pure
//! functions of window contents with total, tie-broken orderings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod flow;
pub mod gen;
pub mod metrics;
pub mod query;
pub mod service;
pub mod window;

pub use error::NetflowError;
pub use flow::{SocketFlowEvent, SOCKET_SPACE};
pub use gen::{Episode, FlowEvent, GenConfig, TrafficGen};
pub use metrics::{NetflowMetrics, NetflowMetricsSnapshot};
pub use query::{NetflowBody, NetflowQuery, NetflowQueryClass, NetflowResponse};
pub use service::{NetflowConfig, NetflowService, WindowReport};
pub use window::{TrafficSemiring, TrafficWindows, IP_SPACE};
