//! Pipeline deployment parameters.

use hypersparse::StreamConfig;

/// Tunable parameters for a [`crate::Pipeline`].
///
/// Defaults are deterministic (never derived from the machine): 4
/// shards, 1024-message channels, default stream hierarchy, sequential
/// per-shard merges. The shard count is part of the pipeline's identity
/// — the same event sequence at the same shard count yields bit-identical
/// snapshots, and checkpoints restore only at their recorded shard count.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of shards = worker threads. Events hash-partition by row
    /// key, so a row lives wholly inside one shard. Must be ≥ 1.
    pub shards: usize,
    /// Bounded capacity of each shard's command channel, in messages.
    /// This is the backpressure knob: when a shard falls behind,
    /// `ingest` blocks and `try_ingest` returns
    /// [`crate::PipelineError::Full`] instead of queueing unboundedly.
    /// Must be ≥ 1.
    pub channel_capacity: usize,
    /// Hierarchy parameters for each shard's `StreamingMatrix`.
    pub stream: StreamConfig,
    /// Thread cap for each shard's internal ⊕-merges (its `OpCtx`).
    /// Shards are themselves the parallelism axis, so `1` (sequential
    /// merges) is the default; raise it only for few-shard deployments
    /// with huge layers.
    pub merge_threads: usize,
    /// Checkpoint generations kept on disk. Older generations are pruned
    /// after a successful commit; keeping ≥ 2 preserves a fallback if
    /// the newest generation is later found corrupt. Must be ≥ 1.
    pub keep_generations: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            shards: 4,
            channel_capacity: 1024,
            stream: StreamConfig::default(),
            merge_threads: 1,
            keep_generations: 2,
        }
    }
}

impl PipelineConfig {
    /// The default configuration.
    pub fn new() -> Self {
        PipelineConfig::default()
    }

    /// Builder-style shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shards must be ≥ 1");
        self.shards = shards;
        self
    }

    /// Builder-style channel capacity (messages per shard).
    pub fn with_channel_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "channel_capacity must be ≥ 1");
        self.channel_capacity = cap;
        self
    }

    /// Builder-style stream hierarchy parameters.
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Builder-style merge-thread cap.
    pub fn with_merge_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "merge_threads must be ≥ 1");
        self.merge_threads = threads;
        self
    }

    /// Builder-style checkpoint retention.
    pub fn with_keep_generations(mut self, keep: usize) -> Self {
        assert!(keep >= 1, "keep_generations must be ≥ 1");
        self.keep_generations = keep;
        self
    }
}

/// Deterministic shard routing: SplitMix64 finalizer over the row key.
///
/// Stable across runs, platforms, and releases — the checkpoint format
/// depends on this staying fixed, since shard files are only valid for
/// the routing that filled them. Rows (not individual cells) are the
/// unit of partitioning so that every ⊕-duplicate of a key lands in one
/// shard, making the global snapshot a disjoint union.
pub fn shard_of(row: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let mut x = row.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_deterministic() {
        let c = PipelineConfig::default();
        assert_eq!(c.shards, 4);
        assert_eq!(c.channel_capacity, 1024);
        assert_eq!(c.keep_generations, 2);
    }

    #[test]
    fn routing_is_stable_and_spread() {
        // Pinned values: the checkpoint format depends on these.
        assert_eq!(shard_of(0, 4), shard_of(0, 4));
        let counts = (0..10_000u64).fold([0usize; 4], |mut acc, r| {
            acc[shard_of(r, 4)] += 1;
            acc
        });
        for c in counts {
            assert!(c > 2000, "skewed routing: {counts:?}");
        }
        assert!((0..100u64).all(|r| shard_of(r, 1) == 0));
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn zero_shards_rejected() {
        let _ = PipelineConfig::new().with_shards(0);
    }
}
