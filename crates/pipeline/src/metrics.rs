//! Pipeline-level observability, layered over the per-shard
//! [`hypersparse::MetricsRegistry`].
//!
//! Shard workers meter their ⊕-merge traffic through their own `OpCtx`
//! (visible as `stream_merge`/`ewise_add` kernel rows); this module adds
//! the *service* counters those registries cannot see: ingest volume,
//! backpressure events, live channel depth, and snapshot/checkpoint
//! latency. All counters are relaxed atomics, updated from caller
//! threads and shard workers concurrently.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use hypersparse::trace::{write_prometheus_header, write_prometheus_histogram};
use hypersparse::{Histogram, HistogramSnapshot, KernelSnapshot, MetricsSnapshot};

/// The pipeline stages whose latency is tracked in log₂ histograms.
///
/// Each variant indexes a [`HistogramSnapshot`] in
/// [`PipelineMetricsSnapshot::stage_latency`] and labels a
/// `pipeline_stage_latency_seconds{stage="…"}` series in the Prometheus
/// exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// One event (or one shard's slice of a batch) accepted into a
    /// shard channel — measures the send path including backpressure.
    Ingest,
    /// Hash-partitioning one `ingest_batch` call across shards.
    Route,
    /// A shard worker folding one `Event`/`Batch` command into its
    /// streaming matrix.
    ShardMerge,
    /// Assembling one epoch snapshot across all shards.
    Snapshot,
    /// Closing one analytics window: snapshot + shard reset.
    Rotate,
    /// Writing one checkpoint to disk.
    Checkpoint,
    /// Restoring pipeline state from a checkpoint.
    Restore,
    /// Applying one epoch's delta to every registered standing view.
    StandingUpdate,
}

impl Stage {
    /// Every stage, in histogram-index order.
    pub const ALL: [Stage; 8] = [
        Stage::Ingest,
        Stage::Route,
        Stage::ShardMerge,
        Stage::Snapshot,
        Stage::Rotate,
        Stage::Checkpoint,
        Stage::Restore,
        Stage::StandingUpdate,
    ];

    /// Stable lower-snake name used as the `stage` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Route => "route",
            Stage::ShardMerge => "shard_merge",
            Stage::Snapshot => "snapshot",
            Stage::Rotate => "rotate",
            Stage::Checkpoint => "checkpoint",
            Stage::Restore => "restore",
            Stage::StandingUpdate => "standing_update",
        }
    }
}

/// Live service counters for one pipeline (shared via `Arc`).
#[derive(Debug)]
pub struct PipelineMetrics {
    events: AtomicU64,
    batches: AtomicU64,
    full_rejections: AtomicU64,
    snapshots: AtomicU64,
    snapshot_ns: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_ns: AtomicU64,
    stage_latency: [Histogram; Stage::ALL.len()],
    depth: Vec<AtomicUsize>,
}

impl PipelineMetrics {
    pub(crate) fn new(shards: usize) -> Self {
        PipelineMetrics {
            events: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            full_rejections: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            snapshot_ns: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_ns: AtomicU64::new(0),
            stage_latency: std::array::from_fn(|_| Histogram::default()),
            depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Fold one stage execution's wall time into its latency histogram.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage_latency[stage as usize].record(elapsed);
    }

    /// Depth is incremented *before* a send is attempted and rolled back
    /// on failure, so the worker-side decrement can never underflow.
    pub(crate) fn depth_inc(&self, shard: usize) {
        self.depth[shard].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn depth_dec(&self, shard: usize) {
        self.depth[shard].fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_accepted(&self, events: u64) {
        self.events.fetch_add(events, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.full_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn seed_events(&self, events: u64) {
        self.events.store(events, Ordering::Relaxed);
    }

    pub(crate) fn record_snapshot(&self, elapsed: Duration) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.snapshot_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_checkpoint(&self, elapsed: Duration) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Messages currently queued (sent, not yet fully processed) on one
    /// shard's channel. A gauge, racy by nature; useful for spotting a
    /// lagging shard.
    pub fn channel_depth(&self, shard: usize) -> usize {
        self.depth[shard].load(Ordering::Relaxed)
    }

    /// Freeze every counter.
    pub fn snapshot(&self) -> PipelineMetricsSnapshot {
        PipelineMetricsSnapshot {
            events_ingested: self.events.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            full_rejections: self.full_rejections.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_ns: self.snapshot_ns.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_ns: self.checkpoint_ns.load(Ordering::Relaxed),
            stage_latency: std::array::from_fn(|i| self.stage_latency[i].snapshot()),
            channel_depths: self
                .depth
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A frozen view of [`PipelineMetrics`].
#[derive(Clone, Debug, Default)]
pub struct PipelineMetricsSnapshot {
    /// Events accepted into shard channels (enqueued, whether or not yet
    /// merged).
    pub events_ingested: u64,
    /// Channel messages those events travelled in (1 per `ingest`, 1 per
    /// shard touched per `ingest_batch`).
    pub batches: u64,
    /// `try_ingest` calls rejected with `Full` (backpressure bites).
    pub full_rejections: u64,
    /// Completed epoch snapshots.
    pub snapshots: u64,
    /// Total wall time spent assembling snapshots, in nanoseconds.
    pub snapshot_ns: u64,
    /// Committed checkpoints.
    pub checkpoints: u64,
    /// Total wall time spent writing checkpoints, in nanoseconds.
    pub checkpoint_ns: u64,
    /// Per-stage latency histograms, indexed by [`Stage`] discriminant.
    pub stage_latency: [HistogramSnapshot; Stage::ALL.len()],
    /// Per-shard channel depth gauges at freeze time.
    pub channel_depths: Vec<usize>,
}

impl PipelineMetricsSnapshot {
    /// Mean snapshot assembly latency (zero if none ran).
    pub fn mean_snapshot_latency(&self) -> Duration {
        self.snapshot_ns
            .checked_div(self.snapshots)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Human-readable service report.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events: {} in {} messages · rejected (Full): {}",
            self.events_ingested, self.batches, self.full_rejections
        );
        let _ = writeln!(
            out,
            "snapshots: {} (mean {:.3} ms) · checkpoints: {} ({:.3} ms total)",
            self.snapshots,
            self.mean_snapshot_latency().as_secs_f64() * 1e3,
            self.checkpoints,
            self.checkpoint_ns as f64 / 1e6
        );
        let _ = writeln!(out, "channel depths: {:?}", self.channel_depths);
        for stage in Stage::ALL {
            let h = self.stage(stage);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "stage {}: {} ops · p50 ≤ {:.3} ms · p99 ≤ {:.3} ms",
                stage.name(),
                h.count(),
                h.quantile(0.50) as f64 / 1e6,
                h.quantile(0.99) as f64 / 1e6,
            );
        }
        out
    }

    /// The latency histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stage_latency[stage as usize]
    }

    /// Render the service counters and stage latency histograms in
    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Covers only what the shard kernel registries cannot see; append
    /// [`MetricsSnapshot::render_prometheus`] of the merged kernel
    /// snapshot (see [`merge_kernel_snapshots`]) for the full picture —
    /// [`crate::Pipeline::render_prometheus`] does exactly that.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        let counters: [(&str, &str, u64); 5] = [
            (
                "pipeline_events_ingested_total",
                "Events accepted into shard channels.",
                self.events_ingested,
            ),
            (
                "pipeline_batches_total",
                "Channel messages those events travelled in.",
                self.batches,
            ),
            (
                "pipeline_full_rejections_total",
                "try_ingest calls rejected with Full (backpressure).",
                self.full_rejections,
            ),
            (
                "pipeline_snapshots_total",
                "Completed epoch snapshots.",
                self.snapshots,
            ),
            (
                "pipeline_checkpoints_total",
                "Committed checkpoints.",
                self.checkpoints,
            ),
        ];
        for (name, help, value) in counters {
            write_prometheus_header(&mut out, name, "counter", help);
            let _ = writeln!(out, "{name} {value}");
        }
        write_prometheus_header(
            &mut out,
            "pipeline_channel_depth",
            "gauge",
            "Messages queued on each shard channel at scrape time.",
        );
        for (shard, depth) in self.channel_depths.iter().enumerate() {
            let _ = writeln!(out, "pipeline_channel_depth{{shard=\"{shard}\"}} {depth}");
        }
        if self.stage_latency.iter().any(|h| h.count() > 0) {
            write_prometheus_header(
                &mut out,
                "pipeline_stage_latency_seconds",
                "histogram",
                "Wall time per pipeline stage execution.",
            );
            for stage in Stage::ALL {
                let h = self.stage(stage);
                if h.count() == 0 {
                    continue;
                }
                let labels = format!("stage=\"{}\"", stage.name());
                write_prometheus_histogram(&mut out, "pipeline_stage_latency_seconds", &labels, h);
            }
        }
        out
    }
}

/// Sum per-shard kernel registries into one workspace-wide
/// [`MetricsSnapshot`] (kernel rows, format switches, workspace and
/// direction counters all add element-wise).
pub fn merge_kernel_snapshots(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut total = MetricsSnapshot::default();
    for part in parts {
        if total.kernels.is_empty() {
            total.kernels = part
                .kernels
                .iter()
                .map(|k| KernelSnapshot {
                    kernel: k.kernel,
                    ..Default::default()
                })
                .collect();
        }
        for (t, p) in total.kernels.iter_mut().zip(&part.kernels) {
            debug_assert_eq!(t.kernel, p.kernel, "registries share Kernel::ALL order");
            t.calls += p.calls;
            t.elapsed_ns += p.elapsed_ns;
            t.nnz_in += p.nnz_in;
            t.nnz_out += p.nnz_out;
            t.flops += p.flops;
            t.latency.merge(&p.latency);
        }
        total.format_switches += part.format_switches;
        total.workspace_hits += part.workspace_hits;
        total.workspace_misses += part.workspace_misses;
        total.mv_push_calls += part.mv_push_calls;
        total.mv_pull_calls += part.mv_pull_calls;
        total.mask_probes += part.mask_probes;
        total.mask_hits += part.mask_hits;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::{Kernel, OpCtx};

    #[test]
    fn counters_accumulate_and_report() {
        let m = PipelineMetrics::new(2);
        m.depth_inc(0);
        m.record_accepted(10);
        m.depth_inc(1);
        m.record_accepted(5);
        m.depth_dec(1);
        m.record_rejected();
        m.record_snapshot(Duration::from_millis(2));
        let snap = m.snapshot();
        assert_eq!(snap.events_ingested, 15);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.full_rejections, 1);
        assert_eq!(snap.channel_depths, vec![1, 0]);
        assert_eq!(m.channel_depth(0), 1);
        assert_eq!(snap.mean_snapshot_latency(), Duration::from_millis(2));
        assert!(snap.report().contains("rejected (Full): 1"));
    }

    #[test]
    fn kernel_snapshots_merge_across_shards() {
        let a = OpCtx::new();
        let b = OpCtx::new();
        a.metrics()
            .record(Kernel::StreamMerge, Duration::from_micros(1), 10, 8, 2, 640);
        b.metrics()
            .record(Kernel::StreamMerge, Duration::from_micros(3), 6, 6, 0, 384);
        b.metrics()
            .record(Kernel::EwiseAdd, Duration::from_micros(1), 4, 4, 0, 256);
        let merged = merge_kernel_snapshots(&[a.metrics().snapshot(), b.metrics().snapshot()]);
        let sm = merged.kernel(Kernel::StreamMerge);
        assert_eq!(sm.calls, 2);
        assert_eq!(sm.nnz_in, 16);
        assert_eq!(sm.flops, 2);
        assert_eq!(merged.kernel(Kernel::EwiseAdd).calls, 1);
        assert_eq!(merge_kernel_snapshots(&[]).total_calls(), 0);
    }
}
