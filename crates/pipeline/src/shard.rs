//! Shard worker threads.
//!
//! Each shard owns one [`StreamingMatrix`] on a dedicated OS thread, fed
//! by a **bounded** MPSC channel. Single ownership is what makes the
//! whole design deterministic: a shard's contents are a pure function of
//! the sequence of events *sent to it*, and per-sender FIFO channel
//! order means that sequence is fixed by the callers, not by scheduling.
//!
//! Snapshots and checkpoints ride the same channel as ingest (marker
//! messages, Chandy–Lamport style), so a marker cleanly cuts each
//! shard's event stream: everything enqueued before it is in, everything
//! after is out — while ingest keeps flowing behind the marker.

use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use hypersparse::{Dcsr, Ix, OpCtx, StreamingMatrix};
use semiring::traits::Semiring;

use crate::checkpoint::{encode_shard, write_shard_file, ShardFileMeta};
use crate::config::PipelineConfig;
use crate::error::PipelineError;
use crate::metrics::{PipelineMetrics, Stage};
use crate::value::PodValue;

/// Reply payload for marker commands that cut a delta: the shard's
/// complete fold paired with the entries since the previous watermark.
pub(crate) type FullAndDelta<S> = (Dcsr<<S as Semiring>::Value>, Dcsr<<S as Semiring>::Value>);

/// One message on a shard's command channel.
pub(crate) enum Command<S: Semiring> {
    /// A single event (the common `ingest` path — no per-event Vec).
    Event(Ix, Ix, S::Value),
    /// A pre-routed batch of events for this shard.
    Batch(Vec<(Ix, Ix, S::Value)>),
    /// Snapshot marker: fold the hierarchy as of this point in the
    /// stream and reply. Ingest enqueued behind the marker is excluded.
    Snapshot {
        /// Where to deliver the fold.
        reply: Sender<Dcsr<S::Value>>,
    },
    /// Incremental snapshot marker: advance the shard's delta watermark
    /// and reply with `(full, delta)` — the complete fold *and* the
    /// entries inserted since the previous watermark, cut at the same
    /// point in the stream so `full(t) = full(t−1) ⊕ delta(t)` holds
    /// across marker waves.
    SnapshotDelta {
        /// Where to deliver `(full fold, delta fold)`.
        reply: Sender<FullAndDelta<S>>,
    },
    /// Window-rotation marker: fold the hierarchy as of this point in
    /// the stream, reply with the fold, and **reset** the shard to empty
    /// so subsequent ingest starts the next window. The reply pairs the
    /// closing window's contents with the closing *delta* (entries since
    /// the last watermark), so standing views can absorb the window's
    /// tail before resetting. Everything enqueued behind the marker
    /// lands in the new window.
    Rotate {
        /// Where to deliver `(closing window fold, closing delta)`.
        reply: Sender<FullAndDelta<S>>,
    },
    /// Checkpoint marker: flush, serialize the hierarchy, write the
    /// shard file, reply with its manifest record.
    Checkpoint {
        /// Checkpoint directory root.
        dir: PathBuf,
        /// Generation being committed.
        generation: u64,
        /// Reply with the written file's metadata (or the I/O error).
        reply: Sender<Result<ShardFileMeta, PipelineError>>,
    },
}

/// A running shard: its channel, join handle, and metered context.
pub(crate) struct Shard<S: Semiring> {
    pub(crate) sender: SyncSender<Command<S>>,
    pub(crate) handle: Option<JoinHandle<()>>,
    pub(crate) ctx: Arc<OpCtx>,
}

impl<S: Semiring> Shard<S> {
    /// Spawn a worker owning `stream`, fed by a channel of
    /// `config.channel_capacity` messages.
    pub(crate) fn spawn(
        index: usize,
        stream: StreamingMatrix<S>,
        config: &PipelineConfig,
        metrics: Arc<PipelineMetrics>,
    ) -> Self
    where
        S::Value: PodValue,
    {
        let ctx = Arc::new(OpCtx::new().with_threads(config.merge_threads));
        let stream = stream.with_ctx(Arc::clone(&ctx));
        let (sender, receiver) = std::sync::mpsc::sync_channel(config.channel_capacity);
        let handle = std::thread::Builder::new()
            .name(format!("pipeline-shard-{index}"))
            .spawn(move || run_worker(index, stream, receiver, metrics))
            .expect("spawning shard worker");
        Shard {
            sender,
            handle: Some(handle),
            ctx,
        }
    }

    /// Non-blocking send; `Full` carries backpressure to the caller.
    pub(crate) fn try_send(&self, index: usize, cmd: Command<S>) -> Result<(), PipelineError> {
        self.sender.try_send(cmd).map_err(|e| match e {
            TrySendError::Full(_) => PipelineError::Full { shard: index },
            TrySendError::Disconnected(_) => PipelineError::ShardTerminated { shard: index },
        })
    }

    /// Blocking send; blocks while the channel is at capacity (bounded
    /// memory — the caller is throttled to the shard's merge rate).
    pub(crate) fn send(&self, index: usize, cmd: Command<S>) -> Result<(), PipelineError> {
        self.sender
            .send(cmd)
            .map_err(|_| PipelineError::ShardTerminated { shard: index })
    }
}

/// The worker loop: drain commands until every sender is dropped, then
/// exit. Dropping the pipeline's senders *is* the drain-and-stop
/// protocol — all queued work completes first (per-channel FIFO).
fn run_worker<S: Semiring>(
    index: usize,
    mut stream: StreamingMatrix<S>,
    receiver: Receiver<Command<S>>,
    metrics: Arc<PipelineMetrics>,
) where
    S::Value: PodValue,
{
    // Span on the shard's own trace registry; the router's
    // `trace_report` stitches the per-shard trees together.
    let trace_ctx = stream.ctx().cloned();
    while let Ok(cmd) = receiver.recv() {
        let span = |name: &'static str, detail: String| {
            trace_ctx
                .as_ref()
                .map(|ctx| ctx.trace().span(name, || detail))
        };
        match cmd {
            Command::Event(r, c, v) => {
                let _span = span("shard_merge", format!("shard {index} event"));
                let t = std::time::Instant::now();
                stream.insert(r, c, v);
                metrics.record_stage(Stage::ShardMerge, t.elapsed());
            }
            Command::Batch(events) => {
                let _span = span(
                    "shard_merge",
                    format!("shard {index}, {} events", events.len()),
                );
                let t = std::time::Instant::now();
                for (r, c, v) in events {
                    stream.insert(r, c, v);
                }
                metrics.record_stage(Stage::ShardMerge, t.elapsed());
            }
            Command::Snapshot { reply } => {
                let _span = span("shard_fold", format!("shard {index}"));
                // Receiver may have given up (timeout); ignore send errors.
                let _ = reply.send(stream.snapshot());
            }
            Command::SnapshotDelta { reply } => {
                let _span = span("shard_fold_delta", format!("shard {index}"));
                // Delta first: it seals the live levels, after which the
                // full fold covers exactly the same cut.
                let delta = stream.delta_snapshot();
                let full = stream.snapshot();
                let _ = reply.send((full, delta));
            }
            Command::Rotate { reply } => {
                let _span = span("shard_rotate", format!("shard {index}"));
                let delta = stream.delta_snapshot();
                let closing = stream.snapshot();
                stream.reset();
                let _ = reply.send((closing, delta));
            }
            Command::Checkpoint {
                dir,
                generation,
                reply,
            } => {
                let _span = span(
                    "shard_checkpoint",
                    format!("shard {index} gen {generation}"),
                );
                stream.flush();
                let bytes = encode_shard(&stream);
                let meta = write_shard_file(&dir, generation, index, &bytes, stream.inserted());
                let _ = reply.send(meta);
            }
        }
        metrics.depth_dec(index);
    }
}
