//! Durable checkpoints: length-prefixed binary shard files under a
//! text manifest, committed by atomic rename.
//!
//! Layout of a checkpoint directory:
//!
//! ```text
//! dir/
//!   gen-000001.manifest      committed generation 1 (epoch, checksums)
//!   gen-000001/shard-000.bin serialized shard hierarchies
//!   gen-000001/shard-001.bin
//!   gen-000002.manifest      a later generation (restore picks the max)
//!   gen-000002/…
//! ```
//!
//! Commit protocol: shard files are written into the generation
//! directory first; the manifest is then written to a `.tmp` sibling and
//! **renamed** into place. The manifest is the commit point — a crash at
//! any earlier moment leaves no `gen-N.manifest`, so restore never sees
//! a partial generation (orphan directories are ignored and pruned by
//! the next successful checkpoint). Every shard file carries a FNV-1a
//! checksum in the manifest; restore verifies length and checksum before
//! decoding, so truncation and bit-rot surface as
//! [`PipelineError::Corrupt`] rather than as garbage matrices.
//!
//! Shard files serialize the stream's *hierarchy* (every level layer),
//! not a folded snapshot: a restored shard is observationally identical
//! to the original — same future cascade behaviour, bit-identical
//! snapshots.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use hypersparse::{Dcsr, Ix, StreamConfig, StreamingMatrix};
use semiring::traits::Semiring;

use crate::error::PipelineError;
use crate::value::PodValue;

/// Shard-file magic: "HSPS" (hyperspace pipeline shard).
const SHARD_MAGIC: [u8; 4] = *b"HSPS";
/// On-disk format version.
const FORMAT_VERSION: u16 = 1;
/// First line of every manifest.
const MANIFEST_HEADER: &str = "hyperspace-pipeline v1";

/// FNV-1a 64-bit over a byte stream — the file checksum recorded in
/// manifests. Dependency-free and byte-order independent.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What one shard contributed to a committed generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFileMeta {
    /// File path relative to the checkpoint directory.
    pub rel_path: String,
    /// FNV-1a of the file contents.
    pub checksum: u64,
    /// File length in bytes.
    pub len: u64,
    /// The shard's lifetime insert counter at checkpoint time.
    pub inserted: u64,
}

/// A parsed, committed manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone generation number (file name carries it too).
    pub generation: u64,
    /// Pipeline epoch at commit time.
    pub epoch: u64,
    /// [`PodValue::TAG`] of the checkpointed value type.
    pub value_tag: u16,
    /// Row key-space bound.
    pub nrows: Ix,
    /// Column key-space bound.
    pub ncols: Ix,
    /// Total events ingested across shards at commit time.
    pub events: u64,
    /// Per-shard file records, indexed by shard id.
    pub shards: Vec<ShardFileMeta>,
}

// ---------------------------------------------------------------------
// Shard file encode/decode
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize a flushed stream's hierarchy. Panics (debug) if events are
/// still buffered — workers flush before checkpointing.
pub fn encode_shard<S: Semiring>(stream: &StreamingMatrix<S>) -> Vec<u8>
where
    S::Value: PodValue,
{
    debug_assert_eq!(stream.buffered(), 0, "flush before encoding");
    // Live levels first, then the sealed (pre-delta-watermark) layers:
    // both hold real entries and a restored shard must fold to the same
    // matrix. Decode rebuilds everything as live levels — restore resets
    // the delta watermark, so standing views rebuild from a full
    // snapshot after a restore rather than trusting a partial Δ.
    let slots = stream.level_slots().iter().chain(stream.sealed_slots());
    let n_slots = stream.level_slots().len() + stream.sealed_slots().len();
    let mut out = Vec::new();
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&<S::Value as PodValue>::TAG.to_le_bytes());
    put_u64(&mut out, stream.nrows());
    put_u64(&mut out, stream.ncols());
    put_u64(&mut out, stream.inserted());
    put_u64(&mut out, n_slots as u64);
    for slot in slots {
        match slot {
            None => out.push(0),
            Some(level) => {
                out.push(1);
                let n_rows = level.n_nonempty_rows();
                put_u64(&mut out, n_rows as u64);
                put_u64(&mut out, level.nnz() as u64);
                for &r in level.row_ids() {
                    put_u64(&mut out, r);
                }
                // rowptr is reconstructible from per-row extents, but
                // storing it keeps decode allocation-exact and O(n).
                let mut nnz_seen = 0usize;
                for k in 0..n_rows {
                    let (_, c, _) = level.row_at(k);
                    nnz_seen += c.len();
                    put_u64(&mut out, nnz_seen as u64);
                }
                for (_, c, v) in level.iter_rows() {
                    for &ci in c {
                        put_u64(&mut out, ci);
                    }
                    for val in v {
                        val.write_le(&mut out);
                    }
                }
            }
        }
    }
    out
}

/// Cursor over a shard file's bytes; every read is bounds-checked so a
/// truncated file yields a typed error, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PipelineError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(PipelineError::corrupt(
                self.path,
                format!("truncated: wanted {n} bytes at offset {}", self.pos),
            )),
        }
    }

    fn u64(&mut self) -> Result<u64, PipelineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u16(&mut self) -> Result<u16, PipelineError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u8(&mut self) -> Result<u8, PipelineError> {
        Ok(self.take(1)?[0])
    }
}

/// Decode a shard file back into a stream (inverse of [`encode_shard`]).
pub fn decode_shard<S: Semiring>(
    bytes: &[u8],
    path: &Path,
    s: S,
    config: StreamConfig,
) -> Result<StreamingMatrix<S>, PipelineError>
where
    S::Value: PodValue,
{
    let mut cur = Cursor {
        bytes,
        pos: 0,
        path,
    };
    if cur.take(4)? != SHARD_MAGIC {
        return Err(PipelineError::corrupt(path, "bad magic"));
    }
    let version = cur.u16()?;
    if version != FORMAT_VERSION {
        return Err(PipelineError::corrupt(
            path,
            format!("unsupported format version {version}"),
        ));
    }
    let tag = cur.u16()?;
    if tag != <S::Value as PodValue>::TAG {
        return Err(PipelineError::Incompatible {
            detail: format!(
                "value tag {tag} on disk, {} requested",
                <S::Value as PodValue>::TAG
            ),
        });
    }
    let nrows = cur.u64()?;
    let ncols = cur.u64()?;
    let inserted = cur.u64()?;
    let n_slots = cur.u64()?;
    if n_slots > 128 {
        return Err(PipelineError::corrupt(
            path,
            format!("implausible hierarchy depth {n_slots}"),
        ));
    }
    let mut levels: Vec<Option<Dcsr<S::Value>>> = Vec::with_capacity(n_slots as usize);
    for _ in 0..n_slots {
        if cur.u8()? == 0 {
            levels.push(None);
            continue;
        }
        let n_rows = cur.u64()? as usize;
        let nnz = cur.u64()? as usize;
        if n_rows > nnz {
            return Err(PipelineError::corrupt(
                path,
                format!("{n_rows} non-empty rows but only {nnz} entries"),
            ));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            rows.push(cur.u64()?);
        }
        if !rows.windows(2).all(|w| w[0] < w[1]) || rows.iter().any(|&r| r >= nrows) {
            return Err(PipelineError::corrupt(path, "row ids not sorted in-bounds"));
        }
        let mut rowptr = Vec::with_capacity(n_rows + 1);
        rowptr.push(0usize);
        for _ in 0..n_rows {
            rowptr.push(cur.u64()? as usize);
        }
        if !rowptr.windows(2).all(|w| w[0] < w[1]) || rowptr[n_rows] != nnz {
            return Err(PipelineError::corrupt(path, "row extents inconsistent"));
        }
        let mut colidx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        let width = <S::Value as PodValue>::WIDTH;
        for k in 0..n_rows {
            let row_nnz = rowptr[k + 1] - rowptr[k];
            for _ in 0..row_nnz {
                colidx.push(cur.u64()?);
            }
            for _ in 0..row_nnz {
                vals.push(<S::Value as PodValue>::read_le(cur.take(width)?));
            }
        }
        let in_row_sorted = (0..n_rows).all(|k| {
            colidx[rowptr[k]..rowptr[k + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        });
        if !in_row_sorted || colidx.iter().any(|&c| c >= ncols) {
            return Err(PipelineError::corrupt(
                path,
                "column ids not sorted in-bounds",
            ));
        }
        levels.push(Some(Dcsr::from_parts(
            nrows, ncols, rows, rowptr, colidx, vals,
        )));
    }
    if cur.pos != bytes.len() {
        return Err(PipelineError::corrupt(
            path,
            format!("{} trailing bytes", bytes.len() - cur.pos),
        ));
    }
    Ok(StreamingMatrix::from_levels(
        nrows, ncols, s, config, levels, inserted,
    ))
}

// ---------------------------------------------------------------------
// Manifest + generation management
// ---------------------------------------------------------------------

/// `gen-000042` style directory name.
fn gen_dir_name(generation: u64) -> String {
    format!("gen-{generation:06}")
}

/// Path of a generation's manifest file.
pub fn manifest_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("{}.manifest", gen_dir_name(generation)))
}

/// Relative path of one shard's file within a generation.
pub fn shard_rel_path(generation: u64, shard: usize) -> String {
    format!("{}/shard-{shard:03}.bin", gen_dir_name(generation))
}

/// Write one shard's encoded bytes into the generation directory,
/// returning its manifest record. (Called from shard worker threads, so
/// file writes proceed in parallel.)
pub fn write_shard_file(
    dir: &Path,
    generation: u64,
    shard: usize,
    bytes: &[u8],
    inserted: u64,
) -> Result<ShardFileMeta, PipelineError> {
    let rel = shard_rel_path(generation, shard);
    let path = dir.join(&rel);
    let parent = path.parent().expect("shard path has a parent");
    fs::create_dir_all(parent).map_err(|e| PipelineError::io("creating", parent, e))?;
    fs::write(&path, bytes).map_err(|e| PipelineError::io("writing", &path, e))?;
    Ok(ShardFileMeta {
        rel_path: rel,
        checksum: fnv1a64(bytes),
        len: bytes.len() as u64,
        inserted,
    })
}

/// Serialize and atomically commit a manifest. The rename is the commit
/// point for the whole generation.
pub fn commit_manifest(dir: &Path, manifest: &Manifest) -> Result<(), PipelineError> {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(text, "{MANIFEST_HEADER}");
    let _ = writeln!(text, "generation {}", manifest.generation);
    let _ = writeln!(text, "epoch {}", manifest.epoch);
    let _ = writeln!(text, "value_tag {}", manifest.value_tag);
    let _ = writeln!(text, "nrows {}", manifest.nrows);
    let _ = writeln!(text, "ncols {}", manifest.ncols);
    let _ = writeln!(text, "events {}", manifest.events);
    let _ = writeln!(text, "shards {}", manifest.shards.len());
    for (i, m) in manifest.shards.iter().enumerate() {
        let _ = writeln!(
            text,
            "shard {i} {} {:016x} {} {}",
            m.rel_path, m.checksum, m.len, m.inserted
        );
    }
    let _ = writeln!(text, "end");

    let final_path = manifest_path(dir, manifest.generation);
    let tmp_path = final_path.with_extension("manifest.tmp");
    let mut f =
        fs::File::create(&tmp_path).map_err(|e| PipelineError::io("creating", &tmp_path, e))?;
    f.write_all(text.as_bytes())
        .map_err(|e| PipelineError::io("writing", &tmp_path, e))?;
    f.sync_all()
        .map_err(|e| PipelineError::io("syncing", &tmp_path, e))?;
    drop(f);
    fs::rename(&tmp_path, &final_path).map_err(|e| PipelineError::io("committing", &final_path, e))
}

/// Parse a committed manifest.
pub fn read_manifest(dir: &Path, generation: u64) -> Result<Manifest, PipelineError> {
    let path = manifest_path(dir, generation);
    let text = fs::read_to_string(&path).map_err(|e| PipelineError::io("reading", &path, e))?;
    parse_manifest(&text, &path)
}

fn parse_manifest(text: &str, path: &Path) -> Result<Manifest, PipelineError> {
    let corrupt = |detail: &str| PipelineError::corrupt(path, detail.to_string());
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt("bad header"));
    }
    let mut field = |name: &str| -> Result<u64, PipelineError> {
        let line = lines.next().ok_or_else(|| corrupt("truncated"))?;
        let rest = line
            .strip_prefix(name)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| PipelineError::corrupt(path, format!("expected `{name}` line")))?;
        rest.trim()
            .parse()
            .map_err(|_| PipelineError::corrupt(path, format!("bad `{name}` value")))
    };
    let generation = field("generation")?;
    let epoch = field("epoch")?;
    let value_tag = field("value_tag")? as u16;
    let nrows = field("nrows")?;
    let ncols = field("ncols")?;
    let events = field("events")?;
    let n_shards = field("shards")? as usize;
    if n_shards == 0 || n_shards > 4096 {
        return Err(corrupt("implausible shard count"));
    }
    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let line = lines
            .next()
            .ok_or_else(|| corrupt("truncated shard list"))?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("shard") {
            return Err(corrupt("expected `shard` line"));
        }
        let idx: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| corrupt("bad shard index"))?;
        if idx != i {
            return Err(corrupt("shard records out of order"));
        }
        let rel_path = parts.next().ok_or_else(|| corrupt("missing shard path"))?;
        let checksum = parts
            .next()
            .and_then(|p| u64::from_str_radix(p, 16).ok())
            .ok_or_else(|| corrupt("bad shard checksum"))?;
        let len: u64 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| corrupt("bad shard length"))?;
        let inserted: u64 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| corrupt("bad shard insert count"))?;
        shards.push(ShardFileMeta {
            rel_path: rel_path.to_string(),
            checksum,
            len,
            inserted,
        });
    }
    if lines.next() != Some("end") {
        return Err(corrupt("missing end sentinel (truncated commit?)"));
    }
    Ok(Manifest {
        generation,
        epoch,
        value_tag,
        nrows,
        ncols,
        events,
        shards,
    })
}

/// Committed generation numbers under `dir`, ascending. Uncommitted
/// orphan directories (no manifest) are invisible here by design.
pub fn list_generations(dir: &Path) -> Result<Vec<u64>, PipelineError> {
    let mut gens = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(gens),
        Err(e) => return Err(PipelineError::io("listing", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| PipelineError::io("listing", dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(g) = name
            .strip_prefix("gen-")
            .and_then(|r| r.strip_suffix(".manifest"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            gens.push(g);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Read one shard's file, verify length + checksum against its manifest
/// record, and decode it.
pub fn load_shard<S: Semiring>(
    dir: &Path,
    meta: &ShardFileMeta,
    s: S,
    config: StreamConfig,
) -> Result<StreamingMatrix<S>, PipelineError>
where
    S::Value: PodValue,
{
    let path = dir.join(&meta.rel_path);
    let bytes = fs::read(&path).map_err(|e| PipelineError::io("reading", &path, e))?;
    if bytes.len() as u64 != meta.len {
        return Err(PipelineError::corrupt(
            &path,
            format!("length {} ≠ manifest {}", bytes.len(), meta.len),
        ));
    }
    let sum = fnv1a64(&bytes);
    if sum != meta.checksum {
        return Err(PipelineError::corrupt(
            &path,
            format!("checksum {sum:016x} ≠ manifest {:016x}", meta.checksum),
        ));
    }
    decode_shard(&bytes, &path, s, config)
}

/// Delete committed generations older than the newest `keep` (and any
/// orphan `gen-*` directories left by interrupted checkpoints older than
/// the oldest kept generation). Best-effort: pruning failures are
/// swallowed — the next checkpoint retries.
pub fn prune_generations(dir: &Path, keep: usize) {
    let Ok(gens) = list_generations(dir) else {
        return;
    };
    if gens.len() <= keep {
        return;
    }
    for &g in &gens[..gens.len() - keep] {
        let _ = fs::remove_file(manifest_path(dir, g));
        let _ = fs::remove_dir_all(dir.join(gen_dir_name(g)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hyperspace-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_stream(seed: u64) -> StreamingMatrix<PlusTimes<f64>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let s = PlusTimes::<f64>::new();
        let cfg = StreamConfig::new().with_buffer_cap(64).with_growth(4);
        let mut stream = StreamingMatrix::with_config(1 << 30, 1 << 30, s, cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..2000 {
            stream.insert(
                rng.gen_range(0..5000),
                rng.gen_range(0..5000),
                rng.gen::<f64>(),
            );
        }
        stream.flush();
        stream
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_encode_decode_round_trip() {
        let mut stream = sample_stream(11);
        let bytes = encode_shard(&stream);
        let cfg = stream.config();
        let mut back =
            decode_shard(&bytes, Path::new("mem"), PlusTimes::<f64>::new(), cfg).unwrap();
        assert_eq!(back.inserted(), stream.inserted());
        assert_eq!(back.snapshot(), stream.snapshot());
    }

    #[test]
    fn sealed_layers_survive_encode_decode() {
        let mut stream = sample_stream(14);
        // Seal everything behind the delta watermark, then add more.
        let _ = stream.delta_snapshot();
        for i in 0..100u64 {
            stream.insert(i, i, 1.0);
        }
        stream.flush();
        assert!(stream.sealed_slots().iter().any(Option::is_some));

        let bytes = encode_shard(&stream);
        let cfg = stream.config();
        let mut back =
            decode_shard(&bytes, Path::new("mem"), PlusTimes::<f64>::new(), cfg).unwrap();
        assert_eq!(back.snapshot(), stream.snapshot());
        // Restore resets the delta baseline: the first post-restore
        // delta is the complete fold, not a partial window.
        assert_eq!(back.delta_snapshot(), stream.snapshot());
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let stream = sample_stream(12);
        let bytes = encode_shard(&stream);
        let cfg = stream.config();
        // Every strict prefix must decode to Err, never panic.
        for cut in [0, 1, 3, 7, 20, bytes.len() / 2, bytes.len() - 1] {
            let r = decode_shard(
                &bytes[..cut],
                Path::new("mem"),
                PlusTimes::<f64>::new(),
                cfg,
            );
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_shard(&long, Path::new("mem"), PlusTimes::<f64>::new(), cfg).is_err());
    }

    #[test]
    fn wrong_value_type_is_incompatible() {
        let stream = sample_stream(13);
        let bytes = encode_shard(&stream);
        let r = decode_shard(
            &bytes,
            Path::new("mem"),
            PlusTimes::<f32>::new(),
            StreamConfig::default(),
        );
        assert!(
            matches!(r, Err(PipelineError::Incompatible { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn manifest_round_trip_and_discovery() {
        let dir = tmp_dir("manifest");
        let manifest = Manifest {
            generation: 3,
            epoch: 17,
            value_tag: 1,
            nrows: 1 << 20,
            ncols: 1 << 20,
            events: 999,
            shards: vec![
                ShardFileMeta {
                    rel_path: shard_rel_path(3, 0),
                    checksum: 0xdead_beef,
                    len: 128,
                    inserted: 500,
                },
                ShardFileMeta {
                    rel_path: shard_rel_path(3, 1),
                    checksum: 1,
                    len: 64,
                    inserted: 499,
                },
            ],
        };
        commit_manifest(&dir, &manifest).unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![3]);
        assert_eq!(read_manifest(&dir, 3).unwrap(), manifest);
        // A second generation wins discovery.
        let mut next = manifest.clone();
        next.generation = 4;
        commit_manifest(&dir, &next).unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_manifest_refuses_to_parse() {
        let dir = tmp_dir("trunc-manifest");
        let manifest = Manifest {
            generation: 1,
            epoch: 2,
            value_tag: 1,
            nrows: 8,
            ncols: 8,
            events: 0,
            shards: vec![ShardFileMeta {
                rel_path: shard_rel_path(1, 0),
                checksum: 0,
                len: 0,
                inserted: 0,
            }],
        };
        commit_manifest(&dir, &manifest).unwrap();
        let path = manifest_path(&dir, 1);
        let text = fs::read_to_string(&path).unwrap();
        // Drop the `end` sentinel: simulates a torn write without rename.
        fs::write(&path, text.trim_end_matches("end\n")).unwrap();
        let r = read_manifest(&dir, 1);
        assert!(matches!(r, Err(PipelineError::Corrupt { .. })), "{r:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_keeps_newest_generations() {
        let dir = tmp_dir("prune");
        for g in 1..=4 {
            let manifest = Manifest {
                generation: g,
                epoch: g,
                value_tag: 1,
                nrows: 8,
                ncols: 8,
                events: 0,
                shards: vec![ShardFileMeta {
                    rel_path: shard_rel_path(g, 0),
                    checksum: 0,
                    len: 3,
                    inserted: 0,
                }],
            };
            fs::create_dir_all(dir.join(gen_dir_name(g))).unwrap();
            fs::write(dir.join(shard_rel_path(g, 0)), b"abc").unwrap();
            commit_manifest(&dir, &manifest).unwrap();
        }
        prune_generations(&dir, 2);
        assert_eq!(list_generations(&dir).unwrap(), vec![3, 4]);
        assert!(!dir.join(gen_dir_name(1)).exists());
        assert!(dir.join(shard_rel_path(4, 0)).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
