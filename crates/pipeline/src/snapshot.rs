//! Epoch-stamped, isolated query snapshots.
//!
//! A snapshot is the ⊕-fold of every shard's hierarchy as cut by one
//! marker wave. It is an *owned* value: once assembled, concurrent
//! ingest cannot touch it — that is the snapshot-isolation contract, and
//! the integration tests assert it bit-for-bit. Because shards partition
//! by row, the folded layers have disjoint row support and the fold is a
//! pure disjoint union: deterministic in shard order, independent of
//! worker interleaving.

use hyperspace_core::{Assoc, Key};
use hypersparse::ops::ewise_add_ctx;
use hypersparse::{Dcsr, Ix, Matrix, OpCtx};
use semiring::traits::Semiring;

/// A consistent view of the whole pipeline as of one epoch.
#[derive(Clone, Debug)]
pub struct EpochSnapshot<S: Semiring> {
    epoch: u64,
    events: u64,
    per_shard_nnz: Vec<usize>,
    folded: Dcsr<S::Value>,
    s: S,
}

impl<S: Semiring> EpochSnapshot<S> {
    /// Fold per-shard cuts (in shard order) into one snapshot.
    pub(crate) fn assemble(
        epoch: u64,
        events: u64,
        ctx: &OpCtx,
        shards: Vec<Dcsr<S::Value>>,
        s: S,
    ) -> Self {
        let per_shard_nnz: Vec<usize> = shards.iter().map(Dcsr::nnz).collect();
        let mut folded: Option<Dcsr<S::Value>> = None;
        for part in shards {
            folded = Some(match folded {
                None => part,
                Some(acc) => ewise_add_ctx(ctx, &acc, &part, s),
            });
        }
        EpochSnapshot {
            epoch,
            events,
            per_shard_nnz,
            folded: folded.expect("≥ 1 shard"),
            s,
        }
    }

    /// The epoch this snapshot is stamped with. Epochs are assigned in
    /// snapshot-call order; a later epoch's view includes everything an
    /// earlier epoch's view did (same ingest threads assumed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Events the pipeline had accepted when the marker wave was sent
    /// (an upper bound on — and with a single ingest thread, exactly —
    /// the events visible in this snapshot).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Stored entries per shard at the cut, in shard order.
    pub fn per_shard_nnz(&self) -> &[usize] {
        &self.per_shard_nnz
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.folded.nnz()
    }

    /// The folded hypersparse matrix itself.
    pub fn dcsr(&self) -> &Dcsr<S::Value> {
        &self.folded
    }

    /// Consume the snapshot into its folded matrix without copying.
    pub fn into_dcsr(self) -> Dcsr<S::Value> {
        self.folded
    }

    /// Point lookup in the snapshot.
    pub fn get(&self, row: Ix, col: Ix) -> Option<&S::Value> {
        self.folded.get(row, col)
    }

    /// The snapshot as an auto-format [`Matrix`] — the entry point into
    /// every kernel in the stack (graph algorithms, reductions, SpGEMM).
    pub fn to_matrix(&self) -> Matrix<S::Value> {
        Matrix::from_dcsr(self.folded.clone(), self.s)
    }

    /// Consume the snapshot into a [`Matrix`] without copying.
    pub fn into_matrix(self) -> Matrix<S::Value> {
        Matrix::from_dcsr(self.folded, self.s)
    }

    /// The snapshot as an associative array, re-keying raw `u64`
    /// coordinates through `key` (e.g. a hostname dictionary). Only keys
    /// that actually occur are materialized, so huge key spaces stay
    /// cheap: cost is `O(nnz log nnz)`, not `O(nrows)`.
    pub fn to_assoc<K: Key>(&self, mut key: impl FnMut(Ix) -> K) -> Assoc<K, K, S::Value> {
        let triplets: Vec<(K, K, S::Value)> = self
            .folded
            .iter()
            .map(|(r, c, v)| (key(r), key(c), v.clone()))
            .collect();
        Assoc::from_triplets(triplets, self.s)
    }
}

/// One incremental marker wave's result: the complete epoch snapshot
/// plus the **delta** — exactly the entries inserted since the previous
/// delta cut — both assembled from the same per-shard cut and stamped
/// with the same epoch, so `full(t) = full(t−1) ⊕ delta(t)` holds wave
/// over wave. Both sides are `Arc`-shared: the full snapshot is the same
/// allocation published to sinks, the delta the one standing views
/// absorbed.
#[derive(Clone, Debug)]
pub struct IncrementalEpoch<S: Semiring> {
    /// The complete fold — identical to what [`Pipeline::snapshot`]
    /// would have produced at this cut.
    ///
    /// [`Pipeline::snapshot`]: crate::Pipeline::snapshot
    pub full: std::sync::Arc<EpochSnapshot<S>>,
    /// Entries inserted since the previous incremental cut (or since
    /// startup/rotation for the first wave).
    pub delta: std::sync::Arc<EpochSnapshot<S>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn dcsr(entries: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(1 << 20, 1 << 20);
        c.extend(entries.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn assemble_folds_disjoint_shards() {
        let ctx = OpCtx::new();
        let s = PlusTimes::<f64>::new();
        let parts = vec![dcsr(&[(0, 1, 1.0), (2, 2, 3.0)]), dcsr(&[(1, 0, 2.0)])];
        let snap = EpochSnapshot::assemble(7, 3, &ctx, parts, s);
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.events(), 3);
        assert_eq!(snap.per_shard_nnz(), &[2, 1]);
        assert_eq!(snap.nnz(), 3);
        assert_eq!(snap.get(1, 0), Some(&2.0));
        assert_eq!(snap.to_matrix().nnz(), 3);
    }

    #[test]
    fn assoc_view_compacts_keys() {
        let ctx = OpCtx::new();
        let s = PlusTimes::<f64>::new();
        let snap = EpochSnapshot::assemble(
            1,
            2,
            &ctx,
            vec![dcsr(&[(5, 900_000, 1.0), (900_000, 5, 2.0)])],
            s,
        );
        let a = snap.to_assoc(|k| format!("host-{k}"));
        assert_eq!(a.nnz(), 2);
        assert_eq!(
            a.get(&"host-5".to_string(), &"host-900000".to_string()),
            Some(1.0)
        );
        // Dictionaries hold only occurring keys, not the 2^20 space.
        assert_eq!(a.row_keys().len(), 2);
    }
}
