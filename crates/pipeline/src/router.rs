//! The pipeline handle: routing, backpressure, epochs, lifecycle.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hypersparse::{Ix, MetricsSnapshot, OpCtx, StreamingMatrix, TraceMode};
use semiring::traits::Semiring;

use crate::checkpoint::{
    commit_manifest, list_generations, load_shard, prune_generations, read_manifest, Manifest,
};
use crate::config::{shard_of, PipelineConfig};
use crate::error::PipelineError;
use crate::metrics::{merge_kernel_snapshots, PipelineMetrics, PipelineMetricsSnapshot, Stage};
use crate::shard::{Command, Shard};
use crate::sink::SnapshotSink;
use crate::snapshot::{EpochSnapshot, IncrementalEpoch};
use crate::standing::{StandingRegistry, StandingView, StandingViewStats};
use crate::value::PodValue;

/// A sharded streaming ingest/query service over one `nrows × ncols`
/// hypersparse key space.
///
/// Events hash-partition by **row key** across `config.shards` worker
/// threads, each owning a [`StreamingMatrix`] behind a bounded channel.
/// The handle is `Sync`: share it via `Arc` and ingest from any number
/// of threads; [`Pipeline::snapshot`] meanwhile assembles consistent,
/// epoch-stamped views without stopping ingest.
///
/// **Determinism contract.** For a fixed event sequence (one logical
/// ingest order) and a fixed shard count, snapshots are bit-identical
/// regardless of worker interleaving: rows are disjoint across shards,
/// each shard merges in its own receive order (= the send order, by
/// channel FIFO), and the snapshot fold walks shards in index order.
/// With *multiple* concurrent ingest threads the per-shard order is
/// whatever the channel arbitration produced — still a consistent
/// per-shard prefix at every snapshot, but only ⊕-commutative workloads
/// (all of Table I) see identical folds across runs.
pub struct Pipeline<S: Semiring>
where
    S::Value: PodValue,
{
    nrows: Ix,
    ncols: Ix,
    s: S,
    config: PipelineConfig,
    shards: Vec<Shard<S>>,
    epoch: AtomicU64,
    metrics: Arc<PipelineMetrics>,
    /// Context for snapshot assembly (the cross-shard ⊕-fold).
    assemble_ctx: OpCtx,
    /// Subscribers to [`Pipeline::snapshot_shared`] publication.
    sinks: Mutex<Vec<Arc<dyn SnapshotSink<S>>>>,
    /// Standing views maintained from epoch deltas.
    standing: StandingRegistry<S>,
}

impl<S: Semiring> Pipeline<S>
where
    S::Value: PodValue,
{
    /// Launch a pipeline with default parameters.
    pub fn new(nrows: Ix, ncols: Ix, s: S) -> Self {
        Pipeline::with_config(nrows, ncols, s, PipelineConfig::default())
    }

    /// Launch a pipeline: spawns `config.shards` worker threads, each
    /// with an empty stream and a bounded channel.
    pub fn with_config(nrows: Ix, ncols: Ix, s: S, config: PipelineConfig) -> Self {
        let streams = (0..config.shards)
            .map(|_| StreamingMatrix::with_config(nrows, ncols, s, config.stream))
            .collect();
        Pipeline::from_streams(nrows, ncols, s, config, streams, 0, 0)
    }

    fn from_streams(
        nrows: Ix,
        ncols: Ix,
        s: S,
        config: PipelineConfig,
        streams: Vec<StreamingMatrix<S>>,
        epoch: u64,
        events: u64,
    ) -> Self {
        assert_eq!(streams.len(), config.shards);
        let metrics = Arc::new(PipelineMetrics::new(config.shards));
        metrics.seed_events(events);
        let shards = streams
            .into_iter()
            .enumerate()
            .map(|(i, stream)| Shard::spawn(i, stream, &config, Arc::clone(&metrics)))
            .collect();
        Pipeline {
            nrows,
            ncols,
            s,
            config,
            shards,
            epoch: AtomicU64::new(epoch),
            metrics,
            assemble_ctx: OpCtx::new().with_threads(config.merge_threads),
            sinks: Mutex::new(Vec::new()),
            standing: StandingRegistry::default(),
        }
    }

    // -- ingest ---------------------------------------------------------

    fn check_key(&self, row: Ix, col: Ix) -> Result<usize, PipelineError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(PipelineError::KeyOutOfBounds {
                row,
                col,
                bounds: (self.nrows, self.ncols),
            });
        }
        Ok(shard_of(row, self.config.shards))
    }

    /// Append one event, **blocking** while the target shard's channel
    /// is at capacity — ingest is throttled to merge throughput instead
    /// of queueing unboundedly.
    pub fn ingest(&self, row: Ix, col: Ix, val: S::Value) -> Result<(), PipelineError> {
        let shard = self.check_key(row, col)?;
        let t = Instant::now();
        self.metrics.depth_inc(shard);
        match self.shards[shard].send(shard, Command::Event(row, col, val)) {
            Ok(()) => {
                self.metrics.record_accepted(1);
                self.metrics.record_stage(Stage::Ingest, t.elapsed());
                Ok(())
            }
            Err(e) => {
                self.metrics.depth_dec(shard);
                Err(e)
            }
        }
    }

    /// Append one event **without blocking**: returns
    /// [`PipelineError::Full`] when the shard is saturated, letting the
    /// caller shed or defer load explicitly.
    pub fn try_ingest(&self, row: Ix, col: Ix, val: S::Value) -> Result<(), PipelineError> {
        let shard = self.check_key(row, col)?;
        let t = Instant::now();
        self.metrics.depth_inc(shard);
        match self.shards[shard].try_send(shard, Command::Event(row, col, val)) {
            Ok(()) => {
                self.metrics.record_accepted(1);
                self.metrics.record_stage(Stage::Ingest, t.elapsed());
                Ok(())
            }
            Err(e) => {
                self.metrics.depth_dec(shard);
                if matches!(e, PipelineError::Full { .. }) {
                    self.metrics.record_rejected();
                }
                Err(e)
            }
        }
    }

    /// Route a batch: one channel message per shard touched (amortizes
    /// channel traffic ~`buffer`-fold for high-rate feeds). Blocking, in
    /// shard-index order; per-shard event order preserves iteration
    /// order, so batch boundaries never affect results.
    pub fn ingest_batch(
        &self,
        events: impl IntoIterator<Item = (Ix, Ix, S::Value)>,
    ) -> Result<(), PipelineError> {
        let t = Instant::now();
        let mut routed: Vec<Vec<(Ix, Ix, S::Value)>> =
            (0..self.config.shards).map(|_| Vec::new()).collect();
        for (row, col, val) in events {
            let shard = self.check_key(row, col)?;
            routed[shard].push((row, col, val));
        }
        for (shard, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let send_t = Instant::now();
            self.metrics.depth_inc(shard);
            match self.shards[shard].send(shard, Command::Batch(batch)) {
                Ok(()) => {
                    self.metrics.record_accepted(n);
                    self.metrics.record_stage(Stage::Ingest, send_t.elapsed());
                }
                Err(e) => {
                    self.metrics.depth_dec(shard);
                    return Err(e);
                }
            }
        }
        self.metrics.record_stage(Stage::Route, t.elapsed());
        Ok(())
    }

    // -- query ----------------------------------------------------------

    /// Take an epoch-stamped snapshot: sends a marker wave down every
    /// shard channel, then ⊕-folds the per-shard cuts (disjoint row
    /// sets) into one owned [`EpochSnapshot`]. Ingest continues behind
    /// the markers; nothing enqueued after this call's markers can
    /// appear in the result, and everything this thread enqueued before
    /// the call is guaranteed in.
    pub fn snapshot(&self) -> Result<EpochSnapshot<S>, PipelineError> {
        let t = Instant::now();
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let _span = self
            .assemble_ctx
            .trace()
            .span("snapshot", || format!("epoch {epoch}"));
        let events = self.metrics.snapshot().events_ingested;
        // Send every marker before collecting any reply, so shards fold
        // their hierarchies concurrently.
        let mut replies = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            self.metrics.depth_inc(i);
            if let Err(e) = shard.send(i, Command::Snapshot { reply: tx }) {
                self.metrics.depth_dec(i);
                return Err(e);
            }
            replies.push(rx);
        }
        let mut parts = Vec::with_capacity(replies.len());
        for (i, rx) in replies.into_iter().enumerate() {
            parts.push(
                rx.recv()
                    .map_err(|_| PipelineError::ShardTerminated { shard: i })?,
            );
        }
        let snap = EpochSnapshot::assemble(epoch, events, &self.assemble_ctx, parts, self.s);
        self.metrics.record_snapshot(t.elapsed());
        self.metrics.record_stage(Stage::Snapshot, t.elapsed());
        Ok(snap)
    }

    /// Close the current analytics window: send a rotate-marker wave
    /// down every shard channel, ⊕-fold the per-shard cuts into the
    /// closing window's [`EpochSnapshot`], and leave every shard empty
    /// for the next window. Ingest continues behind the markers — events
    /// enqueued after this call land in the new window, everything this
    /// thread enqueued before the call is in the closed one. The epoch
    /// counter stamps the closed window exactly like a snapshot.
    ///
    /// `events()` on the result is the *cumulative* accepted count at
    /// the cut (monotone across windows), not the per-window count.
    ///
    /// Standing views registered via
    /// [`Pipeline::register_standing_query`] observe rotation as
    /// `apply_delta` (the closing window's tail — entries since the last
    /// marker wave) followed by `reset`, so every event of the closed
    /// window reached them exactly once before the state clears.
    pub fn rotate(&self) -> Result<EpochSnapshot<S>, PipelineError> {
        let t = Instant::now();
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let _span = self
            .assemble_ctx
            .trace()
            .span("rotate", || format!("epoch {epoch}"));
        let events = self.metrics.snapshot().events_ingested;
        let mut replies = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            self.metrics.depth_inc(i);
            if let Err(e) = shard.send(i, Command::Rotate { reply: tx }) {
                self.metrics.depth_dec(i);
                return Err(e);
            }
            replies.push(rx);
        }
        let mut parts = Vec::with_capacity(replies.len());
        let mut delta_parts = Vec::with_capacity(replies.len());
        for (i, rx) in replies.into_iter().enumerate() {
            let (closing, delta) = rx
                .recv()
                .map_err(|_| PipelineError::ShardTerminated { shard: i })?;
            parts.push(closing);
            delta_parts.push(delta);
        }
        if !self.standing.is_empty() {
            let ut = Instant::now();
            let delta =
                EpochSnapshot::assemble(epoch, events, &self.assemble_ctx, delta_parts, self.s);
            self.standing.apply(&delta);
            self.standing.reset_all();
            self.metrics
                .record_stage(Stage::StandingUpdate, ut.elapsed());
        }
        let snap = EpochSnapshot::assemble(epoch, events, &self.assemble_ctx, parts, self.s);
        self.metrics.record_stage(Stage::Rotate, t.elapsed());
        Ok(snap)
    }

    /// [`Pipeline::rotate`], wrapped in an `Arc` and published to every
    /// registered [`SnapshotSink`] — the window-closing twin of
    /// [`Pipeline::snapshot_shared`].
    pub fn rotate_shared(&self) -> Result<Arc<EpochSnapshot<S>>, PipelineError> {
        let snap = Arc::new(self.rotate()?);
        // Recover, don't propagate, poisoning: the registry Vec is
        // always structurally valid, and a sink that panicked mid-publish
        // must not take down every later rotation.
        let sinks = self.sinks.lock().unwrap_or_else(|e| e.into_inner());
        for sink in sinks.iter() {
            sink.publish(&snap);
        }
        Ok(snap)
    }

    /// Subscribe a [`SnapshotSink`] to snapshot publication. Every
    /// subsequent [`Pipeline::snapshot_shared`] call hands the sink an
    /// `Arc` of the new epoch — the sink shares the assembled matrix,
    /// it never copies it.
    pub fn add_snapshot_sink(&self, sink: Arc<dyn SnapshotSink<S>>) {
        self.sinks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(sink);
    }

    /// Take a snapshot (exactly like [`Pipeline::snapshot`]), wrap it in
    /// an `Arc`, publish the handle to every registered sink, and return
    /// it. Publication is zero-copy: sinks and the caller all share one
    /// assembled epoch, so long-lived registries never block or copy for
    /// concurrent readers.
    pub fn snapshot_shared(&self) -> Result<Arc<EpochSnapshot<S>>, PipelineError> {
        let snap = Arc::new(self.snapshot()?);
        let sinks = self.sinks.lock().unwrap_or_else(|e| e.into_inner());
        for sink in sinks.iter() {
            sink.publish(&snap);
        }
        Ok(snap)
    }

    // -- standing queries ----------------------------------------------

    /// Register a [`StandingView`] to be maintained incrementally: every
    /// subsequent [`Pipeline::snapshot_incremental`] feeds it the
    /// epoch's delta, and [`Pipeline::rotate`] feeds it the closing
    /// delta before calling its `reset`. `name` labels the view's
    /// `pipeline_standing_*` metric series.
    pub fn register_standing_query(&self, name: impl Into<String>, view: Arc<dyn StandingView<S>>) {
        self.standing.register(name.into(), view);
    }

    /// Per-view meters (update counts, last epoch, latency), in
    /// registration order.
    pub fn standing_stats(&self) -> Vec<StandingViewStats> {
        self.standing.stats()
    }

    /// Take an incremental snapshot: one marker wave yields, per shard,
    /// both the full fold and the **delta** (entries inserted since the
    /// previous delta cut) at the same point in the stream. The two are
    /// ⊕-assembled into a same-epoch [`IncrementalEpoch`]; every
    /// registered standing view absorbs the delta (metered under
    /// [`Stage::StandingUpdate`]), and the full snapshot is published to
    /// sinks exactly like [`Pipeline::snapshot_shared`].
    ///
    /// Invariant (proved by the `incremental_props` suite): the full
    /// snapshot of wave `t` equals the ⊕-fold of all deltas up to `t`,
    /// so a view that folds deltas is always equal to the same
    /// computation run from scratch on `full`.
    pub fn snapshot_incremental(&self) -> Result<IncrementalEpoch<S>, PipelineError> {
        let t = Instant::now();
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let _span = self
            .assemble_ctx
            .trace()
            .span("snapshot_delta", || format!("epoch {epoch}"));
        let events = self.metrics.snapshot().events_ingested;
        let mut replies = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            self.metrics.depth_inc(i);
            if let Err(e) = shard.send(i, Command::SnapshotDelta { reply: tx }) {
                self.metrics.depth_dec(i);
                return Err(e);
            }
            replies.push(rx);
        }
        let mut full_parts = Vec::with_capacity(replies.len());
        let mut delta_parts = Vec::with_capacity(replies.len());
        for (i, rx) in replies.into_iter().enumerate() {
            let (full, delta) = rx
                .recv()
                .map_err(|_| PipelineError::ShardTerminated { shard: i })?;
            full_parts.push(full);
            delta_parts.push(delta);
        }
        let full = Arc::new(EpochSnapshot::assemble(
            epoch,
            events,
            &self.assemble_ctx,
            full_parts,
            self.s,
        ));
        let delta = Arc::new(EpochSnapshot::assemble(
            epoch,
            events,
            &self.assemble_ctx,
            delta_parts,
            self.s,
        ));
        self.metrics.record_snapshot(t.elapsed());
        self.metrics.record_stage(Stage::Snapshot, t.elapsed());

        let ut = Instant::now();
        self.standing.apply(&delta);
        self.metrics
            .record_stage(Stage::StandingUpdate, ut.elapsed());

        let sinks = self.sinks.lock().unwrap_or_else(|e| e.into_inner());
        for sink in sinks.iter() {
            sink.publish(&full);
        }
        Ok(IncrementalEpoch { full, delta })
    }

    // -- checkpoint / restore -------------------------------------------

    /// Write a new checkpoint generation under `dir` and commit it
    /// atomically (see [`crate::checkpoint`] for the protocol). Advances
    /// the epoch: the manifest records the cut exactly like a snapshot
    /// marker wave would, so a restore resumes at this epoch with
    /// bit-identical snapshot contents. Returns the committed manifest.
    pub fn checkpoint(&self, dir: &Path) -> Result<Manifest, PipelineError> {
        let t = Instant::now();
        std::fs::create_dir_all(dir).map_err(|e| PipelineError::io("creating", dir, e))?;
        let generation = list_generations(dir)?.last().copied().unwrap_or(0) + 1;
        let _span = self
            .assemble_ctx
            .trace()
            .span("checkpoint", || format!("generation {generation}"));
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let events = self.metrics.snapshot().events_ingested;

        let mut replies = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            self.metrics.depth_inc(i);
            if let Err(e) = shard.send(
                i,
                Command::Checkpoint {
                    dir: dir.to_path_buf(),
                    generation,
                    reply: tx,
                },
            ) {
                self.metrics.depth_dec(i);
                return Err(e);
            }
            replies.push(rx);
        }
        let mut shard_meta = Vec::with_capacity(replies.len());
        for (i, rx) in replies.into_iter().enumerate() {
            shard_meta.push(
                rx.recv()
                    .map_err(|_| PipelineError::ShardTerminated { shard: i })??,
            );
        }
        let manifest = Manifest {
            generation,
            epoch,
            value_tag: <S::Value as PodValue>::TAG,
            nrows: self.nrows,
            ncols: self.ncols,
            events,
            shards: shard_meta,
        };
        commit_manifest(dir, &manifest)?;
        prune_generations(dir, self.config.keep_generations);
        self.metrics.record_checkpoint(t.elapsed());
        self.metrics.record_stage(Stage::Checkpoint, t.elapsed());
        Ok(manifest)
    }

    /// Restore from the newest committed generation under `dir`.
    /// `config.shards` is taken from the manifest (shard files are only
    /// valid for the routing that filled them); every other knob applies
    /// as given. Fails with a typed error — never a panic — on missing,
    /// truncated, or checksum-mismatched state.
    pub fn restore(dir: &Path, s: S, config: PipelineConfig) -> Result<Self, PipelineError> {
        let gens = list_generations(dir)?;
        let latest = *gens.last().ok_or_else(|| PipelineError::NoManifest {
            dir: dir.to_path_buf(),
        })?;
        Pipeline::restore_generation(dir, latest, s, config)
    }

    /// Restore a specific committed generation.
    pub fn restore_generation(
        dir: &Path,
        generation: u64,
        s: S,
        config: PipelineConfig,
    ) -> Result<Self, PipelineError> {
        let t = Instant::now();
        let manifest = read_manifest(dir, generation)?;
        if manifest.value_tag != <S::Value as PodValue>::TAG {
            return Err(PipelineError::Incompatible {
                detail: format!(
                    "value tag {} on disk, {} requested",
                    manifest.value_tag,
                    <S::Value as PodValue>::TAG
                ),
            });
        }
        let config = config.with_shards(manifest.shards.len());
        let streams = manifest
            .shards
            .iter()
            .map(|meta| load_shard(dir, meta, s, config.stream))
            .collect::<Result<Vec<_>, _>>()?;
        let p = Pipeline::from_streams(
            manifest.nrows,
            manifest.ncols,
            s,
            config,
            streams,
            manifest.epoch,
            manifest.events,
        );
        p.metrics.record_stage(Stage::Restore, t.elapsed());
        p.assemble_ctx.trace().record_span(
            "restore",
            format!("generation {generation}"),
            t.elapsed(),
        );
        Ok(p)
    }

    /// Restore the newest generation that validates, walking backwards
    /// over committed generations when the newest is corrupt (a fallback
    /// for torn disks; pair with `keep_generations ≥ 2`). Returns the
    /// pipeline and the generation that loaded. Errors only when no
    /// generation validates — with the *newest* generation's error, the
    /// one an operator needs to see.
    pub fn restore_with_fallback(
        dir: &Path,
        s: S,
        config: PipelineConfig,
    ) -> Result<(Self, u64), PipelineError> {
        let gens = list_generations(dir)?;
        let mut first_err = None;
        for &g in gens.iter().rev() {
            match Pipeline::restore_generation(dir, g, s, config) {
                Ok(p) => return Ok((p, g)),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.unwrap_or(PipelineError::NoManifest {
            dir: dir.to_path_buf(),
        }))
    }

    // -- lifecycle ------------------------------------------------------

    /// Graceful shutdown: close every channel, let workers drain all
    /// queued work (channel FIFO guarantees nothing is dropped), and
    /// join their threads.
    pub fn shutdown(mut self) -> Result<(), PipelineError> {
        self.join_workers()
    }

    /// Drain, write a final checkpoint, then shut down. The manifest it
    /// returns is the durable image of every event ever accepted.
    pub fn shutdown_with_checkpoint(self, dir: &Path) -> Result<Manifest, PipelineError> {
        // The checkpoint marker itself rides behind all queued ingest,
        // so the final image includes every accepted event.
        let manifest = self.checkpoint(dir)?;
        self.shutdown()?;
        Ok(manifest)
    }

    fn join_workers(&mut self) -> Result<(), PipelineError> {
        let mut handles = Vec::new();
        for (i, mut shard) in self.shards.drain(..).enumerate() {
            let handle = shard.handle.take();
            drop(shard); // drops the sender: the worker's drain signal
            if let Some(h) = handle {
                handles.push((i, h));
            }
        }
        for (i, h) in handles {
            h.join()
                .map_err(|_| PipelineError::ShardTerminated { shard: i })?;
        }
        Ok(())
    }

    // -- introspection --------------------------------------------------

    /// Row key-space bound.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column key-space bound.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Number of shards (= worker threads).
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The configuration this pipeline runs with.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// The current epoch (last stamped snapshot/checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Events accepted so far (enqueued; possibly not yet merged).
    pub fn events_ingested(&self) -> u64 {
        self.metrics.snapshot().events_ingested
    }

    /// Live service counters (ingest volume, rejections, depths,
    /// latencies).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Frozen service counters.
    pub fn metrics_snapshot(&self) -> PipelineMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// One shard's kernel registry (its `stream_merge` / `ewise_add`
    /// traffic).
    pub fn shard_kernel_metrics(&self, shard: usize) -> MetricsSnapshot {
        self.shards[shard].ctx.metrics().snapshot()
    }

    /// Kernel counters summed across every shard plus the snapshot
    /// assembler.
    pub fn kernel_metrics(&self) -> MetricsSnapshot {
        let mut parts: Vec<MetricsSnapshot> = self
            .shards
            .iter()
            .map(|sh| sh.ctx.metrics().snapshot())
            .collect();
        parts.push(self.assemble_ctx.metrics().snapshot());
        merge_kernel_snapshots(&parts)
    }

    // -- tracing --------------------------------------------------------

    /// Switch span tracing on every context this pipeline owns (the
    /// snapshot assembler and all shard workers). Default is
    /// [`TraceMode::Disabled`]: span sites cost one relaxed atomic load.
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.assemble_ctx.trace().set_mode(mode);
        for shard in &self.shards {
            shard.ctx.trace().set_mode(mode);
        }
    }

    /// Record any span at or over `threshold` (with its input-shape
    /// detail) on every owned context, even in
    /// [`TraceMode::SlowOnly`]. `None` switches slow-op capture off.
    pub fn set_slow_threshold(&self, threshold: Option<std::time::Duration>) {
        self.assemble_ctx.trace().set_slow_threshold(threshold);
        for shard in &self.shards {
            shard.ctx.trace().set_slow_threshold(threshold);
        }
    }

    /// Render every owned context's span tree (assembler first, then
    /// shards in index order). Empty when nothing was traced.
    pub fn trace_report(&self) -> String {
        let mut out = String::new();
        let assembler = self.assemble_ctx.trace().report();
        if !assembler.is_empty() {
            out.push_str("assembler:\n");
            out.push_str(&assembler);
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let tree = shard.ctx.trace().report();
            if !tree.is_empty() {
                out.push_str(&format!("shard {i}:\n"));
                out.push_str(&tree);
            }
        }
        out
    }

    /// The full Prometheus text exposition: service counters and stage
    /// latency histograms, per-standing-view series (when views are
    /// registered), followed by the kernel counters and latency
    /// histograms merged across every shard and the assembler.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.metrics_snapshot().render_prometheus();
        out.push_str(&self.standing.render_prometheus());
        out.push_str(&self.kernel_metrics().render_prometheus());
        out
    }
}

impl<S: Semiring> Drop for Pipeline<S>
where
    S::Value: PodValue,
{
    fn drop(&mut self) {
        // Best-effort drain-and-join so tests and short-lived tools never
        // leak worker threads; errors are unreportable here.
        let _ = self.join_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    #[test]
    fn ingest_and_snapshot_single_thread() {
        let p = Pipeline::new(1 << 20, 1 << 20, PlusTimes::<f64>::new());
        for i in 0..500u64 {
            p.ingest(i % 50, i / 50, 1.0).unwrap();
        }
        let snap = p.snapshot().unwrap();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.events(), 500);
        assert_eq!(snap.nnz(), 500);
        assert_eq!(snap.get(0, 0), Some(&1.0));
        assert_eq!(p.epoch(), 1);
        p.shutdown().unwrap();
    }

    #[test]
    fn out_of_bounds_keys_are_typed_errors() {
        let p = Pipeline::new(8, 8, PlusTimes::<f64>::new());
        let r = p.ingest(9, 0, 1.0);
        assert!(
            matches!(r, Err(PipelineError::KeyOutOfBounds { .. })),
            "{r:?}"
        );
        let r = p.try_ingest(0, 8, 1.0);
        assert!(matches!(r, Err(PipelineError::KeyOutOfBounds { .. })));
        assert_eq!(p.events_ingested(), 0);
    }

    #[test]
    fn try_ingest_reports_backpressure() {
        // 1 shard, 1-message channel, and a worker wedged behind a slow
        // snapshot is hard to stage deterministically; instead saturate
        // with the worker's own arrival race: capacity 1 and rapid-fire
        // try_ingest must eventually see Full at least once, and every
        // accepted event must still be merged exactly once.
        let config = PipelineConfig::new()
            .with_shards(1)
            .with_channel_capacity(1);
        let p = Pipeline::with_config(1 << 10, 1 << 10, PlusTimes::<f64>::new(), config);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..50_000u64 {
            match p.try_ingest(i % 100, i % 97, 1.0) {
                Ok(()) => accepted += 1,
                Err(PipelineError::Full { shard: 0 }) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(p.events_ingested(), accepted);
        assert_eq!(p.metrics_snapshot().full_rejections, rejected);
        let snap = p.snapshot().unwrap();
        let total: f64 = snap.dcsr().iter().map(|(_, _, v)| *v).sum();
        assert_eq!(total, accepted as f64);
        p.shutdown().unwrap();
    }

    #[test]
    fn batch_and_event_ingest_agree() {
        let s = PlusTimes::<f64>::new();
        let events: Vec<(u64, u64, f64)> = (0..4000u64)
            .map(|i| (i % 37, (i * 7) % 41, (i % 5) as f64 + 0.5))
            .collect();
        let a = Pipeline::new(64, 64, s);
        for &(r, c, v) in &events {
            a.ingest(r, c, v).unwrap();
        }
        let b = Pipeline::new(64, 64, s);
        b.ingest_batch(events.clone()).unwrap();
        assert_eq!(a.snapshot().unwrap().dcsr(), b.snapshot().unwrap().dcsr());
        a.shutdown().unwrap();
        b.shutdown().unwrap();
    }

    type SeenSnapshots = Arc<Mutex<Vec<Arc<EpochSnapshot<PlusTimes<f64>>>>>>;

    #[test]
    fn snapshot_shared_publishes_to_sinks_zero_copy() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let seen: SeenSnapshots = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let seen = Arc::clone(&seen);
            move |snap: &Arc<EpochSnapshot<PlusTimes<f64>>>| {
                seen.lock().unwrap().push(Arc::clone(snap));
            }
        };
        p.add_snapshot_sink(Arc::new(sink));

        p.ingest(1, 2, 3.0).unwrap();
        let first = p.snapshot_shared().unwrap();
        p.ingest(4, 5, 6.0).unwrap();
        let second = p.snapshot_shared().unwrap();

        let held = seen.lock().unwrap();
        assert_eq!(held.len(), 2);
        // Zero-copy: the sink holds the *same* allocation the caller got.
        assert!(Arc::ptr_eq(&held[0], &first));
        assert!(Arc::ptr_eq(&held[1], &second));
        assert_eq!(held[0].epoch(), 1);
        assert_eq!(held[1].epoch(), 2);
        // The first epoch's contents are immutable behind the Arc even
        // though ingest continued: it still sees exactly one event.
        assert_eq!(held[0].nnz(), 1);
        assert_eq!(held[1].nnz(), 2);
        p.shutdown().unwrap();
    }

    #[test]
    fn panicking_sink_does_not_kill_the_pipeline() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::AtomicBool;

        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        // A sink that panics on its first publication only.
        let armed = Arc::new(AtomicBool::new(true));
        let sink = {
            let armed = Arc::clone(&armed);
            move |_snap: &Arc<EpochSnapshot<PlusTimes<f64>>>| {
                if armed.swap(false, Ordering::SeqCst) {
                    panic!("sink exploded mid-publish");
                }
            }
        };
        p.add_snapshot_sink(Arc::new(sink));

        p.ingest(1, 2, 3.0).unwrap();
        // The panic unwinds through snapshot_shared while the sinks
        // mutex is held, poisoning it.
        let r = catch_unwind(AssertUnwindSafe(|| p.snapshot_shared()));
        assert!(r.is_err(), "the sink's panic must propagate to the caller");

        // Regression: the pipeline must survive the poisoned registry —
        // ingest, snapshot publication, rotation, and new registrations
        // all keep working.
        p.ingest(4, 5, 6.0).unwrap();
        let snap = p.snapshot_shared().expect("snapshot after poisoning");
        assert_eq!(snap.nnz(), 2);
        p.add_snapshot_sink(Arc::new(|_: &Arc<EpochSnapshot<PlusTimes<f64>>>| {}));
        let w = p.rotate_shared().expect("rotate after poisoning");
        assert_eq!(w.nnz(), 2);
        p.shutdown().unwrap();
    }

    /// A standing view that ⊕-folds delta entry values into a sum.
    #[derive(Default)]
    struct SumView {
        sum: Mutex<f64>,
        resets: AtomicU64,
    }

    impl StandingView<PlusTimes<f64>> for SumView {
        fn apply_delta(&self, delta: &EpochSnapshot<PlusTimes<f64>>) {
            let add: f64 = delta.dcsr().iter().map(|(_, _, v)| *v).sum();
            *self.sum.lock().unwrap() += add;
        }
        fn reset(&self) {
            *self.sum.lock().unwrap() = 0.0;
            self.resets.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn standing_view_folds_deltas_and_matches_full() {
        let config = PipelineConfig::new().with_shards(2);
        let p = Pipeline::with_config(1 << 10, 1 << 10, PlusTimes::<f64>::new(), config);
        let view = Arc::new(SumView::default());
        p.register_standing_query("sum", Arc::clone(&view) as Arc<dyn StandingView<_>>);

        p.ingest(1, 2, 3.0).unwrap();
        p.ingest(9, 9, 4.0).unwrap();
        let w1 = p.snapshot_incremental().unwrap();
        assert_eq!(w1.full.epoch(), w1.delta.epoch());
        assert_eq!(w1.delta.nnz(), 2);
        assert_eq!(*view.sum.lock().unwrap(), 7.0);

        // Second wave: only the new entry appears in the delta; the view
        // total still matches the full snapshot's fold.
        p.ingest(5, 5, 10.0).unwrap();
        let w2 = p.snapshot_incremental().unwrap();
        assert_eq!(w2.delta.nnz(), 1);
        assert_eq!(w2.full.nnz(), 3);
        let full_sum: f64 = w2.full.dcsr().iter().map(|(_, _, v)| *v).sum();
        assert_eq!(*view.sum.lock().unwrap(), full_sum);

        // Rotation delivers the closing tail, then resets the view.
        p.ingest(7, 7, 100.0).unwrap();
        let closed = p.rotate().unwrap();
        assert_eq!(closed.nnz(), 4);
        assert_eq!(view.resets.load(Ordering::Relaxed), 1);
        assert_eq!(*view.sum.lock().unwrap(), 0.0);
        assert_eq!(p.standing_stats()[0].updates, 3, "two waves + one rotation");

        // The fresh window's deltas start from zero again.
        p.ingest(1, 1, 2.5).unwrap();
        let w3 = p.snapshot_incremental().unwrap();
        assert_eq!(w3.delta.nnz(), 1);
        assert_eq!(*view.sum.lock().unwrap(), 2.5);

        let text = p.render_prometheus();
        assert!(text.contains("pipeline_standing_updates_total{view=\"sum\"} 4"));
        assert!(text.contains("pipeline_standing_update_seconds_bucket{view=\"sum\""));
        p.shutdown().unwrap();
    }

    #[test]
    fn incremental_and_plain_snapshots_interleave_consistently() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        p.ingest(0, 0, 1.0).unwrap();
        let w1 = p.snapshot_incremental().unwrap();
        assert_eq!(
            w1.full.dcsr(),
            w1.delta.dcsr(),
            "first delta is the full fold"
        );
        // A plain snapshot between waves does not advance the delta cut.
        p.ingest(0, 1, 2.0).unwrap();
        let plain = p.snapshot().unwrap();
        assert_eq!(plain.nnz(), 2);
        p.ingest(0, 2, 3.0).unwrap();
        let w2 = p.snapshot_incremental().unwrap();
        assert_eq!(w2.delta.nnz(), 2, "delta spans back to the last delta cut");
        assert_eq!(w2.full.nnz(), 3);
        p.shutdown().unwrap();
    }

    #[test]
    fn rotate_closes_window_and_starts_fresh() {
        let config = PipelineConfig::new().with_shards(2);
        let p = Pipeline::with_config(1 << 10, 1 << 10, PlusTimes::<f64>::new(), config);
        p.ingest(1, 2, 3.0).unwrap();
        p.ingest(1, 2, 4.0).unwrap();
        let w1 = p.rotate().unwrap();
        assert_eq!(w1.epoch(), 1);
        assert_eq!(w1.nnz(), 1);
        assert_eq!(w1.get(1, 2), Some(&7.0));

        // The new window starts empty; the closed window is unaffected
        // by subsequent ingest.
        p.ingest(5, 6, 1.0).unwrap();
        let w2 = p.rotate().unwrap();
        assert_eq!(w2.epoch(), 2);
        assert_eq!(w2.nnz(), 1);
        assert_eq!(w2.get(5, 6), Some(&1.0));
        assert_eq!(w2.get(1, 2), None);
        assert_eq!(w1.get(1, 2), Some(&7.0));

        // An empty window is a valid (empty) epoch.
        let w3 = p.rotate().unwrap();
        assert_eq!(w3.nnz(), 0);
        assert_eq!(w3.epoch(), 3);
        p.shutdown().unwrap();
    }

    #[test]
    fn stream_merge_metrics_flow_up() {
        let config = PipelineConfig::new().with_shards(2).with_stream(
            hypersparse::StreamConfig::new()
                .with_buffer_cap(32)
                .with_growth(2),
        );
        let p = Pipeline::with_config(1 << 20, 1 << 20, PlusTimes::<f64>::new(), config);
        let events: Vec<(u64, u64, f64)> = (0..5000u64).map(|i| (i % 997, i % 991, 1.0)).collect();
        p.ingest_batch(events).unwrap();
        let _ = p.snapshot().unwrap();
        let merged = p.kernel_metrics();
        assert!(
            merged.kernel(hypersparse::Kernel::StreamMerge).calls > 0,
            "cascades must be visible:\n{}",
            merged.report()
        );
        let per_shard: u64 = (0..2)
            .map(|i| {
                p.shard_kernel_metrics(i)
                    .kernel(hypersparse::Kernel::StreamMerge)
                    .calls
            })
            .sum();
        assert_eq!(
            per_shard,
            merged.kernel(hypersparse::Kernel::StreamMerge).calls
        );
        p.shutdown().unwrap();
    }
}
