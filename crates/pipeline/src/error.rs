//! Typed errors for the pipeline service layer.
//!
//! Serving layers must never panic on bad input, full queues, or corrupt
//! disk state — every failure mode of the pipeline surfaces here as a
//! variant the caller can match on.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong in the pipeline layer.
#[derive(Debug)]
pub enum PipelineError {
    /// A non-blocking ingest found the target shard's channel at
    /// capacity. Retry, block via `ingest`, or shed load.
    Full {
        /// The shard whose channel was full.
        shard: usize,
    },
    /// An event's key lies outside the pipeline's `nrows × ncols` space.
    KeyOutOfBounds {
        /// The offending row key.
        row: u64,
        /// The offending column key.
        col: u64,
        /// The configured key-space bounds.
        bounds: (u64, u64),
    },
    /// A shard worker is gone (its thread terminated); the pipeline can
    /// no longer accept work for that shard.
    ShardTerminated {
        /// The dead shard.
        shard: usize,
    },
    /// Filesystem trouble while checkpointing or restoring.
    Io {
        /// What the pipeline was doing.
        action: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// No committed manifest generation exists under the directory.
    NoManifest {
        /// The checkpoint directory searched.
        dir: PathBuf,
    },
    /// A checkpoint file failed validation — truncated, checksum
    /// mismatch, bad magic/version, or unparseable manifest.
    Corrupt {
        /// The file that failed validation.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// The checkpoint on disk is valid but incompatible with the
    /// restoring pipeline (different value type or shard topology).
    Incompatible {
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Full { shard } => {
                write!(f, "shard {shard} ingest channel is full (backpressure)")
            }
            PipelineError::KeyOutOfBounds { row, col, bounds } => write!(
                f,
                "event key ({row}, {col}) outside the {}×{} key space",
                bounds.0, bounds.1
            ),
            PipelineError::ShardTerminated { shard } => {
                write!(f, "shard {shard} worker has terminated")
            }
            PipelineError::Io {
                action,
                path,
                source,
            } => write!(f, "{action} {}: {source}", path.display()),
            PipelineError::NoManifest { dir } => write!(
                f,
                "no committed checkpoint manifest under {}",
                dir.display()
            ),
            PipelineError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint file {}: {detail}", path.display())
            }
            PipelineError::Incompatible { detail } => {
                write!(f, "incompatible checkpoint: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PipelineError {
    /// Convenience constructor for I/O failures.
    pub(crate) fn io(
        action: &'static str,
        path: impl Into<PathBuf>,
        source: std::io::Error,
    ) -> Self {
        PipelineError::Io {
            action,
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for validation failures.
    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        PipelineError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PipelineError::Full { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        let e = PipelineError::KeyOutOfBounds {
            row: 9,
            col: 2,
            bounds: (4, 4),
        };
        assert!(e.to_string().contains("(9, 2)"));
        let e = PipelineError::corrupt("/tmp/x.bin", "bad magic");
        assert!(e.to_string().contains("bad magic"));
    }
}
