//! Snapshot publication: push freshly assembled epochs to subscribers.
//!
//! A serving layer (or any other consumer of consistent views) registers
//! a [`SnapshotSink`] on the pipeline; every
//! [`crate::Pipeline::snapshot_shared`] call then hands the sink an
//! `Arc` of the new [`EpochSnapshot`] — zero-copy, so a registry can
//! retain the last N epochs without ever cloning matrix data, and
//! readers holding an older epoch are never blocked by publication.

use std::sync::Arc;

use semiring::traits::Semiring;

use crate::snapshot::EpochSnapshot;

/// A subscriber to snapshot publication.
///
/// `publish` runs on the thread that called
/// [`crate::Pipeline::snapshot_shared`], after the epoch is fully
/// assembled; implementations should be quick (store the `Arc`, rotate a
/// buffer) and must not call back into the pipeline's snapshot paths.
pub trait SnapshotSink<S: Semiring>: Send + Sync {
    /// Receive one freshly assembled epoch.
    fn publish(&self, snapshot: &Arc<EpochSnapshot<S>>);
}

/// Blanket impl so plain closures (and `Arc<F>`) can subscribe.
impl<S: Semiring, F> SnapshotSink<S> for F
where
    F: Fn(&Arc<EpochSnapshot<S>>) + Send + Sync,
{
    fn publish(&self, snapshot: &Arc<EpochSnapshot<S>>) {
        self(snapshot)
    }
}
