//! Fixed-width binary codec for checkpointable values.
//!
//! The checkpoint format is length-prefixed little-endian binary; values
//! need an exact, portable byte encoding. [`PodValue`] provides one for
//! the plain-old-data scalars the streaming workloads use. Semirings
//! over heap values (power sets, strings) can still run in a pipeline —
//! they just cannot be checkpointed, which the `where` bounds on the
//! checkpoint entry points enforce at compile time.

use semiring::traits::Value;

/// A [`Value`] with an exact fixed-width little-endian byte encoding.
///
/// `TAG` identifies the concrete type inside checkpoint files, so a
/// restore with the wrong value type is detected as incompatible rather
/// than misread.
pub trait PodValue: Value {
    /// Type tag recorded in checkpoint headers.
    const TAG: u16;
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Append the encoding of `self` to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decode from exactly [`PodValue::WIDTH`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($t:ty, $tag:expr) => {
        impl PodValue for $t {
            const TAG: u16 = $tag;
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact width"))
            }
        }
    };
}

impl_pod!(f64, 1);
impl_pod!(f32, 2);
impl_pod!(u64, 3);
impl_pod!(i64, 4);
impl_pod!(u32, 5);
impl_pod!(i32, 6);

impl PodValue for bool {
    const TAG: u16 = 7;
    const WIDTH: usize = 1;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn read_le(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: PodValue>(v: T) {
        let mut buf = Vec::new();
        v.write_le(&mut buf);
        assert_eq!(buf.len(), T::WIDTH);
        assert_eq!(T::read_le(&buf), v);
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(1.5f64);
        round_trip(-0.25f32);
        round_trip(u64::MAX);
        round_trip(-17i64);
        round_trip(42u32);
        round_trip(i32::MIN);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn tags_are_distinct() {
        let tags = [
            <f64 as PodValue>::TAG,
            <f32 as PodValue>::TAG,
            <u64 as PodValue>::TAG,
            <i64 as PodValue>::TAG,
            <u32 as PodValue>::TAG,
            <i32 as PodValue>::TAG,
            <bool as PodValue>::TAG,
        ];
        let set: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(set.len(), tags.len());
    }
}
