//! Sharded streaming ingest/query service — the deployed form of the
//! paper's hypersparse streaming story.
//!
//! *Mathematics of Digital Hyperspace* leads with sustained streaming
//! ingest ("75 billion inserts/second using hierarchical hypersparse
//! matrices") feeding continuous analysis; the fielded version of that
//! stack is a long-running ingest-and-analyze service (GraphBLAS network
//! telemetry deployments à la Jones et al. / Jananthan et al.). The
//! `hypersparse` crate supplies the single-threaded primitive
//! ([`hypersparse::StreamingMatrix`]); this crate turns it into a
//! concurrent, fault-tolerant service:
//!
//! * **Sharding** — events hash-partition by row key
//!   ([`config::shard_of`]) across N shards, each a `StreamingMatrix`
//!   owned by a dedicated worker thread. Rows never span shards, so the
//!   global state is a disjoint union.
//! * **Backpressure** — every shard channel is *bounded*:
//!   [`Pipeline::ingest`] blocks at capacity, [`Pipeline::try_ingest`]
//!   returns [`PipelineError::Full`]; memory is bounded no matter how
//!   fast the feed runs.
//! * **Snapshot isolation** — [`Pipeline::snapshot`] sends a marker wave
//!   through the ingest channels and ⊕-folds the per-shard cuts into an
//!   owned, epoch-stamped [`EpochSnapshot`]; queries run against it
//!   (as a [`hypersparse::Matrix`] or an associative array) while
//!   ingest continues. Concurrent inserts can never alter an epoch's
//!   result.
//! * **Checkpoint/restore** — [`Pipeline::checkpoint`] serializes every
//!   shard's hierarchy to length-prefixed binary files under a
//!   checksummed manifest committed by atomic rename;
//!   [`Pipeline::restore`] (and [`Pipeline::restore_with_fallback`])
//!   rebuilds the exact epoch state, detecting truncation and bit-rot
//!   as typed [`PipelineError::Corrupt`] values.
//! * **Standing queries** — [`Pipeline::register_standing_query`]
//!   attaches a [`StandingView`] that
//!   [`Pipeline::snapshot_incremental`] keeps current by feeding it each
//!   epoch's **delta** (entries since the previous cut) instead of
//!   recomputing from scratch — `full(t) = full(t−1) ⊕ delta(t)` by
//!   construction, `O(Δ)` maintenance per wave.
//! * **Observability** — service counters ([`PipelineMetrics`]) plus
//!   per-shard kernel registries (`stream_merge`, `ewise_add`, …)
//!   merged via [`metrics::merge_kernel_snapshots`], and per-view
//!   `pipeline_standing_*` series for standing queries.
//!
//! ```
//! use pipeline::{Pipeline, PipelineConfig};
//! use semiring::PlusTimes;
//!
//! let p = Pipeline::with_config(
//!     1 << 40, 1 << 40,                       // a 2^40 key space
//!     PlusTimes::<f64>::new(),
//!     PipelineConfig::new().with_shards(2),
//! );
//! p.ingest(7, 9, 1.0).unwrap();
//! p.ingest(7, 9, 2.0).unwrap();               // ⊕-accumulates
//! let snap = p.snapshot().unwrap();           // epoch 1, isolated
//! assert_eq!(snap.get(7, 9), Some(&3.0));
//! p.ingest(1, 1, 5.0).unwrap();               // invisible to `snap`
//! assert_eq!(snap.nnz(), 1);
//! p.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod metrics;
pub mod router;
pub(crate) mod shard;
pub mod sink;
pub mod snapshot;
pub mod standing;
pub mod value;

pub use checkpoint::Manifest;
pub use config::{shard_of, PipelineConfig};
pub use error::PipelineError;
pub use metrics::{merge_kernel_snapshots, PipelineMetrics, PipelineMetricsSnapshot, Stage};
pub use router::Pipeline;
pub use sink::SnapshotSink;
pub use snapshot::{EpochSnapshot, IncrementalEpoch};
pub use standing::{StandingView, StandingViewStats};
pub use value::PodValue;
