//! Standing queries: materialized views maintained from epoch deltas.
//!
//! A [`StandingView`] is a derived result (detector state, a triangle
//! count, a ranking) that the pipeline keeps *current* by feeding it the
//! delta of every incremental marker wave instead of recomputing it from
//! a full snapshot per epoch — the paper's ⊕-fold-over-deltas framing of
//! continuous analysis. Views register once
//! ([`crate::Pipeline::register_standing_query`]) and are then updated
//! inside [`crate::Pipeline::snapshot_incremental`] and
//! [`crate::Pipeline::rotate`], epoch-stamped in lockstep with the
//! snapshot they accompany.
//!
//! The registry meters each view: a per-view log₂ latency histogram, the
//! last applied epoch, and a cumulative update count, all rendered as
//! `pipeline_standing_*` Prometheus series alongside the stage and
//! kernel expositions.
//!
//! Exactly-once contract: every event ingested before a marker wave is
//! contained in exactly one delta handed to `apply_delta`, and window
//! rotation delivers the closing delta *before* `reset` — so a view that
//! ⊕-folds its deltas equals the same computation run from scratch on
//! the full window, which the `incremental_props` suite proves at 1/2/4
//! shards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hypersparse::trace::{write_prometheus_header, write_prometheus_histogram};
use hypersparse::{Histogram, HistogramSnapshot};
use semiring::traits::Semiring;

use crate::snapshot::EpochSnapshot;

/// A materialized view updated incrementally from epoch deltas.
///
/// Implementations use interior mutability (the registry shares views
/// behind `Arc<dyn StandingView>`, and serving layers typically hold a
/// second handle to read the maintained state).
pub trait StandingView<S: Semiring>: Send + Sync {
    /// Absorb one epoch's delta — the entries inserted since the
    /// previous marker wave, ⊕-assembled across shards and stamped with
    /// the accompanying snapshot's epoch. Called exactly once per
    /// incremental epoch, in epoch order.
    fn apply_delta(&self, delta: &EpochSnapshot<S>);

    /// Drop all maintained state: the analytics window rotated, and the
    /// closing delta has already been applied. Subsequent deltas belong
    /// to the fresh window.
    fn reset(&self);
}

/// One registered view plus its meters.
struct Registered<S: Semiring> {
    name: String,
    view: Arc<dyn StandingView<S>>,
    latency: Histogram,
    epoch: AtomicU64,
    updates: AtomicU64,
}

/// Frozen per-view meters, in registration order.
#[derive(Clone, Debug)]
pub struct StandingViewStats {
    /// The name the view registered under.
    pub name: String,
    /// Last epoch whose delta was applied (0 before the first).
    pub epoch: u64,
    /// Deltas applied so far (rotations count their closing delta).
    pub updates: u64,
    /// Per-update `apply_delta` wall time.
    pub latency: HistogramSnapshot,
}

/// The pipeline's standing-query registry.
///
/// Lock discipline matches the sink registry: the mutex guards only the
/// registration list, poisoning is recovered with `into_inner` (the list
/// is always valid — a panicking view must not take down ingest).
pub(crate) struct StandingRegistry<S: Semiring> {
    views: Mutex<Vec<Registered<S>>>,
}

impl<S: Semiring> Default for StandingRegistry<S> {
    fn default() -> Self {
        StandingRegistry {
            views: Mutex::new(Vec::new()),
        }
    }
}

impl<S: Semiring> StandingRegistry<S> {
    pub(crate) fn register(&self, name: String, view: Arc<dyn StandingView<S>>) {
        self.views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Registered {
                name,
                view,
                latency: Histogram::default(),
                epoch: AtomicU64::new(0),
                updates: AtomicU64::new(0),
            });
    }

    /// True when no view is registered — callers skip assembling the
    /// delta entirely in that case.
    pub(crate) fn is_empty(&self) -> bool {
        self.views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Feed one epoch's delta to every view, metering each application.
    pub(crate) fn apply(&self, delta: &EpochSnapshot<S>) {
        let views = self.views.lock().unwrap_or_else(|e| e.into_inner());
        for reg in views.iter() {
            let t = Instant::now();
            reg.view.apply_delta(delta);
            reg.latency.record(t.elapsed());
            reg.epoch.store(delta.epoch(), Ordering::Relaxed);
            reg.updates.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reset every view (window rotation, after the closing delta).
    pub(crate) fn reset_all(&self) {
        let views = self.views.lock().unwrap_or_else(|e| e.into_inner());
        for reg in views.iter() {
            reg.view.reset();
        }
    }

    pub(crate) fn stats(&self) -> Vec<StandingViewStats> {
        let views = self.views.lock().unwrap_or_else(|e| e.into_inner());
        views
            .iter()
            .map(|reg| StandingViewStats {
                name: reg.name.clone(),
                epoch: reg.epoch.load(Ordering::Relaxed),
                updates: reg.updates.load(Ordering::Relaxed),
                latency: reg.latency.snapshot(),
            })
            .collect()
    }

    /// `pipeline_standing_*` Prometheus series; empty string when no
    /// view is registered, so concatenation stays clean for pipelines
    /// that never use standing queries.
    pub(crate) fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let stats = self.stats();
        if stats.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        write_prometheus_header(
            &mut out,
            "pipeline_standing_updates_total",
            "counter",
            "Deltas applied per standing view",
        );
        for s in &stats {
            let _ = writeln!(
                out,
                "pipeline_standing_updates_total{{view=\"{}\"}} {}",
                s.name, s.updates
            );
        }
        write_prometheus_header(
            &mut out,
            "pipeline_standing_epoch",
            "gauge",
            "Last epoch applied per standing view",
        );
        for s in &stats {
            let _ = writeln!(
                out,
                "pipeline_standing_epoch{{view=\"{}\"}} {}",
                s.name, s.epoch
            );
        }
        write_prometheus_header(
            &mut out,
            "pipeline_standing_update_seconds",
            "histogram",
            "Standing-view delta application latency",
        );
        for s in &stats {
            if s.latency.count() == 0 {
                continue;
            }
            write_prometheus_histogram(
                &mut out,
                "pipeline_standing_update_seconds",
                &format!("view=\"{}\"", s.name),
                &s.latency,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::OpCtx;
    use semiring::PlusTimes;

    /// A view that ⊕-folds delta nnz into a counter.
    #[derive(Default)]
    struct NnzView {
        total: AtomicU64,
        resets: AtomicU64,
    }

    impl StandingView<PlusTimes<f64>> for NnzView {
        fn apply_delta(&self, delta: &EpochSnapshot<PlusTimes<f64>>) {
            self.total.fetch_add(delta.nnz() as u64, Ordering::Relaxed);
        }
        fn reset(&self) {
            self.resets.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn delta_of(nnz: u64, epoch: u64) -> EpochSnapshot<PlusTimes<f64>> {
        let s = PlusTimes::<f64>::new();
        let ctx = OpCtx::new();
        let mut coo = hypersparse::Coo::new(64, 64);
        for i in 0..nnz {
            coo.push(i % 64, i / 64, 1.0);
        }
        EpochSnapshot::assemble(epoch, nnz, &ctx, vec![coo.build_dcsr(s)], s)
    }

    #[test]
    fn registry_applies_meters_and_resets() {
        let reg = StandingRegistry::<PlusTimes<f64>>::default();
        assert!(reg.is_empty());
        let view = Arc::new(NnzView::default());
        reg.register("nnz".into(), Arc::clone(&view) as Arc<dyn StandingView<_>>);
        assert!(!reg.is_empty());

        reg.apply(&delta_of(3, 1));
        reg.apply(&delta_of(2, 2));
        assert_eq!(view.total.load(Ordering::Relaxed), 5);
        reg.reset_all();
        assert_eq!(view.resets.load(Ordering::Relaxed), 1);

        let stats = reg.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "nnz");
        assert_eq!(stats[0].epoch, 2);
        assert_eq!(stats[0].updates, 2);
        assert_eq!(stats[0].latency.count(), 2);

        let text = reg.render_prometheus();
        assert!(text.contains("pipeline_standing_updates_total{view=\"nnz\"} 2"));
        assert!(text.contains("pipeline_standing_epoch{view=\"nnz\"} 2"));
        assert!(text.contains("pipeline_standing_update_seconds_bucket{view=\"nnz\""));
    }

    #[test]
    fn empty_registry_renders_nothing() {
        let reg = StandingRegistry::<PlusTimes<f64>>::default();
        assert!(reg.render_prometheus().is_empty());
        // Applying with no views is a no-op, not an error.
        reg.apply(&delta_of(1, 1));
        reg.reset_all();
    }
}
