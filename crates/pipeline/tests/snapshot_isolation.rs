//! The pipeline's two headline guarantees, asserted bit-for-bit:
//!
//! 1. **Snapshot isolation** — a query's epoch result is immune to
//!    concurrent ingest: every snapshot taken under fire is a consistent
//!    per-shard prefix of the event stream, and a held snapshot never
//!    changes.
//! 2. **Determinism** — for a fixed event sequence and shard count, the
//!    drained snapshot equals the single-threaded flat reference build
//!    exactly, at every shard count and merge-thread count, on every
//!    run, regardless of worker interleaving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hypersparse::{Coo, Dcsr, Ix, StreamConfig};
use pipeline::{Pipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::{MinPlus, PlusTimes};

const N: Ix = 1 << 30;

fn workload(n: usize, seed: u64) -> Vec<(Ix, Ix, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..10_000u64),
                rng.gen_range(0..10_000u64),
                rng.gen_range(0..100u64) as f64 / 4.0,
            )
        })
        .collect()
}

fn flat_reference(events: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
    let mut coo = Coo::new(N, N);
    coo.extend(events.iter().copied());
    coo.build_dcsr(PlusTimes::<f64>::new())
}

#[test]
fn drained_snapshot_equals_flat_build_at_every_shard_count() {
    let events = workload(30_000, 42);
    let reference = flat_reference(&events);
    for shards in [1, 2, 4] {
        for merge_threads in [1, 2] {
            let config = PipelineConfig::new()
                .with_shards(shards)
                .with_merge_threads(merge_threads)
                .with_stream(StreamConfig::new().with_buffer_cap(512));
            let p = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config);
            p.ingest_batch(events.iter().copied()).unwrap();
            let snap = p.snapshot().unwrap();
            assert_eq!(
                snap.dcsr(),
                &reference,
                "shards={shards} merge_threads={merge_threads}"
            );
            assert_eq!(snap.per_shard_nnz().len(), shards);
            p.shutdown().unwrap();
        }
    }
}

#[test]
fn fixed_sequence_is_bit_identical_across_runs() {
    // Same events, same shard count, two separate pipelines whose worker
    // threads interleave however the scheduler likes — identical bits.
    let events = workload(20_000, 7);
    let run = || {
        let p = Pipeline::with_config(
            N,
            N,
            PlusTimes::<f64>::new(),
            PipelineConfig::new()
                .with_shards(4)
                .with_stream(StreamConfig::new().with_buffer_cap(128).with_growth(4)),
        );
        // Mixed single-event and batch ingest: boundaries must not matter.
        for &(r, c, v) in &events[..1000] {
            p.ingest(r, c, v).unwrap();
        }
        p.ingest_batch(events[1000..].iter().copied()).unwrap();
        let snap = p.snapshot().unwrap();
        p.shutdown().unwrap();
        snap
    };
    let (a, b) = (run(), run());
    assert_eq!(a.dcsr(), b.dcsr());
    assert_eq!(a.per_shard_nnz(), b.per_shard_nnz());
}

#[test]
fn held_snapshot_is_immune_to_concurrent_ingest() {
    let events = workload(10_000, 99);
    let reference = flat_reference(&events);
    let p = Arc::new(Pipeline::with_config(
        N,
        N,
        PlusTimes::<f64>::new(),
        PipelineConfig::new().with_shards(4),
    ));
    p.ingest_batch(events.iter().copied()).unwrap();
    let snap = p.snapshot().unwrap();
    assert_eq!(snap.dcsr(), &reference);
    let frozen = snap.dcsr().clone();

    // Hammer the same cells from 4 threads while we hold `snap`.
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let p = Arc::clone(&p);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                p.ingest((t * 13 + i) % 10_000, i % 10_000, 1.0).unwrap();
                i += 1;
            }
            i
        }));
    }
    // Take (and discard) interleaved snapshots under fire, then stop.
    for _ in 0..5 {
        let _ = p.snapshot().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let extra: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(extra > 0, "writers must have actually run");

    // The held epoch result never moved.
    assert_eq!(snap.dcsr(), &frozen);
    assert_eq!(snap.dcsr(), &reference);

    // And the final drain sees exactly prefix + concurrent events: the
    // ⊕ of all values equals the total event count (every value was
    // summable mass).
    let final_snap = p.snapshot().unwrap();
    assert_eq!(
        final_snap.events(),
        events.len() as u64 + extra,
        "accepted-event accounting"
    );
    let mass: f64 = final_snap.dcsr().iter().map(|(_, _, v)| *v).sum();
    let expected: f64 = events.iter().map(|(_, _, v)| *v).sum::<f64>() + extra as f64;
    assert!((mass - expected).abs() < 1e-6, "{mass} vs {expected}");
}

#[test]
fn snapshots_under_fire_are_consistent_prefixes() {
    // Each writer thread appends column j at sequence position j within
    // its own row set; per-shard FIFO means any snapshot must see, per
    // row, a *contiguous prefix* of columns 0..k — a torn cut would show
    // holes.
    let p = Arc::new(Pipeline::with_config(
        N,
        N,
        PlusTimes::<f64>::new(),
        PipelineConfig::new()
            .with_shards(4)
            .with_stream(StreamConfig::new().with_buffer_cap(64)),
    ));
    const ROWS_PER_WRITER: u64 = 8;
    const COLS: u64 = 400;
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let p = Arc::clone(&p);
        writers.push(std::thread::spawn(move || {
            for j in 0..COLS {
                for r in 0..ROWS_PER_WRITER {
                    p.ingest(t * ROWS_PER_WRITER + r, j, 1.0).unwrap();
                }
            }
        }));
    }
    for _ in 0..20 {
        let snap = p.snapshot().unwrap();
        for (_, cols, vals) in snap.dcsr().iter_rows() {
            // Contiguous prefix 0..k, every value exactly 1.0.
            for (i, &c) in cols.iter().enumerate() {
                assert_eq!(c, i as u64, "hole in a row: torn snapshot cut");
            }
            assert!(vals.iter().all(|&v| v == 1.0));
        }
    }
    for w in writers {
        w.join().unwrap();
    }
    let end = p.snapshot().unwrap();
    assert_eq!(end.nnz(), (4 * ROWS_PER_WRITER * COLS) as usize);
}

#[test]
fn epochs_are_monotone_and_stamped() {
    let p = Pipeline::new(N, N, PlusTimes::<f64>::new());
    assert_eq!(p.epoch(), 0);
    let s1 = p.snapshot().unwrap();
    let s2 = p.snapshot().unwrap();
    let s3 = p.snapshot().unwrap();
    assert_eq!((s1.epoch(), s2.epoch(), s3.epoch()), (1, 2, 3));
    assert_eq!(p.epoch(), 3);
    p.shutdown().unwrap();
}

#[test]
fn min_plus_pipeline_keeps_minimum_observation() {
    // The service is semiring-generic: a min-plus pipeline ⊕-keeps the
    // smallest latency observed per edge.
    let p = Pipeline::with_config(
        N,
        N,
        MinPlus::<f64>::new(),
        PipelineConfig::new().with_shards(2),
    );
    p.ingest(3, 4, 9.0).unwrap();
    p.ingest(3, 4, 2.5).unwrap();
    p.ingest(3, 4, 7.0).unwrap();
    let snap = p.snapshot().unwrap();
    assert_eq!(snap.get(3, 4), Some(&2.5));
    p.shutdown().unwrap();
}

#[test]
fn graph_layer_queries_live_data_through_matrix_view() {
    // End-to-end: snapshot → Matrix → BFS on the live-ingested graph.
    let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
    // A path 0 → 1 → 2 → 3 plus noise.
    for (r, c) in [(0, 1), (1, 2), (2, 3), (10, 11)] {
        p.ingest(r, c, 1.0).unwrap();
    }
    let m = p.snapshot().unwrap().to_matrix();
    assert_eq!(m.nnz(), 4);
    assert_eq!(m.get(2, 3), Some(&1.0));
    let d = m.as_dcsr();
    assert_eq!(d.row(0).0, &[1]);
    p.shutdown().unwrap();
}
