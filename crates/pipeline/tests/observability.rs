//! Pipeline-level observability: the service Prometheus exposition, the
//! stage latency histograms, and span tracing across shard workers.

use std::time::Duration;

use hypersparse::trace::bucket_of;
use hypersparse::TraceMode;
use pipeline::{Pipeline, PipelineConfig, PipelineMetricsSnapshot, Stage};
use semiring::PlusTimes;

#[test]
fn service_exposition_is_byte_stable() {
    let mut snap = PipelineMetricsSnapshot {
        events_ingested: 1000,
        batches: 12,
        full_rejections: 3,
        snapshots: 2,
        snapshot_ns: 4_000_000,
        checkpoints: 1,
        checkpoint_ns: 9_000_000,
        channel_depths: vec![0, 2],
        ..Default::default()
    };
    // Three 5 µs ingests: bucket [4096, 8192) → le = 8192 ns.
    let h = &mut snap.stage_latency[Stage::Ingest as usize];
    h.buckets[bucket_of(5_000)] = 3;
    h.sum_ns = 15_000;
    let expected = "\
# HELP pipeline_events_ingested_total Events accepted into shard channels.
# TYPE pipeline_events_ingested_total counter
pipeline_events_ingested_total 1000
# HELP pipeline_batches_total Channel messages those events travelled in.
# TYPE pipeline_batches_total counter
pipeline_batches_total 12
# HELP pipeline_full_rejections_total try_ingest calls rejected with Full (backpressure).
# TYPE pipeline_full_rejections_total counter
pipeline_full_rejections_total 3
# HELP pipeline_snapshots_total Completed epoch snapshots.
# TYPE pipeline_snapshots_total counter
pipeline_snapshots_total 2
# HELP pipeline_checkpoints_total Committed checkpoints.
# TYPE pipeline_checkpoints_total counter
pipeline_checkpoints_total 1
# HELP pipeline_channel_depth Messages queued on each shard channel at scrape time.
# TYPE pipeline_channel_depth gauge
pipeline_channel_depth{shard=\"0\"} 0
pipeline_channel_depth{shard=\"1\"} 2
# HELP pipeline_stage_latency_seconds Wall time per pipeline stage execution.
# TYPE pipeline_stage_latency_seconds histogram
pipeline_stage_latency_seconds_bucket{stage=\"ingest\",le=\"0.000008192\"} 3
pipeline_stage_latency_seconds_bucket{stage=\"ingest\",le=\"+Inf\"} 3
pipeline_stage_latency_seconds_sum{stage=\"ingest\"} 0.000015
pipeline_stage_latency_seconds_count{stage=\"ingest\"} 3
";
    assert_eq!(snap.render_prometheus(), expected);
}

#[test]
fn live_pipeline_records_stages_and_spans() {
    let s = PlusTimes::<f64>::new();
    let dir = std::env::temp_dir().join(format!("pipeline-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = Pipeline::with_config(1 << 16, 1 << 16, s, PipelineConfig::new().with_shards(2));
    p.set_trace_mode(TraceMode::Full);

    for i in 0..200u64 {
        p.ingest(i % 97, i % 89, 1.0).unwrap();
    }
    p.ingest_batch((0..500u64).map(|i| (i % 101, i % 103, 2.0)))
        .unwrap();
    let _ = p.snapshot().unwrap();
    p.checkpoint(&dir).unwrap();

    let snap = p.metrics_snapshot();
    assert_eq!(snap.stage(Stage::Ingest).count(), 200 + 2); // batch → 2 shard sends
    assert_eq!(snap.stage(Stage::Route).count(), 1);
    assert!(snap.stage(Stage::ShardMerge).count() > 0);
    assert_eq!(snap.stage(Stage::Snapshot).count(), 1);
    assert_eq!(snap.stage(Stage::Checkpoint).count(), 1);
    assert_eq!(snap.stage(Stage::Restore).count(), 0);
    assert!(snap.report().contains("stage ingest"));

    // The merged kernel exposition carries the shards' latency
    // histograms: counts line up with merged call counters.
    let kernels = p.kernel_metrics();
    let sm = kernels.kernel(hypersparse::Kernel::StreamMerge);
    assert_eq!(sm.latency.count(), sm.calls);

    let text = p.render_prometheus();
    for series in [
        "pipeline_events_ingested_total 700",
        "pipeline_stage_latency_seconds_bucket{stage=\"snapshot\"",
        "pipeline_stage_latency_seconds_bucket{stage=\"shard_merge\"",
        "hypersparse_kernel_latency_seconds_bucket{kernel=\"stream_merge\"",
    ] {
        assert!(text.contains(series), "missing {series:?} in:\n{text}");
    }

    // Full-mode tracing captured the snapshot/checkpoint markers on the
    // assembler and per-command spans on the shard workers.
    let report = p.trace_report();
    for needle in [
        "assembler:",
        "snapshot",
        "checkpoint",
        "shard 0:",
        "shard_merge",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
    p.shutdown().unwrap();

    // Restore records its stage on the restored pipeline's metrics.
    let restored = Pipeline::restore(&dir, s, PipelineConfig::new()).unwrap();
    assert_eq!(restored.metrics_snapshot().stage(Stage::Restore).count(), 1);
    restored.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_mode_keeps_spans_empty() {
    let p = Pipeline::new(1 << 10, 1 << 10, PlusTimes::<f64>::new());
    for i in 0..50u64 {
        p.ingest(i, i, 1.0).unwrap();
    }
    let _ = p.snapshot().unwrap();
    assert!(p.trace_report().is_empty(), "no tracing unless enabled");
    // Stage histograms still run — they are counters, not spans.
    assert!(p.metrics_snapshot().stage(Stage::Ingest).count() > 0);
    p.shutdown().unwrap();
}

#[test]
fn slow_only_mode_thresholds_spans() {
    let p = Pipeline::new(1 << 10, 1 << 10, PlusTimes::<f64>::new());
    p.set_trace_mode(TraceMode::SlowOnly);
    p.set_slow_threshold(Some(Duration::from_secs(3600)));
    for i in 0..50u64 {
        p.ingest(i, i, 1.0).unwrap();
    }
    let _ = p.snapshot().unwrap();
    assert!(
        p.trace_report().is_empty(),
        "nothing outlives a one-hour threshold"
    );
    p.set_slow_threshold(Some(Duration::ZERO));
    let _ = p.snapshot().unwrap();
    assert!(p.trace_report().contains("[slow]"));
    p.shutdown().unwrap();
}
