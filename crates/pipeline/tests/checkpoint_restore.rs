//! Checkpoint → kill → restore round-trips, plus corruption robustness:
//! truncated/bit-flipped shard files and torn manifests must surface as
//! typed errors (never panics) and fall back to the previous committed
//! generation.

use std::fs;
use std::path::PathBuf;

use hypersparse::{Ix, StreamConfig};
use pipeline::{Pipeline, PipelineConfig, PipelineError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

const N: Ix = 1 << 40;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hyperspace-pipe-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> PipelineConfig {
    PipelineConfig::new()
        .with_shards(3)
        .with_stream(StreamConfig::new().with_buffer_cap(256).with_growth(4))
}

fn workload(n: usize, seed: u64) -> Vec<(Ix, Ix, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..50_000u64),
                rng.gen_range(0..50_000u64),
                rng.gen_range(1..20u64) as f64 * 0.5,
            )
        })
        .collect()
}

#[test]
fn checkpoint_kill_restore_round_trip() {
    let dir = tmp_dir("roundtrip");
    let events = workload(20_000, 1);

    let p = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());
    p.ingest_batch(events.iter().copied()).unwrap();
    let before = p.snapshot().unwrap();
    let manifest = p.checkpoint(&dir).unwrap();
    assert_eq!(manifest.generation, 1);
    assert_eq!(
        manifest.epoch, 2,
        "snapshot then checkpoint each stamp an epoch"
    );
    assert_eq!(manifest.events, events.len() as u64);
    // "Kill": drop the pipeline without any further coordination.
    drop(p);

    let r = Pipeline::restore(&dir, PlusTimes::<f64>::new(), config()).unwrap();
    assert_eq!(r.epoch(), manifest.epoch);
    assert_eq!(r.events_ingested(), events.len() as u64);
    assert_eq!(r.shards(), 3);
    let after = r.snapshot().unwrap();
    assert_eq!(after.dcsr(), before.dcsr(), "restored state bit-identical");
    assert_eq!(after.epoch(), manifest.epoch + 1);

    // The restored pipeline keeps ingesting correctly.
    let more = workload(5_000, 2);
    r.ingest_batch(more.iter().copied()).unwrap();
    let extended = r.snapshot().unwrap();

    // Reference: one uninterrupted pipeline over the full sequence.
    let q = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());
    q.ingest_batch(events.iter().copied()).unwrap();
    q.ingest_batch(more.iter().copied()).unwrap();
    assert_eq!(
        extended.dcsr(),
        q.snapshot().unwrap().dcsr(),
        "restore is transparent to subsequent ingest"
    );
    q.shutdown().unwrap();
    r.shutdown().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_with_checkpoint_drains_first() {
    let dir = tmp_dir("shutdown");
    let events = workload(8_000, 3);
    let p = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());
    // Leave a deep queue behind: a bounded channel full of batches, then
    // immediately shut down — the final checkpoint must include it all.
    for chunk in events.chunks(100) {
        p.ingest_batch(chunk.iter().copied()).unwrap();
    }
    let manifest = p.shutdown_with_checkpoint(&dir).unwrap();
    assert_eq!(manifest.events, events.len() as u64);
    assert_eq!(
        manifest.shards.iter().map(|m| m.inserted).sum::<u64>(),
        events.len() as u64,
        "every accepted event drained into a shard before serialization"
    );

    let r = Pipeline::restore(&dir, PlusTimes::<f64>::new(), config()).unwrap();
    let got = r.snapshot().unwrap();
    let q = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());
    q.ingest_batch(events.iter().copied()).unwrap();
    assert_eq!(got.dcsr(), q.snapshot().unwrap().dcsr());
    q.shutdown().unwrap();
    r.shutdown().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_shard_file_is_typed_error_with_generation_fallback() {
    let dir = tmp_dir("truncate");
    let p = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());

    // Generation 1: the good fallback image.
    p.ingest_batch(workload(6_000, 4).iter().copied()).unwrap();
    let gen1 = p.checkpoint(&dir).unwrap();
    let gen1_snapshot = p.snapshot().unwrap();

    // Generation 2: more data, then damage one of its shard files.
    p.ingest_batch(workload(2_000, 5).iter().copied()).unwrap();
    let gen2 = p.checkpoint(&dir).unwrap();
    p.shutdown().unwrap();
    let victim = dir.join(&gen2.shards[1].rel_path);
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    // Plain restore of the damaged generation: typed Corrupt, no panic.
    let r = Pipeline::restore(&dir, PlusTimes::<f64>::new(), config());
    match r {
        Err(PipelineError::Corrupt { path, detail }) => {
            assert!(
                path.ends_with(PathBuf::from(&gen2.shards[1].rel_path)),
                "{path:?}"
            );
            assert!(detail.contains("length"), "reports the mismatch: {detail}");
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("expected Corrupt, restore succeeded"),
    }

    // Fallback walks back to generation 1 and restores its exact state.
    let (fallback, generation) =
        Pipeline::restore_with_fallback(&dir, PlusTimes::<f64>::new(), config()).unwrap();
    assert_eq!(generation, gen1.generation);
    assert_eq!(fallback.epoch(), gen1.epoch);
    assert_eq!(
        fallback.snapshot().unwrap().dcsr(),
        gen1_snapshot.dcsr(),
        "fallback restores the previous committed image"
    );
    fallback.shutdown().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bitflip_is_caught_by_checksum() {
    let dir = tmp_dir("bitflip");
    let p = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());
    p.ingest_batch(workload(4_000, 6).iter().copied()).unwrap();
    let manifest = p.shutdown_with_checkpoint(&dir).unwrap();

    // Flip one value byte deep inside shard 0's file (header untouched,
    // length unchanged — only the checksum can catch this).
    let victim = dir.join(&manifest.shards[0].rel_path);
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&victim, &bytes).unwrap();

    let r = Pipeline::restore(&dir, PlusTimes::<f64>::new(), config());
    match r {
        Err(PipelineError::Corrupt { detail, .. }) => {
            assert!(detail.contains("checksum"), "{detail}")
        }
        Err(other) => panic!("expected checksum Corrupt, got {other:?}"),
        Ok(_) => panic!("expected checksum Corrupt, restore succeeded"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_manifest_never_commits_a_generation() {
    let dir = tmp_dir("torn");
    let p = Pipeline::with_config(N, N, PlusTimes::<f64>::new(), config());
    p.ingest_batch(workload(3_000, 7).iter().copied()).unwrap();
    let gen1 = p.checkpoint(&dir).unwrap();
    p.ingest_batch(workload(1_000, 8).iter().copied()).unwrap();
    let gen2 = p.checkpoint(&dir).unwrap();
    p.shutdown().unwrap();

    // Simulate a crash that tore generation 2's manifest mid-write (the
    // atomic-rename protocol makes this only possible by later damage,
    // but restore must still cope).
    let m2 = dir.join(format!("gen-{:06}.manifest", gen2.generation));
    let text = fs::read_to_string(&m2).unwrap();
    fs::write(&m2, &text[..text.len() / 3]).unwrap();

    let (fallback, generation) =
        Pipeline::restore_with_fallback(&dir, PlusTimes::<f64>::new(), config()).unwrap();
    assert_eq!(generation, gen1.generation);
    assert_eq!(fallback.events_ingested(), gen1.events);
    fallback.shutdown().unwrap();

    // With the torn manifest the *only* survivor, restore reports the
    // newest generation's corruption rather than silently serving it.
    let m1 = dir.join(format!("gen-{:06}.manifest", gen1.generation));
    fs::remove_file(&m1).unwrap();
    let _ = fs::remove_dir_all(dir.join(format!("gen-{:06}", gen1.generation)));
    let r = Pipeline::restore_with_fallback(&dir, PlusTimes::<f64>::new(), config());
    assert!(
        matches!(&r, Err(PipelineError::Corrupt { .. })),
        "{:?}",
        r.err()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retention_prunes_old_generations() {
    let dir = tmp_dir("retention");
    let p = Pipeline::with_config(
        N,
        N,
        PlusTimes::<f64>::new(),
        config().with_keep_generations(2),
    );
    for round in 0..4 {
        p.ingest_batch(workload(500, 100 + round).iter().copied())
            .unwrap();
        p.checkpoint(&dir).unwrap();
    }
    let gens: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.ends_with(".manifest"))
        .collect();
    assert_eq!(gens.len(), 2, "{gens:?}");
    assert!(gens.iter().any(|g| g.contains("000003")));
    assert!(gens.iter().any(|g| g.contains("000004")));
    p.shutdown().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restore_of_empty_dir_is_no_manifest() {
    let dir = tmp_dir("empty");
    let r = Pipeline::restore(&dir, PlusTimes::<f64>::new(), config());
    assert!(
        matches!(&r, Err(PipelineError::NoManifest { .. })),
        "{:?}",
        r.err()
    );
}
