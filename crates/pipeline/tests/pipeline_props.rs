//! Property tests: for random event streams, the sharded pipeline's
//! snapshot is bit-identical to a single-shard reference (and to the flat
//! COO build) at every tested shard count, with snapshots interleaved at
//! arbitrary points in the stream.

use hypersparse::{Coo, Dcsr, Ix, StreamConfig};
use pipeline::{Pipeline, PipelineConfig};
use proptest::prelude::*;
use semiring::{MinPlus, PlusTimes, Semiring};

const N: Ix = 1 << 24;

fn events() -> impl Strategy<Value = Vec<(Ix, Ix, i64)>> {
    proptest::collection::vec((0..300u64, 0..300u64, 1i64..9), 0..300)
}

fn flat<S: Semiring<Value = i64>>(t: &[(Ix, Ix, i64)], s: S) -> Dcsr<i64> {
    let mut c = Coo::new(N, N);
    c.extend(t.iter().copied());
    c.build_dcsr(s)
}

fn run<S: Semiring<Value = i64>>(
    t: &[(Ix, Ix, i64)],
    shards: usize,
    cuts: &[usize],
    s: S,
) -> Dcsr<i64> {
    let p = Pipeline::with_config(
        N,
        N,
        s,
        PipelineConfig::new()
            .with_shards(shards)
            .with_channel_capacity(32)
            .with_stream(StreamConfig::new().with_buffer_cap(8).with_growth(2)),
    );
    for (i, &(r, c, v)) in t.iter().enumerate() {
        if cuts.contains(&i) {
            let _ = p.snapshot().unwrap();
        }
        p.ingest(r, c, v).unwrap();
    }
    let snap = p.snapshot().unwrap();
    p.shutdown().unwrap();
    snap.into_dcsr()
}

proptest! {
    #[test]
    fn sharded_equals_single_shard_reference(t in events(),
                                             cuts in proptest::collection::vec(0..300usize, 0..4)) {
        let s = PlusTimes::<i64>::new();
        let reference = run(&t, 1, &[], s);
        prop_assert_eq!(&reference, &flat(&t, s));
        for shards in [2usize, 4] {
            prop_assert_eq!(&run(&t, shards, &cuts, s), &reference);
        }
    }

    #[test]
    fn batch_boundaries_are_invisible(t in events(), chunk in 1..50usize) {
        let s = PlusTimes::<i64>::new();
        let p = Pipeline::with_config(
            N, N, s, PipelineConfig::new().with_shards(3));
        for batch in t.chunks(chunk) {
            p.ingest_batch(batch.iter().copied()).unwrap();
        }
        let snap = p.snapshot().unwrap();
        prop_assert_eq!(snap.dcsr(), &flat(&t, s));
        prop_assert_eq!(snap.events(), t.len() as u64);
        p.shutdown().unwrap();
    }

    #[test]
    fn min_plus_sharding_matches_flat(t in events()) {
        let s = MinPlus::<i64>::new();
        for shards in [1usize, 2, 4] {
            prop_assert_eq!(&run(&t, shards, &[], s), &flat(&t, s));
        }
    }
}
