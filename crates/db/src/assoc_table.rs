//! The D4M exploded-schema table — the associative-array view of Fig. 6.
//!
//! Each record `(id, [(field, value)…])` becomes row `id` with a `1` in
//! column `field|value`. Under this schema:
//!
//! * `SELECT … WHERE field = value` is a *column extraction*;
//! * equi-joins are *array multiplies* of field subarrays;
//! * `GROUP BY field COUNT(*)` is a *column reduction*;
//! * the graph adjacency of two fields is the Fig. 3 projection
//!   `A = E_srcᵀ ⊕.⊗ E_dst` applied to table columns.
//!
//! A transposed copy is maintained as the column index (the classic D4M
//! `Tedge`/`TedgeT` pair), so row and column access are both `O(row)`.

use std::collections::BTreeSet;

use hyperspace_core::semilink::{support_cols, support_rows};
use hyperspace_core::Assoc;
use semiring::{PSet, PlusMonoid, PlusTimes, UnionIntersect};

use crate::Record;

type S = PlusTimes<f64>;
type Arr = Assoc<String, String, f64>;

fn s() -> S {
    PlusTimes::new()
}

/// An exploded-schema associative-array table.
#[derive(Clone, Debug)]
pub struct AssocTable {
    arr: Arr,
    arr_t: Arr,
}

impl AssocTable {
    /// Bulk-load records into the exploded schema.
    pub fn from_records(records: Vec<(String, Record)>) -> Self {
        let mut trips = Vec::new();
        for (id, rec) in records {
            for (field, value) in rec {
                trips.push((id.clone(), format!("{field}|{value}"), 1.0));
            }
        }
        let arr = Assoc::from_triplets(trips, s());
        let arr_t = arr.transpose(s());
        AssocTable { arr, arr_t }
    }

    /// The underlying `record × field|value` associative array.
    pub fn array(&self) -> &Arr {
        &self.arr
    }

    /// Number of stored (record, field|value) entries.
    pub fn nnz(&self) -> usize {
        self.arr.nnz()
    }

    /// Column keys in the half-open prefix range `field|` — D4M's
    /// key-range scan over the sorted column dictionary.
    pub fn columns_of_field(&self, field: &str) -> Vec<String> {
        let lo = format!("{field}|");
        let hi = format!("{field}|\u{10FFFF}");
        self.arr
            .col_keys()
            .iter()
            .filter(|k| **k >= lo && **k <= hi)
            .cloned()
            .collect()
    }

    /// `SELECT id WHERE field = value`: one column lookup via the
    /// transposed index.
    pub fn select_eq(&self, field: &str, value: &str) -> Vec<String> {
        self.arr_t
            .row(&format!("{field}|{value}"))
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// The field's subarray `record × value` with the `field|` prefix
    /// stripped from column keys.
    pub fn field_subarray(&self, field: &str) -> Arr {
        let cols = self.columns_of_field(field);
        let prefix_len = field.len() + 1;
        let sub = self.arr.extract(self.arr.row_keys().to_vec(), cols, s());
        Assoc::from_triplets(
            sub.to_triplets()
                .into_iter()
                .map(|(r, c, v)| (r, c[prefix_len..].to_string(), v))
                .collect(),
            s(),
        )
    }

    /// `SELECT out_field WHERE field = value` (distinct values):
    /// a column extraction followed by a row extraction.
    pub fn select_project(&self, field: &str, value: &str, out_field: &str) -> BTreeSet<String> {
        let ids = self.select_eq(field, value);
        let sub = self.arr.extract(ids, self.columns_of_field(out_field), s());
        let prefix_len = out_field.len() + 1;
        support_cols(&sub)
            .into_iter()
            .map(|c| c[prefix_len..].to_string())
            .collect()
    }

    /// The Fig. 3 projection on table columns: adjacency
    /// `A = E_srcᵀ ⊕.⊗ E_dst`, a `host × host` array whose values count
    /// the flows between each pair.
    pub fn adjacency(&self, src_field: &str, dst_field: &str) -> Arr {
        let e_src = self.field_subarray(src_field);
        let e_dst = self.field_subarray(dst_field);
        e_src.transpose(s()).matmul(&e_dst, s())
    }

    /// Fig. 6's query, purely algebraically: neighbors of `host` are the
    /// column support of `host`'s adjacency row plus the row support of
    /// its adjacency column.
    pub fn neighbors(&self, host: &str) -> BTreeSet<String> {
        let adj = self.adjacency("src", "dst");
        let mut out: BTreeSet<String> = adj
            .row(&host.to_string())
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let adj_t = adj.transpose(s());
        out.extend(adj_t.row(&host.to_string()).into_iter().map(|(k, _)| k));
        out
    }

    /// `GROUP BY field COUNT(*)` as a column reduction.
    pub fn group_count(&self, field: &str) -> Vec<(String, usize)> {
        let prefix_len = field.len() + 1;
        let sub = self.arr.extract(
            self.arr.row_keys().to_vec(),
            self.columns_of_field(field),
            s(),
        );
        sub.reduce_cols(PlusMonoid::<f64>::default())
            .into_iter()
            .map(|(k, v)| (k[prefix_len..].to_string(), v as usize))
            .collect()
    }

    /// Equi-join with another table on `field` = `other_field` as an
    /// array multiply of field subarrays: the result's `(id₁, id₂)`
    /// entries mark record pairs sharing a value.
    pub fn join_ids(
        &self,
        other: &AssocTable,
        field: &str,
        other_field: &str,
    ) -> Vec<(String, String)> {
        let e1 = self.field_subarray(field);
        let e2 = other.field_subarray(other_field);
        let j = e1.matmul(&e2.transpose(s()), s());
        let mut out: Vec<(String, String)> = j
            .to_triplets()
            .into_iter()
            .map(|(a, b, _)| (a, b))
            .collect();
        out.sort();
        out
    }

    /// The dense-schema *set-valued* view used by the §V.B semilink
    /// select: row = record id, column = field, value = singleton
    /// `{atom(value)}`, over the `∪.∩` semiring.
    pub fn set_view(
        records: &[(String, Record)],
    ) -> (Assoc<String, String, PSet>, semiring::AtomTable) {
        let mut atoms = semiring::AtomTable::new();
        let mut trips = Vec::new();
        for (id, rec) in records {
            for (field, value) in rec {
                let a = atoms.intern(value);
                trips.push((id.clone(), field.clone(), PSet::singleton(a)));
            }
        }
        (Assoc::from_triplets(trips, UnionIntersect), atoms)
    }

    /// Record ids with any entry (the table's row support).
    pub fn record_ids(&self) -> Vec<String> {
        support_rows(&self.arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowstore::RowTable;

    fn records() -> Vec<(String, Record)> {
        vec![
            (
                "r1".into(),
                vec![
                    ("src".into(), "a".into()),
                    ("dst".into(), "b".into()),
                    ("port".into(), "80".into()),
                ],
            ),
            (
                "r2".into(),
                vec![
                    ("src".into(), "b".into()),
                    ("dst".into(), "a".into()),
                    ("port".into(), "443".into()),
                ],
            ),
            (
                "r3".into(),
                vec![
                    ("src".into(), "a".into()),
                    ("dst".into(), "c".into()),
                    ("port".into(), "80".into()),
                ],
            ),
        ]
    }

    #[test]
    fn exploded_schema_shape() {
        let t = AssocTable::from_records(records());
        assert_eq!(t.nnz(), 9);
        assert_eq!(
            t.columns_of_field("src"),
            vec!["src|a".to_string(), "src|b".to_string()]
        );
    }

    #[test]
    fn select_is_column_lookup() {
        let t = AssocTable::from_records(records());
        assert_eq!(t.select_eq("src", "a"), vec!["r1", "r3"]);
        assert!(t.select_eq("src", "zzz").is_empty());
    }

    #[test]
    fn select_project_matches_rowstore() {
        let t = AssocTable::from_records(records());
        let r = RowTable::from_records(records());
        assert_eq!(
            t.select_project("src", "a", "dst"),
            r.select_project("src", "a", "dst")
        );
        assert_eq!(
            t.select_project("port", "80", "src"),
            r.select_project("port", "80", "src")
        );
    }

    #[test]
    fn adjacency_counts_flows() {
        let t = AssocTable::from_records(records());
        let adj = t.adjacency("src", "dst");
        assert_eq!(adj.get(&"a".into(), &"b".into()), Some(1.0));
        assert_eq!(adj.get(&"a".into(), &"c".into()), Some(1.0));
        assert_eq!(adj.get(&"b".into(), &"a".into()), Some(1.0));
        assert_eq!(adj.nnz(), 3);
    }

    #[test]
    fn neighbors_match_rowstore() {
        let t = AssocTable::from_records(records());
        let r = RowTable::from_records(records());
        for host in ["a", "b", "c"] {
            assert_eq!(t.neighbors(host), r.neighbors(host), "host {host}");
        }
    }

    #[test]
    fn group_count_is_column_reduction() {
        let t = AssocTable::from_records(records());
        let g = t.group_count("port");
        assert_eq!(g, vec![("443".to_string(), 1), ("80".to_string(), 2)]);
    }

    #[test]
    fn join_matches_rowstore() {
        let t = AssocTable::from_records(records());
        let r = RowTable::from_records(records());
        assert_eq!(t.join_ids(&t, "src", "dst"), r.join_ids(&r, "src", "dst"));
    }

    #[test]
    fn set_view_supports_semilink_select() {
        let recs = records();
        let (view, mut atoms) = AssocTable::set_view(&recs);
        let v = atoms.intern("a");
        let hit = hyperspace_core::select::select_semilink(&view, &"src".to_string(), v);
        assert_eq!(support_rows(&hit), vec!["r1".to_string(), "r3".to_string()]);
    }
}
