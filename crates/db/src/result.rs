//! Typed query results.
//!
//! [`ResultSet`] is what every query engine in this crate returns: an
//! ordered column list plus rows keyed by record id, sorted by id so two
//! engines' answers compare directly with `==` (the Fig. 6 duality
//! checks do exactly that). Rows expose named-column access; the set
//! iterates in id order.

use std::collections::BTreeMap;
use std::fmt;

/// One result row: a record id and its projected cells.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Row {
    id: String,
    cells: BTreeMap<String, String>,
}

impl Row {
    /// Build a row from an id and its `column → value` cells.
    pub fn new(id: String, cells: BTreeMap<String, String>) -> Self {
        Row { id, cells }
    }

    /// The record id this row belongs to.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The value in `column`, if the record has one.
    pub fn get(&self, column: &str) -> Option<&str> {
        self.cells.get(column).map(String::as_str)
    }

    /// Iterate `(column, value)` cells in column order.
    pub fn cells(&self) -> impl Iterator<Item = (&str, &str)> {
        self.cells.iter().map(|(c, v)| (c.as_str(), v.as_str()))
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// An ordered, named-column query result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl ResultSet {
    /// An empty result with the given column order.
    pub fn new(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Assemble from `(id, cells)` pairs; rows are sorted by id so any
    /// two engines producing the same logical answer produce `==`
    /// `ResultSet`s.
    pub fn from_rows(columns: Vec<String>, rows: Vec<(String, BTreeMap<String, String>)>) -> Self {
        let mut rows: Vec<Row> = rows
            .into_iter()
            .map(|(id, cells)| Row::new(id, cells))
            .collect();
        rows.sort_by(|a, b| a.id.cmp(&b.id));
        ResultSet { columns, rows }
    }

    /// Append one row (kept sorted by id).
    pub fn push(&mut self, id: String, cells: BTreeMap<String, String>) {
        let at = self.rows.partition_point(|r| r.id.as_str() <= id.as_str());
        self.rows.insert(at, Row::new(id, cells));
    }

    /// Column names, in projection order (`SELECT *` yields the sorted
    /// union of fields present in the matched rows).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows, sorted by record id.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Iterate rows in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Record ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.rows.iter().map(Row::id)
    }

    /// One named column, as `row → Option<value>` in row order.
    pub fn column(&self, name: &str) -> Vec<Option<&str>> {
        self.rows.iter().map(|r| r.get(name)).collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no row matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The pre-`ResultSet` result shape, for callers still on the old
    /// `Vec<(id, cells)>` API.
    #[deprecated(
        since = "0.2.0",
        note = "use the `ResultSet` accessors (`rows`, `column`, `iter`) directly"
    )]
    pub fn into_pairs(self) -> Vec<(String, BTreeMap<String, String>)> {
        self.rows.into_iter().map(|r| (r.id, r.cells)).collect()
    }
}

impl<'a> IntoIterator for &'a ResultSet {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id")?;
        for c in &self.columns {
            write!(f, " | {c}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{}", row.id)?;
            for c in &self.columns {
                write!(f, " | {}", row.get(c).unwrap_or(""))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(c, v)| (c.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn rows_sort_by_id_for_direct_equality() {
        let a = ResultSet::from_rows(
            vec!["x".into()],
            vec![
                ("r2".into(), cells(&[("x", "2")])),
                ("r1".into(), cells(&[("x", "1")])),
            ],
        );
        let b = ResultSet::from_rows(
            vec!["x".into()],
            vec![
                ("r1".into(), cells(&[("x", "1")])),
                ("r2".into(), cells(&[("x", "2")])),
            ],
        );
        assert_eq!(a, b);
        assert_eq!(a.ids().collect::<Vec<_>>(), vec!["r1", "r2"]);
    }

    #[test]
    fn named_column_access() {
        let mut rs = ResultSet::new(vec!["src".into(), "dst".into()]);
        rs.push("r1".into(), cells(&[("src", "a"), ("dst", "b")]));
        rs.push("r0".into(), cells(&[("src", "c")]));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.column("src"), vec![Some("c"), Some("a")]);
        assert_eq!(rs.column("dst"), vec![None, Some("b")]);
        assert_eq!(rs.rows()[1].get("dst"), Some("b"));
        let printed = rs.to_string();
        assert!(printed.contains("id | src | dst"));
    }

    #[test]
    #[allow(deprecated)]
    fn compat_pairs_shim() {
        let rs = ResultSet::from_rows(vec!["x".into()], vec![("r1".into(), cells(&[("x", "1")]))]);
        let pairs = rs.into_pairs();
        assert_eq!(pairs[0].0, "r1");
        assert_eq!(pairs[0].1["x"], "1");
    }
}
