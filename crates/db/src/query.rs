//! Compound predicates as mask algebra.
//!
//! On the exploded schema, "`field = value`" is one column of the table —
//! a 0/1 *row mask*. Conjunction of predicates is element-wise ⊗ of
//! masks (pattern intersection), disjunction is ⊕ (pattern union),
//! negation is complement against the record set: the same ⊕/⊗ semilink
//! operations the paper builds everything else from, applied to query
//! planning. The row-store baseline evaluates the same predicates by
//! scanning.

use hyperspace_core::semilink::support_rows;
use hyperspace_core::Assoc;
use semiring::PlusTimes;

use crate::assoc_table::AssocTable;
use crate::rowstore::RowTable;

type Mask = Assoc<String, String, f64>;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// A predicate on one field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// `field = value`.
    Eq(String, String),
    /// `field ∈ {values…}` (an OR within one field).
    In(String, Vec<String>),
}

impl Pred {
    /// Convenience constructor for `field = value`.
    pub fn eq(field: &str, value: &str) -> Self {
        Pred::Eq(field.into(), value.into())
    }
}

impl AssocTable {
    /// The 0/1 row mask of one predicate: records satisfying it, as a
    /// one-column associative array keyed by record id.
    pub fn predicate_mask(&self, p: &Pred) -> Mask {
        let trips = match p {
            Pred::Eq(f, v) => self
                .select_eq(f, v)
                .into_iter()
                .map(|id| (id, "hit".to_string(), 1.0))
                .collect(),
            Pred::In(f, vs) => vs
                .iter()
                .flat_map(|v| self.select_eq(f, v))
                .map(|id| (id, "hit".to_string(), 1.0))
                .collect(),
        };
        Assoc::from_triplets(trips, s())
    }

    /// Records satisfying **every** predicate: ⊗-intersection of masks.
    pub fn select_and(&self, preds: &[Pred]) -> Vec<String> {
        let Some(first) = preds.first() else {
            return self.record_ids();
        };
        let mut mask = self.predicate_mask(first);
        for p in &preds[1..] {
            // zero-norm first so multiplied counts stay 0/1
            mask = mask.ewise_mul(&self.predicate_mask(p), s()).zero_norm(s());
        }
        support_rows(&mask)
    }

    /// Records satisfying **any** predicate: ⊕-union of masks.
    pub fn select_or(&self, preds: &[Pred]) -> Vec<String> {
        let mut mask = Mask::new_empty();
        for p in preds {
            mask = mask.ewise_add(&self.predicate_mask(p), s());
        }
        support_rows(&mask)
    }

    /// Records satisfying the first predicate but **not** the second:
    /// mask minus mask (complement within the record set).
    pub fn select_and_not(&self, keep: &Pred, drop: &Pred) -> Vec<String> {
        let pos = self.predicate_mask(keep);
        let neg = self.predicate_mask(drop);
        let neg_rows: std::collections::HashSet<String> = support_rows(&neg).into_iter().collect();
        support_rows(&pos)
            .into_iter()
            .filter(|r| !neg_rows.contains(r))
            .collect()
    }
}

impl RowTable {
    /// Scan baseline for [`AssocTable::select_and`].
    pub fn select_and(&self, preds: &[Pred]) -> Vec<String> {
        self.iter()
            .filter(|(_, row)| preds.iter().all(|p| row_matches(row, p)))
            .map(|(id, _)| id.to_string())
            .collect()
    }

    /// Scan baseline for [`AssocTable::select_or`].
    pub fn select_or(&self, preds: &[Pred]) -> Vec<String> {
        self.iter()
            .filter(|(_, row)| preds.iter().any(|p| row_matches(row, p)))
            .map(|(id, _)| id.to_string())
            .collect()
    }
}

fn row_matches(row: &std::collections::HashMap<String, String>, p: &Pred) -> bool {
    match p {
        Pred::Eq(f, v) => row.get(f) == Some(v),
        Pred::In(f, vs) => row.get(f).is_some_and(|x| vs.contains(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{flows, FlowParams};

    fn tables() -> (AssocTable, RowTable) {
        let records = flows(
            FlowParams {
                n_records: 500,
                n_hosts: 30,
                skew: 1.0,
            },
            5,
        );
        (
            AssocTable::from_records(records.clone()),
            RowTable::from_records(records),
        )
    }

    #[test]
    fn and_mask_equals_scan() {
        let (a, r) = tables();
        let preds = vec![Pred::eq("src", "1.1.1.1"), Pred::eq("port", "443")];
        assert_eq!(a.select_and(&preds), r.select_and(&preds));
        // AND of a single predicate reduces to select_eq.
        assert_eq!(
            a.select_and(&[Pred::eq("port", "80")]),
            a.select_eq("port", "80")
        );
    }

    #[test]
    fn or_mask_equals_scan() {
        let (a, r) = tables();
        let preds = vec![Pred::eq("port", "22"), Pred::eq("port", "53")];
        assert_eq!(a.select_or(&preds), r.select_or(&preds));
    }

    #[test]
    fn in_predicate_is_or_within_field() {
        let (a, _) = tables();
        let via_in = a.select_and(&[Pred::In("port".into(), vec!["22".into(), "53".into()])]);
        let via_or = a.select_or(&[Pred::eq("port", "22"), Pred::eq("port", "53")]);
        assert_eq!(via_in, via_or);
    }

    #[test]
    fn and_not_excludes() {
        let (a, r) = tables();
        let got = a.select_and_not(&Pred::eq("src", "1.1.1.1"), &Pred::eq("port", "443"));
        let want: Vec<String> = r
            .select_and(&[Pred::eq("src", "1.1.1.1")])
            .into_iter()
            .filter(|id| !r.select_and(&[Pred::eq("port", "443")]).contains(id))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_returns_all_records() {
        let (a, _) = tables();
        assert_eq!(a.select_and(&[]).len(), 500);
        assert!(a.select_or(&[]).is_empty());
    }

    #[test]
    fn conjunction_is_commutative() {
        let (a, _) = tables();
        let p1 = Pred::eq("src", "1.1.1.1");
        let p2 = Pred::eq("port", "80");
        assert_eq!(
            a.select_and(&[p1.clone(), p2.clone()]),
            a.select_and(&[p2, p1])
        );
    }

    #[test]
    fn distributivity_of_and_over_or() {
        // p ∧ (q ∨ r) = (p ∧ q) ∨ (p ∧ r) — §I's headline property, on queries.
        let (a, _) = tables();
        let p = Pred::eq("src", "1.1.1.1");
        let q = Pred::eq("port", "80");
        let r = Pred::eq("port", "443");
        let lhs = a.select_and(&[
            p.clone(),
            Pred::In("port".into(), vec!["80".into(), "443".into()]),
        ]);
        let mut rhs = a.select_and(&[p.clone(), q]);
        rhs.extend(a.select_and(&[p, r]));
        rhs.sort();
        rhs.dedup();
        assert_eq!(lhs, rhs);
    }
}
