//! Compound predicates as mask algebra, behind one selection surface.
//!
//! On the exploded schema, "`field = value`" is one column of the table —
//! a 0/1 *row mask*. Conjunction of predicates is element-wise ⊗ of
//! masks (pattern intersection), disjunction is ⊕ (pattern union),
//! negation is complement against the record set: the same ⊕/⊗ semilink
//! operations the paper builds everything else from, applied to query
//! planning.
//!
//! Every engine in the crate answers the same predicate language through
//! the [`Select`] trait: build a [`PredExpr`] with the combinator
//! methods (`Pred::eq("src", "a").and(Pred::eq("port", "80"))`) and hand
//! it to any view. [`crate::AssocTable`] evaluates it as mask algebra,
//! [`crate::RowTable`] by scanning, [`crate::TripleStore`] by index
//! probes — one spelling, three engines, identical answers (sorted by
//! record id).

use std::collections::HashSet;

use hyperspace_core::semilink::support_rows;
use hyperspace_core::Assoc;
use semiring::PlusTimes;

use crate::assoc_table::AssocTable;
use crate::rowstore::RowTable;

type Mask = Assoc<String, String, f64>;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// A predicate on one field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// `field = value`.
    Eq(String, String),
    /// `field ∈ {values…}` (an OR within one field).
    In(String, Vec<String>),
}

impl Pred {
    /// Convenience constructor for `field = value`.
    pub fn eq(field: &str, value: &str) -> Self {
        Pred::Eq(field.into(), value.into())
    }

    /// Convenience constructor for `field IN (values…)`.
    pub fn is_in<V: Into<String>>(field: &str, values: impl IntoIterator<Item = V>) -> Self {
        Pred::In(field.into(), values.into_iter().map(Into::into).collect())
    }

    /// Lift into a one-leaf expression tree.
    pub fn expr(self) -> PredExpr {
        PredExpr::Pred(self)
    }

    /// `self ∧ other` (mask ⊗).
    pub fn and(self, other: impl Into<PredExpr>) -> PredExpr {
        self.expr().and(other)
    }

    /// `self ∨ other` (mask ⊕).
    pub fn or(self, other: impl Into<PredExpr>) -> PredExpr {
        self.expr().or(other)
    }

    /// `self ∧ ¬other` (mask minus mask).
    pub fn and_not(self, other: impl Into<PredExpr>) -> PredExpr {
        self.expr().and_not(other)
    }
}

/// A compound predicate: leaves are [`Pred`]s, interior nodes are the
/// ∧ / ∨ / ∧¬ connectives. Built with the combinator methods; evaluated
/// by any [`Select`] engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredExpr {
    /// One field predicate.
    Pred(Pred),
    /// Both sides must match (⊗-intersection).
    And(Box<PredExpr>, Box<PredExpr>),
    /// Either side may match (⊕-union).
    Or(Box<PredExpr>, Box<PredExpr>),
    /// Left side matches, right side does not (complement within the
    /// record set).
    AndNot(Box<PredExpr>, Box<PredExpr>),
}

impl From<Pred> for PredExpr {
    fn from(p: Pred) -> Self {
        PredExpr::Pred(p)
    }
}

impl PredExpr {
    /// `self ∧ other`.
    pub fn and(self, other: impl Into<PredExpr>) -> PredExpr {
        PredExpr::And(Box::new(self), Box::new(other.into()))
    }

    /// `self ∨ other`.
    pub fn or(self, other: impl Into<PredExpr>) -> PredExpr {
        PredExpr::Or(Box::new(self), Box::new(other.into()))
    }

    /// `self ∧ ¬other`.
    pub fn and_not(self, other: impl Into<PredExpr>) -> PredExpr {
        PredExpr::AndNot(Box::new(self), Box::new(other.into()))
    }
}

/// Fold `preds` into one expression under a single connective; `None`
/// when empty.
fn fold_preds(preds: &[Pred], conjunctive: bool) -> Option<PredExpr> {
    let (first, rest) = preds.split_first()?;
    let mut e = PredExpr::from(first.clone());
    for p in rest {
        e = if conjunctive {
            e.and(p.clone())
        } else {
            e.or(p.clone())
        };
    }
    Some(e)
}

// ---- sorted-id set algebra (the default engine) ----

fn ids_and(a: Vec<String>, b: &[String]) -> Vec<String> {
    let keep: HashSet<&String> = b.iter().collect();
    a.into_iter().filter(|id| keep.contains(id)).collect()
}

fn ids_or(a: Vec<String>, b: Vec<String>) -> Vec<String> {
    let mut out = a;
    out.extend(b);
    out.sort();
    out.dedup();
    out
}

fn ids_and_not(a: Vec<String>, b: &[String]) -> Vec<String> {
    let drop: HashSet<&String> = b.iter().collect();
    a.into_iter().filter(|id| !drop.contains(id)).collect()
}

/// The one selection surface every view implements.
///
/// An engine supplies the two primitives — ids matching a single
/// [`Pred`] and the full id set — and inherits compound-expression
/// evaluation plus the classic `select_and` / `select_or` /
/// `select_and_not` spellings. Engines with a better plan than sorted-id
/// set algebra (the associative table's ⊗/⊕ masks) override
/// [`Select::select`].
///
/// **Contract:** all id lists are sorted ascending, so any two engines'
/// answers to the same expression compare with `==`.
pub trait Select {
    /// Record ids matching one predicate, sorted.
    fn ids_matching(&self, p: &Pred) -> Vec<String>;

    /// Every record id, sorted.
    fn all_ids(&self) -> Vec<String>;

    /// Record ids matching a compound expression, sorted.
    fn select(&self, expr: &PredExpr) -> Vec<String> {
        match expr {
            PredExpr::Pred(p) => self.ids_matching(p),
            PredExpr::And(a, b) => ids_and(self.select(a), &self.select(b)),
            PredExpr::Or(a, b) => ids_or(self.select(a), self.select(b)),
            PredExpr::AndNot(a, b) => ids_and_not(self.select(a), &self.select(b)),
        }
    }

    /// Records satisfying **every** predicate (all records when empty).
    fn select_and(&self, preds: &[Pred]) -> Vec<String> {
        match fold_preds(preds, true) {
            None => self.all_ids(),
            Some(e) => self.select(&e),
        }
    }

    /// Records satisfying **any** predicate (no records when empty).
    fn select_or(&self, preds: &[Pred]) -> Vec<String> {
        match fold_preds(preds, false) {
            None => Vec::new(),
            Some(e) => self.select(&e),
        }
    }

    /// Records satisfying `keep` but **not** `drop`.
    fn select_and_not(&self, keep: &Pred, drop: &Pred) -> Vec<String> {
        self.select(&keep.clone().and_not(drop.clone()))
    }
}

// ---- the associative-array engine: mask algebra ----

impl AssocTable {
    /// The 0/1 row mask of one predicate: records satisfying it, as a
    /// one-column associative array keyed by record id.
    pub fn predicate_mask(&self, p: &Pred) -> Mask {
        let trips = match p {
            Pred::Eq(f, v) => self
                .select_eq(f, v)
                .into_iter()
                .map(|id| (id, "hit".to_string(), 1.0))
                .collect(),
            Pred::In(f, vs) => vs
                .iter()
                .flat_map(|v| self.select_eq(f, v))
                .map(|id| (id, "hit".to_string(), 1.0))
                .collect(),
        };
        Assoc::from_triplets(trips, s())
    }

    /// The 0/1 row mask of a compound expression: ∧ is element-wise ⊗
    /// (zero-normed so counts stay 0/1), ∨ is ⊕, ∧¬ is complement
    /// within the expression's positive support.
    pub fn expr_mask(&self, expr: &PredExpr) -> Mask {
        match expr {
            PredExpr::Pred(p) => self.predicate_mask(p),
            PredExpr::And(a, b) => self
                .expr_mask(a)
                .ewise_mul(&self.expr_mask(b), s())
                .zero_norm(s()),
            PredExpr::Or(a, b) => self
                .expr_mask(a)
                .ewise_add(&self.expr_mask(b), s())
                .zero_norm(s()),
            PredExpr::AndNot(a, b) => {
                let pos = self.expr_mask(a);
                let neg: HashSet<String> = support_rows(&self.expr_mask(b)).into_iter().collect();
                let trips = support_rows(&pos)
                    .into_iter()
                    .filter(|id| !neg.contains(id))
                    .map(|id| (id, "hit".to_string(), 1.0))
                    .collect();
                Assoc::from_triplets(trips, s())
            }
        }
    }
}

impl Select for AssocTable {
    fn ids_matching(&self, p: &Pred) -> Vec<String> {
        support_rows(&self.predicate_mask(p))
    }

    fn all_ids(&self) -> Vec<String> {
        self.record_ids()
    }

    fn select(&self, expr: &PredExpr) -> Vec<String> {
        support_rows(&self.expr_mask(expr))
    }
}

// ---- the row-store engine: full scans ----

pub(crate) fn row_matches(row: &std::collections::HashMap<String, String>, p: &Pred) -> bool {
    match p {
        Pred::Eq(f, v) => row.get(f) == Some(v),
        Pred::In(f, vs) => row.get(f).is_some_and(|x| vs.contains(x)),
    }
}

fn row_matches_expr(row: &std::collections::HashMap<String, String>, e: &PredExpr) -> bool {
    match e {
        PredExpr::Pred(p) => row_matches(row, p),
        PredExpr::And(a, b) => row_matches_expr(row, a) && row_matches_expr(row, b),
        PredExpr::Or(a, b) => row_matches_expr(row, a) || row_matches_expr(row, b),
        PredExpr::AndNot(a, b) => row_matches_expr(row, a) && !row_matches_expr(row, b),
    }
}

impl Select for RowTable {
    fn ids_matching(&self, p: &Pred) -> Vec<String> {
        let mut ids: Vec<String> = self
            .iter()
            .filter(|(_, row)| row_matches(row, p))
            .map(|(id, _)| id.to_string())
            .collect();
        ids.sort();
        ids
    }

    fn all_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.iter().map(|(id, _)| id.to_string()).collect();
        ids.sort();
        ids
    }

    fn select(&self, expr: &PredExpr) -> Vec<String> {
        let mut ids: Vec<String> = self
            .iter()
            .filter(|(_, row)| row_matches_expr(row, expr))
            .map(|(id, _)| id.to_string())
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{flows, FlowParams};
    use crate::TripleStore;

    fn tables() -> (AssocTable, RowTable) {
        let records = flows(
            FlowParams {
                n_records: 500,
                n_hosts: 30,
                skew: 1.0,
            },
            5,
        );
        (
            AssocTable::from_records(records.clone()),
            RowTable::from_records(records),
        )
    }

    #[test]
    fn and_mask_equals_scan() {
        let (a, r) = tables();
        let preds = vec![Pred::eq("src", "1.1.1.1"), Pred::eq("port", "443")];
        assert_eq!(a.select_and(&preds), r.select_and(&preds));
        // AND of a single predicate reduces to select_eq.
        assert_eq!(
            a.select_and(&[Pred::eq("port", "80")]),
            a.select_eq("port", "80")
        );
    }

    #[test]
    fn or_mask_equals_scan() {
        let (a, r) = tables();
        let preds = vec![Pred::eq("port", "22"), Pred::eq("port", "53")];
        assert_eq!(a.select_or(&preds), r.select_or(&preds));
    }

    #[test]
    fn in_predicate_is_or_within_field() {
        let (a, _) = tables();
        let via_in = a.select_and(&[Pred::is_in("port", ["22", "53"])]);
        let via_or = a.select_or(&[Pred::eq("port", "22"), Pred::eq("port", "53")]);
        assert_eq!(via_in, via_or);
    }

    #[test]
    fn and_not_excludes() {
        let (a, r) = tables();
        let got = a.select_and_not(&Pred::eq("src", "1.1.1.1"), &Pred::eq("port", "443"));
        let want: Vec<String> = r
            .select_and(&[Pred::eq("src", "1.1.1.1")])
            .into_iter()
            .filter(|id| !r.select_and(&[Pred::eq("port", "443")]).contains(id))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_returns_all_records() {
        let (a, _) = tables();
        assert_eq!(a.select_and(&[]).len(), 500);
        assert!(a.select_or(&[]).is_empty());
    }

    #[test]
    fn conjunction_is_commutative() {
        let (a, _) = tables();
        let p1 = Pred::eq("src", "1.1.1.1");
        let p2 = Pred::eq("port", "80");
        assert_eq!(
            a.select_and(&[p1.clone(), p2.clone()]),
            a.select_and(&[p2, p1])
        );
    }

    #[test]
    fn distributivity_of_and_over_or() {
        // p ∧ (q ∨ r) = (p ∧ q) ∨ (p ∧ r) — §I's headline property, on queries.
        let (a, _) = tables();
        let p = Pred::eq("src", "1.1.1.1");
        let q = Pred::eq("port", "80");
        let r = Pred::eq("port", "443");
        let lhs = a.select(&p.clone().and(q.clone().or(r.clone())));
        let rhs = a.select(&p.clone().and(q).or(p.and(r)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn combinator_tree_agrees_across_all_three_engines() {
        let records = flows(
            FlowParams {
                n_records: 400,
                n_hosts: 20,
                skew: 1.0,
            },
            11,
        );
        let a = AssocTable::from_records(records.clone());
        let r = RowTable::from_records(records.clone());
        let t = TripleStore::from_records(records);
        let expr = Pred::eq("src", "1.1.1.1")
            .and(Pred::is_in("port", ["80", "443"]))
            .or(Pred::eq("dst", "1.1.1.1").and_not(Pred::eq("port", "22")));
        let got_a = a.select(&expr);
        assert_eq!(got_a, r.select(&expr));
        assert_eq!(got_a, t.select(&expr));
        assert!(!got_a.is_empty());
    }

    #[test]
    fn nested_masks_stay_binary() {
        let (a, _) = tables();
        // An OR of overlapping predicates would accumulate 2.0 values
        // without zero-norming; nesting under AND must still be exact.
        let overlap = Pred::eq("src", "1.1.1.1").or(Pred::is_in("src", ["1.1.1.1"]));
        let mask = a.expr_mask(&overlap.and(Pred::eq("port", "80")));
        for (_, _, v) in mask.to_triplets() {
            assert_eq!(v, 1.0);
        }
    }
}
