//! A miniature SQL front-end over the mask algebra.
//!
//! Supports the canonical statement shape of §V.B —
//!
//! ```sql
//! SELECT col1, col2 FROM t WHERE f1 = 'v1' AND f2 IN ('a', 'b')
//! ```
//!
//! — parsed into [`Pred`] lists and executed as ⊗/⊕ mask algebra on the
//! exploded-schema [`AssocTable`] (and by scan on the [`RowTable`]
//! baseline). One connective kind per `WHERE` clause (all `AND` or all
//! `OR`), matching the paper's select discussion; compose queries for
//! anything fancier.
//!
//! Parse failures are typed [`SqlError`]s with byte positions and
//! expected-token detail; both executors return a [`ResultSet`], so the
//! duality checks compare engines with one `==`.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::SqlError;
use crate::query::{Pred, PredExpr, Select};
use crate::result::ResultSet;
use crate::{AssocTable, RowTable};

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Projected fields; `None` means `*`.
    pub projection: Option<Vec<String>>,
    /// Table name (uninterpreted — execution receives the table).
    pub table: String,
    /// WHERE predicates (empty = no filter).
    pub preds: Vec<Pred>,
    /// `true` for AND-connected predicates, `false` for OR.
    pub conjunctive: bool,
}

impl Query {
    /// The WHERE clause as one [`PredExpr`] tree (`None` when
    /// unfiltered) — the shape every [`Select`] engine evaluates.
    pub fn expr(&self) -> Option<PredExpr> {
        let (first, rest) = self.preds.split_first()?;
        let mut e = PredExpr::from(first.clone());
        for p in rest {
            e = if self.conjunctive {
                e.and(p.clone())
            } else {
                e.or(p.clone())
            };
        }
        Some(e)
    }
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let toks = tokenize(sql)?;
    let mut t = Tokens { toks, pos: 0 };

    t.expect_kw("SELECT")?;
    let projection = if t.peek_is("*") {
        t.next_tok("column list")?;
        None
    } else {
        let mut cols = vec![t.ident()?];
        while t.peek_is(",") {
            t.next_tok("column")?;
            cols.push(t.ident()?);
        }
        Some(cols)
    };

    t.expect_kw("FROM")?;
    let table = t.ident()?;

    let mut preds = Vec::new();
    let mut conjunctive = true;
    if t.peek_kw("WHERE") {
        t.next_tok("WHERE")?;
        preds.push(parse_pred(&mut t)?);
        let mut connective: Option<bool> = None;
        loop {
            if t.peek_kw("AND") || t.peek_kw("OR") {
                let is_and = t.peek_kw("AND");
                match connective {
                    None => connective = Some(is_and),
                    Some(c) if c != is_and => {
                        return Err(SqlError::MixedConnectives {
                            position: t.peek_position(),
                        })
                    }
                    _ => {}
                }
                t.next_tok("connective")?;
                preds.push(parse_pred(&mut t)?);
            } else {
                break;
            }
        }
        conjunctive = connective.unwrap_or(true);
    }
    if t.pos != t.toks.len() {
        return Err(SqlError::TrailingTokens {
            position: t.peek_position(),
            found: t.toks[t.pos..]
                .iter()
                .map(|(_, s)| s.as_str())
                .collect::<Vec<_>>()
                .join(" "),
        });
    }
    Ok(Query {
        projection,
        table,
        preds,
        conjunctive,
    })
}

/// Pre-[`SqlError`] parse entry point, kept for one release.
#[deprecated(
    since = "0.2.0",
    note = "use `parse`, which returns a typed `SqlError`"
)]
pub fn parse_compat(sql: &str) -> Result<Query, String> {
    parse(sql).map_err(|e| e.to_string())
}

fn parse_pred(t: &mut Tokens) -> Result<Pred, SqlError> {
    let field = t.ident()?;
    if t.peek_is("=") {
        t.next_tok("=")?;
        Ok(Pred::Eq(field, t.string()?))
    } else if t.peek_kw("IN") {
        t.next_tok("IN")?;
        t.expect_tok("(")?;
        let mut vals = vec![t.string()?];
        while t.peek_is(",") {
            t.next_tok("value")?;
            vals.push(t.string()?);
        }
        t.expect_tok(")")?;
        Ok(Pred::In(field, vals))
    } else {
        match t.toks.get(t.pos) {
            Some((position, found)) => Err(SqlError::UnexpectedToken {
                position: *position,
                found: found.clone(),
                expected: "'=' or IN after field",
            }),
            None => Err(SqlError::UnexpectedEnd {
                expected: "'=' or IN after field",
            }),
        }
    }
}

/// The projected columns of `q` over the matched rows: the projection
/// list itself, or — for `SELECT *` — the sorted union of fields the
/// matched rows actually populate.
fn result_columns<'a>(
    q: &Query,
    matched: impl Iterator<Item = &'a BTreeMap<String, String>>,
) -> Vec<String> {
    match &q.projection {
        Some(p) => p.clone(),
        None => {
            let mut cols = BTreeSet::new();
            for cells in matched {
                cols.extend(cells.keys().cloned());
            }
            cols.into_iter().collect()
        }
    }
}

fn keep_field(q: &Query, field: &str) -> bool {
    match &q.projection {
        None => true,
        Some(p) => p.iter().any(|f| f == field),
    }
}

/// Execute against the associative-array table: the WHERE clause runs as
/// ⊗/⊕ mask algebra, projection as row extraction.
pub fn execute(q: &Query, table: &AssocTable) -> ResultSet {
    let ids = match q.expr() {
        None => table.all_ids(),
        Some(e) => table.select(&e),
    };
    let rows: Vec<(String, BTreeMap<String, String>)> = ids
        .into_iter()
        .map(|id| {
            let mut cells = BTreeMap::new();
            for (col, _) in table.array().row(&id) {
                let (field, value) = col.split_once('|').unwrap_or((col.as_str(), ""));
                if keep_field(q, field) {
                    cells.insert(field.to_string(), value.to_string());
                }
            }
            (id, cells)
        })
        .collect();
    let columns = result_columns(q, rows.iter().map(|(_, c)| c));
    ResultSet::from_rows(columns, rows)
}

/// Execute by scan against the row-store baseline. Returns the same
/// [`ResultSet`] shape as [`execute`], so `execute(q, &assoc) ==
/// execute_baseline(q, &rows)` is the whole duality check.
pub fn execute_baseline(q: &Query, table: &RowTable) -> ResultSet {
    let ids = match q.expr() {
        None => table.all_ids(),
        Some(e) => table.select(&e),
    };
    let by_id: std::collections::HashMap<&str, _> = table.iter().collect();
    let rows: Vec<(String, BTreeMap<String, String>)> = ids
        .into_iter()
        .map(|id| {
            let row = &by_id[id.as_str()];
            let cells = row
                .iter()
                .filter(|(f, _)| keep_field(q, f))
                .map(|(f, v)| (f.clone(), v.clone()))
                .collect();
            (id, cells)
        })
        .collect();
    let columns = result_columns(q, rows.iter().map(|(_, c)| c));
    ResultSet::from_rows(columns, rows)
}

/// Parse and execute in one step — the serving layer's SQL entry point.
pub fn try_execute(sql: &str, table: &AssocTable) -> Result<ResultSet, SqlError> {
    Ok(execute(&parse(sql)?, table))
}

/// Parse and execute against the row-store baseline in one step.
pub fn try_execute_baseline(sql: &str, table: &RowTable) -> Result<ResultSet, SqlError> {
    Ok(execute_baseline(&parse(sql)?, table))
}

// ---- lexer ----

#[derive(Debug)]
struct Tokens {
    /// `(byte offset, token text)` pairs.
    toks: Vec<(usize, String)>,
    pos: usize,
}

impl Tokens {
    fn next_tok(&mut self, expected: &'static str) -> Result<&str, SqlError> {
        let (_, t) = self
            .toks
            .get(self.pos)
            .ok_or(SqlError::UnexpectedEnd { expected })?;
        self.pos += 1;
        Ok(t)
    }
    fn peek_position(&self) -> usize {
        self.toks.get(self.pos).map_or(0, |(p, _)| *p)
    }
    fn peek_is(&self, sym: &str) -> bool {
        self.toks.get(self.pos).is_some_and(|(_, t)| t == sym)
    }
    fn peek_kw(&self, kw: &str) -> bool {
        self.toks
            .get(self.pos)
            .is_some_and(|(_, t)| t.eq_ignore_ascii_case(kw))
    }
    fn expect_kw(&mut self, kw: &'static str) -> Result<(), SqlError> {
        let position = self.peek_position();
        let t = self.next_tok(kw)?;
        if t.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(SqlError::UnexpectedToken {
                position,
                found: t.to_string(),
                expected: kw,
            })
        }
    }
    fn expect_tok(&mut self, sym: &'static str) -> Result<(), SqlError> {
        let position = self.peek_position();
        let t = self.next_tok(sym)?;
        if t == sym {
            Ok(())
        } else {
            Err(SqlError::UnexpectedToken {
                position,
                found: t.to_string(),
                expected: sym,
            })
        }
    }
    fn ident(&mut self) -> Result<String, SqlError> {
        let position = self.peek_position();
        let t = self.next_tok("identifier")?;
        if t.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            && !t.is_empty()
        {
            Ok(t.to_string())
        } else {
            Err(SqlError::UnexpectedToken {
                position,
                found: t.to_string(),
                expected: "identifier",
            })
        }
    }
    fn string(&mut self) -> Result<String, SqlError> {
        let position = self.peek_position();
        let t = self.next_tok("'string literal'")?;
        t.strip_prefix('\'')
            .and_then(|x| x.strip_suffix('\''))
            .map(String::from)
            .ok_or_else(|| SqlError::UnexpectedToken {
                position,
                found: t.to_string(),
                expected: "'string literal'",
            })
    }
}

fn tokenize(sql: &str) -> Result<Vec<(usize, String)>, SqlError> {
    let mut out = Vec::new();
    let mut chars = sql.char_indices().peekable();
    while let Some(&(at, ch)) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' | '(' | ')' | '=' | '*' => {
                out.push((at, ch.to_string()));
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut lit = String::from("'");
                loop {
                    match chars.next() {
                        Some((_, '\'')) => {
                            lit.push('\'');
                            break;
                        }
                        Some((_, c)) => lit.push(c),
                        None => return Err(SqlError::UnterminatedString { position: at }),
                    }
                }
                out.push((at, lit));
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let mut ident = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((at, ident));
            }
            other => {
                return Err(SqlError::UnexpectedChar {
                    position: at,
                    found: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{flows, FlowParams};

    fn tables() -> (AssocTable, RowTable) {
        let records = flows(
            FlowParams {
                n_records: 300,
                n_hosts: 20,
                skew: 1.0,
            },
            3,
        );
        (
            AssocTable::from_records(records.clone()),
            RowTable::from_records(records),
        )
    }

    #[test]
    fn parse_star_and_projection() {
        let q = parse("SELECT * FROM flows").unwrap();
        assert_eq!(q.projection, None);
        assert!(q.preds.is_empty());
        let q = parse("SELECT src, dst FROM flows").unwrap();
        assert_eq!(q.projection, Some(vec!["src".into(), "dst".into()]));
        assert_eq!(q.table, "flows");
    }

    #[test]
    fn utf8_input_keeps_byte_positions_and_never_splits_chars() {
        // Multi-byte UTF-8 inside a string literal round-trips through
        // the lexer without char-boundary panics.
        let q = parse("SELECT * FROM t WHERE src = 'héllo→世界'").unwrap();
        assert_eq!(q.preds[0], Pred::Eq("src".into(), "héllo→世界".into()));

        // An error *after* a multi-byte literal carries the true byte
        // offset (9 bytes of UTF-8 inside 'é→世' shift it past the char
        // count), and that offset is a valid char boundary.
        let sql = "SELECT * FROM t WHERE src = 'é→世' ;";
        match parse(sql).unwrap_err() {
            SqlError::UnexpectedChar { position, found } => {
                assert_eq!(found, ';');
                assert_eq!(position, sql.find(';').unwrap());
                assert!(sql.is_char_boundary(position));
            }
            other => panic!("expected UnexpectedChar, got {other:?}"),
        }

        // Trailing tokens after a multi-byte literal: same property.
        let sql = "SELECT * FROM t WHERE src = '日本' extra";
        match parse(sql).unwrap_err() {
            SqlError::TrailingTokens { position, found } => {
                assert_eq!(found, "extra");
                assert_eq!(position, sql.find("extra").unwrap());
            }
            other => panic!("expected TrailingTokens, got {other:?}"),
        }

        // An unterminated literal opened after multi-byte identifier
        // text points at its opening quote.
        let sql = "SELECT * FROM tä WHERE col = 'ope";
        match parse(sql).unwrap_err() {
            SqlError::UnterminatedString { position } => {
                assert_eq!(position, sql.find('\'').unwrap());
            }
            other => panic!("expected UnterminatedString, got {other:?}"),
        }
    }

    #[test]
    fn parse_where_clauses() {
        let q = parse("SELECT * FROM t WHERE src = '1.1.1.1' AND port = '443'").unwrap();
        assert!(q.conjunctive);
        assert_eq!(q.preds.len(), 2);
        let q = parse("SELECT * FROM t WHERE port = '80' OR port = '443'").unwrap();
        assert!(!q.conjunctive);
        let q = parse("SELECT * FROM t WHERE port IN ('22', '53')").unwrap();
        assert_eq!(
            q.preds[0],
            Pred::In("port".into(), vec!["22".into(), "53".into()])
        );
    }

    #[test]
    fn parse_errors_are_typed_and_positioned() {
        assert_eq!(
            parse("SELECT"),
            Err(SqlError::UnexpectedEnd {
                expected: "identifier"
            })
        );
        let mixed = parse("SELECT * FROM t WHERE a = 'x' OR b = 'y' AND c = 'z'").unwrap_err();
        assert_eq!(mixed, SqlError::MixedConnectives { position: 41 });
        let unquoted = parse("SELECT * FROM t WHERE a = unquoted").unwrap_err();
        assert_eq!(
            unquoted,
            SqlError::UnexpectedToken {
                position: 26,
                found: "unquoted".into(),
                expected: "'string literal'",
            }
        );
        let trailing = parse("SELECT * FROM t extra").unwrap_err();
        assert!(matches!(
            trailing,
            SqlError::TrailingTokens { position: 16, .. }
        ));
        let unterminated = parse("SELECT * FROM t WHERE a = 'oops").unwrap_err();
        assert_eq!(unterminated, SqlError::UnterminatedString { position: 26 });
        let bad_char = parse("SELECT * FROM t WHERE a = 'x' ; drop").unwrap_err();
        assert_eq!(
            bad_char,
            SqlError::UnexpectedChar {
                position: 30,
                found: ';'
            }
        );
    }

    #[test]
    #[allow(deprecated)]
    fn compat_shim_stringifies_errors() {
        assert!(parse_compat("SELECT * FROM flows").is_ok());
        let err = parse_compat("SELECT * FROM t WHERE a = unquoted").unwrap_err();
        assert!(err.contains("'string literal'"), "{err}");
    }

    #[test]
    fn execution_matches_baseline() {
        let (a, r) = tables();
        for sql in [
            "SELECT * FROM flows WHERE src = '1.1.1.1'",
            "SELECT dst FROM flows WHERE src = '1.1.1.1' AND port = '443'",
            "SELECT src, dst FROM flows WHERE port = '22' OR port = '53'",
            "SELECT * FROM flows WHERE port IN ('80', '8080')",
            "SELECT * FROM flows",
        ] {
            let q = parse(sql).unwrap();
            // ResultSets are id-sorted, so the duality check is one ==.
            assert_eq!(execute(&q, &a), execute_baseline(&q, &r), "{sql}");
        }
    }

    #[test]
    fn try_execute_threads_parse_errors() {
        let (a, r) = tables();
        assert!(try_execute("SELECT * FROM flows", &a).is_ok());
        assert!(matches!(
            try_execute("SELECT *", &a),
            Err(SqlError::UnexpectedEnd { .. })
        ));
        assert!(matches!(
            try_execute_baseline("SELECT *", &r),
            Err(SqlError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn projection_limits_fields() {
        let (a, _) = tables();
        let q = parse("SELECT dst FROM flows WHERE src = '1.1.1.1'").unwrap();
        let rows = execute(&q, &a);
        assert!(!rows.is_empty());
        assert_eq!(rows.columns(), ["dst".to_string()]);
        for row in &rows {
            assert!(row.cells().all(|(c, _)| c == "dst"));
            assert_eq!(row.len(), 1);
        }
        assert!(rows.column("dst").iter().all(Option::is_some));
    }

    #[test]
    fn star_columns_are_union_of_fields() {
        let (a, _) = tables();
        let q = parse("SELECT * FROM flows WHERE src = '1.1.1.1'").unwrap();
        let rows = execute(&q, &a);
        assert_eq!(
            rows.columns(),
            ["bytes", "dst", "port", "src"].map(String::from)
        );
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse("select * from flows where port = '80'").unwrap();
        assert_eq!(q.preds.len(), 1);
    }
}
