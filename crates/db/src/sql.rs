//! A miniature SQL front-end over the mask algebra.
//!
//! Supports the canonical statement shape of §V.B —
//!
//! ```sql
//! SELECT col1, col2 FROM t WHERE f1 = 'v1' AND f2 IN ('a', 'b')
//! ```
//!
//! — parsed into [`Pred`] lists and executed as ⊗/⊕ mask algebra on the
//! exploded-schema [`AssocTable`] (and by scan on the [`RowTable`]
//! baseline). One connective kind per `WHERE` clause (all `AND` or all
//! `OR`), matching the paper's select discussion; compose queries for
//! anything fancier.

use std::collections::BTreeMap;

use crate::query::Pred;
use crate::{AssocTable, RowTable};

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Projected fields; `None` means `*`.
    pub projection: Option<Vec<String>>,
    /// Table name (uninterpreted — execution receives the table).
    pub table: String,
    /// WHERE predicates (empty = no filter).
    pub preds: Vec<Pred>,
    /// `true` for AND-connected predicates, `false` for OR.
    pub conjunctive: bool,
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Query, String> {
    let toks = tokenize(sql)?;
    let mut t = Tokens { toks, pos: 0 };

    t.expect_kw("SELECT")?;
    let projection = if t.peek_is("*") {
        t.next_tok()?;
        None
    } else {
        let mut cols = vec![t.ident()?];
        while t.peek_is(",") {
            t.next_tok()?;
            cols.push(t.ident()?);
        }
        Some(cols)
    };

    t.expect_kw("FROM")?;
    let table = t.ident()?;

    let mut preds = Vec::new();
    let mut conjunctive = true;
    if t.peek_kw("WHERE") {
        t.next_tok()?;
        preds.push(parse_pred(&mut t)?);
        let mut connective: Option<bool> = None;
        loop {
            if t.peek_kw("AND") || t.peek_kw("OR") {
                let is_and = t.peek_kw("AND");
                match connective {
                    None => connective = Some(is_and),
                    Some(c) if c != is_and => {
                        return Err("mixed AND/OR not supported — compose queries".into())
                    }
                    _ => {}
                }
                t.next_tok()?;
                preds.push(parse_pred(&mut t)?);
            } else {
                break;
            }
        }
        conjunctive = connective.unwrap_or(true);
    }
    if t.pos != t.toks.len() {
        return Err(format!(
            "trailing tokens after statement: {:?}",
            &t.toks[t.pos..]
        ));
    }
    Ok(Query {
        projection,
        table,
        preds,
        conjunctive,
    })
}

fn parse_pred(t: &mut Tokens) -> Result<Pred, String> {
    let field = t.ident()?;
    if t.peek_is("=") {
        t.next_tok()?;
        Ok(Pred::Eq(field, t.string()?))
    } else if t.peek_kw("IN") {
        t.next_tok()?;
        t.expect_tok("(")?;
        let mut vals = vec![t.string()?];
        while t.peek_is(",") {
            t.next_tok()?;
            vals.push(t.string()?);
        }
        t.expect_tok(")")?;
        Ok(Pred::In(field, vals))
    } else {
        Err(format!("expected '=' or IN after field {field}"))
    }
}

/// Execute against the associative-array table: returns matching record
/// ids and, per record, the projected `field → value` cells.
pub fn execute(q: &Query, table: &AssocTable) -> Vec<(String, BTreeMap<String, String>)> {
    let ids = if q.preds.is_empty() {
        table.record_ids()
    } else if q.conjunctive {
        table.select_and(&q.preds)
    } else {
        table.select_or(&q.preds)
    };
    ids.into_iter()
        .map(|id| {
            let mut cells = BTreeMap::new();
            for (col, _) in table.array().row(&id) {
                let (field, value) = col.split_once('|').unwrap_or((col.as_str(), ""));
                let wanted = match &q.projection {
                    None => true,
                    Some(p) => p.iter().any(|f| f == field),
                };
                if wanted {
                    cells.insert(field.to_string(), value.to_string());
                }
            }
            (id, cells)
        })
        .collect()
}

/// Execute by scan against the row-store baseline (same output shape).
pub fn execute_baseline(q: &Query, table: &RowTable) -> Vec<(String, BTreeMap<String, String>)> {
    let ids: Vec<String> = if q.preds.is_empty() {
        table.iter().map(|(id, _)| id.to_string()).collect()
    } else if q.conjunctive {
        table.select_and(&q.preds)
    } else {
        table.select_or(&q.preds)
    };
    let by_id: std::collections::HashMap<&str, _> = table.iter().collect();
    ids.into_iter()
        .map(|id| {
            let row = &by_id[id.as_str()];
            let cells = row
                .iter()
                .filter(|(f, _)| match &q.projection {
                    None => true,
                    Some(p) => p.contains(f),
                })
                .map(|(f, v)| (f.clone(), v.clone()))
                .collect();
            (id, cells)
        })
        .collect()
}

// ---- lexer ----

#[derive(Debug)]
struct Tokens {
    toks: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn next_tok(&mut self) -> Result<&str, String> {
        let t = self.toks.get(self.pos).ok_or("unexpected end of query")?;
        self.pos += 1;
        Ok(t)
    }
    fn peek_is(&self, sym: &str) -> bool {
        self.toks.get(self.pos).is_some_and(|t| t == sym)
    }
    fn peek_kw(&self, kw: &str) -> bool {
        self.toks
            .get(self.pos)
            .is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }
    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        let t = self.next_tok()?;
        if t.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, found {t}"))
        }
    }
    fn expect_tok(&mut self, sym: &str) -> Result<(), String> {
        let t = self.next_tok()?;
        if t == sym {
            Ok(())
        } else {
            Err(format!("expected {sym}, found {t}"))
        }
    }
    fn ident(&mut self) -> Result<String, String> {
        let t = self.next_tok()?;
        if t.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            && !t.is_empty()
        {
            Ok(t.to_string())
        } else {
            Err(format!("expected identifier, found {t}"))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        let t = self.next_tok()?;
        t.strip_prefix('\'')
            .and_then(|x| x.strip_suffix('\''))
            .map(String::from)
            .ok_or_else(|| format!("expected 'string literal', found {t}"))
    }
}

fn tokenize(sql: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&ch) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' | '(' | ')' | '=' | '*' => {
                out.push(ch.to_string());
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut lit = String::from("'");
                loop {
                    match chars.next() {
                        Some('\'') => {
                            lit.push('\'');
                            break;
                        }
                        Some(c) => lit.push(c),
                        None => return Err("unterminated string literal".into()),
                    }
                }
                out.push(lit);
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(ident);
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{flows, FlowParams};

    fn tables() -> (AssocTable, RowTable) {
        let records = flows(
            FlowParams {
                n_records: 300,
                n_hosts: 20,
                skew: 1.0,
            },
            3,
        );
        (
            AssocTable::from_records(records.clone()),
            RowTable::from_records(records),
        )
    }

    #[test]
    fn parse_star_and_projection() {
        let q = parse("SELECT * FROM flows").unwrap();
        assert_eq!(q.projection, None);
        assert!(q.preds.is_empty());
        let q = parse("SELECT src, dst FROM flows").unwrap();
        assert_eq!(q.projection, Some(vec!["src".into(), "dst".into()]));
        assert_eq!(q.table, "flows");
    }

    #[test]
    fn parse_where_clauses() {
        let q = parse("SELECT * FROM t WHERE src = '1.1.1.1' AND port = '443'").unwrap();
        assert!(q.conjunctive);
        assert_eq!(q.preds.len(), 2);
        let q = parse("SELECT * FROM t WHERE port = '80' OR port = '443'").unwrap();
        assert!(!q.conjunctive);
        let q = parse("SELECT * FROM t WHERE port IN ('22', '53')").unwrap();
        assert_eq!(
            q.preds[0],
            Pred::In("port".into(), vec!["22".into(), "53".into()])
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 'x' OR b = 'y' AND c = 'z'").is_err());
        assert!(parse("SELECT * FROM t WHERE a = unquoted").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 'unterminated").is_err());
    }

    #[test]
    fn execution_matches_baseline() {
        let (a, r) = tables();
        for sql in [
            "SELECT * FROM flows WHERE src = '1.1.1.1'",
            "SELECT dst FROM flows WHERE src = '1.1.1.1' AND port = '443'",
            "SELECT src, dst FROM flows WHERE port = '22' OR port = '53'",
            "SELECT * FROM flows WHERE port IN ('80', '8080')",
            "SELECT * FROM flows",
        ] {
            let q = parse(sql).unwrap();
            let mut got = execute(&q, &a);
            let mut want = execute_baseline(&q, &r);
            got.sort();
            want.sort();
            assert_eq!(got, want, "{sql}");
        }
    }

    #[test]
    fn projection_limits_fields() {
        let (a, _) = tables();
        let q = parse("SELECT dst FROM flows WHERE src = '1.1.1.1'").unwrap();
        let rows = execute(&q, &a);
        assert!(!rows.is_empty());
        for (_, cells) in rows {
            assert!(cells.keys().all(|k| k == "dst"));
            assert_eq!(cells.len(), 1);
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse("select * from flows where port = '80'").unwrap();
        assert_eq!(q.preds.len(), 1);
    }
}
