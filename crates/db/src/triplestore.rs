//! The NoSQL view: a (subject, predicate, object) triple store.
//!
//! Every record field becomes a triple `(record_id, field, value)`,
//! indexed in both directions — the Dynamo/Cassandra/HBase/Accumulo
//! school of Fig. 6. Point lookups are O(1) hash probes; the comparison
//! against full-scan [`crate::RowTable`] and array-algebraic
//! [`crate::AssocTable`] is the Fig. 6 bench.

use std::collections::{BTreeSet, HashMap};

use crate::query::{Pred, Select};
use crate::Record;

/// A doubly-indexed triple store.
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    /// predicate → object → subjects (the "who has this value" index).
    pov: HashMap<String, HashMap<String, BTreeSet<String>>>,
    /// subject → predicate → objects (the "what does this record hold" index).
    spo: HashMap<String, HashMap<String, BTreeSet<String>>>,
    n_triples: usize,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-load records as triples.
    pub fn from_records(records: Vec<(String, Record)>) -> Self {
        let mut t = Self::new();
        for (id, rec) in records {
            for (field, value) in rec {
                t.insert(id.clone(), field, value);
            }
        }
        t
    }

    /// Insert one triple.
    pub fn insert(&mut self, subject: String, predicate: String, object: String) {
        self.pov
            .entry(predicate.clone())
            .or_default()
            .entry(object.clone())
            .or_default()
            .insert(subject.clone());
        self.spo
            .entry(subject)
            .or_default()
            .entry(predicate)
            .or_default()
            .insert(object);
        self.n_triples += 1;
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.n_triples
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.n_triples == 0
    }

    /// Subjects with `predicate = object` — one hash probe.
    pub fn subjects(&self, predicate: &str, object: &str) -> BTreeSet<String> {
        self.pov
            .get(predicate)
            .and_then(|m| m.get(object))
            .cloned()
            .unwrap_or_default()
    }

    /// Objects of `subject.predicate` — one hash probe.
    pub fn objects(&self, subject: &str, predicate: &str) -> BTreeSet<String> {
        self.spo
            .get(subject)
            .and_then(|m| m.get(predicate))
            .cloned()
            .unwrap_or_default()
    }

    /// Fig. 6's query via index hops: records where `src = host` yield
    /// their `dst`, records where `dst = host` yield their `src`.
    pub fn neighbors(&self, host: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for rec in self.subjects("src", host) {
            out.extend(self.objects(&rec, "dst"));
        }
        for rec in self.subjects("dst", host) {
            out.extend(self.objects(&rec, "src"));
        }
        out
    }

    /// `GROUP BY predicate` value counts (subjects per object).
    pub fn group_count(&self, predicate: &str) -> HashMap<String, usize> {
        self.pov
            .get(predicate)
            .map(|m| m.iter().map(|(o, s)| (o.clone(), s.len())).collect())
            .unwrap_or_default()
    }

    /// Every subject id, sorted.
    pub fn subject_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.spo.keys().cloned().collect();
        ids.sort();
        ids
    }
}

/// The NoSQL engine answers the shared predicate language by index
/// probes: an `Eq` leaf is one `pov` hop, an `In` leaf a union of hops;
/// compound expressions use the trait's sorted-id set algebra.
impl Select for TripleStore {
    fn ids_matching(&self, p: &Pred) -> Vec<String> {
        match p {
            Pred::Eq(f, v) => self.subjects(f, v).into_iter().collect(),
            Pred::In(f, vs) => {
                let mut out = BTreeSet::new();
                for v in vs {
                    out.extend(self.subjects(f, v));
                }
                out.into_iter().collect()
            }
        }
    }

    fn all_ids(&self) -> Vec<String> {
        self.subject_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        TripleStore::from_records(vec![
            (
                "r1".into(),
                vec![("src".into(), "a".into()), ("dst".into(), "b".into())],
            ),
            (
                "r2".into(),
                vec![("src".into(), "b".into()), ("dst".into(), "a".into())],
            ),
            (
                "r3".into(),
                vec![("src".into(), "a".into()), ("dst".into(), "c".into())],
            ),
        ])
    }

    #[test]
    fn indexes_answer_point_queries() {
        let t = store();
        assert_eq!(
            t.subjects("src", "a").into_iter().collect::<Vec<_>>(),
            vec!["r1", "r3"]
        );
        assert_eq!(
            t.objects("r1", "dst").into_iter().collect::<Vec<_>>(),
            vec!["b"]
        );
        assert!(t.subjects("src", "zzz").is_empty());
    }

    #[test]
    fn neighbors_match_rowstore() {
        let t = store();
        let r = crate::RowTable::from_records(vec![
            (
                "r1".into(),
                vec![("src".into(), "a".into()), ("dst".into(), "b".into())],
            ),
            (
                "r2".into(),
                vec![("src".into(), "b".into()), ("dst".into(), "a".into())],
            ),
            (
                "r3".into(),
                vec![("src".into(), "a".into()), ("dst".into(), "c".into())],
            ),
        ]);
        assert_eq!(t.neighbors("a"), r.neighbors("a"));
        assert_eq!(t.neighbors("b"), r.neighbors("b"));
    }

    #[test]
    fn group_count_matches_manual() {
        let t = store();
        let g = t.group_count("src");
        assert_eq!(g["a"], 2);
        assert_eq!(g["b"], 1);
    }

    #[test]
    fn triple_count() {
        assert_eq!(store().len(), 6);
    }
}
