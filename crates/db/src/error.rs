//! Typed errors for the SQL front-end.
//!
//! Every parse failure carries the byte position it was detected at and
//! what the parser expected there, so callers (REPLs, the serving layer)
//! can point at the offending token instead of grepping a string.

use std::error::Error;
use std::fmt;

/// A SQL parse error: what went wrong, where, and what was expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlError {
    /// A character the lexer has no token for.
    UnexpectedChar {
        /// Byte offset of the character in the statement.
        position: usize,
        /// The offending character.
        found: char,
    },
    /// A `'…` literal with no closing quote.
    UnterminatedString {
        /// Byte offset of the opening quote.
        position: usize,
    },
    /// The statement ended while more tokens were required.
    UnexpectedEnd {
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// A token that does not fit the grammar at its position.
    UnexpectedToken {
        /// Byte offset of the token.
        position: usize,
        /// The token found.
        found: String,
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// `AND` and `OR` mixed in one `WHERE` clause (unsupported — compose
    /// queries instead).
    MixedConnectives {
        /// Byte offset of the second, conflicting connective.
        position: usize,
    },
    /// Tokens left over after a complete statement.
    TrailingTokens {
        /// Byte offset of the first extra token.
        position: usize,
        /// The extra tokens, space-joined.
        found: String,
    },
}

impl SqlError {
    /// Byte offset the error was detected at (`None` for end-of-input).
    pub fn position(&self) -> Option<usize> {
        match self {
            SqlError::UnexpectedChar { position, .. }
            | SqlError::UnterminatedString { position }
            | SqlError::UnexpectedToken { position, .. }
            | SqlError::MixedConnectives { position }
            | SqlError::TrailingTokens { position, .. } => Some(*position),
            SqlError::UnexpectedEnd { .. } => None,
        }
    }

    /// What the parser expected, when that is well-defined.
    pub fn expected(&self) -> Option<&'static str> {
        match self {
            SqlError::UnexpectedEnd { expected } | SqlError::UnexpectedToken { expected, .. } => {
                Some(expected)
            }
            _ => None,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnexpectedChar { position, found } => {
                write!(f, "unexpected character {found:?} at byte {position}")
            }
            SqlError::UnterminatedString { position } => {
                write!(f, "unterminated string literal starting at byte {position}")
            }
            SqlError::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of query: expected {expected}")
            }
            SqlError::UnexpectedToken {
                position,
                found,
                expected,
            } => {
                write!(f, "expected {expected}, found {found} at byte {position}")
            }
            SqlError::MixedConnectives { position } => {
                write!(
                    f,
                    "mixed AND/OR at byte {position} not supported — compose queries"
                )
            }
            SqlError::TrailingTokens { position, found } => {
                write!(
                    f,
                    "trailing tokens after statement at byte {position}: {found}"
                )
            }
        }
    }
}

impl Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_expectations_surface() {
        let e = SqlError::UnexpectedToken {
            position: 7,
            found: "FROM".into(),
            expected: "identifier",
        };
        assert_eq!(e.position(), Some(7));
        assert_eq!(e.expected(), Some("identifier"));
        assert!(e.to_string().contains("byte 7"));
        assert_eq!(
            SqlError::UnexpectedEnd { expected: "FROM" }.position(),
            None
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&SqlError::UnterminatedString { position: 3 });
    }
}
