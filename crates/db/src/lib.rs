//! Database views over associative arrays — §V.B and Fig. 6.
//!
//! Fig. 6 of the paper shows one dataset (network flow records) living
//! simultaneously as a SQL table, a NoSQL triple store, a NewSQL/D4M
//! associative array, and a graph adjacency array — and one query
//! ("find 1.1.1.1's nearest neighbors") expressible in each. This crate
//! builds all four views:
//!
//! * [`RowTable`] — the SQL-flavoured baseline: rows of field→value
//!   maps, queried by full scan;
//! * [`TripleStore`] — the NoSQL view: (subject, predicate, object)
//!   triples with hash indexes in both directions;
//! * [`AssocTable`] — the D4M *exploded schema*: row key = record id,
//!   column key = `field|value`, value = 1 — a hypersparse associative
//!   array on which selects are column extractions, joins are array
//!   multiplies, and group-by counts are column reductions;
//! * the adjacency-array view, reachable from [`AssocTable::adjacency`]
//!   (`A = E_srcᵀ ⊕.⊗ E_dst`, the Fig. 3 projection applied to tables).
//!
//! All three engines answer one predicate language through the
//! [`Select`] trait ([`Pred`] combinators building a [`PredExpr`] tree),
//! the SQL front-end returns typed [`SqlError`]s, and every executor
//! produces an id-sorted [`ResultSet`] so engines compare with `==`.
//!
//! [`gen`] generates the synthetic flow records the Fig. 6 harness uses.
//! Every query result is cross-validated between views in the tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc_table;
pub mod error;
pub mod gen;
pub mod query;
pub mod result;
pub mod rowstore;
pub mod sql;
pub mod triplestore;

pub use assoc_table::AssocTable;
pub use error::SqlError;
pub use query::{Pred, PredExpr, Select};
pub use result::{ResultSet, Row};
pub use rowstore::RowTable;
pub use triplestore::TripleStore;

/// A record: ordered `(field, value)` pairs (all strings, as in D4M).
pub type Record = Vec<(String, String)>;
