//! Synthetic network-flow records — the Fig. 6 dataset.
//!
//! Flows have a source IP, destination IP, destination port, and a byte
//! count. IPs are drawn from a skewed (power-law-ish) pool so that hub
//! hosts like `1.1.1.1` have many neighbors, as in real traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Record;

/// Flow-generation parameters.
#[derive(Copy, Clone, Debug)]
pub struct FlowParams {
    /// Number of flow records.
    pub n_records: usize,
    /// Number of distinct hosts.
    pub n_hosts: usize,
    /// Skew exponent: host `i` is drawn with weight `(i+1)^-skew`.
    pub skew: f64,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            n_records: 1000,
            n_hosts: 100,
            skew: 1.0,
        }
    }
}

/// Generate `params.n_records` flow records with fields
/// `src`, `dst`, `port`, `bytes`. Record ids are `r000000`-style strings.
pub fn flows(params: FlowParams, seed: u64) -> Vec<(String, Record)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute skewed host weights.
    let weights: Vec<f64> = (0..params.n_hosts)
        .map(|i| 1.0 / ((i + 1) as f64).powf(params.skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let draw_host = move |rng: &mut StdRng| -> usize {
        let mut x = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        params.n_hosts - 1
    };

    let ports = ["22", "53", "80", "123", "443", "8080"];
    (0..params.n_records)
        .map(|r| {
            let src = draw_host(&mut rng);
            let mut dst = draw_host(&mut rng);
            if dst == src {
                dst = (dst + 1) % params.n_hosts;
            }
            let rec: Record = vec![
                ("src".into(), ip_name(src)),
                ("dst".into(), ip_name(dst)),
                ("port".into(), ports[rng.gen_range(0..ports.len())].into()),
                ("bytes".into(), format!("{}", rng.gen_range(40..1_500_000))),
            ];
            (format!("r{r:06}"), rec)
        })
        .collect()
}

/// Canonical host name: host 0 is `1.1.1.1`, host `i` is `10.0.x.y`.
pub fn ip_name(i: usize) -> String {
    if i == 0 {
        "1.1.1.1".to_string()
    } else {
        format!("10.0.{}.{}", i / 256, i % 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = FlowParams::default();
        assert_eq!(flows(p, 1), flows(p, 1));
        assert_ne!(flows(p, 1), flows(p, 2));
    }

    #[test]
    fn records_have_all_fields() {
        let recs = flows(
            FlowParams {
                n_records: 50,
                ..Default::default()
            },
            3,
        );
        assert_eq!(recs.len(), 50);
        for (_, r) in &recs {
            let fields: Vec<&str> = r.iter().map(|(f, _)| f.as_str()).collect();
            assert_eq!(fields, ["src", "dst", "port", "bytes"]);
        }
    }

    #[test]
    fn hub_host_appears_often() {
        let recs = flows(
            FlowParams {
                n_records: 2000,
                n_hosts: 50,
                skew: 1.2,
            },
            7,
        );
        let hub = recs
            .iter()
            .filter(|(_, r)| r.iter().any(|(_, v)| v == "1.1.1.1"))
            .count();
        assert!(hub > 100, "hub only in {hub} records");
    }

    #[test]
    fn no_self_flows() {
        let recs = flows(
            FlowParams {
                n_records: 500,
                ..Default::default()
            },
            9,
        );
        for (_, r) in recs {
            let src = &r[0].1;
            let dst = &r[1].1;
            assert_ne!(src, dst);
        }
    }
}
