//! The SQL-flavoured baseline: a row store queried by full scans.
//!
//! This is deliberately the *obvious* implementation — a `Vec` of
//! field→value maps — so the Fig. 6 bench can compare the associative-
//! array formulations against what a naive relational executor does.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::Record;

/// A table of records keyed by record id.
#[derive(Clone, Debug, Default)]
pub struct RowTable {
    ids: Vec<String>,
    rows: Vec<HashMap<String, String>>,
}

impl RowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-load records.
    pub fn from_records(records: Vec<(String, Record)>) -> Self {
        let mut t = Self::new();
        for (id, rec) in records {
            t.insert(id, rec);
        }
        t
    }

    /// Append one record.
    pub fn insert(&mut self, id: String, rec: Record) {
        self.ids.push(id);
        self.rows.push(rec.into_iter().collect());
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `SELECT * WHERE field = value` — full scan. Returns record ids.
    pub fn select_eq(&self, field: &str, value: &str) -> Vec<&str> {
        self.ids
            .iter()
            .zip(&self.rows)
            .filter(|(_, r)| r.get(field).is_some_and(|v| v == value))
            .map(|(id, _)| id.as_str())
            .collect()
    }

    /// `SELECT out_field WHERE field = value` — project one column of the
    /// matching rows (distinct, sorted).
    pub fn select_project(&self, field: &str, value: &str, out_field: &str) -> BTreeSet<String> {
        self.rows
            .iter()
            .filter(|r| r.get(field).is_some_and(|v| v == value))
            .filter_map(|r| r.get(out_field).cloned())
            .collect()
    }

    /// Fig. 6's query: the graph neighbors of `host` — destinations of
    /// flows it sources plus sources of flows it receives.
    pub fn neighbors(&self, host: &str) -> BTreeSet<String> {
        let mut out = self.select_project("src", host, "dst");
        out.extend(self.select_project("dst", host, "src"));
        out
    }

    /// `GROUP BY field COUNT(*)` — full scan.
    pub fn group_count(&self, field: &str) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for r in &self.rows {
            if let Some(v) = r.get(field) {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Nested-loop equi-join with another table on `field` = `other_field`:
    /// returns matching `(id_left, id_right)` pairs.
    pub fn join_ids(
        &self,
        other: &RowTable,
        field: &str,
        other_field: &str,
    ) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (lid, lrow) in self.ids.iter().zip(&self.rows) {
            let Some(lv) = lrow.get(field) else { continue };
            for (rid, rrow) in other.ids.iter().zip(&other.rows) {
                if rrow.get(other_field) == Some(lv) {
                    out.push((lid.clone(), rid.clone()));
                }
            }
        }
        out.sort();
        out
    }

    /// Iterate `(id, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &HashMap<String, String>)> {
        self.ids.iter().map(|s| s.as_str()).zip(self.rows.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RowTable {
        RowTable::from_records(vec![
            (
                "r1".into(),
                vec![("src".into(), "a".into()), ("dst".into(), "b".into())],
            ),
            (
                "r2".into(),
                vec![("src".into(), "b".into()), ("dst".into(), "a".into())],
            ),
            (
                "r3".into(),
                vec![("src".into(), "a".into()), ("dst".into(), "c".into())],
            ),
        ])
    }

    #[test]
    fn select_scans() {
        let t = table();
        assert_eq!(t.select_eq("src", "a"), vec!["r1", "r3"]);
        assert_eq!(t.select_eq("src", "z"), Vec::<&str>::new());
    }

    #[test]
    fn neighbors_both_directions() {
        let t = table();
        let n = t.neighbors("a");
        assert_eq!(n.into_iter().collect::<Vec<_>>(), vec!["b", "c"]);
    }

    #[test]
    fn group_count() {
        let t = table();
        let g = t.group_count("src");
        assert_eq!(g["a"], 2);
        assert_eq!(g["b"], 1);
    }

    #[test]
    fn join_on_field() {
        let t = table();
        // Self-join src = dst: flows whose source is another flow's dest.
        let pairs = t.join_ids(&t, "src", "dst");
        assert!(pairs.contains(&("r1".into(), "r2".into()))); // src a = dst a
        assert!(pairs.contains(&("r2".into(), "r1".into()))); // src b = dst b
    }
}
