//! Property-based equivalence of mask-algebra queries and row-store
//! scans over randomized tables, plus De Morgan-ish interactions of
//! AND/OR/NOT on real data.

use db::query::{Pred, PredExpr};
use db::Select;
use db::{AssocTable, Record, RowTable, TripleStore};
use proptest::prelude::*;

fn record() -> impl Strategy<Value = Record> {
    (0u8..6, 0u8..6, 0u8..4).prop_map(|(a, b, p)| {
        vec![
            ("src".to_string(), format!("h{a}")),
            ("dst".to_string(), format!("h{b}")),
            ("port".to_string(), format!("p{p}")),
        ]
    })
}

fn records() -> impl Strategy<Value = Vec<(String, Record)>> {
    proptest::collection::vec(record(), 1..40).prop_map(|rs| {
        rs.into_iter()
            .enumerate()
            .map(|(i, r)| (format!("r{i:03}"), r))
            .collect()
    })
}

fn pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (0u8..3, 0u8..6).prop_map(|(f, v)| {
            let field = ["src", "dst", "port"][f as usize];
            Pred::Eq(
                field.into(),
                format!("{}{}", if f == 2 { "p" } else { "h" }, v),
            )
        }),
        (0u8..3, proptest::collection::vec(0u8..6, 1..3)).prop_map(|(f, vs)| {
            let field = ["src", "dst", "port"][f as usize];
            Pred::In(
                field.into(),
                vs.into_iter()
                    .map(|v| format!("{}{}", if f == 2 { "p" } else { "h" }, v))
                    .collect(),
            )
        }),
    ]
}

/// Random three-level combinator trees over the shared [`Pred`] leaves.
fn expr() -> impl Strategy<Value = PredExpr> {
    (pred(), pred(), pred(), 0u8..3, 0u8..3).prop_map(|(p1, p2, p3, outer, inner)| {
        let leaf = match inner {
            0 => p2.and(p3),
            1 => p2.or(p3),
            _ => p2.and_not(p3),
        };
        match outer {
            0 => p1.and(leaf),
            1 => p1.or(leaf),
            _ => p1.and_not(leaf),
        }
    })
}

proptest! {
    #[test]
    fn and_equals_scan(recs in records(), preds in proptest::collection::vec(pred(), 1..4)) {
        let a = AssocTable::from_records(recs.clone());
        let r = RowTable::from_records(recs);
        prop_assert_eq!(a.select_and(&preds), r.select_and(&preds));
    }

    #[test]
    fn or_equals_scan(recs in records(), preds in proptest::collection::vec(pred(), 1..4)) {
        let a = AssocTable::from_records(recs.clone());
        let r = RowTable::from_records(recs);
        prop_assert_eq!(a.select_or(&preds), r.select_or(&preds));
    }

    #[test]
    fn and_is_subset_of_or(recs in records(), p1 in pred(), p2 in pred()) {
        let a = AssocTable::from_records(recs);
        let and = a.select_and(&[p1.clone(), p2.clone()]);
        let or = a.select_or(&[p1, p2]);
        for id in &and {
            prop_assert!(or.contains(id));
        }
    }

    #[test]
    fn and_not_partitions_the_and(recs in records(), p1 in pred(), p2 in pred()) {
        let a = AssocTable::from_records(recs);
        // select(p1) = select(p1 ∧ p2) ⊎ select(p1 ∧ ¬p2)
        let base = a.select_and(std::slice::from_ref(&p1));
        let with = a.select_and(&[p1.clone(), p2.clone()]);
        let without = a.select_and_not(&p1, &p2);
        let mut union: Vec<String> = with.iter().chain(&without).cloned().collect();
        union.sort();
        prop_assert_eq!(union, base);
        // …and the two halves are disjoint.
        for id in &with {
            prop_assert!(!without.contains(id));
        }
    }

    #[test]
    fn group_counts_sum_to_record_count(recs in records()) {
        let n = recs.len();
        let a = AssocTable::from_records(recs);
        let total: usize = a.group_count("port").into_iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn expr_trees_agree_across_all_three_engines(recs in records(), e in expr()) {
        let a = AssocTable::from_records(recs.clone());
        let r = RowTable::from_records(recs.clone());
        let t = TripleStore::from_records(recs);
        let via_masks = a.select(&e);
        prop_assert_eq!(&via_masks, &r.select(&e), "assoc vs rowstore on {:?}", &e);
        prop_assert_eq!(&via_masks, &t.select(&e), "assoc vs triplestore on {:?}", &e);
        let mut sorted = via_masks.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(via_masks, sorted, "ids are sorted and unique");
    }
}
