//! Thread-count invariance of the graph layer — the acceptance bar for
//! the direction-optimized kernels: BFS, PageRank, and SSSP results must
//! be byte-identical at every thread count.
//!
//! The graph entry points are ctx-free, so the thread cap is varied
//! through the thread-local default context.

use graph::bfs::{bfs_levels, bfs_parents};
use graph::cc::connected_components;
use graph::pagerank::{pagerank, PageRankOpts};
use graph::pattern::{pattern_u64, pattern_u8, symmetrize};
use graph::sssp::sssp;
use hypersparse::gen::{rmat_dcsr, RmatParams};
use hypersparse::with_default_ctx;
use semiring::PlusTimes;

fn with_threads<R>(k: usize, f: impl FnOnce() -> R) -> R {
    with_default_ctx(|c| c.set_threads(k));
    let r = f();
    with_default_ctx(|c| c.set_threads(0)); // back to auto
    r
}

#[test]
fn bfs_pagerank_sssp_identical_at_any_thread_count() {
    // Big enough that BFS frontiers span multiple push segments and the
    // pull side shards: scale 12 × 8 ≈ 32k edges over 4096 vertices.
    let g = rmat_dcsr(
        RmatParams {
            scale: 12,
            edge_factor: 8,
            ..Default::default()
        },
        7,
        PlusTimes::<f64>::new(),
    );
    let src = g.row_ids()[0];
    let pat8 = pattern_u8(&g);
    let pat64 = pattern_u64(&g);

    let base_levels = with_threads(1, || bfs_levels(&pat8, src));
    let base_parents = with_threads(1, || bfs_parents(&pat64, src));
    let base_rank = with_threads(1, || pagerank(&g, PageRankOpts::default()));
    let base_dist = with_threads(1, || sssp(&g, src));
    assert!(base_levels.len() > 1, "source must reach something");

    for k in [2, 4, 8] {
        assert_eq!(
            with_threads(k, || bfs_levels(&pat8, src)),
            base_levels,
            "bfs_levels differs at {k} threads"
        );
        assert_eq!(
            with_threads(k, || bfs_parents(&pat64, src)),
            base_parents,
            "bfs_parents differs at {k} threads"
        );
        let rank = with_threads(k, || pagerank(&g, PageRankOpts::default()));
        assert!(
            rank.len() == base_rank.len()
                && rank
                    .iter()
                    .zip(&base_rank)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "pagerank differs at {k} threads"
        );
        let dist = with_threads(k, || sssp(&g, src));
        assert!(
            dist.len() == base_dist.len()
                && dist
                    .iter()
                    .zip(&base_dist)
                    .all(|((v, d), (bv, bd))| v == bv && d.to_bits() == bd.to_bits()),
            "sssp differs at {k} threads"
        );
    }
}

#[test]
fn triangle_counts_identical_at_any_thread_count() {
    // triangle_count / edge_support run on the masked SpGEMM, which
    // shards by row above ~512 non-empty rows — scale 12 clears that.
    let g = symmetrize(
        &rmat_dcsr(
            RmatParams {
                scale: 12,
                edge_factor: 8,
                ..Default::default()
            },
            11,
            PlusTimes::<f64>::new(),
        ),
        PlusTimes::<f64>::new(),
    );
    let base_count = with_threads(1, || graph::triangles::triangle_count(&g));
    let base_support = with_threads(1, || graph::triangles::edge_support(&g));
    assert!(base_count > 0, "rmat graph must close some triangles");
    for k in [2, 4, 8] {
        assert_eq!(
            with_threads(k, || graph::triangles::triangle_count(&g)),
            base_count,
            "triangle_count differs at {k} threads"
        );
        assert_eq!(
            with_threads(k, || graph::triangles::edge_support(&g)),
            base_support,
            "edge_support differs at {k} threads"
        );
    }
}

#[test]
fn connected_components_identical_at_any_thread_count() {
    let g = symmetrize(
        &rmat_dcsr(
            RmatParams {
                scale: 10,
                edge_factor: 4,
                ..Default::default()
            },
            3,
            PlusTimes::<f64>::new(),
        ),
        PlusTimes::<f64>::new(),
    );
    let pat = pattern_u64(&g);
    let base = with_threads(1, || connected_components(&pat));
    for k in [2, 4, 8] {
        assert_eq!(
            with_threads(k, || connected_components(&pat)),
            base,
            "cc differs at {k} threads"
        );
    }
}
