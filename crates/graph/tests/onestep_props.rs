//! Property-based verification of the algebraic BFS-variant selection.
//!
//! The contract of `graph::bfs::parent_bfs_with` is three-sided:
//!
//! 1. **Selection is decided by the probe** — for every shipped
//!    semiring with a `u64` carrier the variant returned matches what
//!    `semiring::onestep` predicts, with no hard-coded list;
//! 2. **Where the conditions hold, fused ≡ two-step** — on random
//!    graphs the one-step product and the two-step fallback produce
//!    bit-identical `(vertex, payload)` streams for every qualifying
//!    semiring (and under *both* parent orders, min and max, so
//!    agreement is not an artifact of one tie-break);
//! 3. **Where they fail, the fallback is still a BFS** — the two-step
//!    variant's discovered vertex set equals reachability-by-levels
//!    regardless of how badly the semiring blends payloads.

use graph::bfs::{
    bfs_levels, parent_bfs_fused_ctx, parent_bfs_two_step_ctx, parent_bfs_with, selects_one_step,
    BfsVariant,
};
use graph::pattern::{pattern_u64, pattern_u8};
use hypersparse::ctx::OpCtx;
use hypersparse::{Coo, Dcsr, Ix};
use proptest::prelude::*;
use semiring::{MaxFirst, MaxMin, MinFirst, MinPlus, MinSecond, PlusTimes};

const N: Ix = 24;

fn edges() -> impl Strategy<Value = Vec<(Ix, Ix)>> {
    proptest::collection::vec((0..N, 0..N), 0..80)
}

fn mk(e: Vec<(Ix, Ix)>) -> Dcsr<f64> {
    let mut c = Coo::new(N, N);
    let mut seen = std::collections::HashSet::new();
    for (a, b) in e {
        if a != b && seen.insert((a, b)) {
            c.push(a, b, 1.0);
        }
    }
    c.build_dcsr(PlusTimes::<f64>::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- 2: fused ≡ two-step for every qualifying semiring ----

    #[test]
    fn fused_equals_two_step_min_first(e in edges(), src in 0..N) {
        let p = pattern_u64(&mk(e));
        let ctx = OpCtx::new();
        prop_assert_eq!(
            parent_bfs_fused_ctx(&ctx, &p, src, MinFirst),
            parent_bfs_two_step_ctx(&ctx, &p, src, MinFirst)
        );
    }

    #[test]
    fn fused_equals_two_step_max_first(e in edges(), src in 0..N) {
        let p = pattern_u64(&mk(e));
        let ctx = OpCtx::new();
        prop_assert_eq!(
            parent_bfs_fused_ctx(&ctx, &p, src, MaxFirst),
            parent_bfs_two_step_ctx(&ctx, &p, src, MaxFirst)
        );
    }

    // ---- 3: the fallback preserves reachability under any algebra ----

    #[test]
    fn two_step_vertex_set_is_reachability(e in edges(), src in 0..N) {
        let g = mk(e);
        let want: Vec<Ix> = bfs_levels(&pattern_u8(&g), src)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let p = pattern_u64(&g);
        let ctx = OpCtx::new();
        // Three differently broken algebras: blending ⊕ (PlusTimes),
        // id-mangling ⊗ (MinPlus), wrong-side ⊗ (MinSecond).
        let pt: Vec<Ix> = parent_bfs_two_step_ctx(&ctx, &p, src, PlusTimes::<u64>::new())
            .into_iter().map(|(v, _)| v).collect();
        prop_assert_eq!(&pt, &want);
        let mp: Vec<Ix> = parent_bfs_two_step_ctx(&ctx, &p, src, MinPlus::<u64>::new())
            .into_iter().map(|(v, _)| v).collect();
        prop_assert_eq!(&mp, &want);
        let ms: Vec<Ix> = parent_bfs_two_step_ctx(&ctx, &p, src, MinSecond)
            .into_iter().map(|(v, _)| v).collect();
        prop_assert_eq!(&ms, &want);
    }

    // ---- 1 (+2): the public entry point selects per the probe, and
    // its one-step output equals the fallback run by hand ----

    #[test]
    fn selection_matches_probe_and_agrees(e in edges(), src in 0..N) {
        let p = pattern_u64(&mk(e));
        let ctx = OpCtx::new();

        let (fused_out, v) = parent_bfs_with(&p, src, MinFirst);
        prop_assert_eq!(v, BfsVariant::OneStep);
        prop_assert_eq!(fused_out, parent_bfs_two_step_ctx(&ctx, &p, src, MinFirst));

        let (_, v) = parent_bfs_with(&p, src, PlusTimes::<u64>::new());
        prop_assert_eq!(v, BfsVariant::TwoStep);
        let (_, v) = parent_bfs_with(&p, src, MinSecond);
        prop_assert_eq!(v, BfsVariant::TwoStep);
        let (_, v) = parent_bfs_with(&p, src, MaxMin::<u64>::new());
        prop_assert_eq!(v, BfsVariant::TwoStep);
    }
}

#[test]
fn selection_agrees_with_onestep_probe_for_all_u64_semirings() {
    // The decision the graph layer caches must be exactly the verdict
    // of the semiring-layer probe — machine-checked, not curated.
    use semiring::onestep::probe;
    use semiring::Semiring;

    fn check<S: Semiring<Value = u64>>(s: S) {
        let samples: Vec<u64> = vec![1, 2, 3, 5, 1 << 10, 1 << 20, s.one()];
        assert_eq!(selects_one_step(&s), probe(&s, &samples).qualifies());
    }
    check(MinFirst);
    check(MaxFirst);
    check(MinSecond);
    check(PlusTimes::<u64>::new());
    check(MinPlus::<u64>::new());
    check(MaxMin::<u64>::new());
    check(semiring::MaxPlus::<u64>::new());
    check(semiring::MinMax::<u64>::new());
    check(semiring::MaxTimes::<u64>::new());
    check(semiring::MinTimes::<u64>::new());
}
