//! Property-based duality checks: for random graphs, the semiring
//! (array) formulation and the pointer-chasing (graph) formulation of
//! each algorithm must agree — Fig. 1 as a theorem, not a picture.

use graph::baseline::{bfs_queue, cc_union_find, dijkstra, triangles_wedge, AdjList};
use graph::bfs::{bfs_levels, bfs_parents};
use graph::cc::connected_components;
use graph::hypergraph::{incidence_to_adjacency, incidence_to_adjacency_baseline, Hypergraph};
use graph::pattern::{pattern_u64, pattern_u8, symmetrize};
use graph::sssp::sssp;
use graph::triangles::triangle_count;
use hypersparse::{Coo, Dcsr, Ix};
use proptest::prelude::*;
use semiring::PlusTimes;

const N: Ix = 24;

fn edges() -> impl Strategy<Value = Vec<(Ix, Ix, f64)>> {
    proptest::collection::vec(
        (0..N, 0..N, 1u32..10).prop_map(|(a, b, w)| (a, b, w as f64)),
        0..80,
    )
}

fn mk(e: Vec<(Ix, Ix, f64)>) -> Dcsr<f64> {
    let mut c = Coo::new(N, N);
    // Dedup positions (keep first weight) so multigraph weights don't
    // accumulate — baselines assume simple graphs.
    let mut seen = std::collections::HashSet::new();
    for (a, b, w) in e {
        if a != b && seen.insert((a, b)) {
            c.push(a, b, w);
        }
    }
    c.build_dcsr(PlusTimes::<f64>::new())
}

proptest! {
    #[test]
    fn bfs_levels_match_queue_bfs(e in edges(), src in 0..N) {
        let g = mk(e);
        let lv = bfs_levels(&pattern_u8(&g), src);
        let q = bfs_queue(&AdjList::from_pattern(&g), src);
        let mut want: Vec<(Ix, u32)> = q
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l != u32::MAX)
            .map(|(v, &l)| (v as Ix, l))
            .collect();
        want.sort_by_key(|x| x.0);
        prop_assert_eq!(lv, want);
    }

    #[test]
    fn bfs_parents_are_consistent_with_levels(e in edges(), src in 0..N) {
        let g = mk(e);
        let levels: std::collections::HashMap<Ix, u32> =
            bfs_levels(&pattern_u8(&g), src).into_iter().collect();
        let parents = bfs_parents(&pattern_u64(&g), src);
        prop_assert_eq!(parents.len(), levels.len());
        for (v, p) in parents {
            if v == src {
                prop_assert_eq!(p, src);
            } else {
                prop_assert_eq!(levels[&p] + 1, levels[&v]);
                prop_assert!(g.get(p, v).is_some());
            }
        }
    }

    #[test]
    fn bellman_ford_matches_dijkstra(e in edges(), src in 0..N) {
        let g = mk(e);
        let d_bf = sssp(&g, src);
        let d_dij = dijkstra(&AdjList::from_weighted(&g), src);
        let reached: std::collections::HashSet<Ix> = d_bf.iter().map(|&(v, _)| v).collect();
        for (v, d) in &d_bf {
            prop_assert!((d - d_dij[*v as usize]).abs() < 1e-9);
        }
        for (v, &d) in d_dij.iter().enumerate() {
            prop_assert_eq!(d.is_finite(), reached.contains(&(v as Ix)));
        }
    }

    #[test]
    fn label_prop_matches_union_find(e in edges()) {
        let s = PlusTimes::<f64>::new();
        let g = symmetrize(&mk(e), s);
        let labels = connected_components(&pattern_u64(&g));
        let edge_list: Vec<(Ix, Ix)> = g.iter().map(|(r, c, _)| (r, c)).collect();
        let uf = cc_union_find(N as usize, &edge_list);
        for (v, comp) in labels {
            prop_assert_eq!(comp as usize, uf[v as usize]);
        }
    }

    #[test]
    fn masked_spgemm_matches_wedge_count(e in edges()) {
        let s = PlusTimes::<f64>::new();
        let g = symmetrize(&mk(e), s);
        prop_assert_eq!(triangle_count(&g), triangles_wedge(&AdjList::from_pattern(&g)));
    }

    #[test]
    fn incidence_projection_matches_hash_baseline(
        simple in edges(),
        hyper in proptest::collection::vec(
            (proptest::collection::vec(0..N, 1..4), proptest::collection::vec(0..N, 1..4)),
            0..6
        ),
    ) {
        let mut h = Hypergraph::new(N);
        for (a, b, w) in simple.into_iter().take(30) {
            h.add_edge(a, b, w);
        }
        for (srcs, dsts) in hyper {
            let srcs: Vec<Ix> = {
                let mut v = srcs;
                v.sort_unstable();
                v.dedup();
                v
            };
            let dsts: Vec<Ix> = {
                let mut v = dsts;
                v.sort_unstable();
                v.dedup();
                v
            };
            h.add_hyperedge(&srcs, &dsts, 1.0);
        }
        let s = PlusTimes::<f64>::new();
        let a = incidence_to_adjacency(&h.e_out(), &h.e_in(), s);
        let got: Vec<(Ix, Ix, f64)> = a.iter().map(|(i, j, &v)| (i, j, v)).collect();
        let want = incidence_to_adjacency_baseline(&h.e_out(), &h.e_in());
        prop_assert_eq!(got, want);
    }
}
