//! Breadth-first search as array multiplication — Fig. 1's duality.
//!
//! One BFS sweep is one `vᵀA` over the cheapest possible semiring
//! ([`semiring::AnyPair`]): the frontier vector is scattered along its
//! rows, visited vertices are masked off, and the survivors are the next
//! frontier. Parent tracking swaps in [`semiring::MinFirst`], whose ⊗
//! carries the *source* vertex id through each edge and whose ⊕ picks
//! the smallest — a deterministic BFS tree.

use hypersparse::ops::mxv::{choose_direction, vxm_masked_opt_ctx};
use hypersparse::ops::transpose_ctx;
use hypersparse::{with_default_ctx, Dcsr, Direction, Ix, SparseVec};
use semiring::{AnyPair, MinFirst};

use crate::frontier::Visited;

/// BFS levels from `src` over a `u8` pattern (see
/// [`crate::pattern::pattern_u8`]). Returns `(vertex, level)` pairs
/// sorted by vertex, `src` at level 0; unreachable vertices are absent.
///
/// Each level is one fused masked expansion `(fᵀA) ⊙ ¬visited`
/// ([`vxm_masked_opt_ctx`]) — direction-optimized once the frontier is
/// dense enough to justify building the transpose, which then persists
/// for the remaining levels.
pub fn bfs_levels(pat: &Dcsr<u8>, src: Ix) -> Vec<(Ix, u32)> {
    let s = AnyPair;
    let n = pat.nrows();
    let mut out: Vec<(Ix, u32)> = vec![(src, 0)];
    let mut visited = Visited::with_seed(src);
    let mut frontier = SparseVec::from_entries(n, vec![(src, 1u8)], s);
    let mut at: Option<Dcsr<u8>> = None;
    let mut level = 0u32;
    with_default_ctx(|ctx| {
        while !frontier.is_empty() {
            level += 1;
            if at.is_none() && choose_direction(&frontier, pat, true) == Direction::Pull {
                at = Some(transpose_ctx(ctx, pat));
            }
            // q = (fᵀ A) ⊙ ¬visited — the Fig. 1 array operation, masked
            // inside the kernel.
            let next = vxm_masked_opt_ctx(ctx, &frontier, pat, at.as_ref(), visited.as_slice(), s);
            for (v, _) in next.iter() {
                out.push((v, level));
            }
            visited.absorb_sorted(next.indices());
            frontier = next;
        }
    });
    out.sort_by_key(|e| e.0);
    out
}

/// BFS tree from `src` over a `u64` pattern (see
/// [`crate::pattern::pattern_u64`]). Returns `(vertex, parent)` pairs
/// sorted by vertex; `src` maps to itself. Deterministic: each vertex's
/// parent is its smallest-id predecessor in the previous frontier.
pub fn bfs_parents(pat: &Dcsr<u64>, src: Ix) -> Vec<(Ix, Ix)> {
    let s = MinFirst;
    let n = pat.nrows();
    let mut out: Vec<(Ix, Ix)> = vec![(src, src)];
    // Frontier values carry the (1-shifted) id of the frontier vertex
    // itself, so MinFirst's ⊗ delivers it to each successor as a parent
    // candidate; ⊕ = min picks the smallest-id parent.
    let mut visited = Visited::with_seed(src);
    let mut frontier = SparseVec::from_entries(n, vec![(src, src + 1)], s);
    let mut at: Option<Dcsr<u64>> = None;
    with_default_ctx(|ctx| {
        while !frontier.is_empty() {
            if at.is_none() && choose_direction(&frontier, pat, true) == Direction::Pull {
                at = Some(transpose_ctx(ctx, pat));
            }
            let next = vxm_masked_opt_ctx(ctx, &frontier, pat, at.as_ref(), visited.as_slice(), s);
            for (v, &parent_shifted) in next.iter() {
                out.push((v, parent_shifted - 1));
            }
            visited.absorb_sorted(next.indices());
            // Re-stamp the new frontier with its own ids for the next hop.
            frontier =
                SparseVec::from_entries(n, next.iter().map(|(v, _)| (v, v + 1)).collect(), s);
        }
    });
    out.sort_by_key(|e| e.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{pattern_u64, pattern_u8};
    use hypersparse::Coo;
    use semiring::PlusTimes;

    /// 0→1→2→3, 0→2, plus an unreachable 5→6.
    fn g() -> Dcsr<f64> {
        let mut c = Coo::new(8, 8);
        c.extend([
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (0, 2, 1.0),
            (5, 6, 1.0),
        ]);
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn levels_match_hand_computation() {
        let levels = bfs_levels(&pattern_u8(&g()), 0);
        assert_eq!(levels, vec![(0, 0), (1, 1), (2, 1), (3, 2)]);
    }

    #[test]
    fn unreachable_vertices_absent() {
        let levels = bfs_levels(&pattern_u8(&g()), 0);
        assert!(!levels.iter().any(|&(v, _)| v == 5 || v == 6));
    }

    #[test]
    fn bfs_from_isolated_source() {
        let levels = bfs_levels(&pattern_u8(&g()), 7);
        assert_eq!(levels, vec![(7, 0)]);
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let p = pattern_u64(&g());
        let parents = bfs_parents(&p, 0);
        let levels: std::collections::HashMap<Ix, u32> =
            bfs_levels(&pattern_u8(&g()), 0).into_iter().collect();
        for &(v, parent) in &parents {
            if v == 0 {
                assert_eq!(parent, 0);
                continue;
            }
            // Parent is one level shallower and has an edge to v.
            assert_eq!(levels[&parent] + 1, levels[&v]);
            assert!(p.get(parent, v).is_some());
        }
        assert_eq!(parents.len(), levels.len());
    }

    #[test]
    fn parent_choice_is_min_id() {
        // Both 0 and 1 reach 2 at the same level from a 2-vertex frontier.
        let mut c = Coo::new(4, 4);
        c.extend([(3, 0, 1.0), (3, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let parents = bfs_parents(&pattern_u64(&g), 3);
        let parent_of_2 = parents.iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert_eq!(parent_of_2, 0); // min of {0, 1}
    }

    #[test]
    fn bfs_works_in_huge_key_space() {
        let n = 1u64 << 45;
        let mut c = Coo::new(n, n);
        c.extend([(7, 1 << 40, 1.0), (1 << 40, 3, 1.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let levels = bfs_levels(&pattern_u8(&g), 7);
        assert_eq!(levels, vec![(3, 2), (7, 0), (1 << 40, 1)]);
    }
}
