//! Breadth-first search as array multiplication — Fig. 1's duality.
//!
//! One BFS sweep is one `vᵀA` over the cheapest possible semiring
//! ([`semiring::AnyPair`]): the frontier vector is scattered along its
//! rows, visited vertices are masked off, and the survivors are the next
//! frontier. Parent tracking swaps in [`semiring::MinFirst`], whose ⊗
//! carries the *source* vertex id through each edge and whose ⊕ picks
//! the smallest — a deterministic BFS tree.
//!
//! # One-step vs two-step parent BFS
//!
//! "Algebraic Conditions on One-Step Breadth-First Search" observes
//! that the per-level work — next frontier *and* parent assignment —
//! collapses into a **single** masked `vᵀA` exactly when the semiring's
//! ⊕ is selective and order-free and its ⊗ carries the left (frontier)
//! operand; otherwise the product's values are blends that cannot be
//! trusted as parents and the level needs **two** products: a cheap
//! [`AnyPair`] reachability pass for the frontier plus a payload pass
//! for the folded values. [`parent_bfs_with`] does not hard-code a list
//! of good semirings — it consults [`semiring::onestep::probe`] (cached
//! per semiring type) and picks [`BfsVariant::OneStep`] or
//! [`BfsVariant::TwoStep`] accordingly; the property suite in
//! `tests/onestep_props.rs` proves the two variants agree wherever the
//! conditions admit the fused form.

use std::any::TypeId;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use hypersparse::ctx::OpCtx;
use hypersparse::metrics::Kernel;
use hypersparse::ops::mxv::{choose_direction, vxm_masked_opt_ctx};
use hypersparse::ops::transpose_ctx;
use hypersparse::{with_default_ctx, Dcsr, Direction, Ix, SparseVec};
use semiring::onestep::probe;
use semiring::{AnyPair, MinFirst, Semiring};

use crate::frontier::Visited;
use crate::pattern::pattern_u8;

/// Which per-level strategy [`parent_bfs_with`] selected for a
/// semiring — decided by the algebraic probe, not by a type list.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BfsVariant {
    /// Every condition of `semiring::onestep` held: one masked `vᵀA`
    /// per level yields frontier and parent payloads simultaneously.
    OneStep,
    /// Some condition failed: each level runs an [`AnyPair`]
    /// reachability product plus a separate payload product.
    TwoStep,
}

/// `true` iff the one-step conditions hold for `S`, probed over
/// id-shaped samples (with the semiring's own `0`/`1` adjoined) and
/// cached per concrete semiring type. Saturating integer arithmetic in
/// the numeric semirings keeps the probe overflow-free even where ⊗ is
/// `+` or `×` on `u64`.
pub fn selects_one_step<S: Semiring<Value = u64>>(s: &S) -> bool {
    static CACHE: OnceLock<Mutex<HashMap<TypeId, bool>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&q) = cache.lock().unwrap().get(&TypeId::of::<S>()) {
        return q;
    }
    let samples: Vec<u64> = vec![1, 2, 3, 5, 1 << 10, 1 << 20, s.one()];
    let q = probe(s, &samples).qualifies();
    cache.lock().unwrap().insert(TypeId::of::<S>(), q);
    q
}

/// BFS levels from `src` over a `u8` pattern (see
/// [`crate::pattern::pattern_u8`]). Returns `(vertex, level)` pairs
/// sorted by vertex, `src` at level 0; unreachable vertices are absent.
///
/// Each level is one fused masked expansion `(fᵀA) ⊙ ¬visited`
/// ([`vxm_masked_opt_ctx`]) — direction-optimized once the frontier is
/// dense enough to justify building the transpose, which then persists
/// for the remaining levels.
pub fn bfs_levels(pat: &Dcsr<u8>, src: Ix) -> Vec<(Ix, u32)> {
    let s = AnyPair;
    let n = pat.nrows();
    let mut out: Vec<(Ix, u32)> = vec![(src, 0)];
    let mut visited = Visited::with_seed(src);
    let mut frontier = SparseVec::from_entries(n, vec![(src, 1u8)], s);
    let mut at: Option<Dcsr<u8>> = None;
    let mut level = 0u32;
    with_default_ctx(|ctx| {
        while !frontier.is_empty() {
            level += 1;
            if at.is_none() && choose_direction(&frontier, pat, true) == Direction::Pull {
                at = Some(transpose_ctx(ctx, pat));
            }
            // q = (fᵀ A) ⊙ ¬visited — the Fig. 1 array operation, masked
            // inside the kernel.
            let next = vxm_masked_opt_ctx(ctx, &frontier, pat, at.as_ref(), visited.as_slice(), s);
            for (v, _) in next.iter() {
                out.push((v, level));
            }
            visited.absorb_sorted(next.indices());
            frontier = next;
        }
    });
    out.sort_by_key(|e| e.0);
    out
}

/// The fused **one-step** parent BFS: one masked `vᵀA` over `s` per
/// level, the product trusted verbatim as next frontier *and* parent
/// payloads. Sound only when [`selects_one_step`] holds for `s`;
/// exposed so the property suite can run it unconditionally and compare
/// against [`parent_bfs_two_step_ctx`].
///
/// Frontier vertices carry their own 1-shifted id (`v + 1`); returns
/// `(vertex, payload)` pairs sorted by vertex, `src` seeded with
/// `src + 1`.
pub fn parent_bfs_fused_ctx<S>(ctx: &OpCtx, pat: &Dcsr<u64>, src: Ix, s: S) -> Vec<(Ix, u64)>
where
    S: Semiring<Value = u64>,
{
    let n = pat.nrows();
    let mut out: Vec<(Ix, u64)> = vec![(src, src + 1)];
    let mut visited = Visited::with_seed(src);
    let mut frontier = SparseVec::from_entries(n, vec![(src, src + 1)], s);
    let mut at: Option<Dcsr<u64>> = None;
    while !frontier.is_empty() {
        if at.is_none() && choose_direction(&frontier, pat, true) == Direction::Pull {
            at = Some(transpose_ctx(ctx, pat));
        }
        let next = vxm_masked_opt_ctx(ctx, &frontier, pat, at.as_ref(), visited.as_slice(), s);
        out.extend(next.iter().map(|(v, &payload)| (v, payload)));
        visited.absorb_sorted(next.indices());
        // Re-stamp the new frontier with its own ids for the next hop.
        frontier = SparseVec::from_entries(n, next.iter().map(|(v, _)| (v, v + 1)).collect(), s);
    }
    out.sort_by_key(|e| e.0);
    out
}

/// The **two-step** fallback: per level, an [`AnyPair`] product over the
/// `u8` shadow pattern decides reachability (always sound), and a
/// second product over `s` folds the payloads. A vertex the payload
/// product cancelled to the semiring `0` is still discovered — it
/// appears with payload `s.zero()` — which is exactly the case that
/// makes the fused variant unsound for non-selective ⊕.
pub fn parent_bfs_two_step_ctx<S>(ctx: &OpCtx, pat: &Dcsr<u64>, src: Ix, s: S) -> Vec<(Ix, u64)>
where
    S: Semiring<Value = u64>,
{
    let n = pat.nrows();
    let pat8 = pattern_u8(pat);
    let mut out: Vec<(Ix, u64)> = vec![(src, src + 1)];
    let mut visited = Visited::with_seed(src);
    let mut reach = SparseVec::from_entries(n, vec![(src, 1u8)], AnyPair);
    let mut stamped = SparseVec::from_entries(n, vec![(src, src + 1)], s);
    let mut at8: Option<Dcsr<u8>> = None;
    let mut at: Option<Dcsr<u64>> = None;
    while !reach.is_empty() {
        if at8.is_none() && choose_direction(&reach, &pat8, true) == Direction::Pull {
            at8 = Some(transpose_ctx(ctx, &pat8));
            at = Some(transpose_ctx(ctx, pat));
        }
        // Step 1: who is reachable this level (pattern algebra, exact).
        let next = vxm_masked_opt_ctx(
            ctx,
            &reach,
            &pat8,
            at8.as_ref(),
            visited.as_slice(),
            AnyPair,
        );
        // Step 2: what the semiring folds onto them.
        let vals = vxm_masked_opt_ctx(ctx, &stamped, pat, at.as_ref(), visited.as_slice(), s);
        for (v, _) in next.iter() {
            let payload = vals.get(&v).cloned().unwrap_or_else(|| s.zero());
            out.push((v, payload));
        }
        visited.absorb_sorted(next.indices());
        stamped = SparseVec::from_entries(n, next.iter().map(|(v, _)| (v, v + 1)).collect(), s);
        reach = next;
    }
    out.sort_by_key(|e| e.0);
    out
}

/// Parent-style BFS from `src` over a `u64` pattern, with the per-level
/// strategy **selected algebraically**: if [`selects_one_step`] accepts
/// `s`, each level is the single fused product of
/// [`parent_bfs_fused_ctx`]; otherwise the sound two-step fallback
/// runs. Returns the `(vertex, payload)` pairs plus the variant that
/// produced them, and records the whole traversal under
/// [`Kernel::BfsParent`].
pub fn parent_bfs_with<S>(pat: &Dcsr<u64>, src: Ix, s: S) -> (Vec<(Ix, u64)>, BfsVariant)
where
    S: Semiring<Value = u64>,
{
    with_default_ctx(|ctx| parent_bfs_with_ctx(ctx, pat, src, s))
}

/// [`parent_bfs_with`] against an explicit context.
pub fn parent_bfs_with_ctx<S>(
    ctx: &OpCtx,
    pat: &Dcsr<u64>,
    src: Ix,
    s: S,
) -> (Vec<(Ix, u64)>, BfsVariant)
where
    S: Semiring<Value = u64>,
{
    let start = Instant::now();
    let (out, variant) = if selects_one_step(&s) {
        (parent_bfs_fused_ctx(ctx, pat, src, s), BfsVariant::OneStep)
    } else {
        (
            parent_bfs_two_step_ctx(ctx, pat, src, s),
            BfsVariant::TwoStep,
        )
    };
    ctx.metrics().record(
        Kernel::BfsParent,
        start.elapsed(),
        pat.nnz() as u64,
        out.len() as u64,
        out.len() as u64,
        (pat.bytes() + out.len() * std::mem::size_of::<(Ix, u64)>()) as u64,
    );
    (out, variant)
}

/// BFS tree from `src` over a `u64` pattern (see
/// [`crate::pattern::pattern_u64`]). Returns `(vertex, parent)` pairs
/// sorted by vertex; `src` maps to itself. Deterministic: each vertex's
/// parent is its smallest-id predecessor in the previous frontier.
///
/// This is [`parent_bfs_with`] over [`MinFirst`] — which the algebraic
/// probe accepts, so every level is the fused one-step product — with
/// the 1-shifted payloads unshifted back to parent ids.
pub fn bfs_parents(pat: &Dcsr<u64>, src: Ix) -> Vec<(Ix, Ix)> {
    let (out, variant) = parent_bfs_with(pat, src, MinFirst);
    debug_assert_eq!(variant, BfsVariant::OneStep);
    out.into_iter().map(|(v, p)| (v, p - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{pattern_u64, pattern_u8};
    use hypersparse::Coo;
    use semiring::{MaxFirst, MaxMin, MinPlus, MinSecond, PlusTimes};

    /// 0→1→2→3, 0→2, plus an unreachable 5→6.
    fn g() -> Dcsr<f64> {
        let mut c = Coo::new(8, 8);
        c.extend([
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (0, 2, 1.0),
            (5, 6, 1.0),
        ]);
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn levels_match_hand_computation() {
        let levels = bfs_levels(&pattern_u8(&g()), 0);
        assert_eq!(levels, vec![(0, 0), (1, 1), (2, 1), (3, 2)]);
    }

    #[test]
    fn unreachable_vertices_absent() {
        let levels = bfs_levels(&pattern_u8(&g()), 0);
        assert!(!levels.iter().any(|&(v, _)| v == 5 || v == 6));
    }

    #[test]
    fn bfs_from_isolated_source() {
        let levels = bfs_levels(&pattern_u8(&g()), 7);
        assert_eq!(levels, vec![(7, 0)]);
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let p = pattern_u64(&g());
        let parents = bfs_parents(&p, 0);
        let levels: std::collections::HashMap<Ix, u32> =
            bfs_levels(&pattern_u8(&g()), 0).into_iter().collect();
        for &(v, parent) in &parents {
            if v == 0 {
                assert_eq!(parent, 0);
                continue;
            }
            // Parent is one level shallower and has an edge to v.
            assert_eq!(levels[&parent] + 1, levels[&v]);
            assert!(p.get(parent, v).is_some());
        }
        assert_eq!(parents.len(), levels.len());
    }

    #[test]
    fn parent_choice_is_min_id() {
        // Both 0 and 1 reach 2 at the same level from a 2-vertex frontier.
        let mut c = Coo::new(4, 4);
        c.extend([(3, 0, 1.0), (3, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let parents = bfs_parents(&pattern_u64(&g), 3);
        let parent_of_2 = parents.iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert_eq!(parent_of_2, 0); // min of {0, 1}
    }

    #[test]
    fn bfs_works_in_huge_key_space() {
        let n = 1u64 << 45;
        let mut c = Coo::new(n, n);
        c.extend([(7, 1 << 40, 1.0), (1 << 40, 3, 1.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let levels = bfs_levels(&pattern_u8(&g), 7);
        assert_eq!(levels, vec![(3, 2), (7, 0), (1 << 40, 1)]);
    }

    #[test]
    fn probe_drives_variant_selection() {
        // Qualifying algebras take the fused path, blending/mangling
        // ones provably fall back — no hard-coded type list.
        assert!(selects_one_step(&MinFirst));
        assert!(selects_one_step(&MaxFirst));
        assert!(!selects_one_step(&MinSecond));
        assert!(!selects_one_step(&PlusTimes::<u64>::new()));
        assert!(!selects_one_step(&MinPlus::<u64>::new()));
        assert!(!selects_one_step(&MaxMin::<u64>::new()));

        let p = pattern_u64(&g());
        assert_eq!(parent_bfs_with(&p, 0, MinFirst).1, BfsVariant::OneStep);
        assert_eq!(
            parent_bfs_with(&p, 0, PlusTimes::<u64>::new()).1,
            BfsVariant::TwoStep
        );
    }

    #[test]
    fn max_first_picks_largest_parent() {
        let mut c = Coo::new(4, 4);
        c.extend([(3, 0, 1.0), (3, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let (out, variant) = parent_bfs_with(&pattern_u64(&g), 3, MaxFirst);
        assert_eq!(variant, BfsVariant::OneStep);
        let payload_of_2 = out.iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert_eq!(payload_of_2 - 1, 1); // max of {0, 1}
    }

    #[test]
    fn two_step_discovers_cancelled_vertices() {
        // Same diamond: under a non-selective ⊕ the payload on vertex 2
        // is the ⊕-blend of both stamped parents, but reachability must
        // still come from the AnyPair pass, not the blended values.
        let mut c = Coo::new(4, 4);
        c.extend([(3, 0, 1.0), (3, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let (out, variant) = parent_bfs_with(&pattern_u64(&g), 3, PlusTimes::<u64>::new());
        assert_eq!(variant, BfsVariant::TwoStep);
        // (0+1) + (1+1) = 3 — a blended payload no single parent has.
        assert_eq!(out.iter().find(|&&(v, _)| v == 2).unwrap().1, 3);
        // All of 0, 1, 2 discovered exactly as reachability dictates.
        let vs: Vec<Ix> = out.iter().map(|&(v, _)| v).collect();
        assert_eq!(vs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fused_equals_two_step_where_conditions_hold() {
        let p = pattern_u64(&g());
        let ctx = OpCtx::new();
        assert_eq!(
            parent_bfs_fused_ctx(&ctx, &p, 0, MinFirst),
            parent_bfs_two_step_ctx(&ctx, &p, 0, MinFirst)
        );
        assert_eq!(
            parent_bfs_fused_ctx(&ctx, &p, 0, MaxFirst),
            parent_bfs_two_step_ctx(&ctx, &p, 0, MaxFirst)
        );
    }

    #[test]
    fn parent_bfs_records_kernel_metrics() {
        let ctx = OpCtx::new();
        let p = pattern_u64(&g());
        let _ = parent_bfs_with_ctx(&ctx, &p, 0, MinFirst);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::BfsParent).calls, 1);
        assert_eq!(snap.kernel(Kernel::BfsParent).nnz_out, 4);
    }
}
