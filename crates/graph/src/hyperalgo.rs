//! Algorithms directly on hypergraphs — traversal in the bipartite
//! vertex/edge incidence structure, no adjacency projection needed.
//!
//! A hyper-BFS step alternates two `vᵀE` products: vertices activate the
//! edges leaving them (`f ⊕.⊗ E_outᵀ`… transposed view), then active
//! edges deliver their full head-sets (`q ⊕.⊗ E_in`). This traverses a
//! hyperedge *once* even when it fans out to many heads, which the
//! projected adjacency cannot do — the practical payoff of Fig. 2's
//! incidence representation.

use hypersparse::{Dcsr, Ix, SparseVec};
use semiring::AnyPair;

use crate::hypergraph::Hypergraph;

/// Pattern views of a hypergraph's incidence arrays in the any-pair
/// algebra (edge × vertex).
pub struct IncidencePatterns {
    /// `E_out` pattern, transposed to vertex × edge (tail incidence).
    pub out_t: Dcsr<u8>,
    /// `E_in` pattern, edge × vertex (head incidence).
    pub in_: Dcsr<u8>,
}

/// Build the traversal patterns once per hypergraph.
pub fn incidence_patterns(h: &Hypergraph) -> IncidencePatterns {
    let to_u8 = |m: &Dcsr<f64>| {
        let mut c = hypersparse::Coo::new(m.nrows(), m.ncols());
        for (r, col, _) in m.iter() {
            c.push(r, col, 1u8);
        }
        c.build_dcsr(AnyPair)
    };
    IncidencePatterns {
        out_t: hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::transpose_ctx(ctx, &to_u8(&h.e_out()))
        }),
        in_: to_u8(&h.e_in()),
    }
}

/// Hyper-BFS levels from `src`: each level is a vertex→edge→vertex double
/// hop. Returns `(vertex, level)` sorted by vertex.
pub fn hyper_bfs(p: &IncidencePatterns, src: Ix) -> Vec<(Ix, u32)> {
    let s = AnyPair;
    let nv = p.out_t.nrows();
    let mut out = vec![(src, 0u32)];
    let mut visited = SparseVec::from_entries(nv, vec![(src, 1u8)], s);
    let mut frontier = visited.clone();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        // vertices → active out-edges → delivered head vertices
        let active_edges = frontier.vxm(&p.out_t, s);
        let delivered = active_edges.vxm(&p.in_, s).without(&visited);
        for (v, _) in delivered.iter() {
            out.push((v, level));
        }
        visited = visited.ewise_add(&delivered, s);
        frontier = delivered;
    }
    out.sort_by_key(|e| e.0);
    out
}

/// Connected components of the *undirected reading* of a hypergraph
/// (vertices sharing any hyperedge, in either role, are connected).
/// Returns `(vertex, component)` with the component labelled by its
/// smallest vertex.
pub fn hyper_components(h: &Hypergraph) -> Vec<(Ix, Ix)> {
    // Union incidence (tail ∪ head), undirected: vertex—edge bipartite
    // connectivity via repeated min-label exchange.
    let s = semiring::MinFirst;
    let inc = {
        let mut c = hypersparse::Coo::new(h.n_edges.max(1), h.n_vertices);
        for (k, v, _) in h.e_out().iter() {
            c.push(k, v, 1u64);
        }
        for (k, v, _) in h.e_in().iter() {
            c.push(k, v, 1u64);
        }
        c.build_dcsr(s)
    };
    let inc_t = hypersparse::with_default_ctx(|ctx| hypersparse::ops::transpose_ctx(ctx, &inc));

    // Vertex labels (1-shifted); iterate v→e→v min-label exchange.
    let verts: Vec<Ix> = {
        let mut v: Vec<Ix> = inc.iter().map(|(_, c, _)| c).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut labels =
        SparseVec::from_entries(h.n_vertices, verts.iter().map(|&v| (v, v + 1)).collect(), s);
    loop {
        let edge_min = labels.vxm(&inc_t, s); // per-edge min member label
        let back = edge_min.vxm(&inc, s); // delivered to every member
        let next = labels.ewise_add(&back, s);
        if next == labels {
            break;
        }
        labels = next;
    }
    labels.iter().map(|(v, &l)| (v, l - 1)).collect()
}

/// The size of each hyperedge (|tails| + |heads|) — the arity histogram
/// behind Fig. 2's hyper-edge illustration.
pub fn edge_arities(h: &Hypergraph) -> Vec<(Ix, usize)> {
    let e_out = h.e_out();
    let e_in = h.e_in();
    let mut arity: std::collections::BTreeMap<Ix, usize> = Default::default();
    for (k, cols, _) in e_out.iter_rows() {
        *arity.entry(k).or_insert(0) += cols.len();
    }
    for (k, cols, _) in e_in.iter_rows() {
        *arity.entry(k).or_insert(0) += cols.len();
    }
    arity.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;
    use crate::pattern::pattern_u8;

    /// Chain 0→1→2 plus a broadcast hyperedge {2}→{5,6,7}.
    fn h() -> Hypergraph {
        let mut h = Hypergraph::new(16);
        h.add_edge(0, 1, 1.0);
        h.add_edge(1, 2, 1.0);
        h.add_hyperedge(&[2], &[5, 6, 7], 1.0);
        h
    }

    #[test]
    fn hyper_bfs_crosses_hyperedges_in_one_hop() {
        let hg = h();
        let p = incidence_patterns(&hg);
        let lv = hyper_bfs(&p, 0);
        let get = |v: Ix| lv.iter().find(|&&(x, _)| x == v).map(|&(_, l)| l);
        assert_eq!(get(0), Some(0));
        assert_eq!(get(2), Some(2));
        // All three heads of the hyperedge arrive together at level 3.
        assert_eq!(get(5), Some(3));
        assert_eq!(get(6), Some(3));
        assert_eq!(get(7), Some(3));
    }

    #[test]
    fn hyper_bfs_agrees_with_projected_bfs_on_simple_graphs() {
        // Without hyperedges, incidence BFS ≡ adjacency BFS.
        let mut hg = Hypergraph::new(16);
        for (a, b) in [(0u64, 1u64), (1, 2), (2, 3), (0, 4), (4, 3)] {
            hg.add_edge(a, b, 1.0);
        }
        let p = incidence_patterns(&hg);
        let by_incidence = hyper_bfs(&p, 0);
        let adj = hg.adjacency(semiring::PlusTimes::<f64>::new());
        let by_adjacency = bfs_levels(&pattern_u8(&adj), 0);
        assert_eq!(by_incidence, by_adjacency);
    }

    #[test]
    fn components_bridge_through_hyperedges() {
        let mut hg = Hypergraph::new(16);
        hg.add_edge(0, 1, 1.0);
        hg.add_edge(3, 4, 1.0);
        // One hyperedge touching both groups merges them.
        hg.add_hyperedge(&[1, 3], &[9], 1.0);
        let comps = hyper_components(&hg);
        let get = |v: Ix| comps.iter().find(|&&(x, _)| x == v).map(|&(_, c)| c);
        assert_eq!(get(0), Some(0));
        assert_eq!(get(4), Some(0));
        assert_eq!(get(9), Some(0));
    }

    #[test]
    fn disconnected_pieces_stay_apart() {
        let mut hg = Hypergraph::new(16);
        hg.add_edge(0, 1, 1.0);
        hg.add_edge(5, 6, 1.0);
        let comps = hyper_components(&hg);
        let get = |v: Ix| comps.iter().find(|&&(x, _)| x == v).map(|&(_, c)| c);
        assert_eq!(get(1), Some(0));
        assert_eq!(get(6), Some(5));
    }

    #[test]
    fn arities_count_both_roles() {
        let hg = h();
        let ar = edge_arities(&hg);
        assert_eq!(ar, vec![(0, 2), (1, 2), (2, 4)]); // 1 tail + 3 heads
    }
}
