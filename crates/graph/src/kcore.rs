//! k-core decomposition by algebraic peeling.
//!
//! The k-core is the maximal subgraph where every vertex has degree ≥ k.
//! Each peel round is one row reduction (degrees) plus one `select`
//! (drop under-degree vertices' edges) — pure array operations. A
//! bucket-peeling baseline cross-checks the core numbers.

use std::collections::HashMap;

use hypersparse::{Dcsr, Ix};
use semiring::{PlusMonoid, PlusTimes};

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// The k-core of a symmetric 1.0-pattern: iteratively delete vertices of
/// degree < k until stable. Returns the surviving symmetric pattern.
pub fn kcore(sym_pat: &Dcsr<f64>, k: usize) -> Dcsr<f64> {
    // Degrees are entry counts: normalize values to 1.0 first.
    hypersparse::with_default_ctx(|ctx| {
        let mut g = hypersparse::ops::apply_ctx(ctx, sym_pat, semiring::ZeroNorm(s()), s());
        loop {
            let deg = hypersparse::ops::reduce_rows_ctx(ctx, &g, PlusMonoid::<f64>::default());
            let survivors: std::collections::HashSet<Ix> = deg
                .iter()
                .filter(|(_, d)| **d >= k as f64)
                .map(|(v, _)| v)
                .collect();
            let next = hypersparse::ops::select_ctx(ctx, &g, |r, c, _| {
                survivors.contains(&r) && survivors.contains(&c)
            });
            if next == g {
                return g;
            }
            g = next;
        }
    })
}

/// Core number of every vertex with at least one edge: the largest k
/// such that the vertex survives in the k-core.
pub fn core_numbers(sym_pat: &Dcsr<f64>) -> HashMap<Ix, usize> {
    let mut out: HashMap<Ix, usize> = HashMap::new();
    let mut g = sym_pat.clone();
    let mut k = 1usize;
    while g.nnz() > 0 {
        g = kcore(&g, k);
        for &v in g.row_ids() {
            out.insert(v, k);
        }
        k += 1;
    }
    out
}

/// Bucket-peeling baseline (classical O(E) algorithm) for core numbers.
pub fn core_numbers_baseline(sym_pat: &Dcsr<f64>) -> HashMap<Ix, usize> {
    let n = usize::try_from(sym_pat.nrows()).expect("baseline needs compact ids");
    let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, c, _) in sym_pat.iter() {
        nbrs[r as usize].push(c as usize);
    }
    let mut deg: Vec<usize> = nbrs.iter().map(|l| l.len()).collect();
    let has_edge: Vec<bool> = deg.iter().map(|&d| d > 0).collect();

    // Peel in non-decreasing degree order.
    let mut order: Vec<usize> = (0..n).filter(|&v| has_edge[v]).collect();
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut current_core = 0usize;
    while !order.is_empty() {
        // Find the minimum-degree remaining vertex (simple O(V²) peel —
        // fine as a baseline oracle).
        let (idx, &v) = order
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| deg[v])
            .expect("nonempty");
        current_core = current_core.max(deg[v]);
        core[v] = current_core;
        removed[v] = true;
        order.swap_remove(idx);
        for &w in &nbrs[v] {
            if !removed[w] {
                deg[w] -= 1;
            }
        }
    }
    (0..n)
        .filter(|&v| has_edge[v])
        .map(|v| (v as Ix, core[v]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use crate::triangles::vertices;
    use hypersparse::gen::random_pattern;
    use hypersparse::Coo;

    fn sym(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1.0);
        }
        symmetrize(&c.build_dcsr(s()), s())
    }

    #[test]
    fn clique_plus_tail() {
        // K4 (0–3) with a tail 3–4–5.
        let g = sym(
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
            8,
        );
        let c3 = kcore(&g, 3);
        assert_eq!(vertices(&c3), vec![0, 1, 2, 3]); // only the clique
        let c1 = kcore(&g, 1);
        assert_eq!(c1, g); // everything has degree ≥ 1
        assert_eq!(kcore(&g, 4).nnz(), 0); // nothing is 4-core
    }

    #[test]
    fn core_numbers_match_baseline() {
        for seed in 0..5 {
            let g = symmetrize(&random_pattern(32, 32, 120, seed, s()), s());
            let ours = core_numbers(&g);
            let base = core_numbers_baseline(&g);
            assert_eq!(ours, base, "seed {seed}");
        }
    }

    #[test]
    fn cycle_is_its_own_2core() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(kcore(&g, 2), g);
        let cn = core_numbers(&g);
        assert!(cn.values().all(|&k| k == 2));
    }

    #[test]
    fn empty_graph_has_no_cores() {
        let g = Dcsr::<f64>::empty(4, 4);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(kcore(&g, 1).nnz(), 0);
    }
}
