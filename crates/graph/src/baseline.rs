//! Pointer-chasing baselines — the *graph* side of Fig. 1's duality.
//!
//! Classical data-structure implementations of the same algorithms the
//! semiring kernels compute: queue BFS, binary-heap Dijkstra, union-find
//! components, wedge-check triangle counting. Used to (a) cross-validate
//! every linear-algebraic result and (b) time the two sides of the
//! duality against each other in the Fig. 1 bench. Vertex ids must be
//! compact (adjacency lists materialize all `n` slots).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hypersparse::{Dcsr, Ix};
use semiring::traits::Value;

/// Compact adjacency lists with optional weights.
#[derive(Clone, Debug)]
pub struct AdjList {
    /// Vertex count.
    pub n: usize,
    /// `nbrs[v]` = sorted `(neighbor, weight)` pairs.
    pub nbrs: Vec<Vec<(u32, f64)>>,
}

impl AdjList {
    /// Materialize adjacency lists from a sparse matrix (any value type;
    /// weights come from a second weighted view when needed).
    pub fn from_pattern<T: Value>(m: &Dcsr<T>) -> Self {
        Self::build(m, |_| 1.0)
    }

    /// Materialize with the matrix's `f64` values as weights.
    pub fn from_weighted(m: &Dcsr<f64>) -> Self {
        Self::build(m, |w| *w)
    }

    fn build<T: Value>(m: &Dcsr<T>, weight: impl Fn(&T) -> f64) -> Self {
        let n = usize::try_from(m.nrows()).expect("baseline needs compact ids");
        let mut nbrs = vec![Vec::new(); n];
        for (r, c, v) in m.iter() {
            nbrs[r as usize].push((c as u32, weight(v)));
        }
        AdjList { n, nbrs }
    }
}

/// Queue-based BFS levels; `u32::MAX` marks unreachable vertices.
pub fn bfs_queue(g: &AdjList, src: Ix) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.n];
    level[src as usize] = 0;
    let mut q = VecDeque::from([src as usize]);
    while let Some(v) = q.pop_front() {
        let next = level[v] + 1;
        for &(w, _) in &g.nbrs[v] {
            if level[w as usize] == u32::MAX {
                level[w as usize] = next;
                q.push_back(w as usize);
            }
        }
    }
    level
}

/// Binary-heap Dijkstra; `f64::INFINITY` marks unreachable vertices.
/// Weights must be non-negative.
pub fn dijkstra(g: &AdjList, src: Ix) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.n];
    dist[src as usize] = 0.0;
    // Reverse ordering on (bits of dist, vertex) = min-heap on distance.
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src as usize)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits);
        if d > dist[v] {
            continue;
        }
        for &(w, wt) in &g.nbrs[v] {
            let nd = d + wt;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd.to_bits(), w as usize)));
            }
        }
    }
    dist
}

/// Union-find connected components on an undirected edge list; returns
/// each vertex's component representative (smallest id in component).
pub fn cc_union_find(n: usize, edges: &[(Ix, Ix)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
        // Union by min id keeps representatives canonical.
        if ra < rb {
            parent[rb] = ra;
        } else {
            parent[ra] = rb;
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

/// Wedge-check triangle counting: for each edge `(u, v)` with `u < v`,
/// intersect sorted neighbor lists above `v`.
pub fn triangles_wedge(g: &AdjList) -> u64 {
    // Build sorted higher-neighbor lists.
    let mut up: Vec<Vec<u32>> = vec![Vec::new(); g.n];
    for (v, nbrs) in g.nbrs.iter().enumerate() {
        for &(w, _) in nbrs {
            if (w as usize) > v {
                up[v].push(w);
            }
        }
    }
    for l in &mut up {
        l.sort_unstable();
        l.dedup();
    }
    let mut count = 0u64;
    for v in 0..g.n {
        for &w in &up[v] {
            // |up(v) ∩ up(w)| — sorted merge.
            let (a, b) = (&up[v], &up[w as usize]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;
    use crate::cc::connected_components;
    use crate::pattern::{pattern_u64, pattern_u8, symmetrize};
    use crate::sssp::sssp;
    use crate::triangles::triangle_count;
    use hypersparse::gen::{rmat_dcsr, RmatParams};
    use semiring::PlusTimes;

    fn rmat(scale: u32, seed: u64) -> Dcsr<f64> {
        rmat_dcsr(
            RmatParams {
                scale,
                edge_factor: 6,
                ..Default::default()
            },
            seed,
            PlusTimes::<f64>::new(),
        )
    }

    #[test]
    fn bfs_duality_semiring_equals_queue() {
        let g = rmat(8, 11);
        let adj = AdjList::from_pattern(&g);
        let lv_queue = bfs_queue(&adj, 0);
        let lv_semiring = bfs_levels(&pattern_u8(&g), 0);
        // Same set of reached vertices with the same levels.
        let mut from_queue: Vec<(Ix, u32)> = lv_queue
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l != u32::MAX)
            .map(|(v, &l)| (v as Ix, l))
            .collect();
        from_queue.sort_by_key(|e| e.0);
        assert_eq!(lv_semiring, from_queue);
    }

    #[test]
    fn sssp_duality_bellman_ford_equals_dijkstra() {
        let g = rmat(8, 12);
        let adj = AdjList::from_weighted(&g);
        let d_heap = dijkstra(&adj, 0);
        let d_semiring = sssp(&g, 0);
        for (v, d) in d_semiring {
            assert!((d - d_heap[v as usize]).abs() < 1e-9, "vertex {v}");
        }
        // Unreached agree too.
        let reached: std::collections::HashSet<Ix> =
            sssp(&g, 0).into_iter().map(|(v, _)| v).collect();
        for (v, &d) in d_heap.iter().enumerate() {
            assert_eq!(d.is_finite(), reached.contains(&(v as Ix)), "vertex {v}");
        }
    }

    #[test]
    fn cc_duality_label_prop_equals_union_find() {
        let g = symmetrize(&rmat(8, 13), PlusTimes::<f64>::new());
        let labels = connected_components(&pattern_u64(&g));
        let edges: Vec<(Ix, Ix)> = g.iter().map(|(r, c, _)| (r, c)).collect();
        let uf = cc_union_find(g.nrows() as usize, &edges);
        for (v, comp) in labels {
            assert_eq!(comp as usize, uf[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn triangle_duality_spgemm_equals_wedge() {
        let g = symmetrize(&rmat(7, 14), PlusTimes::<f64>::new());
        let by_matrix = triangle_count(&g);
        let by_wedge = triangles_wedge(&AdjList::from_pattern(&g));
        assert_eq!(by_matrix, by_wedge);
        assert!(by_matrix > 0, "rmat scale-7 should contain triangles");
    }

    #[test]
    fn dijkstra_simple() {
        let mut c = hypersparse::Coo::new(3, 3);
        c.extend([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let g = c.build_dcsr(PlusTimes::<f64>::new());
        let d = dijkstra(&AdjList::from_weighted(&g), 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
    }
}
