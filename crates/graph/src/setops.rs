//! Graph union and intersection — Fig. 5.
//!
//! Element-wise ⊕ of adjacency arrays *is* graph union; element-wise ⊗
//! *is* graph intersection. The hash-set baselines here compute the same
//! results on explicit edge sets for cross-validation and for the Fig. 5
//! benchmark comparison.

use std::collections::HashMap;

use hypersparse::{Dcsr, Ix};
use semiring::traits::Semiring;

/// Graph union via `A ⊕ B` (weights on shared edges combine with ⊕).
pub fn graph_union<S: Semiring<Value = f64>>(a: &Dcsr<f64>, b: &Dcsr<f64>, s: S) -> Dcsr<f64> {
    hypersparse::with_default_ctx(|ctx| hypersparse::ops::ewise_add_ctx(ctx, a, b, s))
}

/// Graph intersection via `A ⊗ B` (only shared edges survive, weights
/// combine with ⊗).
pub fn graph_intersection<S: Semiring<Value = f64>>(
    a: &Dcsr<f64>,
    b: &Dcsr<f64>,
    s: S,
) -> Dcsr<f64> {
    hypersparse::with_default_ctx(|ctx| hypersparse::ops::ewise_mul_ctx(ctx, a, b, s))
}

/// Hash-map union baseline on explicit edge sets.
pub fn union_baseline<S: Semiring<Value = f64>>(
    a: &[(Ix, Ix, f64)],
    b: &[(Ix, Ix, f64)],
    s: S,
) -> Vec<(Ix, Ix, f64)> {
    let mut map: HashMap<(Ix, Ix), f64> = a.iter().map(|&(i, j, w)| ((i, j), w)).collect();
    for &(i, j, w) in b {
        map.entry((i, j))
            .and_modify(|x| *x = s.add(*x, w))
            .or_insert(w);
    }
    let mut out: Vec<(Ix, Ix, f64)> = map
        .into_iter()
        .filter(|(_, w)| !s.is_zero(w))
        .map(|((i, j), w)| (i, j, w))
        .collect();
    out.sort_by_key(|&(i, j, _)| (i, j));
    out
}

/// Hash-map intersection baseline on explicit edge sets.
pub fn intersection_baseline<S: Semiring<Value = f64>>(
    a: &[(Ix, Ix, f64)],
    b: &[(Ix, Ix, f64)],
    s: S,
) -> Vec<(Ix, Ix, f64)> {
    let map: HashMap<(Ix, Ix), f64> = a.iter().map(|&(i, j, w)| ((i, j), w)).collect();
    let mut out: Vec<(Ix, Ix, f64)> = b
        .iter()
        .filter_map(|&(i, j, w)| {
            map.get(&(i, j)).and_then(|&wa| {
                let v = s.mul(wa, w);
                (!s.is_zero(&v)).then_some((i, j, v))
            })
        })
        .collect();
    out.sort_by_key(|&(i, j, _)| (i, j));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::gen::random_dcsr;
    use semiring::{MaxPlus, PlusTimes};

    #[test]
    fn union_is_ewise_add() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 200, 21, s);
        let b = random_dcsr(64, 64, 200, 22, s);
        let u = graph_union(&a, &b, s);
        let want = union_baseline(&a.to_triplets(), &b.to_triplets(), s);
        let got: Vec<_> = u.iter().map(|(i, j, &w)| (i, j, w)).collect();
        assert_eq!(got, want);
        assert!(u.nnz() >= a.nnz().max(b.nnz()));
    }

    #[test]
    fn intersection_is_ewise_mul() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 400, 23, s);
        let b = random_dcsr(32, 32, 400, 24, s);
        let i = graph_intersection(&a, &b, s);
        let want = intersection_baseline(&a.to_triplets(), &b.to_triplets(), s);
        let got: Vec<_> = i.iter().map(|(r, c, &w)| (r, c, w)).collect();
        assert_eq!(got, want);
        assert!(i.nnz() <= a.nnz().min(b.nnz()));
    }

    #[test]
    fn union_intersection_containment() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 300, 25, s);
        let b = random_dcsr(32, 32, 300, 26, s);
        let u = graph_union(&a, &b, s);
        let i = graph_intersection(&a, &b, s);
        // Every intersection edge is a union edge.
        for (r, c, _) in i.iter() {
            assert!(u.get(r, c).is_some());
        }
    }

    #[test]
    fn topology_is_semiring_independent() {
        // Fig. 5's point: the *pattern* of union/intersection is the same
        // under any semiring; only values differ.
        let s1 = PlusTimes::<f64>::new();
        let s2 = MaxPlus::<f64>::new();
        let a = random_dcsr(32, 32, 200, 27, s1);
        let b = random_dcsr(32, 32, 200, 28, s1);
        let pat = |m: &Dcsr<f64>| -> Vec<(Ix, Ix)> { m.iter().map(|(r, c, _)| (r, c)).collect() };
        assert_eq!(pat(&graph_union(&a, &b, s1)), pat(&graph_union(&a, &b, s2)));
        assert_eq!(
            pat(&graph_intersection(&a, &b, s1)),
            pat(&graph_intersection(&a, &b, s2))
        );
    }
}
