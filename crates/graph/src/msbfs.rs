//! Multi-source BFS — the frontier as a *matrix*.
//!
//! Fig. 1's duality scales up: BFS from `k` sources at once is one
//! `F ⊕.⊗ A` per level, where `F` is a `sources × vertices` frontier
//! *matrix*. One SpGEMM advances every search simultaneously — the
//! formulation GraphBLAS uses for batched betweenness and all-pairs
//! problems, and the reason "BFS is array multiplication" matters for
//! throughput, not just elegance.

use hypersparse::{Coo, Dcsr, Ix};
use semiring::AnyPair;

/// Levels from each source: returns a `sources × vertices` matrix whose
/// entry `(s, v)` is `level + 1` (shifted so level 0 is storable over the
/// any-pair pattern algebra; subtract 1 to read true levels).
pub fn msbfs_levels(pat: &Dcsr<u8>, sources: &[Ix]) -> Dcsr<u64> {
    let s = AnyPair;
    let n = pat.nrows();
    let k = sources.len() as Ix;

    // Frontier and visited start as source indicators.
    let mut frontier = {
        let mut c = Coo::new(k, n);
        for (i, &src) in sources.iter().enumerate() {
            c.push(i as Ix, src, 1u8);
        }
        c.build_dcsr(s)
    };
    let mut visited = frontier.clone();
    let mut levels: Vec<(Ix, Ix, u64)> = sources
        .iter()
        .enumerate()
        .map(|(i, &src)| (i as Ix, src, 1u64))
        .collect();

    let mut level = 1u64;
    hypersparse::with_default_ctx(|ctx| {
        while frontier.nnz() > 0 {
            // One complement-masked SpGEMM advances every source's frontier
            // at once, skipping per-source visited vertices inside the
            // accumulator loop instead of select-filtering afterwards.
            let next = hypersparse::ops::mxm_masked_ctx(ctx, &frontier, pat, &visited, true, s);
            for (r, c, _) in next.iter() {
                levels.push((r, c, level + 1));
            }
            visited = hypersparse::ops::ewise_add_ctx(ctx, &visited, &next, s);
            frontier = next;
            level += 1;
        }
    });

    let mut c = Coo::new(k, n);
    c.extend(levels);
    c.build_dcsr(semiring::MinFirst) // u64 values; no duplicates exist
}

/// Read the true level of `(source index, vertex)` from an
/// [`msbfs_levels`] result (`None` = unreachable).
pub fn level_of(levels: &Dcsr<u64>, source_idx: Ix, v: Ix) -> Option<u64> {
    levels.get(source_idx, v).map(|l| l - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;
    use crate::pattern::pattern_u8;
    use hypersparse::gen::{rmat_dcsr, RmatParams};
    use semiring::PlusTimes;

    fn g() -> Dcsr<f64> {
        let mut c = Coo::new(8, 8);
        c.extend([
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (4, 5, 1.0),
            (5, 0, 1.0),
        ]);
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn matches_single_source_bfs_per_row() {
        let pat = pattern_u8(&g());
        let sources = [0u64, 4, 7];
        let ms = msbfs_levels(&pat, &sources);
        for (i, &src) in sources.iter().enumerate() {
            let single = bfs_levels(&pat, src);
            for (v, l) in single {
                assert_eq!(
                    level_of(&ms, i as Ix, v),
                    Some(l as u64),
                    "source {src}, vertex {v}"
                );
            }
            // And nothing extra:
            let reached = ms.row(i as Ix).0.len();
            assert_eq!(reached, bfs_levels(&pat, src).len());
        }
    }

    #[test]
    fn batched_equals_sequential_on_rmat() {
        let g = rmat_dcsr(
            RmatParams {
                scale: 9,
                edge_factor: 6,
                ..Default::default()
            },
            4,
            PlusTimes::<f64>::new(),
        );
        let pat = pattern_u8(&g);
        let sources: Vec<Ix> = (0..16).collect();
        let ms = msbfs_levels(&pat, &sources);
        for (i, &src) in sources.iter().enumerate() {
            let single: Vec<(Ix, u64)> = bfs_levels(&pat, src)
                .into_iter()
                .map(|(v, l)| (v, l as u64))
                .collect();
            let batched: Vec<(Ix, u64)> = {
                let (cols, vals) = ms.row(i as Ix);
                cols.iter().zip(vals).map(|(&v, &l)| (v, l - 1)).collect()
            };
            assert_eq!(single, batched, "source {src}");
        }
    }

    #[test]
    fn sources_start_at_level_zero() {
        let pat = pattern_u8(&g());
        let ms = msbfs_levels(&pat, &[3]);
        assert_eq!(level_of(&ms, 0, 3), Some(0));
        assert_eq!(level_of(&ms, 0, 0), None); // 3 reaches nothing
    }
}
