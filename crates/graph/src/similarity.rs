//! Jaccard edge similarity via masked SpGEMM.
//!
//! `J(i, j) = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|` for each edge of an
//! undirected graph. Common-neighbor counts are exactly the triangle
//! kernel's masked product `(A ⊕.⊗ A) ⊙ L`; degrees come from one row
//! reduction — three array operations total.

use hypersparse::{Dcsr, Ix};
use semiring::{PlusMonoid, PlusTimes, ZeroNorm};

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// Jaccard similarity for every lower-triangle edge of a symmetric
/// pattern. Returns a strictly-lower-triangular matrix with `J(i, j)`
/// values (an edge with no common neighbors gets no entry — its J is 0).
pub fn jaccard(sym_pat: &Dcsr<f64>) -> Dcsr<f64> {
    let (common, deg) = hypersparse::with_default_ctx(|ctx| {
        let sym = hypersparse::ops::apply_ctx(ctx, sym_pat, ZeroNorm(s()), s());
        let l = hypersparse::ops::select_ctx(ctx, &sym, |r, c, _| c < r);
        // common(i, j) = |N(i) ∩ N(j)| on existing edges.
        let common = hypersparse::ops::mxm_masked_ctx(ctx, &sym, &sym, &l, false, s());
        let deg = hypersparse::ops::reduce_rows_ctx(ctx, &sym, PlusMonoid::<f64>::default());
        (common, deg)
    });
    let d = |v: Ix| deg.get(&v).copied().unwrap_or(0.0);
    // J = common / (deg_i + deg_j − common), entry-wise on the mask.
    let mut trips = Vec::with_capacity(common.nnz());
    for (i, j, &c) in common.iter() {
        let union = d(i) + d(j) - c;
        if union > 0.0 {
            trips.push((i, j, c / union));
        }
    }
    let mut coo = hypersparse::Coo::new(sym_pat.nrows(), sym_pat.ncols());
    coo.extend(trips);
    coo.build_dcsr(s())
}

/// Direct set-based baseline.
pub fn jaccard_baseline(sym_pat: &Dcsr<f64>) -> Vec<(Ix, Ix, f64)> {
    use std::collections::HashSet;
    let mut nbrs: std::collections::HashMap<Ix, HashSet<Ix>> = Default::default();
    for (r, c, _) in sym_pat.iter() {
        nbrs.entry(r).or_default().insert(c);
    }
    let mut out = Vec::new();
    for (r, c, _) in sym_pat.iter() {
        if c >= r {
            continue;
        }
        let (a, b) = (&nbrs[&r], &nbrs[&c]);
        let inter = a.intersection(b).count() as f64;
        if inter == 0.0 {
            continue;
        }
        let union = (a.len() + b.len()) as f64 - inter;
        out.push((r, c, inter / union));
    }
    out.sort_by_key(|&(i, j, _)| (i, j));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use hypersparse::gen::random_pattern;
    use hypersparse::Coo;

    fn sym(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1.0);
        }
        symmetrize(&c.build_dcsr(s()), s())
    }

    #[test]
    fn triangle_edges_have_known_similarity() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        let j = jaccard(&g);
        // In K3: each pair shares 1 neighbor; degrees are 2;
        // J = 1 / (2 + 2 − 1) = 1/3.
        for (_, _, &v) in j.iter() {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(j.nnz(), 3);
    }

    #[test]
    fn disjoint_edge_has_no_entry() {
        let g = sym(&[(0, 1), (2, 3)], 4);
        assert_eq!(jaccard(&g).nnz(), 0);
    }

    #[test]
    fn matches_baseline_on_random_graphs() {
        for seed in 0..5 {
            let g = symmetrize(&random_pattern(40, 40, 200, seed, s()), s());
            let ours: Vec<(Ix, Ix, f64)> = jaccard(&g).iter().map(|(i, j, &v)| (i, j, v)).collect();
            let base = jaccard_baseline(&g);
            assert_eq!(ours.len(), base.len(), "seed {seed}");
            for ((oi, oj, ov), (bi, bj, bv)) in ours.iter().zip(&base) {
                assert_eq!((oi, oj), (bi, bj));
                assert!((ov - bv).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn values_in_unit_interval() {
        let g = symmetrize(&random_pattern(32, 32, 180, 9, s()), s());
        for (_, _, &v) in jaccard(&g).iter() {
            assert!(v > 0.0 && v <= 1.0);
        }
    }
}
