//! Graph algorithms in the language of linear algebra.
//!
//! Fig. 1 of the paper illustrates the *graph–adjacency-array duality*:
//! breadth-first search — the fundamental operation of graphs — **is**
//! array multiplication — the fundamental operation of arrays. This crate
//! realizes both sides of the duality:
//!
//! * Semiring formulations over [`hypersparse`] matrices:
//!   [`bfs`] (any-pair / min-first), [`sssp`] (min-plus Bellman–Ford),
//!   [`cc`] (min-label propagation), [`triangles`] (masked SpGEMM),
//!   [`pagerank`] (plus-times power iteration), [`centrality`]
//!   (Brandes betweenness as per-level vxm/mxv), [`kcore`] (algebraic
//!   peeling), [`mis`] (Luby over max.×), [`similarity`] (Jaccard via
//!   masked SpGEMM), [`closure`] (∨.∧ transitive closure, topological
//!   levels), [`incremental`] (delta-fold degree and triangle state for
//!   the pipeline's standing queries);
//! * Classical pointer-chasing [`baseline`]s (queue BFS, binary-heap
//!   Dijkstra, union-find components, wedge-check triangles) — the other
//!   side of the duality, used to validate results and to benchmark the
//!   Fig. 1 comparison;
//! * [`hypergraph`] — incidence (edge) arrays `E_out`/`E_in` with hyper-
//!   and multi-edges (Fig. 2) and the projection
//!   `A = E_outᵀ ⊕.⊗ E_in` (Fig. 3);
//! * [`setops`] — graph union/intersection as element-wise ⊕/⊗ (Fig. 5),
//!   next to hash-set baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bfs;
pub mod cc;
pub mod centrality;
pub mod closure;
pub mod coloring;
pub mod community;
pub mod frontier;
pub mod hyperalgo;
pub mod hypergraph;
pub mod incremental;
pub mod kcore;
pub mod mis;
pub mod msbfs;
pub mod netsec;
pub mod pagerank;
pub mod pattern;
pub mod setops;
pub mod similarity;
pub mod sssp;
pub mod triangles;

pub use hypergraph::Hypergraph;
pub use incremental::{DegreeState, TriangleState};
pub use pattern::{pattern_f64, pattern_u64, pattern_u8, symmetrize};
