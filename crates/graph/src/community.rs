//! Community detection: synchronous label propagation + modularity.
//!
//! Each round, every vertex adopts the most frequent label among its
//! neighbors — one `vᵀA`-shaped sweep per round, here computed per-vertex
//! over the pattern's rows (the frequency vote has no semiring
//! formulation, but the data access is still the array's). Ties break
//! toward the smaller label and a vertex keeps its label on a tie with
//! it, so the process is deterministic and tends to a fixpoint;
//! `max_rounds` bounds oscillation. [`modularity`] scores any labelling
//! against the configuration model.

use std::collections::HashMap;

use hypersparse::{Dcsr, Ix};

/// Synchronous label-propagation communities on a symmetric pattern.
/// Returns `(vertex, community label)` sorted by vertex; labels are the
/// smallest vertex id that propagated them.
pub fn label_propagation(sym_pat: &Dcsr<f64>, max_rounds: usize) -> Vec<(Ix, Ix)> {
    let mut label: HashMap<Ix, Ix> = sym_pat.row_ids().iter().map(|&v| (v, v)).collect();
    for _ in 0..max_rounds {
        let mut next = label.clone();
        let mut changed = false;
        for (v, nbrs, _) in sym_pat.iter_rows() {
            // Frequency vote among neighbor labels.
            let mut counts: HashMap<Ix, usize> = HashMap::new();
            for u in nbrs {
                if let Some(&l) = label.get(u) {
                    *counts.entry(l).or_insert(0) += 1;
                }
            }
            let Some((&best, &best_n)) = counts
                .iter()
                .min_by_key(|&(&l, &n)| (std::cmp::Reverse(n), l))
            else {
                continue;
            };
            let current = label[&v];
            let current_n = counts.get(&current).copied().unwrap_or(0);
            if best_n > current_n && best != current {
                next.insert(v, best);
                changed = true;
            }
        }
        label = next;
        if !changed {
            break;
        }
    }
    let mut out: Vec<(Ix, Ix)> = label.into_iter().collect();
    out.sort_by_key(|e| e.0);
    out
}

/// Newman modularity `Q = Σ_c (e_c/m − (d_c/2m)²)` of a labelling over a
/// symmetric pattern (each undirected edge stored twice).
pub fn modularity(sym_pat: &Dcsr<f64>, labels: &[(Ix, Ix)]) -> f64 {
    let lab: HashMap<Ix, Ix> = labels.iter().copied().collect();
    let two_m = sym_pat.nnz() as f64; // both directions stored
    if two_m == 0.0 {
        return 0.0;
    }
    let mut intra: HashMap<Ix, f64> = HashMap::new(); // 2·e_c
    let mut deg: HashMap<Ix, f64> = HashMap::new(); // d_c
    for (r, c, _) in sym_pat.iter() {
        let (Some(&lr), Some(&lc)) = (lab.get(&r), lab.get(&c)) else {
            continue;
        };
        *deg.entry(lr).or_insert(0.0) += 1.0;
        if lr == lc {
            *intra.entry(lr).or_insert(0.0) += 1.0;
        }
    }
    deg.keys()
        .map(|cidx| {
            let e = intra.get(cidx).copied().unwrap_or(0.0) / two_m;
            let d = deg[cidx] / two_m;
            e - d * d
        })
        .sum()
}

/// Number of distinct communities in a labelling.
pub fn community_count(labels: &[(Ix, Ix)]) -> usize {
    let mut ids: Vec<Ix> = labels.iter().map(|&(_, c)| c).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    /// Two K4 cliques joined by one bridge edge.
    fn two_cliques() -> Dcsr<f64> {
        let mut c = Coo::new(8, 8);
        for block in [0u64, 4] {
            for i in 0..4u64 {
                for j in 0..4u64 {
                    if i != j {
                        c.push(block + i, block + j, 1.0);
                    }
                }
            }
        }
        c.push(3, 4, 1.0);
        symmetrize(&c.build_dcsr(s()), s())
    }

    #[test]
    fn cliques_become_communities() {
        let g = two_cliques();
        let labels = label_propagation(&g, 20);
        assert_eq!(community_count(&labels), 2);
        // Every vertex in a block shares its block's label.
        let l0 = labels[0].1;
        for &(v, l) in &labels {
            if v < 4 {
                assert_eq!(l, l0, "vertex {v}");
            } else {
                assert_ne!(l, l0, "vertex {v}");
            }
        }
    }

    #[test]
    fn modularity_prefers_the_true_partition() {
        let g = two_cliques();
        let good = label_propagation(&g, 20);
        let q_good = modularity(&g, &good);
        // All-one-community labelling:
        let lumped: Vec<(Ix, Ix)> = g.row_ids().iter().map(|&v| (v, 0)).collect();
        let q_lumped = modularity(&g, &lumped);
        // Each-vertex-alone labelling:
        let split: Vec<(Ix, Ix)> = g.row_ids().iter().map(|&v| (v, v)).collect();
        let q_split = modularity(&g, &split);
        assert!(q_good > q_lumped, "{q_good} vs lumped {q_lumped}");
        assert!(q_good > q_split, "{q_good} vs split {q_split}");
        assert!(q_good > 0.3);
    }

    #[test]
    fn all_one_community_has_zero_modularity() {
        let g = two_cliques();
        let lumped: Vec<(Ix, Ix)> = g.row_ids().iter().map(|&v| (v, 0)).collect();
        assert!(modularity(&g, &lumped).abs() < 1e-12);
    }

    #[test]
    fn deterministic_and_stable() {
        let g = two_cliques();
        assert_eq!(label_propagation(&g, 20), label_propagation(&g, 20));
        // Running longer never changes a converged labelling.
        assert_eq!(label_propagation(&g, 20), label_propagation(&g, 200));
    }

    #[test]
    fn empty_graph() {
        let g = Dcsr::<f64>::empty(4, 4);
        assert!(label_propagation(&g, 5).is_empty());
        assert_eq!(modularity(&g, &[]), 0.0);
    }
}
