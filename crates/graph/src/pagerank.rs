//! PageRank as plus-times power iteration.
//!
//! The rank update `r ← (1−d)/n + d · (rᵀ P + dangling/n)` is a `vᵀA`
//! over the ordinary arithmetic semiring with a rank-one correction — a
//! purely linear-algebraic loop over the hypersparse engine. Vertex ids
//! must be compact (`n` is materialized as the rank vector's length).

use std::time::Instant;

use hypersparse::ops::mxv::vxm_dense_pull_ctx;
use hypersparse::ops::{apply_ctx, transpose_ctx};
use hypersparse::{with_default_ctx, Dcsr, Ix, Kernel, OpCtx};
use semiring::{PlusTimes, ZeroNorm};

/// PageRank options.
#[derive(Copy, Clone, Debug)]
pub struct PageRankOpts {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for PageRankOpts {
    fn default() -> Self {
        PageRankOpts {
            damping: 0.85,
            tol: 1e-9,
            max_iter: 100,
        }
    }
}

/// PageRank over a (possibly weighted — weights are ignored) digraph
/// pattern with compact vertex ids `0..n`. Returns the rank vector.
pub fn pagerank(pat: &Dcsr<f64>, opts: PageRankOpts) -> Vec<f64> {
    with_default_ctx(|ctx| pagerank_ctx(ctx, pat, opts))
}

/// [`pagerank`] through an explicit execution context.
pub fn pagerank_ctx(ctx: &OpCtx, pat: &Dcsr<f64>, opts: PageRankOpts) -> Vec<f64> {
    let n = usize::try_from(pat.nrows()).expect("pagerank needs compact vertex ids");
    if n == 0 {
        assert_eq!(pat.nrows(), pat.ncols(), "adjacency must be square");
        return Vec::new();
    }
    let seed = vec![1.0 / n as f64; n];
    power_iterate(ctx, pat, seed, opts).0
}

/// PageRank refresh seeded from a prior rank vector.
///
/// Power iteration converges from any probability-vector seed; after a
/// small batch of new edges the stationary distribution moves little, so
/// seeding from the previous epoch's ranks reaches `opts.tol` in a
/// fraction of the iterations a cold uniform start needs. The prior is
/// padded/truncated to the current vertex count and re-normalized (a
/// uniform seed is substituted if nothing positive survives), so the
/// result is a genuine PageRank vector of the *current* pattern — the
/// seed only buys speed, never changes the fixed point beyond `tol`.
/// Cost lands in the [`Kernel::PageRankRefresh`] metrics row.
pub fn pagerank_refresh(pat: &Dcsr<f64>, prior: &[f64], opts: PageRankOpts) -> Vec<f64> {
    with_default_ctx(|ctx| pagerank_refresh_ctx(ctx, pat, prior, opts))
}

/// [`pagerank_refresh`] through an explicit execution context.
pub fn pagerank_refresh_ctx(
    ctx: &OpCtx,
    pat: &Dcsr<f64>,
    prior: &[f64],
    opts: PageRankOpts,
) -> Vec<f64> {
    let t = Instant::now();
    let n = usize::try_from(pat.nrows()).expect("pagerank needs compact vertex ids");
    if n == 0 {
        assert_eq!(pat.nrows(), pat.ncols(), "adjacency must be square");
        return Vec::new();
    }
    let mut seed = vec![0.0f64; n];
    for (dst, src) in seed.iter_mut().zip(prior) {
        *dst = src.max(0.0);
    }
    let l1: f64 = seed.iter().sum();
    if l1 > 0.0 {
        seed.iter_mut().for_each(|x| *x /= l1);
    } else {
        seed.fill(1.0 / n as f64);
    }
    let (rank, iters) = power_iterate(ctx, pat, seed, opts);
    ctx.metrics().record(
        Kernel::PageRankRefresh,
        t.elapsed(),
        pat.nnz() as u64,
        n as u64,
        iters as u64 * pat.nnz() as u64,
        (n * std::mem::size_of::<f64>()) as u64,
    );
    rank
}

/// Shared power-iteration core. Returns the converged rank vector and
/// the number of iterations run.
fn power_iterate(
    ctx: &OpCtx,
    pat: &Dcsr<f64>,
    seed: Vec<f64>,
    opts: PageRankOpts,
) -> (Vec<f64>, usize) {
    let n = seed.len();
    assert_eq!(pat.nrows(), pat.ncols(), "adjacency must be square");
    let d = opts.damping;
    let base = (1.0 - d) / n as f64;

    // Out-degrees for row normalization.
    let mut outdeg = vec![0usize; n];
    for (r, cols, _) in pat.iter_rows() {
        outdeg[r as usize] = cols.len();
    }

    let s = PlusTimes::<f64>::new();
    // Unit-weight transpose, once: the pull kernel gathers each vertex's
    // in-edges in increasing source order — the exact f64 addition order
    // of the original row-major scatter loop, so results are
    // bit-identical to it at every thread count.
    let at = transpose_ctx(ctx, &apply_ctx(ctx, pat, ZeroNorm(s), s));

    let mut rank = seed;
    let mut next = vec![0.0f64; n];
    let mut scaled = vec![0.0f64; n];
    let mut iters = 0usize;
    for _ in 0..opts.max_iter {
        iters += 1;
        // Dangling vertices spread their rank uniformly.
        let dangling: f64 = (0..n).filter(|&v| outdeg[v] == 0).map(|v| rank[v]).sum();
        let spread = d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base + spread);
        // next ← next + scaledᵀ · pattern, gathered over in-edges.
        for v in 0..n {
            scaled[v] = if outdeg[v] == 0 {
                0.0
            } else {
                d * rank[v] / outdeg[v] as f64
            };
        }
        vxm_dense_pull_ctx(ctx, &scaled, &at, &mut next, s);
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < opts.tol {
            break;
        }
    }
    (rank, iters)
}

/// The `k` highest-ranked vertices as `(vertex, rank)`, descending.
pub fn top_k(rank: &[f64], k: usize) -> Vec<(Ix, f64)> {
    let mut idx: Vec<usize> = (0..rank.len()).collect();
    idx.sort_by(|&a, &b| rank[b].partial_cmp(&rank[a]).unwrap().then(a.cmp(&b)));
    idx.into_iter()
        .take(k)
        .map(|v| (v as Ix, rank[v]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn mk(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1.0);
        }
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = mk(&[(0, 1), (1, 2), (2, 0), (2, 1)], 3);
        let r = pagerank(&g, PageRankOpts::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn sink_absorbs_rank() {
        // Star into vertex 3 (a dangling sink): it must rank highest.
        let g = mk(&[(0, 3), (1, 3), (2, 3)], 4);
        let r = pagerank(&g, PageRankOpts::default());
        let top = top_k(&r, 1)[0].0;
        assert_eq!(top, 3);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = mk(&[(0, 1), (1, 2), (2, 0)], 3);
        let r = pagerank(&g, PageRankOpts::default());
        for v in &r {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Dcsr::<f64>::empty(0, 0);
        assert!(pagerank(&g, PageRankOpts::default()).is_empty());
        assert!(pagerank_refresh(&g, &[], PageRankOpts::default()).is_empty());
    }

    #[test]
    fn refresh_agrees_with_scratch_after_edge_batch() {
        let opts = PageRankOpts::default();
        let old = mk(&[(0, 1), (1, 2), (2, 0), (2, 1)], 5);
        let prior = pagerank(&old, opts);
        // A batch of new edges lands; refresh from the stale ranks.
        let new = mk(&[(0, 1), (1, 2), (2, 0), (2, 1), (3, 4), (4, 0), (0, 3)], 5);
        let scratch = pagerank(&new, opts);
        let refreshed = pagerank_refresh(&new, &prior, opts);
        for (a, b) in scratch.iter().zip(&refreshed) {
            assert!((a - b).abs() < 1e-7, "scratch {a} vs refresh {b}");
        }
        let sum: f64 = refreshed.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_prior_falls_back_to_uniform() {
        let opts = PageRankOpts::default();
        let g = mk(&[(0, 1), (1, 2), (2, 0)], 3);
        // Empty, short, and all-negative priors all converge to the same
        // fixed point as a cold start.
        let cold = pagerank(&g, opts);
        for prior in [&[][..], &[0.5][..], &[-1.0, -2.0, -3.0][..]] {
            let r = pagerank_refresh(&g, prior, opts);
            for (a, b) in cold.iter().zip(&r) {
                assert!((a - b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn refresh_cost_lands_in_kernel_metrics() {
        let ctx = hypersparse::OpCtx::new();
        let g = mk(&[(0, 1), (1, 0)], 2);
        let prior = pagerank(&g, PageRankOpts::default());
        let _ = pagerank_refresh_ctx(&ctx, &g, &prior, PageRankOpts::default());
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::PageRankRefresh).calls, 1);
        assert!(snap.kernel(Kernel::PageRankRefresh).nnz_in >= 2);
    }
}
