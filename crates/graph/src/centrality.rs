//! Betweenness centrality in the language of linear algebra.
//!
//! Brandes' algorithm recast as vector–matrix products (the LAGraph
//! batched formulation, single-source form): the forward sweep counts
//! shortest paths per BFS level with `σ ← σ ⊕ (q ⊕.⊗ A)` over `+.×`; the
//! backward sweep accumulates dependencies per level with one `A ⊕.⊗ t`
//! per depth. A classical queue/stack Brandes implementation provides the
//! baseline for the duality check.

use std::collections::HashMap;

use hypersparse::ops::mxv::{mxv_opt_ctx, vxm_masked_opt_ctx};
use hypersparse::ops::transpose_ctx;
use hypersparse::{with_default_ctx, Dcsr, Ix, SparseVec};
use semiring::PlusTimes;

use crate::frontier::Visited;

type S = PlusTimes<f64>;

fn s() -> S {
    PlusTimes::new()
}

/// Betweenness centrality contributions from the given `sources`
/// (unnormalized, directed interpretation — run on a symmetrized pattern
/// for the undirected variant). Pattern values must be 1.0.
///
/// Returns a dense score per compact vertex id.
pub fn betweenness(pat: &Dcsr<f64>, sources: &[Ix]) -> Vec<f64> {
    let n = usize::try_from(pat.nrows()).expect("betweenness needs compact ids");
    // Path counting needs unit weights regardless of how the pattern was
    // built (e.g. symmetrize sums parallel directions to 2.0).
    let pat = &with_default_ctx(|ctx| {
        hypersparse::ops::apply_ctx(ctx, pat, semiring::ZeroNorm(s()), s())
    });
    let mut bc = vec![0.0f64; n];

    with_default_ctx(|ctx| {
        // One transpose serves every source: the pull option of the
        // forward masked sweeps and the push option of the backward mxv.
        let at = transpose_ctx(ctx, pat);
        for &src in sources {
            // ---- forward: per-level frontiers with path counts σ ----
            let mut sigma: HashMap<Ix, f64> = HashMap::from([(src, 1.0)]);
            let mut visited = Visited::with_seed(src);
            let mut levels: Vec<SparseVec<f64>> =
                vec![SparseVec::from_entries(pat.nrows(), vec![(src, 1.0)], s())];
            loop {
                let frontier = levels.last().expect("nonempty");
                // path counts into the next level, visited masked off
                // inside the kernel
                let next =
                    vxm_masked_opt_ctx(ctx, frontier, pat, Some(&at), visited.as_slice(), s());
                if next.is_empty() {
                    break;
                }
                for (v, c) in next.iter() {
                    sigma.insert(v, *c);
                }
                visited.absorb_sorted(next.indices());
                levels.push(next);
            }

            // ---- backward: dependency accumulation per level ----
            let mut delta: HashMap<Ix, f64> = HashMap::new();
            for d in (1..levels.len()).rev() {
                // t(w) = (1 + δ(w)) / σ(w) for w at depth d
                let deep = &levels[d];
                let t = SparseVec::from_entries(
                    pat.nrows(),
                    deep.iter()
                        .map(|(w, &sig)| (w, (1.0 + delta.get(&w).copied().unwrap_or(0.0)) / sig))
                        .collect(),
                    s(),
                );
                // u(v) = Σ_w A(v, w) t(w) — one mxv per level
                let u = mxv_opt_ctx(ctx, pat, Some(&at), &t, s());
                // δ(v) += σ(v) · u(v) for v at depth d−1
                for (v, &sig) in levels[d - 1].iter() {
                    if let Some(uv) = u.get(&v) {
                        *delta.entry(v).or_insert(0.0) += sig * uv;
                    }
                }
            }
            for (v, dv) in delta {
                if v != src {
                    bc[v as usize] += dv;
                }
            }
        }
    });
    bc
}

/// Classical Brandes (queue forward, stack backward) — the baseline side
/// of the duality.
pub fn betweenness_baseline(pat: &Dcsr<f64>, sources: &[Ix]) -> Vec<f64> {
    let n = usize::try_from(pat.nrows()).expect("baseline needs compact ids");
    let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, c, _) in pat.iter() {
        nbrs[r as usize].push(c as usize);
    }
    let mut bc = vec![0.0f64; n];
    for &src in sources {
        let src = src as usize;
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![i64::MAX; n];
        let mut order: Vec<usize> = Vec::new();
        sigma[src] = 1.0;
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &nbrs[v] {
                if dist[w] == i64::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            for &w in &nbrs[v] {
                if dist[w] == dist[v] + 1 {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
            }
            if v != src {
                bc[v] += delta[v];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use hypersparse::gen::random_pattern;
    use hypersparse::Coo;

    fn path4() -> Dcsr<f64> {
        // 0—1—2—3 undirected.
        let mut c = Coo::new(4, 4);
        for (a, b) in [(0u64, 1u64), (1, 2), (2, 3)] {
            c.push(a, b, 1.0);
            c.push(b, a, 1.0);
        }
        c.build_dcsr(s())
    }

    #[test]
    fn path_graph_hand_computed() {
        let g = path4();
        let all: Vec<Ix> = (0..4).collect();
        let bc = betweenness(&g, &all);
        // Undirected path: interior vertices lie on (1↔3 pairs each dir):
        // v1 is on 0-2, 0-3, (and reverses): dependency sums to 4 each.
        assert_eq!(bc, betweenness_baseline(&g, &all));
        assert!(bc[1] > bc[0] && bc[2] > bc[3]);
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn star_center_dominates() {
        let mut c = Coo::new(6, 6);
        for leaf in 1..6u64 {
            c.push(0, leaf, 1.0);
            c.push(leaf, 0, 1.0);
        }
        let g = c.build_dcsr(s());
        let all: Vec<Ix> = (0..6).collect();
        let bc = betweenness(&g, &all);
        // Center lies on every leaf-to-leaf shortest path: 5·4 = 20.
        assert_eq!(bc[0], 20.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matches_baseline_on_random_graphs() {
        for seed in 0..4 {
            let g = symmetrize(&random_pattern(48, 48, 200, seed, s()), s());
            let sources: Vec<Ix> = (0..48).collect();
            let a = betweenness(&g, &sources);
            let b = betweenness_baseline(&g, &sources);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y} (seed {seed})");
            }
        }
    }

    #[test]
    fn subset_of_sources() {
        let g = path4();
        let bc = betweenness(&g, &[0]);
        assert_eq!(bc, betweenness_baseline(&g, &[0]));
        // From source 0 only: 1 is on paths to 2 and 3, 2 on path to 3.
        assert_eq!(bc[1], 2.0);
        assert_eq!(bc[2], 1.0);
    }

    #[test]
    fn disconnected_source_contributes_nothing() {
        let g = path4();
        // vertex set is 0..4; add an isolated id by enlarging the space
        let mut c = Coo::new(6, 6);
        for (r, col, v) in g.to_triplets() {
            c.push(r, col, v);
        }
        let g6 = c.build_dcsr(s());
        let bc = betweenness(&g6, &[5]);
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}
