//! Incidence (edge) arrays and hyper-multi-graphs — Figs. 2 and 3.
//!
//! Streaming events connecting several entities at once are
//! *hyper-edges*; repeated events between the same entities are
//! *multi-edges*. Neither fits an adjacency array, but both are natural
//! in a pair of incidence arrays:
//!
//! ```text
//! E_out(k, k₁) ≠ 0   edge k leaves vertex k₁
//! E_in (k, k₂) ≠ 0   edge k enters vertex k₂
//! ```
//!
//! The adjacency projection (Fig. 3) is one array multiply:
//! `A = E_outᵀ ⊕.⊗ E_in`, with `A(i, j) = ⊕_k E_outᵀ(i, k) ⊗ E_in(k, j)`
//! — under `+.×`, the multi-edge multiplicity count.

use hypersparse::{Coo, Dcsr, Ix};
use semiring::traits::Semiring;
use semiring::{PlusMonoid, PlusTimes};

/// A hyper-multi-graph held as a pair of incidence arrays over an
/// `edges × vertices` key space.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    /// Number of edges inserted (the edge key space used so far).
    pub n_edges: Ix,
    /// Vertex key-space size.
    pub n_vertices: Ix,
    e_out_trips: Vec<(Ix, Ix, f64)>,
    e_in_trips: Vec<(Ix, Ix, f64)>,
}

impl Hypergraph {
    /// An empty hypergraph over `n_vertices` (edge ids grow unboundedly).
    pub fn new(n_vertices: Ix) -> Self {
        Hypergraph {
            n_edges: 0,
            n_vertices,
            e_out_trips: Vec::new(),
            e_in_trips: Vec::new(),
        }
    }

    /// Append an ordinary directed edge `src → dst` with weight `w`.
    /// Returns the new edge id. Repeated calls create multi-edges.
    pub fn add_edge(&mut self, src: Ix, dst: Ix, w: f64) -> Ix {
        self.add_hyperedge(&[src], &[dst], w)
    }

    /// Append a hyper-edge leaving every vertex in `srcs` and entering
    /// every vertex in `dsts` (Fig. 2's red edges). Returns the edge id.
    pub fn add_hyperedge(&mut self, srcs: &[Ix], dsts: &[Ix], w: f64) -> Ix {
        assert!(
            !srcs.is_empty() && !dsts.is_empty(),
            "hyperedge needs endpoints"
        );
        let k = self.n_edges;
        self.n_edges += 1;
        for &s in srcs {
            assert!(s < self.n_vertices);
            self.e_out_trips.push((k, s, w));
        }
        for &d in dsts {
            assert!(d < self.n_vertices);
            self.e_in_trips.push((k, d, w));
        }
        k
    }

    /// Materialize `E_out` (edges × vertices).
    pub fn e_out(&self) -> Dcsr<f64> {
        let mut c = Coo::new(self.n_edges.max(1), self.n_vertices);
        c.extend(self.e_out_trips.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    /// Materialize `E_in` (edges × vertices).
    pub fn e_in(&self) -> Dcsr<f64> {
        let mut c = Coo::new(self.n_edges.max(1), self.n_vertices);
        c.extend(self.e_in_trips.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    /// Fig. 3: `A = E_outᵀ ⊕.⊗ E_in` over any semiring. Under `+.×` with
    /// unit weights, `A(i, j)` counts the (multi-)edges from `i` to `j`.
    pub fn adjacency<S: Semiring<Value = f64>>(&self, s: S) -> Dcsr<f64> {
        incidence_to_adjacency(&self.e_out(), &self.e_in(), s)
    }

    /// Out-degrees (counting hyper- and multi-edges once per incidence).
    pub fn out_degrees(&self) -> Vec<(Ix, f64)> {
        let d = hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::reduce_cols_ctx(ctx, &self.e_out(), PlusMonoid::<f64>::default())
        });
        d.iter().map(|(v, w)| (v, *w)).collect()
    }

    /// In-degrees.
    pub fn in_degrees(&self) -> Vec<(Ix, f64)> {
        let d = hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::reduce_cols_ctx(ctx, &self.e_in(), PlusMonoid::<f64>::default())
        });
        d.iter().map(|(v, w)| (v, *w)).collect()
    }
}

/// The Fig. 3 projection as a free function:
/// `A(i, j) = ⊕_k E_outᵀ(i, k) ⊗ E_in(k, j)`.
pub fn incidence_to_adjacency<S: Semiring<Value = f64>>(
    e_out: &Dcsr<f64>,
    e_in: &Dcsr<f64>,
    s: S,
) -> Dcsr<f64> {
    hypersparse::with_default_ctx(|ctx| {
        let e_out_t = hypersparse::ops::transpose_ctx(ctx, e_out);
        hypersparse::ops::mxm_ctx(ctx, &e_out_t, e_in, s)
    })
}

/// Direct hash-accumulation baseline for the same projection: pair up
/// the out- and in-endpoints of each edge without any matrix machinery.
pub fn incidence_to_adjacency_baseline(e_out: &Dcsr<f64>, e_in: &Dcsr<f64>) -> Vec<(Ix, Ix, f64)> {
    use std::collections::HashMap;
    let mut acc: HashMap<(Ix, Ix), f64> = HashMap::new();
    for (k, out_cols, out_vals) in e_out.iter_rows() {
        let (in_cols, in_vals) = e_in.row(k);
        for (&i, wo) in out_cols.iter().zip(out_vals) {
            for (&j, wi) in in_cols.iter().zip(in_vals) {
                *acc.entry((i, j)).or_insert(0.0) += wo * wi;
            }
        }
    }
    let mut v: Vec<(Ix, Ix, f64)> = acc
        .into_iter()
        .filter(|&(_, w)| w != 0.0)
        .map(|((i, j), w)| (i, j, w))
        .collect();
    v.sort_by_key(|&(i, j, _)| (i, j));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_edges_project_to_adjacency() {
        let mut h = Hypergraph::new(8);
        h.add_edge(0, 1, 1.0);
        h.add_edge(1, 2, 1.0);
        let a = h.adjacency(PlusTimes::<f64>::new());
        assert_eq!(a.get(0, 1), Some(&1.0));
        assert_eq!(a.get(1, 2), Some(&1.0));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn multi_edges_accumulate() {
        let mut h = Hypergraph::new(4);
        h.add_edge(0, 1, 1.0);
        h.add_edge(0, 1, 1.0);
        h.add_edge(0, 1, 1.0);
        let a = h.adjacency(PlusTimes::<f64>::new());
        assert_eq!(a.get(0, 1), Some(&3.0)); // multiplicity count
    }

    #[test]
    fn hyperedge_fans_out() {
        // One event from {0} into {1, 2, 3} (Fig. 2's red edge).
        let mut h = Hypergraph::new(4);
        h.add_hyperedge(&[0], &[1, 2, 3], 1.0);
        let a = h.adjacency(PlusTimes::<f64>::new());
        assert_eq!(a.nnz(), 3);
        for j in 1..4 {
            assert_eq!(a.get(0, j), Some(&1.0));
        }
    }

    #[test]
    fn hyperedge_many_to_many() {
        let mut h = Hypergraph::new(6);
        h.add_hyperedge(&[0, 1], &[2, 3, 4], 1.0);
        let a = h.adjacency(PlusTimes::<f64>::new());
        assert_eq!(a.nnz(), 6); // 2 × 3 implied pairs
        assert_eq!(a.get(1, 4), Some(&1.0));
    }

    #[test]
    fn degrees_count_incidences() {
        let mut h = Hypergraph::new(4);
        h.add_hyperedge(&[0], &[1, 2], 1.0);
        h.add_edge(0, 3, 1.0);
        assert_eq!(h.out_degrees(), vec![(0, 2.0)]);
        assert_eq!(h.in_degrees(), vec![(1, 1.0), (2, 1.0), (3, 1.0)]);
    }

    #[test]
    fn projection_matches_baseline() {
        let mut h = Hypergraph::new(16);
        h.add_hyperedge(&[0, 1], &[2, 3], 1.0);
        h.add_edge(5, 6, 2.0);
        h.add_edge(5, 6, 2.0);
        h.add_hyperedge(&[7], &[0, 1, 2, 3], 0.5);
        let by_mxm: Vec<(Ix, Ix, f64)> = h
            .adjacency(PlusTimes::<f64>::new())
            .iter()
            .map(|(i, j, &v)| (i, j, v))
            .collect();
        let by_hash = incidence_to_adjacency_baseline(&h.e_out(), &h.e_in());
        assert_eq!(by_mxm, by_hash);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(4);
        assert_eq!(h.adjacency(PlusTimes::<f64>::new()).nnz(), 0);
    }
}
