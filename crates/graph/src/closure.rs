//! Reachability: transitive closure over `∨.∧` and topological structure.
//!
//! The transitive closure is the boolean-semiring fixpoint
//! `C = A ∨ A² ∨ A³ ∨ …`, computed by repeated squaring — `O(log D)`
//! SpGEMMs for diameter `D`. Row `s` of the closure must equal BFS
//! reachability from `s`, which the tests assert. Topological levels /
//! cycle detection (Kahn) complete the DAG toolkit.

use hypersparse::{Coo, Dcsr, Ix};
use semiring::LorLand;

/// Transitive closure (reachability in ≥ 1 step) of a boolean pattern by
/// repeated squaring: `R ← R ∨ R·R` until fixpoint.
pub fn transitive_closure(pat: &Dcsr<bool>) -> Dcsr<bool> {
    let s = LorLand;
    hypersparse::with_default_ctx(|ctx| {
        let mut r = pat.clone();
        loop {
            let r2 = hypersparse::ops::mxm_ctx(ctx, &r, &r, s);
            let next = hypersparse::ops::ewise_add_ctx(ctx, &r, &r2, s);
            if next == r {
                return r;
            }
            r = next;
        }
    })
}

/// Convert any pattern to a boolean one (edges → `true`).
pub fn to_bool<T: semiring::traits::Value>(pat: &Dcsr<T>) -> Dcsr<bool> {
    let mut c = Coo::new(pat.nrows(), pat.ncols());
    for (r, col, _) in pat.iter() {
        c.push(r, col, true);
    }
    c.build_dcsr(LorLand)
}

/// Topological levels of a DAG via Kahn's algorithm: `level(v)` = length
/// of the longest path from any source to `v`. Returns `None` if the
/// graph has a cycle. Requires compact vertex ids.
pub fn topo_levels(pat: &Dcsr<bool>) -> Option<Vec<(Ix, u32)>> {
    let n = usize::try_from(pat.nrows()).expect("topo needs compact ids");
    let mut indeg = vec![0usize; n];
    let mut has_vertex = vec![false; n];
    for (r, c, _) in pat.iter() {
        indeg[c as usize] += 1;
        has_vertex[r as usize] = true;
        has_vertex[c as usize] = true;
    }
    let mut level = vec![0u32; n];
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&v| has_vertex[v] && indeg[v] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop_front() {
        seen += 1;
        let (succs, _) = pat.row(v as Ix);
        for &w in succs {
            let w = w as usize;
            level[w] = level[w].max(level[v] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push_back(w);
            }
        }
    }
    let total: usize = has_vertex.iter().filter(|&&b| b).count();
    if seen != total {
        return None; // a cycle kept some in-degree positive
    }
    Some(
        (0..n)
            .filter(|&v| has_vertex[v])
            .map(|v| (v as Ix, level[v]))
            .collect(),
    )
}

/// `true` if the directed pattern contains a cycle. Equivalent to a
/// vertex reaching itself in the transitive closure — both formulations
/// are tested against each other.
pub fn has_cycle(pat: &Dcsr<bool>) -> bool {
    topo_levels(pat).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;
    use crate::pattern::pattern_u8;
    use hypersparse::gen::random_pattern;
    use semiring::PlusTimes;

    fn mk(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<bool> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, true);
        }
        c.build_dcsr(LorLand)
    }

    #[test]
    fn chain_closure() {
        let g = mk(&[(0, 1), (1, 2), (2, 3)], 4);
        let c = transitive_closure(&g);
        assert_eq!(c.nnz(), 6); // all i<j pairs
        assert_eq!(c.get(0, 3), Some(&true));
        assert_eq!(c.get(3, 0), None);
    }

    #[test]
    fn closure_rows_equal_bfs_reachability() {
        for seed in 0..4 {
            let w = random_pattern(24, 24, 60, seed, PlusTimes::<f64>::new());
            let g = to_bool(&w);
            let c = transitive_closure(&g);
            for src in [0u64, 5, 23] {
                let reach_bfs: Vec<Ix> = bfs_levels(&pattern_u8(&w), src)
                    .into_iter()
                    .filter(|&(v, l)| l > 0 || v != src) // exclude trivial self at level 0
                    .filter(|&(_, l)| l > 0)
                    .map(|(v, _)| v)
                    .collect();
                let (row, _) = c.row(src);
                // BFS reach (≥1 hop) ⊆ closure row; closure row may also
                // contain src itself if src lies on a cycle.
                for v in &reach_bfs {
                    assert!(row.contains(v), "seed {seed} src {src} missing {v}");
                }
                for v in row {
                    if *v != src {
                        assert!(reach_bfs.contains(v), "seed {seed} src {src} extra {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_detected_both_ways() {
        let dag = mk(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        assert!(!has_cycle(&dag));
        let cyc = mk(&[(0, 1), (1, 2), (2, 0)], 4);
        assert!(has_cycle(&cyc));
        // Closure view: a cycle member reaches itself.
        let c = transitive_closure(&cyc);
        assert_eq!(c.get(0, 0), Some(&true));
        let cd = transitive_closure(&dag);
        assert!((0..4).all(|v| cd.get(v, v).is_none()));
    }

    #[test]
    fn diamond_levels() {
        let dag = mk(&[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], 5);
        let lv = topo_levels(&dag).expect("acyclic");
        let get = |v: Ix| lv.iter().find(|&&(x, _)| x == v).unwrap().1;
        assert_eq!(get(0), 0);
        assert_eq!(get(1), 1);
        assert_eq!(get(2), 1);
        assert_eq!(get(3), 2); // longest path
        assert_eq!(get(4), 3);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = mk(&[(1, 1)], 4);
        assert!(has_cycle(&g));
    }
}
