//! Maximal independent set — Luby's algorithm over `max.×`.
//!
//! Each round assigns candidates random priorities and admits every
//! vertex whose priority beats all neighbors'. The neighbor-maximum is
//! one `vᵀA` over the `max.×` semiring (pattern weights 1.0 make ⊗ a
//! pass-through); admitted vertices and their neighborhoods leave the
//! candidate pool. Independence and maximality are verified directly in
//! the tests.

use hypersparse::{Dcsr, Ix, SparseVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::MaxTimes;

/// A maximal independent set of an undirected graph given as a symmetric
/// 1.0-pattern with no self-loops. Isolated vertices (no edges) are not
/// represented in the pattern and therefore not returned; they are all
/// trivially independent.
pub fn maximal_independent_set(sym_pat: &Dcsr<f64>, seed: u64) -> Vec<Ix> {
    let s = MaxTimes::<f64>::new();
    // ⊗ must pass priorities through unscaled: force unit edge weights.
    let sym_pat = &hypersparse::with_default_ctx(|ctx| {
        hypersparse::ops::apply_ctx(
            ctx,
            sym_pat,
            semiring::ZeroNorm(semiring::PlusTimes::<f64>::new()),
            semiring::PlusTimes::<f64>::new(),
        )
    });
    let n = sym_pat.nrows();
    let mut rng = StdRng::seed_from_u64(seed);

    // Candidates: every vertex incident to an edge.
    let mut candidates: Vec<Ix> = sym_pat.row_ids().to_vec();
    let mut in_set: Vec<Ix> = Vec::new();

    while !candidates.is_empty() {
        // Random positive priorities (0 is the max.× zero — excluded).
        let prio = SparseVec::from_entries(
            n,
            candidates
                .iter()
                .map(|&v| (v, 0.5 + rng.gen::<f64>()))
                .collect(),
            s,
        );
        // neighbor_best(v) = max over candidate neighbors u of prio(u).
        let neighbor_best = prio.vxm(sym_pat, s);

        // Winners: priority strictly above every candidate neighbor.
        let winners: Vec<Ix> = prio
            .iter()
            .filter(|(v, p)| match neighbor_best.get(v) {
                Some(nb) => *p > nb,
                None => true, // no candidate neighbors at all
            })
            .map(|(v, _)| v)
            .collect();
        debug_assert!(!winners.is_empty(), "Luby round must make progress");

        // Remove winners and their whole neighborhoods from candidacy.
        let winner_marks =
            SparseVec::from_entries(n, winners.iter().map(|&v| (v, 1.0)).collect(), s);
        let their_nbrs = winner_marks.vxm(sym_pat, s);
        let dead: std::collections::HashSet<Ix> = winners
            .iter()
            .copied()
            .chain(their_nbrs.iter().map(|(v, _)| v))
            .collect();
        candidates.retain(|v| !dead.contains(v));
        in_set.extend(winners);
    }
    in_set.sort_unstable();
    in_set
}

/// Check independence: no two set members share an edge.
pub fn is_independent(sym_pat: &Dcsr<f64>, set: &[Ix]) -> bool {
    let members: std::collections::HashSet<Ix> = set.iter().copied().collect();
    !sym_pat
        .iter()
        .any(|(r, c, _)| members.contains(&r) && members.contains(&c))
}

/// Check maximality: every non-member vertex with edges has a neighbor
/// in the set.
pub fn is_maximal(sym_pat: &Dcsr<f64>, set: &[Ix]) -> bool {
    let members: std::collections::HashSet<Ix> = set.iter().copied().collect();
    for &v in sym_pat.row_ids() {
        if members.contains(&v) {
            continue;
        }
        let (nbrs, _) = sym_pat.row(v);
        if !nbrs.iter().any(|u| members.contains(u)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use hypersparse::gen::random_pattern;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    #[test]
    fn triangle_yields_one_vertex() {
        let mut c = Coo::new(3, 3);
        for (a, b) in [(0u64, 1u64), (1, 2), (0, 2)] {
            c.push(a, b, 1.0);
            c.push(b, a, 1.0);
        }
        let g = c.build_dcsr(s());
        let mis = maximal_independent_set(&g, 1);
        assert_eq!(mis.len(), 1);
        assert!(is_independent(&g, &mis));
        assert!(is_maximal(&g, &mis));
    }

    #[test]
    fn path_alternates() {
        let mut c = Coo::new(6, 6);
        for (a, b) in [(0u64, 1u64), (1, 2), (2, 3), (3, 4), (4, 5)] {
            c.push(a, b, 1.0);
            c.push(b, a, 1.0);
        }
        let g = c.build_dcsr(s());
        let mis = maximal_independent_set(&g, 2);
        assert!(is_independent(&g, &mis));
        assert!(is_maximal(&g, &mis));
        // Any MIS of P6 has 2 or 3 vertices.
        assert!((2..=3).contains(&mis.len()));
    }

    #[test]
    fn random_graphs_always_independent_and_maximal() {
        for seed in 0..6 {
            let g = symmetrize(&random_pattern(64, 64, 300, seed, s()), s());
            let mis = maximal_independent_set(&g, seed * 7 + 1);
            assert!(is_independent(&g, &mis), "seed {seed}");
            assert!(is_maximal(&g, &mis), "seed {seed}");
            assert!(!mis.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = symmetrize(&random_pattern(32, 32, 100, 1, s()), s());
        assert_eq!(
            maximal_independent_set(&g, 9),
            maximal_independent_set(&g, 9)
        );
    }

    #[test]
    fn empty_graph_gives_empty_set() {
        let g = Dcsr::<f64>::empty(8, 8);
        assert!(maximal_independent_set(&g, 1).is_empty());
    }
}
