//! Connected components by min-label propagation.
//!
//! Every vertex starts labelled with its own id; each sweep replaces a
//! label with the minimum over its neighbours' labels — a `vᵀA` over the
//! [`semiring::MinFirst`] operator bundle. At the fixpoint, every vertex
//! in a component carries the component's smallest vertex id.

use hypersparse::ops::mxv::{choose_direction, vxm_opt_ctx};
use hypersparse::ops::transpose_ctx;
use hypersparse::{with_default_ctx, Dcsr, Direction, Ix, SparseVec};
use semiring::MinFirst;

/// Connected components of an *undirected* graph given as a symmetric
/// `u64` pattern (see [`crate::pattern::pattern_u64`] +
/// [`crate::pattern::symmetrize`]). Returns `(vertex, component)` pairs
/// sorted by vertex, where `component` is the smallest vertex id in the
/// component. Vertices with no incident edges are not represented.
pub fn connected_components(pat: &Dcsr<u64>) -> Vec<(Ix, Ix)> {
    let s = MinFirst;
    let n = pat.nrows();

    // Initial labels: every incident vertex labels itself (1-shifted so
    // that 0 can be the "absent" zero of MinFirst).
    let mut verts: Vec<Ix> = pat.row_ids().to_vec();
    verts.extend(pat.iter().map(|(_, c, _)| c));
    verts.sort_unstable();
    verts.dedup();
    let mut labels = SparseVec::from_entries(n, verts.iter().map(|&v| (v, v + 1)).collect(), s);

    // The label vector is dense over incident vertices from the first
    // sweep, so the direction heuristic typically pulls; ⊕ = min makes
    // either direction bit-identical.
    let mut at: Option<Dcsr<u64>> = None;
    with_default_ctx(|ctx| loop {
        if at.is_none() && choose_direction(&labels, pat, true) == Direction::Pull {
            at = Some(transpose_ctx(ctx, pat));
        }
        let prop = vxm_opt_ctx(ctx, &labels, pat, at.as_ref(), s);
        let next = labels.ewise_add(&prop, s);
        if next == labels {
            break;
        }
        labels = next;
    });
    labels.iter().map(|(v, &l)| (v, l - 1)).collect()
}

/// Number of distinct components in a labelling.
pub fn count_components(labels: &[(Ix, Ix)]) -> usize {
    let mut ids: Vec<Ix> = labels.iter().map(|&(_, c)| c).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{pattern_u64, symmetrize};
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn sym(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<u64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1.0);
        }
        let w = c.build_dcsr(PlusTimes::<f64>::new());
        pattern_u64(&symmetrize(&w, PlusTimes::<f64>::new()))
    }

    #[test]
    fn two_components() {
        let g = sym(&[(0, 1), (1, 2), (4, 5)], 8);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![(0, 0), (1, 0), (2, 0), (4, 4), (5, 4)]);
        assert_eq!(count_components(&labels), 2);
    }

    #[test]
    fn chain_collapses_to_min() {
        let g = sym(&[(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)], 8);
        let labels = connected_components(&g);
        assert!(labels.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn singleton_edges() {
        let g = sym(&[(6, 7)], 8);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![(6, 6), (7, 6)]);
    }

    #[test]
    fn empty_graph() {
        let g = Dcsr::<u64>::empty(8, 8);
        assert!(connected_components(&g).is_empty());
    }
}
