//! Network-security signature detectors over traffic matrices.
//!
//! The paper's deployment story analyses packet streams as hypersparse
//! traffic matrices `A(src, dst) = packets`, and the classic attack
//! signatures are *shapes* in that matrix (arXiv:2309.02464):
//!
//! * a **horizontal scan** is a row with anomalously many distinct
//!   columns — one source probing many destinations;
//! * a **fan-in DDoS** is a column with anomalously many distinct rows —
//!   many sources converging on one victim.
//!
//! Both reduce to degree distributions of the sparsity *pattern*
//! ([`crate::pattern_u64`] + [`reduce_rows_ctx`]/[`reduce_cols_ctx`]
//! with ⊕ = `+` over 1s), followed by a threshold mask. The follow-up
//! question — "show me everything a flagged endpoint did" — is a masked
//! row/column extraction ([`select_ctx`]) against the same epoch
//! snapshot. Everything here runs through `_ctx` kernels, so detector
//! cost shows up in the kernel metrics and trace spans like any other
//! workload, and everything is deterministic: results are sorted by
//! degree descending with ascending-key tie-breaks, independent of
//! thread and shard counts.

use hypersparse::ops::{reduce_cols_ctx, reduce_rows_ctx, select_ctx};
use hypersparse::{with_default_ctx, Dcsr, Ix, OpCtx, SparseVec};
use semiring::traits::Value;
use semiring::PlusMonoid;

use crate::pattern::pattern_u64;

/// Fan-out degree distribution: distinct destinations contacted per
/// source (the row degrees of the sparsity pattern). Multiplicities
/// don't count — a source hammering one destination has fan-out 1.
pub fn fan_out<T: Value>(a: &Dcsr<T>) -> SparseVec<u64> {
    with_default_ctx(|ctx| fan_out_ctx(ctx, a))
}

/// [`fan_out`] through an explicit execution context.
pub fn fan_out_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>) -> SparseVec<u64> {
    reduce_rows_ctx(ctx, &pattern_u64(a), PlusMonoid::<u64>::default())
}

/// Fan-in degree distribution: distinct sources per destination (the
/// column degrees of the sparsity pattern).
pub fn fan_in<T: Value>(a: &Dcsr<T>) -> SparseVec<u64> {
    with_default_ctx(|ctx| fan_in_ctx(ctx, a))
}

/// [`fan_in`] through an explicit execution context.
pub fn fan_in_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>) -> SparseVec<u64> {
    reduce_cols_ctx(ctx, &pattern_u64(a), PlusMonoid::<u64>::default())
}

/// Threshold a degree vector into flagged `(key, degree)` pairs, sorted
/// by degree descending, ties by key ascending — the canonical detector
/// output order (deterministic at any parallelism). Public so
/// incrementally maintained degree state ([`crate::incremental`]) flags
/// through exactly the same path as the from-scratch detectors.
pub fn flag_degrees(degrees: &SparseVec<u64>, threshold: u64) -> Vec<(Ix, u64)> {
    let mut hits: Vec<(Ix, u64)> = degrees
        .iter()
        .filter(|(_, &d)| d >= threshold)
        .map(|(i, &d)| (i, d))
        .collect();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits
}

/// Horizontal-scan detector: sources contacting at least `threshold`
/// distinct destinations in the window, as `(src, fan_out)` sorted by
/// fan-out descending.
pub fn scan_suspects<T: Value>(a: &Dcsr<T>, threshold: u64) -> Vec<(Ix, u64)> {
    with_default_ctx(|ctx| scan_suspects_ctx(ctx, a, threshold))
}

/// [`scan_suspects`] through an explicit execution context.
pub fn scan_suspects_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>, threshold: u64) -> Vec<(Ix, u64)> {
    flag_degrees(&fan_out_ctx(ctx, a), threshold)
}

/// Fan-in-DDoS detector: destinations contacted by at least `threshold`
/// distinct sources in the window, as `(dst, fan_in)` sorted by fan-in
/// descending.
pub fn ddos_victims<T: Value>(a: &Dcsr<T>, threshold: u64) -> Vec<(Ix, u64)> {
    with_default_ctx(|ctx| ddos_victims_ctx(ctx, a, threshold))
}

/// [`ddos_victims`] through an explicit execution context.
pub fn ddos_victims_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>, threshold: u64) -> Vec<(Ix, u64)> {
    flag_degrees(&fan_in_ctx(ctx, a), threshold)
}

/// Masked row query: the full traffic of the flagged source rows
/// (drill-down after [`scan_suspects`]). `rows` need not be sorted.
pub fn suspect_traffic<T: Value>(a: &Dcsr<T>, rows: &[Ix]) -> Dcsr<T> {
    with_default_ctx(|ctx| suspect_traffic_ctx(ctx, a, rows))
}

/// [`suspect_traffic`] through an explicit execution context.
pub fn suspect_traffic_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>, rows: &[Ix]) -> Dcsr<T> {
    let mut keep = rows.to_vec();
    keep.sort_unstable();
    select_ctx(ctx, a, move |r, _, _| keep.binary_search(&r).is_ok())
}

/// Masked column query: the full traffic aimed at the flagged
/// destination columns (drill-down after [`ddos_victims`]).
pub fn victim_traffic<T: Value>(a: &Dcsr<T>, cols: &[Ix]) -> Dcsr<T> {
    with_default_ctx(|ctx| victim_traffic_ctx(ctx, a, cols))
}

/// [`victim_traffic`] through an explicit execution context.
pub fn victim_traffic_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>, cols: &[Ix]) -> Dcsr<T> {
    let mut keep = cols.to_vec();
    keep.sort_unstable();
    select_ctx(ctx, a, move |_, c, _| keep.binary_search(&c).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    /// 3 benign flows, a scanner (src 7 → 20 distinct dsts), and a DDoS
    /// victim (dst 99 ← 15 distinct srcs).
    fn traffic() -> Dcsr<u64> {
        let mut c = Coo::new(1 << 10, 1 << 10);
        c.extend([(1, 2, 5u64), (3, 4, 2), (1, 4, 1)]);
        for d in 0..20u64 {
            c.push(7, 100 + d, 1);
        }
        for s in 0..15u64 {
            c.push(200 + s, 99, 1);
        }
        // Repeat packets must not inflate pattern degrees.
        c.push(1, 2, 10);
        c.push(7, 100, 3);
        c.build_dcsr(PlusTimes::<u64>::new())
    }

    #[test]
    fn degree_distributions_count_distinct_endpoints() {
        let a = traffic();
        let out = fan_out(&a);
        assert_eq!(out.get(&7).copied(), Some(20));
        assert_eq!(out.get(&1).copied(), Some(2)); // dsts 2 and 4, repeats ignored
        let inn = fan_in(&a);
        assert_eq!(inn.get(&99).copied(), Some(15));
        assert_eq!(inn.get(&4).copied(), Some(2)); // srcs 1 and 3
    }

    #[test]
    fn detectors_flag_injected_episodes_only() {
        let a = traffic();
        assert_eq!(scan_suspects(&a, 10), vec![(7, 20)]);
        assert_eq!(ddos_victims(&a, 10), vec![(99, 15)]);
        // Threshold 1 flags everyone; order is degree desc, key asc.
        let all = scan_suspects(&a, 1);
        assert_eq!(all[0], (7, 20));
        assert!(all
            .windows(2)
            .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        // Degenerate thresholds.
        assert!(scan_suspects(&a, 1000).is_empty());
    }

    #[test]
    fn masked_drilldowns_extract_flagged_traffic() {
        let a = traffic();
        let scans = suspect_traffic(&a, &[7]);
        assert_eq!(scans.nnz(), 20);
        assert!(scans.iter().all(|(r, _, _)| r == 7));
        assert_eq!(scans.get(7, 100).copied(), Some(4)); // 1 + 3 merged at build
        let hits = victim_traffic(&a, &[99]);
        assert_eq!(hits.nnz(), 15);
        assert!(hits.iter().all(|(_, c, _)| c == 99));
        // Unsorted mask input is fine.
        let both = suspect_traffic(&a, &[3, 1]);
        assert_eq!(both.nnz(), 3);
    }

    #[test]
    fn detector_cost_lands_in_kernel_metrics() {
        let ctx = OpCtx::new();
        let a = traffic();
        let _ = scan_suspects_ctx(&ctx, &a, 10);
        let _ = ddos_victims_ctx(&ctx, &a, 10);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(hypersparse::Kernel::ReduceRows).calls, 1);
        assert_eq!(snap.kernel(hypersparse::Kernel::ReduceCols).calls, 1);
    }
}
