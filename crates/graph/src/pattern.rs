//! Sparsity-pattern helpers.
//!
//! Topological algorithms (BFS, components, triangles) care only about
//! *which* entries exist — the paper notes the core of these operations
//! "is topological … determined by the presence of non-zero values …
//! and not the exact value itself", and therefore holds over any
//! semiring. These helpers strip a weighted matrix to its pattern in the
//! value set each algorithm's semiring wants.

use hypersparse::{Coo, Dcsr, OpCtx};
use semiring::traits::{Semiring, Value};
use semiring::{AnyPair, MinFirst, PlusTimes};

/// Pattern in `u8` (value 1 everywhere) for [`semiring::AnyPair`] BFS.
pub fn pattern_u8<T: Value>(m: &Dcsr<T>) -> Dcsr<u8> {
    let mut c = Coo::new(m.nrows(), m.ncols());
    for (r, col, _) in m.iter() {
        c.push(r, col, 1u8);
    }
    c.build_dcsr(AnyPair)
}

/// Pattern in `u64` (value 1 everywhere) for [`semiring::MinFirst`]
/// parent tracking and min-label propagation.
pub fn pattern_u64<T: Value>(m: &Dcsr<T>) -> Dcsr<u64> {
    let mut c = Coo::new(m.nrows(), m.ncols());
    for (r, col, _) in m.iter() {
        c.push(r, col, 1u64);
    }
    c.build_dcsr(MinFirst)
}

/// Pattern in `f64` (value 1 everywhere) for the `+.×` triangle and
/// PageRank kernels.
pub fn pattern_f64<T: Value>(m: &Dcsr<T>) -> Dcsr<f64> {
    let mut c = Coo::new(m.nrows(), m.ncols());
    for (r, col, _) in m.iter() {
        c.push(r, col, 1.0f64);
    }
    c.build_dcsr(PlusTimes::<f64>::new())
}

/// `A ⊕ Aᵀ` — make a digraph pattern undirected (self-loops dropped).
pub fn symmetrize<T: Value, S: Semiring<Value = T>>(m: &Dcsr<T>, s: S) -> Dcsr<T> {
    hypersparse::with_default_ctx(|ctx| symmetrize_ctx(ctx, m, s))
}

/// [`symmetrize`] through an explicit execution context.
pub fn symmetrize_ctx<T: Value, S: Semiring<Value = T>>(ctx: &OpCtx, m: &Dcsr<T>, s: S) -> Dcsr<T> {
    let t = hypersparse::ops::transpose_ctx(ctx, m);
    let sym = hypersparse::ops::ewise_add_ctx(ctx, m, &t, s);
    hypersparse::ops::select_ctx(ctx, &sym, |r, c, _| r != c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    fn weighted() -> Dcsr<f64> {
        let mut c = Coo::new(4, 4);
        c.extend([(0, 1, 2.5), (1, 2, 3.5), (2, 2, 1.0)]);
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn patterns_preserve_structure() {
        let w = weighted();
        let p8 = pattern_u8(&w);
        let p64 = pattern_u64(&w);
        assert_eq!(p8.nnz(), w.nnz());
        assert_eq!(p64.nnz(), w.nnz());
        assert_eq!(p8.get(0, 1), Some(&1u8));
        assert_eq!(p64.get(1, 2), Some(&1u64));
    }

    #[test]
    fn symmetrize_adds_reverse_edges_drops_loops() {
        let w = weighted();
        let s = symmetrize(&w, PlusTimes::<f64>::new());
        assert_eq!(s.get(1, 0), Some(&2.5));
        assert_eq!(s.get(0, 1), Some(&2.5));
        assert_eq!(s.get(2, 2), None); // self-loop removed
    }
}
