//! Incrementally maintained graph analytics — `O(Δ)` per epoch.
//!
//! The streaming pipeline publishes per-epoch *delta* snapshots
//! (`full(t) = full(t−1) ⊕ delta(t)`); the states here fold those deltas
//! into standing analytic results instead of rescanning the accumulated
//! window. Each maintains the invariant that its answer equals the
//! from-scratch algorithm on the ⊕-fold of every delta applied so far:
//!
//! * [`DegreeState`] — fan-out/fan-in *pattern* degrees (the
//!   [`crate::netsec`] detector inputs). Degrees count **distinct**
//!   endpoints, so only entries at previously-empty positions ("fresh"
//!   edges) bump a degree; a [`select`](hypersparse::ops::select_ctx)
//!   against the accumulated pattern isolates them and two sparse-vector
//!   ⊕-folds do the rest.
//! * [`TriangleState`] — triangle counts by *delta* masked SpGEMM.
//!   Writing `A` for the old symmetric pattern and `D` for the fresh
//!   symmetric delta (`D ∩ A = ∅`), every new triangle has exactly 1, 2,
//!   or 3 fresh edges and is counted exactly once by
//!   `ΔT = Σ((A⊕.⊗A) ⊙ D_L) + Σ((D⊕.⊗D) ⊙ A_L) + Σ((D_L⊕.⊗D_L) ⊙ D_L)`.
//!   Disjointness guarantees no term double-counts: a triangle with one
//!   fresh edge has two old wedge edges (term 1 only), two fresh edges
//!   have one old closing edge (term 2 only), three fresh edges are the
//!   classic Sandia count inside `D` (term 3 only).
//!
//! Both states use exact integer-valued arithmetic (u64 degrees, f64
//! pattern values that are small whole numbers), so results are
//! bit-identical however the deltas were sharded or batched — the
//! determinism contract the pipeline's standing queries rely on. Delta
//! application cost lands in the [`Kernel::DeltaDegree`] and
//! [`Kernel::DeltaTri`] metrics rows; the from-scratch rescans they
//! replace would bill `O(window)` to `reduce_rows`/`mxm_masked` every
//! epoch instead.
//!
//! PageRank does not decompose edge-wise, but power iteration warm-starts
//! from any prior vector — see [`crate::pagerank::pagerank_refresh`] for
//! the `Kernel::PageRankRefresh` path these states pair with.

use std::time::Instant;

use hypersparse::ops::{
    ewise_add_ctx, mxm_masked_ctx, reduce_cols_ctx, reduce_rows_ctx, reduce_scalar_ctx, select_ctx,
};
use hypersparse::{with_default_ctx, Dcsr, Ix, Kernel, OpCtx, SparseVec};
use semiring::traits::Value;
use semiring::{MinFirst, PlusMonoid, PlusTimes, ZeroNorm};

use crate::netsec::flag_degrees;
use crate::pattern::{pattern_f64, pattern_u64, symmetrize_ctx};
use crate::triangles::lower_triangle_ctx;

/// Incrementally maintained fan-out/fan-in pattern degrees.
///
/// Equivalent to [`crate::netsec::fan_out`]/[`fan_in`](crate::netsec::fan_in)
/// on the ⊕-fold of every delta applied so far, at `O(Δ)` per epoch.
#[derive(Clone, Debug)]
pub struct DegreeState {
    /// Accumulated sparsity pattern (value 1 at every seen position).
    pat: Dcsr<u64>,
    fan_out: SparseVec<u64>,
    fan_in: SparseVec<u64>,
}

impl DegreeState {
    /// Empty state over an `nrows × ncols` key space.
    pub fn new(nrows: Ix, ncols: Ix) -> Self {
        DegreeState {
            pat: Dcsr::empty(nrows, ncols),
            fan_out: SparseVec::empty(nrows),
            fan_in: SparseVec::empty(ncols),
        }
    }

    /// Fold one epoch's delta into the degree state.
    pub fn apply_delta<T: Value>(&mut self, delta: &Dcsr<T>) {
        with_default_ctx(|ctx| self.apply_delta_ctx(ctx, delta))
    }

    /// [`DegreeState::apply_delta`] through an explicit execution context.
    pub fn apply_delta_ctx<T: Value>(&mut self, ctx: &OpCtx, delta: &Dcsr<T>) {
        let t = Instant::now();
        let dpat = pattern_u64(delta);
        // Fresh edges: positions never seen before. Only these change a
        // distinct-endpoint degree.
        let seen = &self.pat;
        let fresh = select_ctx(ctx, &dpat, move |r, c, _| seen.get(r, c).is_none());
        if fresh.nnz() > 0 {
            let dout = reduce_rows_ctx(ctx, &fresh, PlusMonoid::<u64>::default());
            let din = reduce_cols_ctx(ctx, &fresh, PlusMonoid::<u64>::default());
            self.fan_out = self.fan_out.ewise_add(&dout, PlusTimes::<u64>::new());
            self.fan_in = self.fan_in.ewise_add(&din, PlusTimes::<u64>::new());
            // Disjoint union — MinFirst's ⊕ is never applied.
            self.pat = ewise_add_ctx(ctx, &self.pat, &fresh, MinFirst);
        }
        ctx.metrics().record(
            Kernel::DeltaDegree,
            t.elapsed(),
            delta.nnz() as u64,
            fresh.nnz() as u64,
            delta.nnz() as u64,
            fresh.bytes() as u64,
        );
    }

    /// Accumulated pattern (value 1 at every position seen so far).
    pub fn pattern(&self) -> &Dcsr<u64> {
        &self.pat
    }

    /// Fan-out degrees: distinct destinations per source.
    pub fn fan_out(&self) -> &SparseVec<u64> {
        &self.fan_out
    }

    /// Fan-in degrees: distinct sources per destination.
    pub fn fan_in(&self) -> &SparseVec<u64> {
        &self.fan_in
    }

    /// Horizontal-scan detector over the maintained fan-out — same
    /// output, order included, as [`crate::netsec::scan_suspects`] on the
    /// accumulated window.
    pub fn scan_suspects(&self, threshold: u64) -> Vec<(Ix, u64)> {
        flag_degrees(&self.fan_out, threshold)
    }

    /// Fan-in-DDoS detector over the maintained fan-in — same output as
    /// [`crate::netsec::ddos_victims`] on the accumulated window.
    pub fn ddos_victims(&self, threshold: u64) -> Vec<(Ix, u64)> {
        flag_degrees(&self.fan_in, threshold)
    }

    /// Forget everything (window rotation).
    pub fn reset(&mut self) {
        *self = DegreeState::new(self.pat.nrows(), self.pat.ncols());
    }
}

/// Incrementally maintained triangle count.
///
/// Equivalent to [`crate::triangles::triangle_count`] of the symmetrized
/// ⊕-fold of every delta applied so far, at `O(Δ·d)` per epoch.
#[derive(Clone, Debug)]
pub struct TriangleState {
    /// Accumulated symmetric pattern `A` (value 1, no self-loops).
    sym: Dcsr<f64>,
    /// Cached strictly-lower triangle `A_L` of `sym`.
    low: Dcsr<f64>,
    count: u64,
}

impl TriangleState {
    /// Empty state over an `n × n` vertex space.
    pub fn new(n: Ix) -> Self {
        TriangleState {
            sym: Dcsr::empty(n, n),
            low: Dcsr::empty(n, n),
            count: 0,
        }
    }

    /// Fold one epoch's delta (a directed edge batch; it is symmetrized
    /// and self-loops are dropped here) into the triangle count.
    pub fn apply_delta<T: Value>(&mut self, delta: &Dcsr<T>) {
        with_default_ctx(|ctx| self.apply_delta_ctx(ctx, delta))
    }

    /// [`TriangleState::apply_delta`] through an explicit execution context.
    pub fn apply_delta_ctx<T: Value>(&mut self, ctx: &OpCtx, delta: &Dcsr<T>) {
        let t = Instant::now();
        let s = PlusTimes::<f64>::new();
        // Normalize the batch to a unit-valued symmetric pattern (the
        // symmetrizing ⊕ can produce 2s where both directions arrived).
        let dsym = symmetrize_ctx(ctx, &pattern_f64(delta), s);
        let dsym = hypersparse::ops::apply_ctx(ctx, &dsym, ZeroNorm(s), s);
        // Fresh symmetric edges D: positions not already in A. D ∩ A = ∅
        // is what makes the three-term count exact.
        let seen = &self.sym;
        let fresh = select_ctx(ctx, &dsym, move |r, c, _| seen.get(r, c).is_none());
        let mut flops = 0u64;
        if fresh.nnz() > 0 {
            let fresh_l = lower_triangle_ctx(ctx, &fresh);
            let plus = PlusMonoid::<f64>::default();
            // 1 fresh edge: old wedges (A⊕.⊗A) closed by a fresh edge.
            let t1 = mxm_masked_ctx(ctx, &self.sym, &self.sym, &fresh_l, false, s);
            // 2 fresh edges: fresh wedges closed by an old edge.
            let t2 = mxm_masked_ctx(ctx, &fresh, &fresh, &self.low, false, s);
            // 3 fresh edges: Sandia count entirely inside D.
            let t3 = mxm_masked_ctx(ctx, &fresh_l, &fresh_l, &fresh_l, false, s);
            let dt = reduce_scalar_ctx(ctx, &t1, plus)
                + reduce_scalar_ctx(ctx, &t2, plus)
                + reduce_scalar_ctx(ctx, &t3, plus);
            flops = (t1.nnz() + t2.nnz() + t3.nnz()) as u64;
            self.count += dt as u64;
            self.sym = ewise_add_ctx(ctx, &self.sym, &fresh, s);
            self.low = ewise_add_ctx(ctx, &self.low, &fresh_l, s);
        }
        ctx.metrics().record(
            Kernel::DeltaTri,
            t.elapsed(),
            delta.nnz() as u64,
            fresh.nnz() as u64,
            flops,
            fresh.bytes() as u64,
        );
    }

    /// Triangles in the accumulated symmetric graph.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Accumulated symmetric pattern (value 1, self-loops dropped).
    pub fn pattern(&self) -> &Dcsr<f64> {
        &self.sym
    }

    /// Forget everything (window rotation).
    pub fn reset(&mut self) {
        *self = TriangleState::new(self.sym.nrows());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{netsec, triangles};
    use hypersparse::Coo;

    fn batch(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<u64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1u64);
        }
        c.build_dcsr(PlusTimes::<u64>::new())
    }

    fn fold(batches: &[Dcsr<u64>], n: Ix) -> Dcsr<u64> {
        batches.iter().fold(Dcsr::empty(n, n), |acc, b| {
            hypersparse::with_default_ctx(|ctx| {
                ewise_add_ctx(ctx, &acc, b, PlusTimes::<u64>::new())
            })
        })
    }

    #[test]
    fn degrees_match_scratch_over_overlapping_batches() {
        let n = 64;
        let batches = [
            batch(&[(1, 2), (1, 3), (7, 9), (3, 9)], n),
            batch(&[(1, 2), (1, 4), (9, 9), (2, 3)], n), // (1,2) repeats
            batch(&[(7, 9), (5, 9), (6, 9), (8, 9)], n), // fan-in burst on 9
        ];
        let mut state = DegreeState::new(n, n);
        for (i, b) in batches.iter().enumerate() {
            state.apply_delta(b);
            let window = fold(&batches[..=i], n);
            assert_eq!(state.fan_out(), &netsec::fan_out(&window), "epoch {i}");
            assert_eq!(state.fan_in(), &netsec::fan_in(&window), "epoch {i}");
            assert_eq!(
                state.scan_suspects(2),
                netsec::scan_suspects(&window, 2),
                "epoch {i}"
            );
            assert_eq!(
                state.ddos_victims(2),
                netsec::ddos_victims(&window, 2),
                "epoch {i}"
            );
        }
        state.reset();
        assert!(state.fan_out().is_empty());
        assert_eq!(state.pattern().nnz(), 0);
    }

    #[test]
    fn degree_cost_lands_in_delta_kernel_row() {
        let ctx = OpCtx::new();
        let mut state = DegreeState::new(8, 8);
        state.apply_delta_ctx(&ctx, &batch(&[(0, 1), (0, 2)], 8));
        state.apply_delta_ctx(&ctx, &batch(&[(0, 1)], 8)); // nothing fresh
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::DeltaDegree).calls, 2);
        assert_eq!(snap.kernel(Kernel::DeltaDegree).nnz_out, 2);
    }

    #[test]
    fn triangles_match_scratch_epoch_by_epoch() {
        let n = 32;
        // Crafted so new triangles arrive with 1, 2, and 3 fresh edges:
        // epoch 0 lays two edges of a triangle, epoch 1 closes it (1
        // fresh) and lays one edge of the next, epoch 2 closes that one
        // with two fresh edges plus a fully fresh triangle.
        let batches = [
            batch(&[(0, 1), (1, 2), (5, 6)], n),
            batch(&[(0, 2), (2, 1), (3, 4)], n), // (2,1) dup of (1,2) after sym
            batch(&[(3, 5), (4, 5), (10, 11), (11, 12), (10, 12)], n),
        ];
        let mut state = TriangleState::new(n);
        for (i, b) in batches.iter().enumerate() {
            state.apply_delta(b);
            let window = fold(&batches[..=i], n);
            let scratch = triangles::triangle_count(&crate::symmetrize(
                &pattern_f64(&window),
                PlusTimes::<f64>::new(),
            ));
            assert_eq!(state.count(), scratch, "epoch {i}");
        }
        assert_eq!(state.count(), 3); // {0,1,2}, {3,4,5}, {10,11,12}
    }

    #[test]
    fn triangle_state_ignores_duplicates_and_self_loops() {
        let n = 16;
        let mut state = TriangleState::new(n);
        state.apply_delta(&batch(&[(0, 1), (1, 2), (0, 2), (3, 3)], n));
        assert_eq!(state.count(), 1);
        // The same triangle again, in reversed orientation: no change.
        state.apply_delta(&batch(&[(1, 0), (2, 1), (2, 0)], n));
        assert_eq!(state.count(), 1);
        state.reset();
        assert_eq!(state.count(), 0);
        assert_eq!(state.pattern().nnz(), 0);
    }

    #[test]
    fn triangle_cost_lands_in_delta_kernel_row() {
        let ctx = OpCtx::new();
        let mut state = TriangleState::new(8);
        state.apply_delta_ctx(&ctx, &batch(&[(0, 1), (1, 2), (0, 2)], 8));
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::DeltaTri).calls, 1);
        assert_eq!(snap.kernel(Kernel::DeltaTri).nnz_out, 6); // 3 sym edges
    }
}
