//! Single-source shortest paths over the `min.+` tropical semiring.
//!
//! Bellman–Ford as iterated `vᵀA`: each sweep relaxes every edge once;
//! convergence (no distance improves) ends the loop. The semiring *is*
//! the algorithm — swapping Table I rows turns the same loop into
//! longest-path (`max.+`), widest-path (`max.min`), or most-reliable-path
//! (`max.×`) solvers, which [`sssp_generic`] exposes.

use hypersparse::ops::mxv::{choose_direction, vxm_opt_ctx};
use hypersparse::ops::transpose_ctx;
use hypersparse::{with_default_ctx, Dcsr, Direction, Ix, SparseVec};
use semiring::traits::Semiring;
use semiring::MinPlus;

/// Shortest distances from `src` over non-negative (or any cycle-safe)
/// weights. Returns `(vertex, distance)` sorted by vertex; unreachable
/// vertices are absent; `src` has distance 0.
pub fn sssp(w: &Dcsr<f64>, src: Ix) -> Vec<(Ix, f64)> {
    sssp_generic(w, src, MinPlus::<f64>::new())
}

/// Bellman–Ford over any path semiring: distances combine along a path
/// with ⊗ and across paths with ⊕; the source starts at the semiring `1`
/// (the "empty path" value).
pub fn sssp_generic<S: Semiring<Value = f64>>(w: &Dcsr<f64>, src: Ix, s: S) -> Vec<(Ix, f64)> {
    let n = w.nrows();
    let mut dist = SparseVec::from_entries(n, vec![(src, s.one())], s);
    // At most |V|−1 sweeps; stop early on fixpoint.
    let max_sweeps = (w.n_nonempty_rows() + 1).max(2);
    // The distance vector only grows, so once it is dense enough to
    // favor pulling, build the transpose and keep it for all remaining
    // sweeps. ⊕ = min/max is grouping-exact: either direction and any
    // thread count produce bit-identical distances.
    let mut at: Option<Dcsr<f64>> = None;
    with_default_ctx(|ctx| {
        for _ in 0..max_sweeps {
            if at.is_none() && choose_direction(&dist, w, true) == Direction::Pull {
                at = Some(transpose_ctx(ctx, w));
            }
            let relax = vxm_opt_ctx(ctx, &dist, w, at.as_ref(), s);
            let next = dist.ewise_add(&relax, s);
            if next == dist {
                break;
            }
            dist = next;
        }
    });
    dist.iter().map(|(v, d)| (v, *d)).collect()
}

/// Shortest paths with predecessor tracking: returns
/// `(vertex, distance, predecessor)` for every reached vertex, such that
/// following predecessors from any vertex walks an optimal path back to
/// `src` (`src` is its own predecessor). Deterministic: among equal-cost
/// predecessors the smallest vertex id wins.
pub fn sssp_parents(w: &Dcsr<f64>, src: Ix) -> Vec<(Ix, f64, Ix)> {
    let s = MinPlus::<f64>::new();
    let dist_map: std::collections::HashMap<Ix, f64> = sssp(w, src).into_iter().collect();
    let mut out = Vec::with_capacity(dist_map.len());
    for (&v, &d) in &dist_map {
        if v == src {
            out.push((v, d, v));
            continue;
        }
        // Predecessor: any u with dist(u) ⊗ w(u,v) = dist(v); min id.
        let mut best: Option<Ix> = None;
        for (&u, &du) in &dist_map {
            if let Some(wuv) = w.get(u, v) {
                if (s.mul(du, *wuv) - d).abs() < 1e-12 && best.is_none_or(|b| u < b) {
                    best = Some(u);
                }
            }
        }
        out.push((v, d, best.expect("reached vertex has a predecessor")));
    }
    out.sort_by_key(|e| e.0);
    out
}

/// Reconstruct the optimal path `src → dst` from an [`sssp_parents`]
/// result (`None` if `dst` was not reached).
pub fn path_to(parents: &[(Ix, f64, Ix)], src: Ix, dst: Ix) -> Option<Vec<Ix>> {
    let by_v: std::collections::HashMap<Ix, Ix> = parents.iter().map(|&(v, _, p)| (v, p)).collect();
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = *by_v.get(&cur)?;
        path.push(cur);
        if path.len() > by_v.len() + 1 {
            return None; // corrupted parents would loop forever
        }
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::Coo;
    use semiring::{MaxMin, MaxTimes, MinPlus};

    fn mk(edges: &[(Ix, Ix, f64)], n: Ix) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(edges.iter().copied());
        c.build_dcsr(MinPlus::<f64>::new())
    }

    #[test]
    fn shortest_path_with_detour() {
        // 0→1 (1), 1→2 (1), 0→2 (5): best 0→2 is 2 via 1.
        let g = mk(&[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], 4);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn cycle_converges() {
        let g = mk(&[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)], 3);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn unreachable_absent() {
        let g = mk(&[(0, 1, 1.0), (2, 3, 1.0)], 4);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![(0, 0.0), (1, 1.0)]);
    }

    #[test]
    fn parents_walk_optimal_paths() {
        let g = mk(&[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0)], 4);
        let parents = sssp_parents(&g, 0);
        let path = path_to(&parents, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        // Path cost equals the reported distance.
        let cost: f64 = path.windows(2).map(|w| *g.get(w[0], w[1]).unwrap()).sum();
        let d3 = parents.iter().find(|&&(v, _, _)| v == 3).unwrap().1;
        assert_eq!(cost, d3);
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = mk(&[(0, 1, 1.0), (2, 3, 1.0)], 4);
        let parents = sssp_parents(&g, 0);
        assert!(path_to(&parents, 0, 3).is_none());
        assert_eq!(path_to(&parents, 0, 0), Some(vec![0]));
    }

    #[test]
    fn parents_on_random_graphs_are_consistent() {
        use crate::baseline::{dijkstra, AdjList};
        use hypersparse::gen::random_dcsr;
        for seed in 0..3 {
            let g = random_dcsr(32, 32, 120, seed, MinPlus::<f64>::new());
            let parents = sssp_parents(&g, 0);
            let d = dijkstra(&AdjList::from_weighted(&g), 0);
            for &(v, dist, pred) in &parents {
                assert!((dist - d[v as usize]).abs() < 1e-9);
                if v != 0 {
                    // predecessor edge closes the optimal distance
                    let w = g.get(pred, v).unwrap();
                    assert!((d[pred as usize] + w - dist).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn widest_path_semiring() {
        // Bottleneck: 0→1→2 has min-capacity 3; direct 0→2 capacity 2.
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 3.0), (1, 2, 5.0), (0, 2, 2.0)]);
        let g = c.build_dcsr(MaxMin::<f64>::new());
        let d = sssp_generic(&g, 0, MaxMin::<f64>::new());
        let to2 = d.iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert_eq!(to2, 3.0);
    }

    #[test]
    fn most_reliable_path_semiring() {
        // Probabilities multiply; best path maximizes the product.
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.5)]);
        let g = c.build_dcsr(MaxTimes::<f64>::new());
        let d = sssp_generic(&g, 0, MaxTimes::<f64>::new());
        let to2 = d.iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert!((to2 - 0.81).abs() < 1e-12);
    }
}
