//! Append-only visited bookkeeping for masked traversals.
//!
//! BFS-style sweeps need two things from their visited set: a sorted
//! index slice to hand the fused complement-mask kernels
//! ([`hypersparse::ops::vxm_masked_ctx`]), and a cheap way to absorb
//! each level's newly-reached vertices. [`Visited`] keeps one sorted
//! `Vec<Ix>` and merges each (already sorted, disjoint) frontier batch
//! in `O(new)` when the batch lands past the current maximum and
//! `O(old + new)` otherwise — replacing the full `ewise_add` rebuild
//! the traversals used to pay per level.

use hypersparse::Ix;

/// An append-only sorted set of visited vertex ids.
#[derive(Clone, Debug, Default)]
pub struct Visited {
    idx: Vec<Ix>,
}

impl Visited {
    /// The empty set.
    pub fn new() -> Self {
        Visited::default()
    }

    /// A set holding one seed vertex.
    pub fn with_seed(src: Ix) -> Self {
        Visited { idx: vec![src] }
    }

    /// The sorted ids — the complement-mask argument of the fused
    /// traversal kernels.
    pub fn as_slice(&self) -> &[Ix] {
        &self.idx
    }

    /// Membership test.
    pub fn contains(&self, i: Ix) -> bool {
        self.idx.binary_search(&i).is_ok()
    }

    /// Number of visited vertices.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// `true` when nothing has been visited.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Absorb a sorted batch of newly-visited ids, disjoint from the
    /// current contents (which the masked kernels guarantee: masked-off
    /// vertices never reappear in a frontier).
    pub fn absorb_sorted(&mut self, batch: &[Ix]) {
        debug_assert!(batch.windows(2).all(|w| w[0] < w[1]));
        if batch.is_empty() {
            return;
        }
        match self.idx.last() {
            Some(&last) if batch[0] <= last => {
                debug_assert!(batch.iter().all(|&b| self.idx.binary_search(&b).is_err()));
                let old = std::mem::take(&mut self.idx);
                self.idx = Vec::with_capacity(old.len() + batch.len());
                let (mut i, mut j) = (0, 0);
                while i < old.len() && j < batch.len() {
                    if old[i] < batch[j] {
                        self.idx.push(old[i]);
                        i += 1;
                    } else {
                        self.idx.push(batch[j]);
                        j += 1;
                    }
                }
                self.idx.extend_from_slice(&old[i..]);
                self.idx.extend_from_slice(&batch[j..]);
            }
            _ => self.idx.extend_from_slice(batch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_appends_and_merges() {
        let mut v = Visited::with_seed(5);
        v.absorb_sorted(&[7, 9]); // fast path: past the max
        assert_eq!(v.as_slice(), &[5, 7, 9]);
        v.absorb_sorted(&[1, 6, 20]); // merge path
        assert_eq!(v.as_slice(), &[1, 5, 6, 7, 9, 20]);
        v.absorb_sorted(&[]);
        assert_eq!(v.len(), 6);
        assert!(v.contains(6));
        assert!(!v.contains(8));
    }

    #[test]
    fn empty_set_absorbs() {
        let mut v = Visited::new();
        assert!(v.is_empty());
        v.absorb_sorted(&[2, 4]);
        assert_eq!(v.as_slice(), &[2, 4]);
    }
}
