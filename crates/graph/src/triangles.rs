//! Triangle counting by masked SpGEMM (the "Sandia" LAGraph kernel).
//!
//! With `L` the strictly-lower-triangular part of a symmetric adjacency
//! pattern, `ntri = Σ ((L ⊕.⊗ L) ⊙ L)` over `+.×`: the product counts
//! wedges `i > k > j`, the mask keeps only wedges closed by an edge
//! `i > j`, so each triangle is counted exactly once. The fused mask
//! ([`hypersparse::ops::mxm_masked`]) is what makes this cheap.

use hypersparse::{Dcsr, Ix, OpCtx};
use semiring::{PlusMonoid, PlusTimes};

/// Strictly-lower-triangular part of a pattern.
pub fn lower_triangle(pat: &Dcsr<f64>) -> Dcsr<f64> {
    hypersparse::with_default_ctx(|ctx| lower_triangle_ctx(ctx, pat))
}

/// [`lower_triangle`] through an explicit execution context.
pub fn lower_triangle_ctx(ctx: &OpCtx, pat: &Dcsr<f64>) -> Dcsr<f64> {
    hypersparse::ops::select_ctx(ctx, pat, |r, c, _| c < r)
}

/// Count triangles in an undirected simple graph given as a symmetric
/// adjacency (weights are ignored — the pattern is normalized first).
pub fn triangle_count(sym_pat: &Dcsr<f64>) -> u64 {
    hypersparse::with_default_ctx(|ctx| triangle_count_ctx(ctx, sym_pat))
}

/// [`triangle_count`] through an explicit execution context.
pub fn triangle_count_ctx(ctx: &OpCtx, sym_pat: &Dcsr<f64>) -> u64 {
    let s = PlusTimes::<f64>::new();
    let sym_pat = hypersparse::ops::apply_ctx(ctx, sym_pat, semiring::ZeroNorm(s), s);
    let l = lower_triangle_ctx(ctx, &sym_pat);
    let closed = hypersparse::ops::mxm_masked_ctx(ctx, &l, &l, &l, false, s);
    hypersparse::ops::reduce_scalar_ctx(ctx, &closed, PlusMonoid::<f64>::default()) as u64
}

/// Per-edge triangle support (number of triangles through each edge of
/// the lower triangle) — the building block of k-truss.
pub fn edge_support(sym_pat: &Dcsr<f64>) -> Dcsr<f64> {
    let s = PlusTimes::<f64>::new();
    hypersparse::with_default_ctx(|ctx| {
        let sym_pat = hypersparse::ops::apply_ctx(ctx, sym_pat, semiring::ZeroNorm(s), s);
        let l = lower_triangle(&sym_pat);
        // support(i,j) = |N(i) ∩ N(j)| restricted to existing edges: use the
        // full symmetric pattern for wedge endpoints, masked by L. Edges in
        // no triangle produce no entry (support 0 is the semiring zero).
        hypersparse::ops::mxm_masked_ctx(ctx, &sym_pat, &sym_pat, &l, false, s)
    })
}

/// k-truss: the maximal subgraph in which every edge is supported by at
/// least `k − 2` triangles. Returns the surviving symmetric pattern.
pub fn ktruss(sym_pat: &Dcsr<f64>, k: u64) -> Dcsr<f64> {
    assert!(k >= 2, "k-truss defined for k ≥ 2");
    let s = PlusTimes::<f64>::new();
    if k == 2 {
        // Every edge trivially has ≥ 0 supporting triangles.
        return sym_pat.clone();
    }
    let need = (k - 2) as f64;
    let mut g = sym_pat.clone();
    loop {
        let sup = edge_support(&g);
        // Keep lower-triangle edges with enough support…
        let keep = hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::select_ctx(ctx, &sup, |_, _, v| *v >= need)
        });
        // …and rebuild the symmetric pattern from the survivors.
        let keep_pat = hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::apply_ctx(ctx, &keep, semiring::ZeroNorm(s), s)
        });
        let next = crate::pattern::symmetrize(&keep_pat, s);
        if next == g {
            return g;
        }
        if next.nnz() == 0 {
            return next;
        }
        g = next;
    }
}

/// Vertices of a pattern (sorted union of row and column support).
pub fn vertices(pat: &Dcsr<f64>) -> Vec<Ix> {
    let mut v: Vec<Ix> = pat.row_ids().to_vec();
    v.extend(pat.iter().map(|(_, c, _)| c));
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn sym(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1.0);
        }
        symmetrize(
            &c.build_dcsr(PlusTimes::<f64>::new()),
            PlusTimes::<f64>::new(),
        )
    }

    #[test]
    fn single_triangle() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 4);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn triangle_free() {
        let g = sym(&[(0, 1), (1, 2), (2, 3)], 4);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert_eq!(triangle_count(&g), 4);
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6)], 8);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn ktruss_keeps_the_clique() {
        // K4 plus a pendant triangle-free tail.
        let g = sym(
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
            8,
        );
        let t3 = ktruss(&g, 3);
        // 3-truss: every edge in ≥1 triangle → exactly the K4.
        assert_eq!(vertices(&t3), vec![0, 1, 2, 3]);
        assert_eq!(t3.nnz(), 12); // 6 undirected edges, both directions
        let t4 = ktruss(&g, 4);
        assert_eq!(vertices(&t4), vec![0, 1, 2, 3]); // K4 is a 4-truss
        let t5 = ktruss(&g, 5);
        assert_eq!(t5.nnz(), 0); // nothing survives
    }

    #[test]
    fn ktruss_2_is_whole_graph() {
        let g = sym(&[(0, 1), (1, 2)], 4);
        assert_eq!(ktruss(&g, 2), g);
    }
}
