//! Greedy graph coloring via independent-set layers (Jones–Plassmann).
//!
//! Repeatedly extract a maximal independent set ([`crate::mis`]) of the
//! uncolored subgraph and give it the next color: every layer is
//! conflict-free by construction, so the result is a proper coloring
//! with at most Δ+1 colors in expectation. Each round is the same
//! `max.×` priority sweep the MIS module uses — array operations all the
//! way down.

use std::collections::HashMap;

use hypersparse::{Dcsr, Ix};
use semiring::PlusTimes;

use crate::mis::maximal_independent_set;

/// Color the vertices of a symmetric, loop-free pattern. Returns
/// `(vertex, color)` pairs sorted by vertex, colors dense from 0.
pub fn greedy_coloring(sym_pat: &Dcsr<f64>, seed: u64) -> Vec<(Ix, Ix)> {
    let s = PlusTimes::<f64>::new();
    let mut remaining = sym_pat.clone();
    let mut isolated: Vec<Ix> = Vec::new(); // vertices that lost all edges
    let mut colors: HashMap<Ix, Ix> = HashMap::new();
    let mut color: Ix = 0;

    while remaining.nnz() > 0 || !isolated.is_empty() {
        // Vertices with no remaining edges are independent of everything
        // still uncolored: fold them into the current layer.
        for v in isolated.drain(..) {
            colors.insert(v, color);
        }
        if remaining.nnz() == 0 {
            break;
        }
        let layer = maximal_independent_set(&remaining, seed ^ color);
        for &v in &layer {
            colors.insert(v, color);
        }
        // Remove the colored layer from the conflict graph.
        let layer_set: std::collections::HashSet<Ix> = layer.into_iter().collect();
        let before: std::collections::HashSet<Ix> = remaining.row_ids().iter().copied().collect();
        remaining = hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::select_ctx(ctx, &remaining, |r, c, _| {
                !layer_set.contains(&r) && !layer_set.contains(&c)
            })
        });
        let after: std::collections::HashSet<Ix> = remaining.row_ids().iter().copied().collect();
        // Vertices that existed, weren't colored, and now have no edges.
        isolated.extend(
            before
                .difference(&after)
                .filter(|v| !layer_set.contains(v))
                .copied(),
        );
        color += 1;
        let _ = s;
    }
    let mut out: Vec<(Ix, Ix)> = colors.into_iter().collect();
    out.sort_by_key(|e| e.0);
    out
}

/// `true` if no edge joins two same-colored vertices.
pub fn is_proper_coloring(sym_pat: &Dcsr<f64>, coloring: &[(Ix, Ix)]) -> bool {
    let map: HashMap<Ix, Ix> = coloring.iter().copied().collect();
    sym_pat.iter().all(|(r, c, _)| {
        match (map.get(&r), map.get(&c)) {
            (Some(a), Some(b)) => a != b,
            _ => false, // an edge endpoint was left uncolored
        }
    })
}

/// Number of colors used.
pub fn color_count(coloring: &[(Ix, Ix)]) -> usize {
    let mut ids: Vec<Ix> = coloring.iter().map(|&(_, c)| c).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::symmetrize;
    use hypersparse::gen::random_pattern;
    use hypersparse::Coo;
    use semiring::PlusTimes;

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn sym(edges: &[(Ix, Ix)], n: Ix) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        for &(a, b) in edges {
            c.push(a, b, 1.0);
        }
        symmetrize(&c.build_dcsr(s()), s())
    }

    #[test]
    fn triangle_needs_three_colors() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        let col = greedy_coloring(&g, 1);
        assert!(is_proper_coloring(&g, &col));
        assert_eq!(color_count(&col), 3);
    }

    #[test]
    fn bipartite_path_needs_two() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
        let col = greedy_coloring(&g, 1);
        assert!(is_proper_coloring(&g, &col));
        assert!(color_count(&col) <= 3); // greedy may use one extra
        assert!(color_count(&col) >= 2);
    }

    #[test]
    fn random_graphs_get_proper_colorings() {
        for seed in 0..5 {
            let g = symmetrize(&random_pattern(48, 48, 200, seed, s()), s());
            let col = greedy_coloring(&g, seed + 100);
            assert!(is_proper_coloring(&g, &col), "seed {seed}");
            // Every vertex with an edge received a color.
            assert_eq!(col.len(), g.row_ids().len());
            // Bound: at most max-degree + 1 colors.
            let max_deg = g.iter_rows().map(|(_, c, _)| c.len()).max().unwrap();
            assert!(color_count(&col) <= max_deg + 1, "seed {seed}");
        }
    }

    #[test]
    fn star_is_two_colorable() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (0, 4)], 5);
        let col = greedy_coloring(&g, 3);
        assert!(is_proper_coloring(&g, &col));
        assert_eq!(color_count(&col), 2);
    }

    #[test]
    fn empty_graph_has_no_colors() {
        let g = Dcsr::<f64>::empty(4, 4);
        assert!(greedy_coloring(&g, 1).is_empty());
    }
}
