//! Classic compressed sparse rows — the *sparse* (`nnz ≈ N`) format.
//!
//! One row pointer per row: `O(nrows + nnz)` storage. The right choice
//! when most rows are occupied; pathological when the row space is huge
//! and mostly empty (that is [`crate::Dcsr`]'s regime — Fig. 4).

use semiring::traits::Value;

use crate::dcsr::Dcsr;
use crate::index::IndexType;
use crate::Ix;

/// CSR matrix. Requires the row dimension to be materializable
/// (`nrows ≤ usize::MAX`, practically far smaller). `I` is the physical
/// column-id width (defaults to the global [`Ix`]; see DESIGN.md §13).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T, I: IndexType = Ix> {
    nrows: Ix,
    ncols: Ix,
    rowptr: Vec<usize>, // len nrows + 1
    colidx: Vec<I>,
    vals: Vec<T>,
}

impl<T: Value, I: IndexType> Csr<T, I> {
    /// An empty `nrows × ncols` matrix.
    pub fn empty(nrows: Ix, ncols: Ix) -> Self {
        let n = usize::try_from(nrows).expect("CSR row dimension must fit in memory");
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; n + 1],
            colidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Convert from hypersparse by materializing the full row-pointer
    /// array. Panics if `nrows` cannot be materialized.
    pub fn from_dcsr(m: &Dcsr<T, I>) -> Self {
        let n = usize::try_from(m.nrows()).expect("CSR row dimension must fit in memory");
        let mut rowptr = vec![0usize; n + 1];
        let mut colidx = Vec::with_capacity(m.nnz());
        let mut vals = Vec::with_capacity(m.nnz());
        let mut prev_end = 0usize;
        let mut next_row = 0usize;
        for (r, cols, vs) in m.iter_rows() {
            let r = r as usize;
            for p in &mut rowptr[next_row..=r] {
                *p = prev_end;
            }
            next_row = r + 1;
            colidx.extend_from_slice(cols);
            vals.extend_from_slice(vs);
            prev_end = colidx.len();
        }
        for p in &mut rowptr[next_row..] {
            *p = prev_end;
        }
        Csr {
            nrows: m.nrows(),
            ncols: m.ncols(),
            rowptr,
            colidx,
            vals,
        }
    }

    /// Convert to the hypersparse compute format.
    pub fn to_dcsr(&self) -> Dcsr<T, I> {
        let mut rows = Vec::new();
        let mut rowptr = vec![0usize];
        let mut colidx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows as usize {
            let (lo, hi) = (self.rowptr[r], self.rowptr[r + 1]);
            if lo == hi {
                continue;
            }
            rows.push(r as Ix);
            colidx.extend_from_slice(&self.colidx[lo..hi]);
            vals.extend_from_slice(&self.vals[lo..hi]);
            rowptr.push(colidx.len());
        }
        Dcsr::from_parts(self.nrows, self.ncols, rows, rowptr, colidx, vals)
    }

    /// Row dimension.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column dimension.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Columns and values of `row`.
    pub fn row(&self, row: Ix) -> (&[I], &[T]) {
        let r = row as usize;
        let (lo, hi) = (self.rowptr[r], self.rowptr[r + 1]);
        (&self.colidx[lo..hi], &self.vals[lo..hi])
    }

    /// Point lookup.
    pub fn get(&self, row: Ix, col: Ix) -> Option<&T> {
        let c = I::try_from_ix(col)?;
        let (cols, vals) = self.row(row);
        cols.binary_search(&c).ok().map(|i| &vals[i])
    }

    /// Iterate all entries in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix, Ix, &T)> + '_ {
        (0..self.nrows as usize).flat_map(move |r| {
            let (cols, vals) = self.row(r as Ix);
            cols.iter()
                .zip(vals)
                .map(move |(&c, v)| (r as Ix, c.to_ix(), v))
        })
    }

    /// Heap bytes — `O(nrows + nnz)`: the `nrows` term is what Fig. 4's
    /// hypersparse regime cannot afford.
    pub fn bytes(&self) -> usize {
        self.rowptr.len() * std::mem::size_of::<usize>()
            + self.colidx.len() * std::mem::size_of::<I>()
            + self.vals.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::PlusTimes;

    fn sample_dcsr() -> Dcsr<f64> {
        let mut c = Coo::new(8, 8);
        c.extend([(0, 1, 1.0), (0, 3, 2.0), (3, 0, 3.0), (7, 7, 4.0)]);
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn dcsr_round_trip() {
        let d = sample_dcsr();
        let c = Csr::from_dcsr(&d);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.get(0, 3), Some(&2.0));
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.to_dcsr(), d);
    }

    #[test]
    fn empty_rows_have_empty_slices() {
        let c = Csr::from_dcsr(&sample_dcsr());
        assert_eq!(c.row(1), (&[][..], &[][..]));
        assert_eq!(c.row(7).0, &[7]);
    }

    #[test]
    fn iter_matches_dcsr_iter() {
        let d = sample_dcsr();
        let c = Csr::from_dcsr(&d);
        let a: Vec<_> = c.iter().map(|(r, co, &v)| (r, co, v)).collect();
        let b: Vec<_> = d.iter().map(|(r, co, &v)| (r, co, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bytes_scale_with_nrows() {
        let small = Csr::from_dcsr(&sample_dcsr());
        let mut big_coo = Coo::new(100_000, 8);
        big_coo.extend([(0, 1, 1.0), (0, 3, 2.0), (3, 0, 3.0), (7, 7, 4.0)]);
        let big = Csr::from_dcsr(&big_coo.build_dcsr(PlusTimes::<f64>::new()));
        assert!(big.bytes() > small.bytes() * 1000);
    }

    #[test]
    fn narrow_csr_round_trips_through_dcsr() {
        let d = sample_dcsr();
        let narrow: Dcsr<f64, u32> = d.to_index_width().unwrap();
        let c = Csr::from_dcsr(&narrow);
        assert_eq!(c.get(0, 3), Some(&2.0));
        assert_eq!(c.to_dcsr(), narrow);
        assert!(c.bytes() < Csr::from_dcsr(&d).bytes());
    }

    #[test]
    fn empty_csr() {
        let c = Csr::<f64>::empty(5, 5);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.iter().count(), 0);
        assert_eq!(c.to_dcsr().nnz(), 0);
    }
}
