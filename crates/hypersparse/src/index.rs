//! Narrow-index storage: the `IndexType` abstraction behind
//! `Dcsr<T, I>` / `Csr<T, I>` / `SparseVec<T, I>`.
//!
//! Column ids dominate the index bandwidth of every SpGEMM / mxv inner
//! loop — one id per stored entry, streamed on every multiply. When a
//! matrix's key space fits in 32 bits the ids can be stored as `u32`,
//! halving that traffic (DESIGN.md §13). The global key space stays
//! [`Ix`] (`u64`): narrow storage is a *representation* choice, made per
//! container via [`crate::Dcsr::to_index_width`] and checked against
//! [`IndexType::MAX_DIM`]. All kernels are generic over `I` and default
//! to `Ix`, so existing wide call sites compile unchanged.

use std::fmt::Debug;
use std::hash::Hash;

use crate::Ix;

/// A physical storage type for row/column indices.
///
/// Implementations are plain unsigned integers (`u32`, `u64`, `usize`).
/// The contract: every index `< MAX_DIM` round-trips losslessly through
/// [`from_ix`](IndexType::from_ix) / [`to_ix`](IndexType::to_ix), and
/// `Ord` on the narrow type agrees with `Ord` on [`Ix`].
pub trait IndexType: Copy + Ord + Eq + Hash + Debug + Default + Send + Sync + 'static {
    /// Largest key-space dimension this width can index: every valid
    /// index of a `dim ≤ MAX_DIM` container fits losslessly.
    const MAX_DIM: Ix;

    /// Bit width of the stored representation (for docs / reports).
    const BITS: u32;

    /// Narrow a global index. Debug-asserts that it fits.
    fn from_ix(i: Ix) -> Self;

    /// Narrow a global index, `None` if it does not fit.
    fn try_from_ix(i: Ix) -> Option<Self>;

    /// Narrow a `usize` position (e.g. a bitmap slot). Debug-asserts fit.
    fn from_usize(i: usize) -> Self;

    /// Widen back to the global key space.
    fn to_ix(self) -> Ix;

    /// The index as a memory offset.
    fn as_usize(self) -> usize;
}

impl IndexType for u32 {
    const MAX_DIM: Ix = 1 << 32;
    const BITS: u32 = 32;

    #[inline(always)]
    fn from_ix(i: Ix) -> Self {
        debug_assert!(i < Self::MAX_DIM, "index {i} does not fit in u32");
        i as u32
    }

    #[inline(always)]
    fn try_from_ix(i: Ix) -> Option<Self> {
        u32::try_from(i).ok()
    }

    #[inline(always)]
    fn from_usize(i: usize) -> Self {
        debug_assert!((i as u64) < Self::MAX_DIM);
        i as u32
    }

    #[inline(always)]
    fn to_ix(self) -> Ix {
        self as Ix
    }

    #[inline(always)]
    fn as_usize(self) -> usize {
        self as usize
    }
}

impl IndexType for u64 {
    const MAX_DIM: Ix = u64::MAX;
    const BITS: u32 = 64;

    #[inline(always)]
    fn from_ix(i: Ix) -> Self {
        i
    }

    #[inline(always)]
    fn try_from_ix(i: Ix) -> Option<Self> {
        Some(i)
    }

    #[inline(always)]
    fn from_usize(i: usize) -> Self {
        i as u64
    }

    #[inline(always)]
    fn to_ix(self) -> Ix {
        self
    }

    #[inline(always)]
    fn as_usize(self) -> usize {
        usize::try_from(self).expect("index exceeds the address space")
    }
}

impl IndexType for usize {
    const MAX_DIM: Ix = usize::MAX as Ix;
    const BITS: u32 = usize::BITS;

    #[inline(always)]
    fn from_ix(i: Ix) -> Self {
        // Vacuous on 64-bit targets, a real bound on 32-bit ones.
        #[allow(clippy::absurd_extreme_comparisons)]
        {
            debug_assert!(i <= Self::MAX_DIM, "index {i} does not fit in usize");
        }
        i as usize
    }

    #[inline(always)]
    fn try_from_ix(i: Ix) -> Option<Self> {
        usize::try_from(i).ok()
    }

    #[inline(always)]
    fn from_usize(i: usize) -> Self {
        i
    }

    #[inline(always)]
    fn to_ix(self) -> Ix {
        self as Ix
    }

    #[inline(always)]
    fn as_usize(self) -> usize {
        self
    }
}

/// True when a `nrows × ncols` key space fits index width `I`.
pub fn dims_fit<I: IndexType>(nrows: Ix, ncols: Ix) -> bool {
    nrows <= I::MAX_DIM && ncols <= I::MAX_DIM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip_and_bounds() {
        assert_eq!(u32::from_ix(42).to_ix(), 42);
        assert_eq!(u32::try_from_ix(u32::MAX as Ix), Some(u32::MAX));
        assert_eq!(u32::try_from_ix(1 << 32), None);
        assert!(dims_fit::<u32>(1 << 32, 1 << 32));
        assert!(!dims_fit::<u32>((1 << 32) + 1, 4));
    }

    #[test]
    fn wide_types_accept_everything() {
        assert_eq!(u64::from_ix(u64::MAX).to_ix(), u64::MAX);
        assert!(dims_fit::<u64>(u64::MAX, u64::MAX));
        assert_eq!(usize::from_ix(7).as_usize(), 7);
        assert_eq!(usize::try_from_ix(9), Some(9));
    }

    #[test]
    fn ord_agrees_with_ix() {
        let a = u32::from_ix(3);
        let b = u32::from_ix(900);
        assert!(a < b);
        assert_eq!(a.cmp(&b), a.to_ix().cmp(&b.to_ix()));
    }
}
