//! Hypersparse array engine — the GraphBLAS-equivalent substrate of the
//! *Mathematics of Digital Hyperspace* workspace.
//!
//! The paper's Fig. 4 distinguishes three sparsity regimes for an `N × N`
//! array: **dense** (`nnz ≈ N²`), **sparse** (`nnz ≈ N`), and
//! **hypersparse** (`nnz ≪ N`) where even one machine word per *row* is
//! too much. Its conclusion highlights that SuiteSparse:GraphBLAS keeps an
//! opaque matrix that internally switches among *sparse, hypersparse,
//! bitmap, and full* storage "with little or no involvement from the user
//! application". This crate reproduces that design:
//!
//! * [`DenseMat`] — full storage, one value per cell.
//! * [`Bitmap`] — full value array plus a presence bitmap (fast random
//!   writes at moderate density).
//! * [`Csr`] — classic compressed sparse rows (`nnz ≈ N`): one row
//!   pointer per row.
//! * [`Dcsr`] — doubly-compressed sparse rows (Buluç–Gilbert
//!   hypersparse): only *non-empty* rows exist, so storage is
//!   `O(nnz)` independent of the row dimension. This is what lets
//!   associative arrays live in ~2⁶⁰-sized key spaces.
//! * [`Matrix`] — the opaque wrapper that picks a format automatically
//!   ([`FormatPolicy`]) and re-evaluates the choice after each operation;
//! * [`StreamingMatrix`] — hierarchical (LSM-style) ⊕-merged layers for
//!   O(1)-amortized streaming inserts, after the paper's cited
//!   "75 billion inserts/second" hierarchical hypersparse design.
//!
//! All computational kernels ([`ops`]) are generic over a
//! [`semiring::Semiring`], take operator objects by value (zero-sized →
//! fully monomorphized inner loops), never store semiring zeros, and are
//! deterministic: the parallel SpGEMM partitions by row and merges in
//! row order, so parallel ≡ sequential bit-for-bit. Every kernel runs
//! under an execution context ([`ctx::OpCtx`]) providing a reusable
//! workspace arena, a thread cap, and per-kernel metrics
//! ([`metrics::MetricsSnapshot`]); ctx-free signatures use a
//! thread-local default context. Fallible `try_*` variants on
//! [`Matrix`] return [`OpError`] instead of panicking.
//!
//! Index space is `u64` throughout — dimensions are *key-space sizes*,
//! not allocation sizes; only materialized formats (dense, bitmap, CSR)
//! constrain them. The *physical* column-id width is a per-container
//! choice ([`IndexType`]): `Dcsr<T, u32>` (via
//! [`Dcsr::to_index_width`]) halves index bandwidth on kernel inner
//! loops when both dims fit in 32 bits — see DESIGN.md §13.
//!
//! ```
//! use hypersparse::{Matrix, SparseVec};
//! use semiring::{PlusTimes, MinPlus};
//!
//! // A tiny weighted digraph in a huge (2^40) key space.
//! let n = 1u64 << 40;
//! let a = Matrix::from_triplets(
//!     n, n,
//!     vec![(0, 7, 1.5), (7, 99_999_999, 2.0), (0, 3, 4.0)],
//!     PlusTimes::<f64>::new(),
//! );
//! assert_eq!(a.nnz(), 3);
//!
//! // One min-plus step from vertex 0: shortest one-hop distances.
//! let front = SparseVec::from_entries(n, vec![(0, 0.0)], MinPlus::<f64>::new());
//! let d = a.vxm(&front, MinPlus::<f64>::new());
//! assert_eq!(d.get(&7).copied(), Some(1.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod coo;
pub mod csr;
pub mod ctx;
pub mod dcsr;
pub mod dense;
pub mod error;
pub mod gen;
pub mod index;
pub mod matrix;
pub mod metrics;
pub mod ops;
pub mod stream;
pub mod trace;
pub mod vector;

pub use bitmap::Bitmap;
pub use coo::Coo;
pub use csr::Csr;
pub use ctx::{with_default_ctx, OpCtx};
pub use dcsr::Dcsr;
pub use dense::DenseMat;
pub use error::{Axis, OpError};
pub use index::IndexType;
pub use matrix::{Format, FormatPolicy, Matrix};
pub use metrics::{Direction, Kernel, KernelSnapshot, MetricsRegistry, MetricsSnapshot};
pub use stream::{StreamConfig, StreamingMatrix};
pub use trace::{Histogram, HistogramSnapshot, Span, SpanRecord, TraceMode, TraceRegistry};
pub use vector::SparseVec;

/// External index type: key spaces are up to ~2⁶⁰, far beyond anything a
/// materialized array could allocate.
pub type Ix = u64;
