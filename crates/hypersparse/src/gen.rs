//! Synthetic workload generators (uniform sparse, RMAT power-law).
//!
//! The paper's substrate libraries are exercised on streaming-graph
//! workloads; RMAT/Kronecker generators are the standard stand-in
//! (Graph500, Sparse DNN Challenge). All generators are seeded and
//! deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::traits::Semiring;

use crate::coo::Coo;
use crate::dcsr::Dcsr;
use crate::Ix;

/// Uniformly random matrix: `nnz` draws (duplicates ⊕-merge, so the final
/// count can be slightly lower) with values in `[1, 2)` — never the zero
/// of any Table I semiring.
pub fn random_dcsr<S>(nrows: Ix, ncols: Ix, nnz: usize, seed: u64, s: S) -> Dcsr<S::Value>
where
    S: Semiring<Value = f64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Coo::new(nrows, ncols);
    for _ in 0..nnz {
        let r = rng.gen_range(0..nrows);
        let col = rng.gen_range(0..ncols);
        c.push(r, col, 1.0 + rng.gen::<f64>());
    }
    c.build_dcsr(s)
}

/// Parameters of the RMAT recursive generator.
#[derive(Copy, Clone, Debug)]
pub struct RmatParams {
    /// log₂ of the vertex count.
    pub scale: u32,
    /// Average edges per vertex.
    pub edge_factor: usize,
    /// Quadrant probabilities; Graph500 uses (0.57, 0.19, 0.19, 0.05).
    pub probs: (f64, f64, f64, f64),
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            scale: 10,
            edge_factor: 8,
            probs: (0.57, 0.19, 0.19, 0.05),
        }
    }
}

/// RMAT power-law digraph as weighted triplets (before dedup).
pub fn rmat_edges(p: RmatParams, seed: u64) -> Vec<(Ix, Ix, f64)> {
    let n = 1u64 << p.scale;
    let m = n as usize * p.edge_factor;
    let (a, b, c, _d) = p.probs;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut r, mut col) = (0u64, 0u64);
        for level in (0..p.scale).rev() {
            let x: f64 = rng.gen();
            let bit = 1u64 << level;
            if x < a {
                // upper-left: nothing set
            } else if x < a + b {
                col |= bit;
            } else if x < a + b + c {
                r |= bit;
            } else {
                r |= bit;
                col |= bit;
            }
        }
        edges.push((r, col, 1.0 + rng.gen::<f64>()));
    }
    edges
}

/// RMAT power-law digraph assembled into a hypersparse matrix.
pub fn rmat_dcsr<S>(p: RmatParams, seed: u64, s: S) -> Dcsr<f64>
where
    S: Semiring<Value = f64>,
{
    let n = 1u64 << p.scale;
    let mut coo = Coo::new(n, n);
    coo.extend(rmat_edges(p, seed));
    coo.build_dcsr(s)
}

/// Directed ring (cycle) of `n` vertices: edge `v → (v+1) mod n` with
/// weight 1. The adversarial case for direction heuristics — every
/// frontier stays a single vertex, so pull never pays off.
pub fn ring_dcsr<S>(n: Ix, s: S) -> Dcsr<f64>
where
    S: Semiring<Value = f64>,
{
    let mut c = Coo::new(n, n);
    for v in 0..n {
        c.push(v, (v + 1) % n.max(1), 1.0);
    }
    c.build_dcsr(s)
}

/// A uniformly random sparse *boolean-pattern* matrix with `f64` weight 1
/// on every edge — handy for topology-only workloads.
pub fn random_pattern<S>(nrows: Ix, ncols: Ix, nnz: usize, seed: u64, s: S) -> Dcsr<f64>
where
    S: Semiring<Value = f64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(nnz);
    let mut c = Coo::new(nrows, ncols);
    while seen.len() < nnz.min((nrows as u128 * ncols as u128) as usize) {
        let pos = (rng.gen_range(0..nrows), rng.gen_range(0..ncols));
        if seen.insert(pos) {
            c.push(pos.0, pos.1, 1.0);
        }
    }
    c.build_dcsr(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    #[test]
    fn random_is_deterministic_per_seed() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(100, 100, 500, 1, s);
        let b = random_dcsr(100, 100, 500, 1, s);
        let c = random_dcsr(100, 100, 500, 2, s);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_shape() {
        let p = RmatParams {
            scale: 8,
            edge_factor: 4,
            ..Default::default()
        };
        let g = rmat_dcsr(p, 7, PlusTimes::<f64>::new());
        assert_eq!(g.nrows(), 256);
        assert!(g.nnz() > 0);
        assert!(g.nnz() <= 256 * 4);
    }

    #[test]
    fn rmat_is_skewed() {
        // Power-law: the busiest row should hold far more than the mean.
        let p = RmatParams {
            scale: 10,
            edge_factor: 8,
            ..Default::default()
        };
        let g = rmat_dcsr(p, 3, PlusTimes::<f64>::new());
        let max_deg = g
            .iter_rows()
            .map(|(_, cols, _)| cols.len())
            .max()
            .unwrap_or(0);
        let mean = g.nnz() as f64 / g.n_nonempty_rows() as f64;
        assert!(
            max_deg as f64 > 4.0 * mean,
            "max {max_deg} vs mean {mean:.1}"
        );
    }

    #[test]
    fn ring_is_a_single_cycle() {
        let g = ring_dcsr(16, PlusTimes::<f64>::new());
        assert_eq!(g.nnz(), 16);
        assert!(g.iter().all(|(r, c, &v)| v == 1.0 && c == (r + 1) % 16));
    }

    #[test]
    fn pattern_values_are_one() {
        let g = random_pattern(32, 32, 64, 5, PlusTimes::<f64>::new());
        assert!(g.iter().all(|(_, _, &v)| v == 1.0));
    }
}
