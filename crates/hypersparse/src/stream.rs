//! Hierarchical hypersparse streaming inserts.
//!
//! The paper's introduction cites "75,000,000,000 streaming
//! inserts/second using hierarchical hypersparse GraphBLAS matrices"
//! (Kepner et al., IPDPSW GrAPL 2020): instead of updating one big sparse
//! matrix per event (an `O(nnz)` rebuild each time), inserts land in a
//! small unsorted buffer, and a *hierarchy* of increasingly large
//! compressed layers absorbs overflow — an LSM-tree over associative
//! array algebra, where the merge operation is exactly element-wise ⊕.
//!
//! [`StreamingMatrix`] reproduces that design: `O(1)` amortized `insert`,
//! layered ⊕-merges on overflow, and a `snapshot` that folds the whole
//! hierarchy. Correctness is asserted against a single flat build in the
//! tests; the insert-rate advantage over per-event rebuilds is what the
//! cited paper measures.
//!
//! # Delta snapshots
//!
//! The hierarchy doubles as an *incremental-view* substrate. A snapshot
//! watermark splits it in two: the **live** levels hold exactly the
//! entries inserted since the watermark, while a parallel **sealed**
//! hierarchy holds everything before it. [`StreamingMatrix::delta_snapshot`]
//! folds the live levels into `Δ(t)`, advances the watermark (cascading
//! `Δ(t)` into the sealed hierarchy with the same geometric cap
//! discipline), and returns `Δ(t)` — so `full(t) = full(t−1) ⊕ Δ(t)` by
//! construction, which is what standing queries ⊕-fold to stay current
//! in `O(Δ)` instead of recomputing per epoch.

use std::sync::Arc;
use std::time::Instant;

use semiring::traits::Semiring;

use crate::coo::Coo;
use crate::ctx::{with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::metrics::Kernel;
use crate::ops::ewise_add_ctx;
use crate::Ix;

/// Tunable hierarchy parameters for a [`StreamingMatrix`].
///
/// The defaults reproduce the historical hard-coded constants, so
/// `StreamingMatrix::new` behaves exactly as before; serving layers
/// (e.g. the `pipeline` crate's shards) tune these per deployment —
/// smaller buffers bound per-event latency, larger growth factors
/// flatten the hierarchy for snapshot-heavy workloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Capacity of the level-0 insert buffer (events held unsorted
    /// before compaction). Must be ≥ 1.
    pub buffer_cap: usize,
    /// Growth factor between hierarchy levels: level `k` holds up to
    /// `buffer_cap · growth^(k+1)` entries before cascading into level
    /// `k+1`. Must be ≥ 2.
    pub growth: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            buffer_cap: 4096,
            growth: 8,
        }
    }
}

impl StreamConfig {
    /// The default configuration (buffer 4096, growth 8).
    pub fn new() -> Self {
        StreamConfig::default()
    }

    /// Builder-style level-0 buffer capacity.
    pub fn with_buffer_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "buffer_cap must be ≥ 1");
        self.buffer_cap = cap;
        self
    }

    /// Builder-style inter-level growth factor.
    pub fn with_growth(mut self, growth: usize) -> Self {
        assert!(growth >= 2, "growth must be ≥ 2");
        self.growth = growth;
        self
    }

    /// Level capacity for hierarchy level `k`:
    /// `buffer_cap · growth^(k+1)`, saturating.
    pub fn level_cap(&self, k: usize) -> usize {
        let pow = (self.growth as u128).saturating_pow(k as u32 + 1);
        (self.buffer_cap as u128)
            .saturating_mul(pow)
            .min(usize::MAX as u128) as usize
    }
}

/// An append-optimized hypersparse matrix: an unsorted insert buffer over
/// a hierarchy of ⊕-merged [`Dcsr`] layers.
#[derive(Clone, Debug)]
pub struct StreamingMatrix<S: Semiring> {
    nrows: Ix,
    ncols: Ix,
    s: S,
    config: StreamConfig,
    buffer: Vec<(Ix, Ix, S::Value)>,
    levels: Vec<Option<Dcsr<S::Value>>>,
    /// Pre-watermark hierarchy: entries already returned by a
    /// `delta_snapshot`, kept out of the live levels so the next delta
    /// is derivable without subtraction (which ⊕ doesn't have).
    sealed: Vec<Option<Dcsr<S::Value>>>,
    inserted: u64,
    /// Value of `inserted` when the watermark last advanced.
    watermark: u64,
    ctx: Option<Arc<OpCtx>>,
}

impl<S: Semiring> StreamingMatrix<S> {
    /// An empty streaming matrix over an `nrows × ncols` key space with
    /// the default hierarchy parameters.
    pub fn new(nrows: Ix, ncols: Ix, s: S) -> Self {
        StreamingMatrix::with_config(nrows, ncols, s, StreamConfig::default())
    }

    /// An empty streaming matrix with explicit hierarchy parameters.
    pub fn with_config(nrows: Ix, ncols: Ix, s: S, config: StreamConfig) -> Self {
        assert!(config.buffer_cap >= 1, "buffer_cap must be ≥ 1");
        assert!(config.growth >= 2, "growth must be ≥ 2");
        StreamingMatrix {
            nrows,
            ncols,
            s,
            config,
            buffer: Vec::with_capacity(config.buffer_cap),
            levels: Vec::new(),
            sealed: Vec::new(),
            inserted: 0,
            watermark: 0,
            ctx: None,
        }
    }

    /// Rebuild a stream from serialized state: the compressed hierarchy
    /// layers (level `k` at `levels[k]`, `None` for empty slots) plus the
    /// lifetime insert counter. The insert buffer starts empty — callers
    /// persisting a stream flush it first ([`StreamingMatrix::flush`]).
    /// This is the restore half of checkpointing: a stream rebuilt from
    /// its own [`StreamingMatrix::level_slots`] is observationally
    /// identical to the original, including future cascade behaviour.
    ///
    /// Panics if a layer's dimensions disagree with the key space.
    pub fn from_levels(
        nrows: Ix,
        ncols: Ix,
        s: S,
        config: StreamConfig,
        levels: Vec<Option<Dcsr<S::Value>>>,
        inserted: u64,
    ) -> Self {
        for level in levels.iter().flatten() {
            assert_eq!(
                (level.nrows(), level.ncols()),
                (nrows, ncols),
                "hierarchy layer dimensions disagree with the key space"
            );
        }
        let mut stream = StreamingMatrix::with_config(nrows, ncols, s, config);
        stream.levels = levels;
        stream.inserted = inserted;
        // Restored streams start with an empty sealed hierarchy: the
        // first post-restore delta covers everything, so standing views
        // rebuild from a full snapshot rather than a bogus partial Δ.
        stream.watermark = inserted;
        stream
    }

    /// Route every internal ⊕-merge (cascades and snapshots) through the
    /// given execution context, so its metrics observe the stream's merge
    /// traffic and its workspace arena is reused across cascades.
    pub fn with_ctx(mut self, ctx: Arc<OpCtx>) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// The execution context merges run under, if one was attached.
    pub fn ctx(&self) -> Option<&Arc<OpCtx>> {
        self.ctx.as_ref()
    }

    /// The hierarchy parameters this stream runs with.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// ⊕-merge two layers under the attached context (or the
    /// thread-local default when none is attached), recording the merge
    /// as [`Kernel::StreamMerge`] traffic on top of the underlying ewise
    /// kernel's own row (flops = combiner applications, i.e. the key
    /// overlap the merge collapsed).
    fn merge(&self, a: &Dcsr<S::Value>, b: &Dcsr<S::Value>) -> Dcsr<S::Value> {
        let t = Instant::now();
        let out = match &self.ctx {
            Some(ctx) => {
                let _span = ctx.kernel_span(Kernel::StreamMerge, || {
                    format!("{}+{} nnz layers", a.nnz(), b.nnz())
                });
                ewise_add_ctx(ctx, a, b, self.s)
            }
            None => with_default_ctx(|ctx| {
                let _span = ctx.kernel_span(Kernel::StreamMerge, || {
                    format!("{}+{} nnz layers", a.nnz(), b.nnz())
                });
                ewise_add_ctx(ctx, a, b, self.s)
            }),
        };
        let nnz_in = (a.nnz() + b.nnz()) as u64;
        let flops = nnz_in.saturating_sub(out.nnz() as u64);
        let record = |ctx: &OpCtx| {
            ctx.metrics().record(
                Kernel::StreamMerge,
                t.elapsed(),
                nnz_in,
                out.nnz() as u64,
                flops,
                out.bytes() as u64,
            )
        };
        match &self.ctx {
            Some(ctx) => record(ctx),
            None => with_default_ctx(|ctx| record(ctx)),
        }
        out
    }

    /// Append one event. `O(1)` amortized: a buffer push, with an
    /// occasional cascade of geometrically sized ⊕-merges.
    pub fn insert(&mut self, row: Ix, col: Ix, val: S::Value) {
        assert!(row < self.nrows && col < self.ncols, "key outside space");
        self.buffer.push((row, col, val));
        self.inserted += 1;
        if self.buffer.len() >= self.config.buffer_cap {
            self.flush_buffer();
        }
    }

    /// Total events inserted (before ⊕-merging).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Row dimension of the key space.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column dimension of the key space.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Compact any buffered events into the hierarchy now, leaving the
    /// insert buffer empty. Checkpointing serializes
    /// [`StreamingMatrix::level_slots`], so it flushes first; otherwise
    /// flushing is never required — `snapshot` and `get` already see
    /// buffered events.
    pub fn flush(&mut self) {
        self.flush_buffer();
    }

    /// Number of events currently waiting in the unsorted insert buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Drop every stored entry — insert buffer and all hierarchy levels —
    /// returning the stream to empty while keeping its dimensions,
    /// configuration, context, and lifetime [`StreamingMatrix::inserted`]
    /// counter. This is the window-rotation primitive: snapshot the
    /// closing window, then `reset` so subsequent inserts land in a fresh
    /// window without reallocating the stream.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.levels.clear();
        self.sealed.clear();
        self.watermark = self.inserted;
    }

    /// The raw hierarchy: slot `k` holds level `k`'s compressed layer, or
    /// `None` while that level is empty. Read-only introspection for
    /// serialization ([`StreamingMatrix::from_levels`] is the inverse);
    /// does **not** include buffered events — call
    /// [`StreamingMatrix::flush`] first for a complete picture.
    pub fn level_slots(&self) -> &[Option<Dcsr<S::Value>>] {
        &self.levels
    }

    /// The sealed (pre-watermark) hierarchy: layers already covered by an
    /// earlier [`StreamingMatrix::delta_snapshot`]. Empty until the first
    /// delta is taken. Checkpointing serializes these alongside
    /// [`StreamingMatrix::level_slots`] so no entries are lost; restore
    /// rebuilds everything as live levels (fresh delta baseline).
    pub fn sealed_slots(&self) -> &[Option<Dcsr<S::Value>>] {
        &self.sealed
    }

    /// Lifetime insert count at the last watermark advance (delta
    /// snapshot, reset, or restore). `inserted() - delta_watermark()`
    /// bounds the nnz of the next delta.
    pub fn delta_watermark(&self) -> u64 {
        self.watermark
    }

    /// Compact the buffer into level 0 and cascade overfull levels.
    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut coo = Coo::new(self.nrows, self.ncols);
        coo.extend(self.buffer.drain(..));
        let mut carry = coo.build_dcsr(self.s);

        let mut k = 0usize;
        loop {
            if self.levels.len() <= k {
                self.levels.push(None);
            }
            match self.levels[k].take() {
                None => {
                    self.levels[k] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = self.merge(&existing, &carry);
                    if carry.nnz() <= self.config.level_cap(k) {
                        self.levels[k] = Some(carry);
                        break;
                    }
                    // Level overflows: leave it empty and push the merged
                    // result one level down the hierarchy.
                    k += 1;
                }
            }
        }
    }

    /// Fold the entire hierarchy — live and sealed — into one matrix
    /// (non-destructive; the stream remains usable for further inserts).
    pub fn snapshot(&mut self) -> Dcsr<S::Value> {
        self.flush_buffer();
        let mut acc = Dcsr::empty(self.nrows, self.ncols);
        for level in self.levels.iter().chain(self.sealed.iter()).flatten() {
            acc = self.merge(&acc, level);
        }
        acc
    }

    /// Fold the entries inserted since the previous delta (or since
    /// construction/reset/restore) into one matrix, then advance the
    /// watermark: the live levels are folded into `Δ`, cleared, and `Δ`
    /// is cascaded into the sealed hierarchy under the same geometric
    /// cap discipline — so the invariant `full(t) = full(t−1) ⊕ Δ(t)`
    /// holds by construction for every ⊕ (exactly, when ⊕ on the value
    /// type is exact — e.g. integer counts; up to float associativity
    /// otherwise). Cost is `O(Δ)` amortized, independent of the sealed
    /// volume. Recorded as [`Kernel::DeltaFold`].
    pub fn delta_snapshot(&mut self) -> Dcsr<S::Value> {
        self.flush_buffer();
        let t = Instant::now();
        let mut nnz_in = 0u64;
        let mut delta = Dcsr::empty(self.nrows, self.ncols);
        for level in self.levels.iter().flatten() {
            nnz_in += level.nnz() as u64;
            delta = self.merge(&delta, level);
        }
        self.levels.clear();
        if delta.nnz() > 0 {
            self.seal(delta.clone());
        }
        self.watermark = self.inserted;
        let record = |ctx: &OpCtx| {
            ctx.metrics().record(
                Kernel::DeltaFold,
                t.elapsed(),
                nnz_in,
                delta.nnz() as u64,
                nnz_in.saturating_sub(delta.nnz() as u64),
                delta.bytes() as u64,
            )
        };
        match &self.ctx {
            Some(ctx) => record(ctx),
            None => with_default_ctx(|ctx| record(ctx)),
        }
        delta
    }

    /// Cascade a freshly sealed delta into the pre-watermark hierarchy,
    /// mirroring `flush_buffer`'s cap discipline so sealing stays
    /// amortized-geometric rather than one ever-growing ⊕-merge.
    fn seal(&mut self, mut carry: Dcsr<S::Value>) {
        let mut k = 0usize;
        loop {
            if self.sealed.len() <= k {
                self.sealed.push(None);
            }
            match self.sealed[k].take() {
                None => {
                    self.sealed[k] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = self.merge(&existing, &carry);
                    if carry.nnz() <= self.config.level_cap(k) {
                        self.sealed[k] = Some(carry);
                        break;
                    }
                    k += 1;
                }
            }
        }
    }

    /// Point lookup across the hierarchy: ⊕-folds every layer's entry
    /// (plus buffered events), so reads see all inserts immediately.
    pub fn get(&self, row: Ix, col: Ix) -> Option<S::Value> {
        let mut acc: Option<S::Value> = None;
        let mut fold = |v: S::Value| {
            acc = Some(match acc.take() {
                None => v,
                Some(a) => self.s.add(a, v),
            });
        };
        for level in self.levels.iter().chain(self.sealed.iter()).flatten() {
            if let Some(v) = level.get(row, col) {
                fold(v.clone());
            }
        }
        for (r, c, v) in &self.buffer {
            if *r == row && *c == col {
                fold(v.clone());
            }
        }
        acc.filter(|v| !self.s.is_zero(v))
    }

    /// Number of hierarchy levels currently materialized (live plus
    /// sealed).
    pub fn depth(&self) -> usize {
        self.levels
            .iter()
            .chain(self.sealed.iter())
            .filter(|l| l.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use semiring::{MinPlus, PlusTimes};

    #[test]
    fn snapshot_equals_flat_build() {
        let s = PlusTimes::<f64>::new();
        let n = 1u64 << 30;
        let mut rng = StdRng::seed_from_u64(1);
        let mut stream = StreamingMatrix::new(n, n, s);
        let mut flat = Coo::new(n, n);
        for _ in 0..20_000 {
            let (r, c) = (rng.gen_range(0..1000), rng.gen_range(0..1000));
            let v = rng.gen::<f64>() + 0.5;
            stream.insert(r, c, v);
            flat.push(r, c, v);
        }
        assert_eq!(stream.snapshot(), flat.build_dcsr(s));
        assert_eq!(stream.inserted(), 20_000);
    }

    #[test]
    fn duplicate_keys_accumulate_with_the_semiring() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(16, 16, s);
        for _ in 0..3 {
            stream.insert(1, 2, 2.0);
        }
        assert_eq!(stream.get(1, 2), Some(6.0));
        // min-plus stream keeps the minimum observation.
        let sm = MinPlus::<f64>::new();
        let mut stream = StreamingMatrix::new(16, 16, sm);
        stream.insert(0, 0, 5.0);
        stream.insert(0, 0, 2.0);
        stream.insert(0, 0, 7.0);
        assert_eq!(stream.get(0, 0), Some(2.0));
        assert_eq!(stream.snapshot().get(0, 0), Some(&2.0));
    }

    #[test]
    fn reads_see_buffered_inserts_immediately() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(16, 16, s);
        stream.insert(3, 4, 1.5); // stays in the buffer (< BUFFER_CAP)
        assert_eq!(stream.get(3, 4), Some(1.5));
        assert_eq!(stream.get(4, 3), None);
    }

    #[test]
    fn hierarchy_grows_logarithmically() {
        let s = PlusTimes::<f64>::new();
        let n = 1u64 << 40;
        let mut stream = StreamingMatrix::new(n, n, s);
        let mut rng = StdRng::seed_from_u64(2);
        // Insert far more than one buffer's worth of *distinct* keys.
        for _ in 0..100_000 {
            stream.insert(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
        }
        let snap = stream.snapshot();
        assert!(snap.nnz() > 99_000); // distinct with high probability
        assert!(
            stream.depth() <= 4,
            "hierarchy too deep: {}",
            stream.depth()
        );
    }

    #[test]
    fn cancellation_to_zero_is_respected() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(8, 8, s);
        stream.insert(1, 1, 2.0);
        stream.insert(1, 1, -2.0);
        assert_eq!(stream.get(1, 1), None);
        assert_eq!(stream.snapshot().nnz(), 0);
    }

    #[test]
    fn attached_ctx_observes_merge_traffic() {
        let s = PlusTimes::<f64>::new();
        let ctx = Arc::new(OpCtx::new());
        let n = 1u64 << 30;
        let mut stream = StreamingMatrix::new(n, n, s).with_ctx(Arc::clone(&ctx));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 * stream.config().buffer_cap {
            stream.insert(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
        }
        let _ = stream.snapshot();
        let snap = ctx.metrics().snapshot();
        assert!(
            snap.kernel(crate::metrics::Kernel::EwiseAdd).calls > 0,
            "cascade and snapshot merges should be visible in the ctx"
        );
        let sm = snap.kernel(crate::metrics::Kernel::StreamMerge);
        assert!(
            sm.calls > 0 && sm.calls <= snap.kernel(crate::metrics::Kernel::EwiseAdd).calls,
            "every stream merge is also an ewise_add: {sm:?}"
        );
    }

    #[test]
    fn config_controls_cascade_shape() {
        let s = PlusTimes::<f64>::new();
        let cfg = StreamConfig::new().with_buffer_cap(8).with_growth(2);
        assert_eq!(cfg.level_cap(0), 16);
        assert_eq!(cfg.level_cap(2), 64);
        let mut stream = StreamingMatrix::with_config(1 << 30, 1 << 30, s, cfg);
        assert_eq!(stream.config(), cfg);
        // 64 distinct keys through an 8-entry buffer forces cascades that
        // the default config would have absorbed in its level-0 buffer.
        for i in 0..64u64 {
            stream.insert(i, i, 1.0);
        }
        assert!(stream.depth() >= 1, "tiny buffer must have flushed");
        let mut flat = Coo::new(1 << 30, 1 << 30);
        flat.extend((0..64u64).map(|i| (i, i, 1.0)));
        assert_eq!(stream.snapshot(), flat.build_dcsr(s));
    }

    #[test]
    fn flush_and_level_introspection_round_trip() {
        let s = PlusTimes::<f64>::new();
        let cfg = StreamConfig::new().with_buffer_cap(16).with_growth(4);
        let mut stream = StreamingMatrix::with_config(1 << 20, 1 << 20, s, cfg);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            stream.insert(rng.gen_range(0..500), rng.gen_range(0..500), 1.0);
        }
        assert!(stream.buffered() > 0 || stream.depth() > 0);
        stream.flush();
        assert_eq!(stream.buffered(), 0);

        // Rebuild from the exposed levels: observationally identical.
        let levels = stream.level_slots().to_vec();
        let mut rebuilt =
            StreamingMatrix::from_levels(1 << 20, 1 << 20, s, cfg, levels, stream.inserted());
        assert_eq!(rebuilt.inserted(), stream.inserted());
        assert_eq!(rebuilt.depth(), stream.depth());
        assert_eq!(rebuilt.snapshot(), stream.snapshot());
        // Both continue identically after restore.
        rebuilt.insert(3, 3, 2.5);
        stream.insert(3, 3, 2.5);
        assert_eq!(rebuilt.snapshot(), stream.snapshot());
    }

    #[test]
    #[should_panic(expected = "growth")]
    fn degenerate_growth_rejected() {
        let _ = StreamConfig::new().with_growth(1);
    }

    #[test]
    fn delta_snapshot_returns_only_new_entries() {
        let s = PlusTimes::<u64>::new();
        let mut stream = StreamingMatrix::new(64, 64, s);
        stream.insert(1, 1, 10);
        stream.insert(2, 2, 20);
        let d1 = stream.delta_snapshot();
        assert_eq!(d1.get(1, 1), Some(&10));
        assert_eq!(d1.nnz(), 2);
        assert_eq!(stream.delta_watermark(), 2);

        stream.insert(3, 3, 30);
        let d2 = stream.delta_snapshot();
        assert_eq!(d2.nnz(), 1);
        assert_eq!(d2.get(3, 3), Some(&30));
        assert_eq!(d2.get(1, 1), None, "old entries stay sealed");

        // Quiet period: empty delta, full snapshot still complete.
        assert_eq!(stream.delta_snapshot().nnz(), 0);
        let full = stream.snapshot();
        assert_eq!(full.nnz(), 3);
        assert_eq!(full.get(2, 2), Some(&20));
    }

    #[test]
    fn full_snapshot_is_fold_of_deltas() {
        let s = PlusTimes::<u64>::new();
        let n = 1u64 << 30;
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = StreamConfig::new().with_buffer_cap(32).with_growth(2);
        let mut stream = StreamingMatrix::with_config(n, n, s, cfg);
        let mut folded = Dcsr::empty(n, n);
        for round in 0..10 {
            for _ in 0..(round * 37 + 5) {
                let (r, c) = (rng.gen_range(0..200), rng.gen_range(0..200));
                stream.insert(r, c, rng.gen_range(1..100u64));
            }
            let delta = stream.delta_snapshot();
            folded = crate::ops::ewise_add(&folded, &delta, s);
            assert_eq!(stream.snapshot(), folded, "full(t) = fold(⊕, deltas)");
        }
    }

    #[test]
    fn delta_respects_cancellation_and_reset() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(8, 8, s);
        stream.insert(1, 1, 2.0);
        stream.insert(1, 1, -2.0);
        assert_eq!(stream.delta_snapshot().nnz(), 0);
        stream.insert(2, 2, 1.0);
        let _ = stream.delta_snapshot();
        stream.reset();
        assert_eq!(stream.snapshot().nnz(), 0, "reset clears sealed layers");
        assert_eq!(stream.delta_watermark(), stream.inserted());
        stream.insert(3, 3, 4.0);
        assert_eq!(stream.delta_snapshot().nnz(), 1);
    }

    #[test]
    fn streaming_continues_after_snapshot() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(8, 8, s);
        stream.insert(0, 0, 1.0);
        let _ = stream.snapshot();
        stream.insert(0, 0, 1.0);
        assert_eq!(stream.get(0, 0), Some(2.0));
        assert_eq!(stream.snapshot().get(0, 0), Some(&2.0));
    }
}
