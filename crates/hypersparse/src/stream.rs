//! Hierarchical hypersparse streaming inserts.
//!
//! The paper's introduction cites "75,000,000,000 streaming
//! inserts/second using hierarchical hypersparse GraphBLAS matrices"
//! (Kepner et al., IPDPSW GrAPL 2020): instead of updating one big sparse
//! matrix per event (an `O(nnz)` rebuild each time), inserts land in a
//! small unsorted buffer, and a *hierarchy* of increasingly large
//! compressed layers absorbs overflow — an LSM-tree over associative
//! array algebra, where the merge operation is exactly element-wise ⊕.
//!
//! [`StreamingMatrix`] reproduces that design: `O(1)` amortized `insert`,
//! layered ⊕-merges on overflow, and a `snapshot` that folds the whole
//! hierarchy. Correctness is asserted against a single flat build in the
//! tests; the insert-rate advantage over per-event rebuilds is what the
//! cited paper measures.

use std::sync::Arc;

use semiring::traits::Semiring;

use crate::coo::Coo;
use crate::ctx::{with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::ops::ewise_add_ctx;
use crate::Ix;

/// Capacity of the level-0 insert buffer.
const BUFFER_CAP: usize = 4096;

/// Growth factor between hierarchy levels: level `k` holds up to
/// `BUFFER_CAP · GROWTH^k` entries before cascading into level `k+1`.
const GROWTH: usize = 8;

/// An append-optimized hypersparse matrix: an unsorted insert buffer over
/// a hierarchy of ⊕-merged [`Dcsr`] layers.
#[derive(Clone, Debug)]
pub struct StreamingMatrix<S: Semiring> {
    nrows: Ix,
    ncols: Ix,
    s: S,
    buffer: Vec<(Ix, Ix, S::Value)>,
    levels: Vec<Option<Dcsr<S::Value>>>,
    inserted: u64,
    ctx: Option<Arc<OpCtx>>,
}

impl<S: Semiring> StreamingMatrix<S> {
    /// An empty streaming matrix over an `nrows × ncols` key space.
    pub fn new(nrows: Ix, ncols: Ix, s: S) -> Self {
        StreamingMatrix {
            nrows,
            ncols,
            s,
            buffer: Vec::with_capacity(BUFFER_CAP),
            levels: Vec::new(),
            inserted: 0,
            ctx: None,
        }
    }

    /// Route every internal ⊕-merge (cascades and snapshots) through the
    /// given execution context, so its metrics observe the stream's merge
    /// traffic and its workspace arena is reused across cascades.
    pub fn with_ctx(mut self, ctx: Arc<OpCtx>) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// The execution context merges run under, if one was attached.
    pub fn ctx(&self) -> Option<&Arc<OpCtx>> {
        self.ctx.as_ref()
    }

    /// ⊕-merge two layers under the attached context (or the
    /// thread-local default when none is attached).
    fn merge(&self, a: &Dcsr<S::Value>, b: &Dcsr<S::Value>) -> Dcsr<S::Value> {
        match &self.ctx {
            Some(ctx) => ewise_add_ctx(ctx, a, b, self.s),
            None => with_default_ctx(|ctx| ewise_add_ctx(ctx, a, b, self.s)),
        }
    }

    /// Append one event. `O(1)` amortized: a buffer push, with an
    /// occasional cascade of geometrically sized ⊕-merges.
    pub fn insert(&mut self, row: Ix, col: Ix, val: S::Value) {
        assert!(row < self.nrows && col < self.ncols, "key outside space");
        self.buffer.push((row, col, val));
        self.inserted += 1;
        if self.buffer.len() >= BUFFER_CAP {
            self.flush_buffer();
        }
    }

    /// Total events inserted (before ⊕-merging).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Compact the buffer into level 0 and cascade overfull levels.
    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut coo = Coo::new(self.nrows, self.ncols);
        coo.extend(self.buffer.drain(..));
        let mut carry = coo.build_dcsr(self.s);

        let mut k = 0usize;
        loop {
            if self.levels.len() <= k {
                self.levels.push(None);
            }
            match self.levels[k].take() {
                None => {
                    self.levels[k] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = self.merge(&existing, &carry);
                    let cap = BUFFER_CAP * GROWTH.pow(k as u32 + 1);
                    if carry.nnz() <= cap {
                        self.levels[k] = Some(carry);
                        break;
                    }
                    // Level overflows: leave it empty and push the merged
                    // result one level down the hierarchy.
                    k += 1;
                }
            }
        }
    }

    /// Fold the entire hierarchy into one matrix (non-destructive; the
    /// stream remains usable for further inserts).
    pub fn snapshot(&mut self) -> Dcsr<S::Value> {
        self.flush_buffer();
        let mut acc = Dcsr::empty(self.nrows, self.ncols);
        for level in self.levels.iter().flatten() {
            acc = self.merge(&acc, level);
        }
        acc
    }

    /// Point lookup across the hierarchy: ⊕-folds every layer's entry
    /// (plus buffered events), so reads see all inserts immediately.
    pub fn get(&self, row: Ix, col: Ix) -> Option<S::Value> {
        let mut acc: Option<S::Value> = None;
        let mut fold = |v: S::Value| {
            acc = Some(match acc.take() {
                None => v,
                Some(a) => self.s.add(a, v),
            });
        };
        for level in self.levels.iter().flatten() {
            if let Some(v) = level.get(row, col) {
                fold(v.clone());
            }
        }
        for (r, c, v) in &self.buffer {
            if *r == row && *c == col {
                fold(v.clone());
            }
        }
        acc.filter(|v| !self.s.is_zero(v))
    }

    /// Number of hierarchy levels currently materialized.
    pub fn depth(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use semiring::{MinPlus, PlusTimes};

    #[test]
    fn snapshot_equals_flat_build() {
        let s = PlusTimes::<f64>::new();
        let n = 1u64 << 30;
        let mut rng = StdRng::seed_from_u64(1);
        let mut stream = StreamingMatrix::new(n, n, s);
        let mut flat = Coo::new(n, n);
        for _ in 0..20_000 {
            let (r, c) = (rng.gen_range(0..1000), rng.gen_range(0..1000));
            let v = rng.gen::<f64>() + 0.5;
            stream.insert(r, c, v);
            flat.push(r, c, v);
        }
        assert_eq!(stream.snapshot(), flat.build_dcsr(s));
        assert_eq!(stream.inserted(), 20_000);
    }

    #[test]
    fn duplicate_keys_accumulate_with_the_semiring() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(16, 16, s);
        for _ in 0..3 {
            stream.insert(1, 2, 2.0);
        }
        assert_eq!(stream.get(1, 2), Some(6.0));
        // min-plus stream keeps the minimum observation.
        let sm = MinPlus::<f64>::new();
        let mut stream = StreamingMatrix::new(16, 16, sm);
        stream.insert(0, 0, 5.0);
        stream.insert(0, 0, 2.0);
        stream.insert(0, 0, 7.0);
        assert_eq!(stream.get(0, 0), Some(2.0));
        assert_eq!(stream.snapshot().get(0, 0), Some(&2.0));
    }

    #[test]
    fn reads_see_buffered_inserts_immediately() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(16, 16, s);
        stream.insert(3, 4, 1.5); // stays in the buffer (< BUFFER_CAP)
        assert_eq!(stream.get(3, 4), Some(1.5));
        assert_eq!(stream.get(4, 3), None);
    }

    #[test]
    fn hierarchy_grows_logarithmically() {
        let s = PlusTimes::<f64>::new();
        let n = 1u64 << 40;
        let mut stream = StreamingMatrix::new(n, n, s);
        let mut rng = StdRng::seed_from_u64(2);
        // Insert far more than one buffer's worth of *distinct* keys.
        for _ in 0..100_000 {
            stream.insert(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
        }
        let snap = stream.snapshot();
        assert!(snap.nnz() > 99_000); // distinct with high probability
        assert!(
            stream.depth() <= 4,
            "hierarchy too deep: {}",
            stream.depth()
        );
    }

    #[test]
    fn cancellation_to_zero_is_respected() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(8, 8, s);
        stream.insert(1, 1, 2.0);
        stream.insert(1, 1, -2.0);
        assert_eq!(stream.get(1, 1), None);
        assert_eq!(stream.snapshot().nnz(), 0);
    }

    #[test]
    fn attached_ctx_observes_merge_traffic() {
        let s = PlusTimes::<f64>::new();
        let ctx = Arc::new(OpCtx::new());
        let n = 1u64 << 30;
        let mut stream = StreamingMatrix::new(n, n, s).with_ctx(Arc::clone(&ctx));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 * BUFFER_CAP {
            stream.insert(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
        }
        let _ = stream.snapshot();
        let snap = ctx.metrics().snapshot();
        assert!(
            snap.kernel(crate::metrics::Kernel::EwiseAdd).calls > 0,
            "cascade and snapshot merges should be visible in the ctx"
        );
    }

    #[test]
    fn streaming_continues_after_snapshot() {
        let s = PlusTimes::<f64>::new();
        let mut stream = StreamingMatrix::new(8, 8, s);
        stream.insert(0, 0, 1.0);
        let _ = stream.snapshot();
        stream.insert(0, 0, 1.0);
        assert_eq!(stream.get(0, 0), Some(2.0));
        assert_eq!(stream.snapshot().get(0, 0), Some(&2.0));
    }
}
