//! The opaque auto-switching matrix — this crate's `GrB_Matrix`.
//!
//! The paper's conclusion credits the GraphBLAS design with supporting
//! "sparse, hypersparse, bitmap, and full" representations and switching
//! between them "automatically, with little or no involvement from the
//! user application". [`Matrix`] reproduces that: it wraps one of the
//! four storage formats and re-evaluates the choice ([`FormatPolicy`])
//! after every operation, based on the occupancy statistics of the
//! result.
//!
//! Computation happens in the hypersparse compute format ([`Dcsr`]);
//! dense/bitmap/CSR are *storage* formats with cheap conversions and
//! format-native SpMV (benchmarked in the Fig. 4 harness).

use std::borrow::Cow;
use std::sync::{Arc, OnceLock};

use semiring::traits::{Monoid, Semiring, UnaryOp, Value};

use crate::bitmap::Bitmap;
use crate::coo::Coo;
use crate::csr::Csr;
use crate::ctx::{with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::dense::DenseMat;
use crate::error::{Axis, OpError};
use crate::ops;
use crate::vector::SparseVec;
use crate::Ix;

/// Storage format tags (Fig. 4's regimes plus bitmap).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Format {
    /// Full storage: `nnz ≈ nrows·ncols`.
    Dense,
    /// Full value array + presence bits: moderate density, O(1) updates.
    Bitmap,
    /// Compressed sparse rows: `nnz ≈ nrows`.
    Csr,
    /// Doubly-compressed (hypersparse): `nnz ≪ nrows`.
    Dcsr,
}

/// Automatic format-selection thresholds, mirroring SuiteSparse's
/// `hyper_switch`/`bitmap_switch` controls.
#[derive(Copy, Clone, Debug)]
pub struct FormatPolicy {
    /// Occupancy (`nnz / cells`) at or above which full storage wins.
    pub dense_switch: f64,
    /// Occupancy at or above which bitmap storage wins.
    pub bitmap_switch: f64,
    /// Fraction of non-empty rows below which CSR degrades to DCSR.
    pub hyper_switch: f64,
    /// Never materialize dense/bitmap beyond this many cells.
    pub max_cells: u64,
    /// Never materialize a CSR row-pointer array beyond this many rows.
    pub max_rows: u64,
}

impl Default for FormatPolicy {
    fn default() -> Self {
        FormatPolicy {
            dense_switch: 0.5,
            bitmap_switch: 0.05,
            hyper_switch: 1.0 / 16.0,
            max_cells: 1 << 24,
            max_rows: 1 << 26,
        }
    }
}

impl FormatPolicy {
    /// Pick a format for a matrix with the given statistics.
    pub fn decide(&self, nrows: Ix, ncols: Ix, nnz: usize, nonempty_rows: usize) -> Format {
        let cells = (nrows as u128) * (ncols as u128);
        if cells > 0 && cells <= self.max_cells as u128 {
            let occupancy = nnz as f64 / cells as f64;
            if occupancy >= self.dense_switch {
                return Format::Dense;
            }
            if occupancy >= self.bitmap_switch {
                return Format::Bitmap;
            }
        }
        if nrows <= self.max_rows && nrows > 0 {
            let row_fill = nonempty_rows as f64 / nrows as f64;
            if row_fill >= self.hyper_switch {
                return Format::Csr;
            }
        }
        Format::Dcsr
    }
}

#[derive(Clone, Debug)]
enum Repr<T> {
    Dense(DenseMat<T>),
    Bitmap(Bitmap<T>),
    Csr(Csr<T>),
    Dcsr(Dcsr<T>),
}

/// An opaque matrix that owns its storage-format decision.
///
/// Also owns a lazily-built **transpose cache** feeding the pull
/// direction of [`Matrix::vxm`]/[`Matrix::mxv`]: built on first
/// [`Matrix::cached_transpose`], shared by clones (the content is
/// identical), and invalidated by mutation ([`Matrix::set_element`]) or
/// by any operation that produces a new matrix.
#[derive(Clone, Debug)]
pub struct Matrix<T> {
    repr: Repr<T>,
    policy: FormatPolicy,
    at_cache: Arc<OnceLock<Arc<Dcsr<T>>>>,
}

impl<T: Value> Matrix<T> {
    /// An empty matrix (hypersparse until data says otherwise).
    pub fn empty(nrows: Ix, ncols: Ix) -> Self {
        Matrix {
            repr: Repr::Dcsr(Dcsr::empty(nrows, ncols)),
            policy: FormatPolicy::default(),
            at_cache: Arc::new(OnceLock::new()),
        }
    }

    /// Build from triplets (duplicates ⊕-merge) and auto-select a format.
    pub fn from_triplets<S: Semiring<Value = T>>(
        nrows: Ix,
        ncols: Ix,
        triplets: Vec<(Ix, Ix, T)>,
        s: S,
    ) -> Self {
        let mut coo = Coo::new(nrows, ncols);
        coo.extend(triplets);
        Self::from_dcsr(coo.build_dcsr(s), s)
    }

    /// Wrap a hypersparse matrix, letting the default policy choose the
    /// storage format (the semiring provides the dense fill value).
    pub fn from_dcsr<S: Semiring<Value = T>>(d: Dcsr<T>, s: S) -> Self {
        Self::from_dcsr_with_policy(d, s, FormatPolicy::default())
    }

    /// As [`Matrix::from_dcsr`] with an explicit policy.
    pub fn from_dcsr_with_policy<S: Semiring<Value = T>>(
        d: Dcsr<T>,
        s: S,
        policy: FormatPolicy,
    ) -> Self {
        let fmt = policy.decide(d.nrows(), d.ncols(), d.nnz(), d.n_nonempty_rows());
        let repr = match fmt {
            Format::Dense => Repr::Dense(DenseMat::from_dcsr(&d, s)),
            Format::Bitmap => Repr::Bitmap(Bitmap::from_dcsr(&d, s)),
            Format::Csr => Repr::Csr(Csr::from_dcsr(&d)),
            Format::Dcsr => Repr::Dcsr(d),
        };
        Matrix {
            repr,
            policy,
            at_cache: Arc::new(OnceLock::new()),
        }
    }

    /// Force a specific storage format (for the Fig. 4 and ablation
    /// studies; production callers should let the policy decide).
    pub fn with_format<S: Semiring<Value = T>>(self, fmt: Format, s: S) -> Self {
        let policy = self.policy;
        let d = self.into_dcsr();
        let repr = match fmt {
            Format::Dense => Repr::Dense(DenseMat::from_dcsr(&d, s)),
            Format::Bitmap => Repr::Bitmap(Bitmap::from_dcsr(&d, s)),
            Format::Csr => Repr::Csr(Csr::from_dcsr(&d)),
            Format::Dcsr => Repr::Dcsr(d),
        };
        Matrix {
            repr,
            policy,
            at_cache: Arc::new(OnceLock::new()),
        }
    }

    /// Replace the format policy (applies to subsequent operations).
    pub fn with_policy(mut self, policy: FormatPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The current storage format.
    pub fn format(&self) -> Format {
        match &self.repr {
            Repr::Dense(_) => Format::Dense,
            Repr::Bitmap(_) => Format::Bitmap,
            Repr::Csr(_) => Format::Csr,
            Repr::Dcsr(_) => Format::Dcsr,
        }
    }

    /// Row dimension of the key space.
    pub fn nrows(&self) -> Ix {
        match &self.repr {
            Repr::Dense(m) => m.nrows(),
            Repr::Bitmap(m) => m.nrows(),
            Repr::Csr(m) => m.nrows(),
            Repr::Dcsr(m) => m.nrows(),
        }
    }

    /// Column dimension of the key space.
    pub fn ncols(&self) -> Ix {
        match &self.repr {
            Repr::Dense(m) => m.ncols(),
            Repr::Bitmap(m) => m.ncols(),
            Repr::Csr(m) => m.ncols(),
            Repr::Dcsr(m) => m.ncols(),
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Dense(m) => m.nnz(),
            Repr::Bitmap(m) => m.nnz(),
            Repr::Csr(m) => m.nnz(),
            Repr::Dcsr(m) => m.nnz(),
        }
    }

    /// Heap bytes of the current representation — the Fig. 4 metric.
    pub fn bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(m) => m.bytes(),
            Repr::Bitmap(m) => m.bytes(),
            Repr::Csr(m) => m.bytes(),
            Repr::Dcsr(m) => m.bytes(),
        }
    }

    /// Point lookup (`None` for absent/zero cells, including dense cells
    /// holding the fill value).
    pub fn get(&self, row: Ix, col: Ix) -> Option<&T> {
        match &self.repr {
            Repr::Dense(m) => {
                let v = m.get(row, col);
                (v != m.zero_value()).then_some(v)
            }
            Repr::Bitmap(m) => m.get(row, col),
            Repr::Csr(m) => m.get(row, col),
            Repr::Dcsr(m) => m.get(row, col),
        }
    }

    /// View as the hypersparse compute format, converting if needed.
    pub fn as_dcsr(&self) -> Cow<'_, Dcsr<T>> {
        match &self.repr {
            Repr::Dense(m) => Cow::Owned(m.to_dcsr_by_fill()),
            Repr::Bitmap(m) => Cow::Owned(m.to_dcsr()),
            Repr::Csr(m) => Cow::Owned(m.to_dcsr()),
            Repr::Dcsr(m) => Cow::Borrowed(m),
        }
    }

    /// Consume into the hypersparse compute format.
    pub fn into_dcsr(self) -> Dcsr<T> {
        match self.repr {
            Repr::Dense(m) => m.to_dcsr_by_fill(),
            Repr::Bitmap(m) => m.to_dcsr(),
            Repr::Csr(m) => m.to_dcsr(),
            Repr::Dcsr(m) => m,
        }
    }

    /// All entries as owned triplets in `(row, col)` order.
    pub fn to_triplets(&self) -> Vec<(Ix, Ix, T)> {
        self.as_dcsr().to_triplets()
    }

    /// Re-run format selection on an operation result, counting the
    /// storage-format change (if any) in the context's metrics.
    fn wrap_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, d: Dcsr<T>, s: S) -> Self {
        let out = Self::from_dcsr_with_policy(d, s, self.policy);
        if out.format() != self.format() {
            ctx.metrics().record_format_switch();
        }
        out
    }

    // ---- semiring operations (each re-runs format selection) ----
    //
    // Every operation comes in up to four spellings:
    //   `op`         — panics on misuse, thread-local default ctx;
    //   `try_op`     — returns `Result<_, OpError>`, default ctx;
    //   `op_ctx`     — panics on misuse, explicit `OpCtx`;
    //   `try_op_ctx` — fallible AND explicit ctx (the primitive the
    //                  other three wrap).

    /// Array multiplication `C = A ⊕.⊗ B`.
    pub fn mxm<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        self.try_mxm(other, s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::mxm`]: dimension mismatch becomes an error.
    pub fn try_mxm<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_mxm_ctx(ctx, other, s))
    }

    /// [`Matrix::mxm`] through an explicit execution context.
    pub fn mxm_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, other: &Self, s: S) -> Self {
        self.try_mxm_ctx(ctx, other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::mxm`] through an explicit execution context.
    pub fn try_mxm_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        if self.ncols() != other.nrows() {
            return Err(OpError::DimensionMismatch {
                op: "mxm",
                a: (self.nrows(), self.ncols()),
                b: (other.nrows(), other.ncols()),
                rule: "inner dimensions differ",
            });
        }
        Ok(self.wrap_ctx(
            ctx,
            ops::mxm_ctx(ctx, &self.as_dcsr(), &other.as_dcsr(), s),
            s,
        ))
    }

    /// Masked array multiplication (see [`ops::mxm_masked`]).
    pub fn mxm_masked<S: Semiring<Value = T>, M: Value>(
        &self,
        other: &Self,
        mask: &Matrix<M>,
        complement: bool,
        s: S,
    ) -> Self {
        self.try_mxm_masked(other, mask, complement, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::mxm_masked`]: dimension mismatch (inner
    /// dimensions or the mask's key space) becomes an error.
    pub fn try_mxm_masked<S: Semiring<Value = T>, M: Value>(
        &self,
        other: &Self,
        mask: &Matrix<M>,
        complement: bool,
        s: S,
    ) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_mxm_masked_ctx(ctx, other, mask, complement, s))
    }

    /// [`Matrix::mxm_masked`] through an explicit execution context.
    pub fn mxm_masked_ctx<S: Semiring<Value = T>, M: Value>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        mask: &Matrix<M>,
        complement: bool,
        s: S,
    ) -> Self {
        self.try_mxm_masked_ctx(ctx, other, mask, complement, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::mxm_masked`] through an explicit context.
    pub fn try_mxm_masked_ctx<S: Semiring<Value = T>, M: Value>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        mask: &Matrix<M>,
        complement: bool,
        s: S,
    ) -> Result<Self, OpError> {
        Ok(self.wrap_ctx(
            ctx,
            ops::try_mxm_masked_ctx(
                ctx,
                &self.as_dcsr(),
                &other.as_dcsr(),
                &mask.as_dcsr(),
                complement,
                s,
            )?,
            s,
        ))
    }

    fn check_same_space(&self, other: &Self, op: &'static str) -> Result<(), OpError> {
        if (self.nrows(), self.ncols()) != (other.nrows(), other.ncols()) {
            return Err(OpError::DimensionMismatch {
                op,
                a: (self.nrows(), self.ncols()),
                b: (other.nrows(), other.ncols()),
                rule: "element-wise operands must share a key space",
            });
        }
        Ok(())
    }

    /// Element-wise addition `C = A ⊕ B` (pattern union).
    pub fn ewise_add<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        self.try_ewise_add(other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::ewise_add`].
    pub fn try_ewise_add<S: Semiring<Value = T>>(
        &self,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_ewise_add_ctx(ctx, other, s))
    }

    /// [`Matrix::ewise_add`] through an explicit execution context.
    pub fn ewise_add_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, other: &Self, s: S) -> Self {
        self.try_ewise_add_ctx(ctx, other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::ewise_add`] through an explicit context.
    pub fn try_ewise_add_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        self.check_same_space(other, "ewise_add")?;
        Ok(self.wrap_ctx(
            ctx,
            ops::ewise_add_ctx(ctx, &self.as_dcsr(), &other.as_dcsr(), s),
            s,
        ))
    }

    /// Element-wise multiplication `C = A ⊗ B` (pattern intersection).
    pub fn ewise_mul<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        self.try_ewise_mul(other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::ewise_mul`].
    pub fn try_ewise_mul<S: Semiring<Value = T>>(
        &self,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_ewise_mul_ctx(ctx, other, s))
    }

    /// [`Matrix::ewise_mul`] through an explicit execution context.
    pub fn ewise_mul_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, other: &Self, s: S) -> Self {
        self.try_ewise_mul_ctx(ctx, other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::ewise_mul`] through an explicit context.
    pub fn try_ewise_mul_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        self.check_same_space(other, "ewise_mul")?;
        Ok(self.wrap_ctx(
            ctx,
            ops::ewise_mul_ctx(ctx, &self.as_dcsr(), &other.as_dcsr(), s),
            s,
        ))
    }

    /// Transpose.
    pub fn transpose<S: Semiring<Value = T>>(&self, s: S) -> Self {
        with_default_ctx(|ctx| self.transpose_ctx(ctx, s))
    }

    /// [`Matrix::transpose`] through an explicit execution context.
    pub fn transpose_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, s: S) -> Self {
        self.wrap_ctx(ctx, ops::transpose_ctx(ctx, &self.as_dcsr()), s)
    }

    /// Apply a unary operator to every stored value.
    pub fn apply<S: Semiring<Value = T>, O: UnaryOp<T, T>>(&self, op: O, s: S) -> Self {
        with_default_ctx(|ctx| self.apply_ctx(ctx, op, s))
    }

    /// [`Matrix::apply`] through an explicit execution context.
    pub fn apply_ctx<S: Semiring<Value = T>, O: UnaryOp<T, T>>(
        &self,
        ctx: &OpCtx,
        op: O,
        s: S,
    ) -> Self {
        self.wrap_ctx(ctx, ops::apply_ctx(ctx, &self.as_dcsr(), op, s), s)
    }

    /// Keep entries satisfying `keep(row, col, value)`.
    pub fn select<S: Semiring<Value = T>, F: Fn(Ix, Ix, &T) -> bool>(&self, keep: F, s: S) -> Self {
        with_default_ctx(|ctx| self.select_ctx(ctx, keep, s))
    }

    /// [`Matrix::select`] through an explicit execution context.
    pub fn select_ctx<S: Semiring<Value = T>, F: Fn(Ix, Ix, &T) -> bool>(
        &self,
        ctx: &OpCtx,
        keep: F,
        s: S,
    ) -> Self {
        self.wrap_ctx(ctx, ops::select_ctx(ctx, &self.as_dcsr(), keep), s)
    }

    /// Submatrix extraction with reindexing. Out-of-range selector
    /// indices address empty key-space rows/columns and contribute
    /// nothing; use [`Matrix::try_extract`] to treat them as errors.
    pub fn extract<S: Semiring<Value = T>>(&self, rows: &[Ix], cols: &[Ix], s: S) -> Self {
        with_default_ctx(|ctx| self.extract_ctx(ctx, rows, cols, s))
    }

    /// [`Matrix::extract`] through an explicit execution context.
    pub fn extract_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        rows: &[Ix],
        cols: &[Ix],
        s: S,
    ) -> Self {
        self.wrap_ctx(ctx, ops::extract_ctx(ctx, &self.as_dcsr(), rows, cols), s)
    }

    /// Fallible [`Matrix::extract`]: selector indices must lie inside
    /// the key space.
    pub fn try_extract<S: Semiring<Value = T>>(
        &self,
        rows: &[Ix],
        cols: &[Ix],
        s: S,
    ) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_extract_ctx(ctx, rows, cols, s))
    }

    /// Fallible [`Matrix::extract`] through an explicit context.
    pub fn try_extract_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        rows: &[Ix],
        cols: &[Ix],
        s: S,
    ) -> Result<Self, OpError> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.nrows()) {
            return Err(OpError::IndexOutOfBounds {
                axis: Axis::Rows,
                index: bad,
                bound: self.nrows(),
            });
        }
        if let Some(&bad) = cols.iter().find(|&&c| c >= self.ncols()) {
            return Err(OpError::IndexOutOfBounds {
                axis: Axis::Cols,
                index: bad,
                bound: self.ncols(),
            });
        }
        Ok(self.extract_ctx(ctx, rows, cols, s))
    }

    /// Kronecker product.
    pub fn kron<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        with_default_ctx(|ctx| self.kron_ctx(ctx, other, s))
    }

    /// [`Matrix::kron`] through an explicit execution context.
    pub fn kron_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, other: &Self, s: S) -> Self {
        self.wrap_ctx(
            ctx,
            ops::kron_ctx(ctx, &self.as_dcsr(), &other.as_dcsr(), s),
            s,
        )
    }

    /// Submatrix assignment `A(rows, cols) = B` (see [`ops::assign`]).
    pub fn assign<S: Semiring<Value = T>>(&self, rows: &[Ix], cols: &[Ix], b: &Self, s: S) -> Self {
        with_default_ctx(|ctx| self.assign_ctx(ctx, rows, cols, b, s))
    }

    /// [`Matrix::assign`] through an explicit execution context.
    pub fn assign_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        rows: &[Ix],
        cols: &[Ix],
        b: &Self,
        s: S,
    ) -> Self {
        self.wrap_ctx(
            ctx,
            ops::assign_ctx(ctx, &self.as_dcsr(), rows, cols, &b.as_dcsr()),
            s,
        )
    }

    /// Stack `self` on top of `other`.
    pub fn concat_rows<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        self.try_concat_rows(other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::concat_rows`]: column mismatch or row-space
    /// overflow become errors.
    pub fn try_concat_rows<S: Semiring<Value = T>>(
        &self,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_concat_rows_ctx(ctx, other, s))
    }

    /// Fallible [`Matrix::concat_rows`] through an explicit context.
    pub fn try_concat_rows_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        if self.ncols() != other.ncols() {
            return Err(OpError::DimensionMismatch {
                op: "concat_rows",
                a: (self.nrows(), self.ncols()),
                b: (other.nrows(), other.ncols()),
                rule: "concat_rows column conformance",
            });
        }
        if self.nrows().checked_add(other.nrows()).is_none() {
            return Err(OpError::TooLargeToMaterialize {
                op: "concat_rows",
                axis: Axis::Rows,
                extents: (self.nrows(), other.nrows()),
            });
        }
        Ok(self.wrap_ctx(
            ctx,
            ops::concat_rows_ctx(ctx, &self.as_dcsr(), &other.as_dcsr()),
            s,
        ))
    }

    /// Place `self` to the left of `other`.
    pub fn concat_cols<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        self.try_concat_cols(other, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::concat_cols`]: row mismatch or column-space
    /// overflow become errors.
    pub fn try_concat_cols<S: Semiring<Value = T>>(
        &self,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        with_default_ctx(|ctx| self.try_concat_cols_ctx(ctx, other, s))
    }

    /// Fallible [`Matrix::concat_cols`] through an explicit context.
    pub fn try_concat_cols_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        other: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        if self.nrows() != other.nrows() {
            return Err(OpError::DimensionMismatch {
                op: "concat_cols",
                a: (self.nrows(), self.ncols()),
                b: (other.nrows(), other.ncols()),
                rule: "concat_cols row conformance",
            });
        }
        if self.ncols().checked_add(other.ncols()).is_none() {
            return Err(OpError::TooLargeToMaterialize {
                op: "concat_cols",
                axis: Axis::Cols,
                extents: (self.ncols(), other.ncols()),
            });
        }
        Ok(self.wrap_ctx(
            ctx,
            ops::concat_cols_ctx(ctx, &self.as_dcsr(), &other.as_dcsr()),
            s,
        ))
    }

    /// The main diagonal as a sparse vector.
    pub fn diag(&self) -> SparseVec<T> {
        ops::diag_of(&self.as_dcsr())
    }

    /// `A^k` over a semiring (`k ≥ 1`).
    pub fn power<S: Semiring<Value = T>>(&self, k: u32, s: S) -> Self {
        with_default_ctx(|ctx| self.power_ctx(ctx, k, s))
    }

    /// [`Matrix::power`] through an explicit execution context.
    pub fn power_ctx<S: Semiring<Value = T>>(&self, ctx: &OpCtx, k: u32, s: S) -> Self {
        self.wrap_ctx(ctx, ops::matrix_power_ctx(ctx, &self.as_dcsr(), k, s), s)
    }

    /// Row reduction `out(i) = ⊕_j A(i,j)` (the `A ⊕.⊗ 𝟙` projection).
    pub fn reduce_rows<M: Monoid<T>>(&self, m: M) -> SparseVec<T> {
        ops::reduce_rows(&self.as_dcsr(), m)
    }

    /// [`Matrix::reduce_rows`] through an explicit execution context.
    pub fn reduce_rows_ctx<M: Monoid<T>>(&self, ctx: &OpCtx, m: M) -> SparseVec<T> {
        ops::reduce_rows_ctx(ctx, &self.as_dcsr(), m)
    }

    /// Column reduction `out(j) = ⊕_i A(i,j)` (the `𝟙 ⊕.⊗ A` projection).
    pub fn reduce_cols<M: Monoid<T>>(&self, m: M) -> SparseVec<T> {
        ops::reduce_cols(&self.as_dcsr(), m)
    }

    /// [`Matrix::reduce_cols`] through an explicit execution context.
    pub fn reduce_cols_ctx<M: Monoid<T>>(&self, ctx: &OpCtx, m: M) -> SparseVec<T> {
        ops::reduce_cols_ctx(ctx, &self.as_dcsr(), m)
    }

    /// Reduce every entry to one scalar.
    pub fn reduce_scalar<M: Monoid<T>>(&self, m: M) -> T {
        ops::reduce_scalar(&self.as_dcsr(), m)
    }

    /// [`Matrix::reduce_scalar`] through an explicit execution context.
    pub fn reduce_scalar_ctx<M: Monoid<T>>(&self, ctx: &OpCtx, m: M) -> T {
        ops::reduce_scalar_ctx(ctx, &self.as_dcsr(), m)
    }

    // ---- transpose cache (feeds the pull direction of vxm/mxv) ----

    /// The transpose in compute format, built on first use via
    /// [`ops::transpose_ctx`] and cached until the matrix mutates.
    /// Clones share the cache (their content is identical); operations
    /// that produce a *new* matrix start with an empty cache.
    pub fn cached_transpose_ctx(&self, ctx: &OpCtx) -> Arc<Dcsr<T>> {
        self.at_cache
            .get_or_init(|| Arc::new(ops::transpose_ctx(ctx, &self.as_dcsr())))
            .clone()
    }

    /// [`Matrix::cached_transpose_ctx`] against the thread-local
    /// default context.
    pub fn cached_transpose(&self) -> Arc<Dcsr<T>> {
        with_default_ctx(|ctx| self.cached_transpose_ctx(ctx))
    }

    /// Whether the transpose is currently materialized. While it is,
    /// [`Matrix::vxm`]/[`Matrix::mxv`] direction-optimize per call.
    pub fn has_cached_transpose(&self) -> bool {
        self.at_cache.get().is_some()
    }

    /// Drop this handle's cached transpose (other clones keep theirs).
    pub fn clear_transpose_cache(&mut self) {
        self.at_cache = Arc::new(OnceLock::new());
    }

    /// Set (or, with a semiring zero, delete) one cell, re-running
    /// format selection and invalidating the transpose cache.
    pub fn set_element<S: Semiring<Value = T>>(&mut self, row: Ix, col: Ix, val: T, s: S) {
        assert!(
            row < self.nrows() && col < self.ncols(),
            "set_element: index out of bounds"
        );
        let mut triplets = self.to_triplets();
        triplets.retain(|(r, c, _)| !(*r == row && *c == col));
        if !s.is_zero(&val) {
            triplets.push((row, col, val));
        }
        let mut coo = Coo::new(self.nrows(), self.ncols());
        coo.extend(triplets);
        // `from_dcsr_with_policy` starts with a fresh (empty) cache —
        // this rebuild is the invalidation.
        *self = Self::from_dcsr_with_policy(coo.build_dcsr(s), s, self.policy);
    }

    /// `vᵀ A` — one frontier-expansion step. Direction-optimized when
    /// the transpose is cached, push otherwise.
    pub fn vxm<S: Semiring<Value = T>>(&self, v: &SparseVec<T>, s: S) -> SparseVec<T> {
        self.try_vxm(v, s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::vxm`]: dimension mismatch becomes an error.
    pub fn try_vxm<S: Semiring<Value = T>>(
        &self,
        v: &SparseVec<T>,
        s: S,
    ) -> Result<SparseVec<T>, OpError> {
        with_default_ctx(|ctx| self.try_vxm_ctx(ctx, v, s))
    }

    /// [`Matrix::vxm`] through an explicit execution context.
    pub fn vxm_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        v: &SparseVec<T>,
        s: S,
    ) -> SparseVec<T> {
        self.try_vxm_ctx(ctx, v, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::vxm`] through an explicit execution context.
    pub fn try_vxm_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        v: &SparseVec<T>,
        s: S,
    ) -> Result<SparseVec<T>, OpError> {
        if v.dim() != self.nrows() {
            return Err(OpError::DimensionMismatch {
                op: "vxm",
                a: (1, v.dim()),
                b: (self.nrows(), self.ncols()),
                rule: "dimension mismatch",
            });
        }
        // Use the transpose if someone already paid for it; never build
        // one mid-multiply.
        let at = self.at_cache.get().cloned();
        Ok(ops::mxv::vxm_opt_ctx(
            ctx,
            v,
            &self.as_dcsr(),
            at.as_deref(),
            s,
        ))
    }

    /// `A v` — sparse row-dot products. Direction-optimized when the
    /// transpose is cached; Dense/Bitmap storage uses format-native
    /// SpMV.
    pub fn mxv<S: Semiring<Value = T>>(&self, v: &SparseVec<T>, s: S) -> SparseVec<T> {
        self.try_mxv(v, s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::mxv`]: dimension mismatch becomes an error.
    pub fn try_mxv<S: Semiring<Value = T>>(
        &self,
        v: &SparseVec<T>,
        s: S,
    ) -> Result<SparseVec<T>, OpError> {
        with_default_ctx(|ctx| self.try_mxv_ctx(ctx, v, s))
    }

    /// [`Matrix::mxv`] through an explicit execution context.
    pub fn mxv_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        v: &SparseVec<T>,
        s: S,
    ) -> SparseVec<T> {
        self.try_mxv_ctx(ctx, v, s)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::mxv`] through an explicit execution context.
    pub fn try_mxv_ctx<S: Semiring<Value = T>>(
        &self,
        ctx: &OpCtx,
        v: &SparseVec<T>,
        s: S,
    ) -> Result<SparseVec<T>, OpError> {
        if v.dim() != self.ncols() {
            return Err(OpError::DimensionMismatch {
                op: "mxv",
                a: (self.nrows(), self.ncols()),
                b: (v.dim(), 1),
                rule: "dimension mismatch",
            });
        }
        if matches!(self.repr, Repr::Csr(_) | Repr::Dcsr(_)) {
            let at = self.at_cache.get().cloned();
            return Ok(ops::mxv::mxv_opt_ctx(
                ctx,
                &self.as_dcsr(),
                at.as_deref(),
                v,
                s,
            ));
        }
        Ok(self.mxv_native(v, s))
    }

    /// Format-native SpMV over the full storage formats.
    fn mxv_native<S: Semiring<Value = T>>(&self, v: &SparseVec<T>, s: S) -> SparseVec<T> {
        match &self.repr {
            // Format-native SpMV for the full formats (no conversion).
            Repr::Dense(m) => {
                let mut idx = Vec::new();
                let mut vals = Vec::new();
                for r in 0..m.nrows() {
                    let mut acc = s.zero();
                    for (i, x) in v.iter() {
                        let a = m.get(r, i);
                        if a != m.zero_value() {
                            let t = s.mul(a.clone(), x.clone());
                            s.add_assign(&mut acc, t);
                        }
                    }
                    if !s.is_zero(&acc) {
                        idx.push(r);
                        vals.push(acc);
                    }
                }
                SparseVec::from_sorted_parts(m.nrows(), idx, vals)
            }
            Repr::Bitmap(m) => {
                let mut idx = Vec::new();
                let mut vals = Vec::new();
                for r in 0..m.nrows() {
                    let mut acc = s.zero();
                    for (i, x) in v.iter() {
                        if let Some(a) = m.get(r, i) {
                            let t = s.mul(a.clone(), x.clone());
                            s.add_assign(&mut acc, t);
                        }
                    }
                    if !s.is_zero(&acc) {
                        idx.push(r);
                        vals.push(acc);
                    }
                }
                SparseVec::from_sorted_parts(m.nrows(), idx, vals)
            }
            // Sparse storage goes through the kernel module instead.
            Repr::Csr(_) | Repr::Dcsr(_) => ops::mxv::mxv(&self.as_dcsr(), v, s),
        }
    }
}

impl<T: Value> PartialEq for Matrix<T> {
    /// Equality is *mathematical*: same key space, same entries —
    /// regardless of storage format.
    fn eq(&self, other: &Self) -> bool {
        self.nrows() == other.nrows()
            && self.ncols() == other.ncols()
            && *self.as_dcsr() == *other.as_dcsr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_dcsr;
    use semiring::{PlusMonoid, PlusTimes};

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    #[test]
    fn policy_picks_fig4_regimes() {
        let p = FormatPolicy::default();
        // nnz ≈ N²: dense.
        assert_eq!(p.decide(64, 64, 3000, 64), Format::Dense);
        // moderate density: bitmap.
        assert_eq!(p.decide(64, 64, 300, 64), Format::Bitmap);
        // nnz ≈ N with most rows occupied: CSR.
        assert_eq!(p.decide(100_000, 100_000, 100_000, 60_000), Format::Csr);
        // nnz ≪ N: hypersparse.
        assert_eq!(p.decide(100_000, 100_000, 50, 50), Format::Dcsr);
        // Huge key space: only DCSR is even possible.
        assert_eq!(p.decide(1 << 60, 1 << 60, 1000, 900), Format::Dcsr);
    }

    #[test]
    fn auto_format_on_construction() {
        let dense = Matrix::from_dcsr(random_dcsr(32, 32, 900, 1, s()), s());
        assert_eq!(dense.format(), Format::Dense);
        let hyper = Matrix::from_dcsr(random_dcsr(1 << 40, 1 << 40, 100, 2, s()), s());
        assert_eq!(hyper.format(), Format::Dcsr);
    }

    #[test]
    fn math_equality_across_formats() {
        let d = random_dcsr(32, 32, 200, 3, s());
        let m = Matrix::from_dcsr(d, s());
        for fmt in [Format::Dense, Format::Bitmap, Format::Csr, Format::Dcsr] {
            let forced = m.clone().with_format(fmt, s());
            assert_eq!(forced.format(), fmt);
            assert_eq!(forced, m);
            assert_eq!(forced.nnz(), m.nnz());
        }
    }

    #[test]
    fn ops_agree_across_all_format_pairs() {
        let a0 = Matrix::from_dcsr(random_dcsr(24, 24, 150, 4, s()), s());
        let b0 = Matrix::from_dcsr(random_dcsr(24, 24, 150, 5, s()), s());
        let want_mxm = a0.mxm(&b0, s());
        let want_add = a0.ewise_add(&b0, s());
        for fa in [Format::Dense, Format::Bitmap, Format::Csr, Format::Dcsr] {
            for fb in [Format::Dense, Format::Bitmap, Format::Csr, Format::Dcsr] {
                let a = a0.clone().with_format(fa, s());
                let b = b0.clone().with_format(fb, s());
                assert_eq!(a.mxm(&b, s()), want_mxm, "{fa:?}·{fb:?}");
                assert_eq!(a.ewise_add(&b, s()), want_add, "{fa:?}+{fb:?}");
            }
        }
    }

    #[test]
    fn mxv_native_formats_agree() {
        let m = Matrix::from_dcsr(random_dcsr(32, 32, 300, 6, s()), s());
        let v = SparseVec::from_entries(32, vec![(0, 1.0), (7, 2.0), (31, 3.0)], s());
        let want = m.clone().with_format(Format::Dcsr, s()).mxv(&v, s());
        for fmt in [Format::Dense, Format::Bitmap, Format::Csr] {
            let got = m.clone().with_format(fmt, s()).mxv(&v, s());
            assert_eq!(got.indices(), want.indices(), "{fmt:?}");
            for (g, w) in got.values().iter().zip(want.values()) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn get_hides_dense_fill() {
        let m = Matrix::from_dcsr(random_dcsr(16, 16, 200, 7, s()), s())
            .with_format(Format::Dense, s());
        assert_eq!(m.format(), Format::Dense);
        // Find an absent coordinate.
        let d = m.as_dcsr().clone();
        let mut absent = None;
        'outer: for r in 0..16 {
            for c in 0..16 {
                if d.get(r, c).is_none() {
                    absent = Some((r, c));
                    break 'outer;
                }
            }
        }
        let (r, c) = absent.expect("some cell is empty");
        assert_eq!(m.get(r, c), None);
    }

    #[test]
    fn reductions_and_bytes() {
        let m = Matrix::from_triplets(8, 8, vec![(0, 1, 2.0), (0, 2, 3.0)], s());
        let r = m.reduce_rows(PlusMonoid::<f64>::default());
        assert_eq!(r.get(&0), Some(&5.0));
        assert_eq!(m.reduce_scalar(PlusMonoid::<f64>::default()), 5.0);
        assert!(m.bytes() > 0);
    }

    #[test]
    fn format_switch_after_densifying_product() {
        // Two moderately sparse operands whose product is dense enough to
        // flip the result's storage to bitmap/dense automatically.
        let a = Matrix::from_dcsr(random_dcsr(32, 32, 256, 8, s()), s());
        let b = Matrix::from_dcsr(random_dcsr(32, 32, 256, 9, s()), s());
        let c = a.mxm(&b, s());
        assert!(
            matches!(c.format(), Format::Dense | Format::Bitmap),
            "product of 25%-dense operands should densify, got {:?} at nnz {}",
            c.format(),
            c.nnz()
        );
    }

    #[test]
    fn transpose_cache_builds_once_and_matches() {
        let m = Matrix::from_dcsr(random_dcsr(1 << 30, 1 << 30, 200, 11, s()), s());
        assert!(!m.has_cached_transpose());
        let at = m.cached_transpose();
        assert!(m.has_cached_transpose());
        assert!(
            std::sync::Arc::ptr_eq(&at, &m.cached_transpose()),
            "second call must reuse, not rebuild"
        );
        assert_eq!(*at, crate::ops::transpose(&m.as_dcsr()));
    }

    #[test]
    fn mutation_invalidates_transpose_cache() {
        let mut m = Matrix::from_dcsr(random_dcsr(1 << 30, 1 << 30, 150, 12, s()), s());
        let _ = m.cached_transpose();
        assert!(m.has_cached_transpose());
        m.set_element(3, 5, 9.5, s());
        assert!(!m.has_cached_transpose(), "set_element must invalidate");
        assert_eq!(m.get(3, 5), Some(&9.5));
        // The rebuilt cache reflects the new entry.
        assert_eq!(m.cached_transpose().get(5, 3), Some(&9.5));
        // Deleting via a semiring zero also invalidates.
        m.set_element(3, 5, 0.0, s());
        assert!(!m.has_cached_transpose());
        assert_eq!(m.get(3, 5), None);
    }

    #[test]
    fn clear_transpose_cache_is_per_handle() {
        let a = Matrix::from_dcsr(random_dcsr(64, 64, 100, 13, s()), s());
        let _ = a.cached_transpose();
        let mut b = a.clone();
        assert!(b.has_cached_transpose(), "clones share the cache");
        b.clear_transpose_cache();
        assert!(!b.has_cached_transpose());
        assert!(a.has_cached_transpose(), "original keeps its cache");
    }

    #[test]
    fn vxm_mxv_agree_with_and_without_cache() {
        let m = Matrix::from_dcsr(random_dcsr(200, 200, 1800, 14, s()), s());
        let v = SparseVec::from_entries(200, (0..150).map(|i| (i, 1.0 + i as f64)).collect(), s());
        let plain_vxm = m.vxm(&v, s());
        let plain_mxv = m.mxv(&v, s());
        let _ = m.cached_transpose();
        // Dense-ish frontier over a cached transpose takes the pull path;
        // results are identical either way.
        assert_eq!(m.vxm(&v, s()), plain_vxm);
        assert_eq!(m.mxv(&v, s()), plain_mxv);
    }

    #[test]
    fn try_vxm_mxv_dimension_errors() {
        let m = Matrix::from_dcsr(random_dcsr(10, 12, 30, 15, s()), s());
        let bad = SparseVec::<f64>::empty(11);
        let e = m.try_vxm(&bad, s()).unwrap_err();
        assert!(e.to_string().contains("vxm: dimension mismatch"), "{e}");
        let e = m.try_mxv(&bad, s()).unwrap_err();
        assert!(e.to_string().contains("mxv: dimension mismatch"), "{e}");
        assert!(m.try_vxm(&SparseVec::empty(10), s()).is_ok());
        assert!(m.try_mxv(&SparseVec::empty(12), s()).is_ok());
    }
}
