//! Coordinate (triplet) builder format.
//!
//! COO is the ingestion format: streaming events append `(row, col, val)`
//! triplets in arrival order; [`Coo::build_dcsr`] sorts, merges duplicates
//! with the semiring ⊕ (so repeated observations of the same edge
//! accumulate, the streaming-insert model of hierarchical hypersparse
//! arrays), drops semiring zeros, and produces a compressed format.

use semiring::traits::{Semiring, Value};

use crate::dcsr::Dcsr;
use crate::Ix;

/// An unsorted triplet buffer.
#[derive(Clone, Debug)]
pub struct Coo<T> {
    nrows: Ix,
    ncols: Ix,
    entries: Vec<(Ix, Ix, T)>,
}

impl<T: Value> Coo<T> {
    /// An empty buffer for an `nrows × ncols` key space.
    pub fn new(nrows: Ix, ncols: Ix) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Append one triplet. Out-of-range indices panic — the key space is
    /// huge by construction, so a violation is a caller bug, not data.
    pub fn push(&mut self, row: Ix, col: Ix, val: T) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row}, {col}) outside {}×{} key space",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, val));
    }

    /// Append many triplets.
    pub fn extend<I: IntoIterator<Item = (Ix, Ix, T)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }

    /// Number of buffered triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no triplets are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Row dimension of the key space.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column dimension of the key space.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Sort, ⊕-merge duplicates, drop zeros, and emit a [`Dcsr`].
    pub fn build_dcsr<S: Semiring<Value = T>>(mut self, s: S) -> Dcsr<T> {
        // Stable sort by (row, col); merge order within a duplicate group
        // is therefore insertion order, keeping ⊕-folding deterministic.
        self.entries.sort_by_key(|a| (a.0, a.1));

        let mut rows: Vec<Ix> = Vec::new();
        let mut rowptr: Vec<usize> = vec![0];
        let mut colidx: Vec<Ix> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<T> = Vec::with_capacity(self.entries.len());

        let mut it = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while let Some((nr, nc, _)) = it.peek() {
                if *nr == r && *nc == c {
                    let (_, _, nv) = it.next().expect("peeked");
                    s.add_assign(&mut v, nv);
                } else {
                    break;
                }
            }
            if s.is_zero(&v) {
                continue;
            }
            if rows.last() != Some(&r) {
                rows.push(r);
                rowptr.push(colidx.len());
            }
            colidx.push(c);
            vals.push(v);
            *rowptr.last_mut().expect("nonempty") = colidx.len();
        }

        Dcsr::from_parts(self.nrows, self.ncols, rows, rowptr, colidx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{MinPlus, PlusTimes};

    #[test]
    fn build_sorts_and_merges_duplicates() {
        let mut c = Coo::new(10, 10);
        c.extend([(3, 2, 1.0), (0, 5, 2.0), (3, 2, 4.0), (3, 1, 7.0)]);
        let m = c.build_dcsr(PlusTimes::<f64>::new());
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(3, 2), Some(&5.0)); // 1 ⊕ 4
        assert_eq!(m.get(0, 5), Some(&2.0));
        assert_eq!(m.get(3, 1), Some(&7.0));
        // Row ids sorted, cols sorted within rows.
        assert_eq!(m.row_ids(), &[0, 3]);
    }

    #[test]
    fn zeros_are_dropped_after_merge() {
        let mut c = Coo::new(4, 4);
        c.extend([(1, 1, 3.0), (1, 1, -3.0), (2, 2, 0.0)]);
        let m = c.build_dcsr(PlusTimes::<f64>::new());
        assert_eq!(m.nnz(), 0);
        assert!(m.row_ids().is_empty());
    }

    #[test]
    fn tropical_merge_uses_min() {
        let mut c = Coo::new(4, 4);
        c.extend([(0, 1, 5.0), (0, 1, 2.0), (0, 1, 9.0)]);
        let m = c.build_dcsr(MinPlus::<f64>::new());
        assert_eq!(m.get(0, 1), Some(&2.0));
    }

    #[test]
    fn tropical_zero_infinity_is_dropped() {
        let mut c = Coo::new(4, 4);
        c.push(0, 1, f64::INFINITY);
        c.push(0, 2, 1.0);
        let m = c.build_dcsr(MinPlus::<f64>::new());
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn huge_key_space_is_fine() {
        let n = 1u64 << 60;
        let mut c = Coo::new(n, n);
        c.push(n - 1, n - 2, 1.0);
        c.push(0, 0, 2.0);
        let m = c.build_dcsr(PlusTimes::<f64>::new());
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(n - 1, n - 2), Some(&1.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_panics() {
        let mut c = Coo::new(4, 4);
        c.push(4, 0, 1.0);
    }
}
