//! Structural transforms: transpose, apply, select, extract, Kronecker.
//!
//! Each kernel has a `*_ctx` variant recording calls/nnz/flops into an
//! [`OpCtx`]'s metrics; the ctx-free names wrap the thread-local default
//! context.

use std::collections::HashMap;
use std::time::Instant;

use semiring::traits::{Semiring, UnaryOp, Value};

use crate::ctx::{par_run, with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::metrics::Kernel;
use crate::ops::reduce::ROWS_PER_SHARD;
use crate::Ix;

/// `Aᵀ`: bucket entries by column, emit column-major as new rows.
/// `O(nnz log nnz)` without materializing either dimension.
pub fn transpose<T: Value>(a: &Dcsr<T>) -> Dcsr<T> {
    with_default_ctx(|ctx| transpose_ctx(ctx, a))
}

/// [`transpose`] through an explicit execution context.
pub fn transpose_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>) -> Dcsr<T> {
    let _span = ctx.kernel_span(Kernel::Transpose, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let mut trips: Vec<(Ix, Ix, T)> = a.iter().map(|(r, c, v)| (c, r, v.clone())).collect();
    trips.sort_by_key(|x| (x.0, x.1));

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(trips.len());
    let mut vals = Vec::with_capacity(trips.len());
    for (r, c, v) in trips {
        if rows.last() != Some(&r) {
            rows.push(r);
            rowptr.push(colidx.len());
        }
        colidx.push(c);
        vals.push(v);
        *rowptr.last_mut().expect("nonempty") = colidx.len();
    }
    let c = Dcsr::from_parts(a.ncols(), a.nrows(), rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::Transpose,
        start.elapsed(),
        a.nnz() as u64,
        c.nnz() as u64,
        0,
        (a.bytes() + c.bytes()) as u64,
    );
    c
}

/// Apply a unary operator to every stored value; results equal to the
/// semiring zero are dropped (so `apply` can only shrink the pattern).
pub fn apply<T: Value, S, O>(a: &Dcsr<T>, op: O, s: S) -> Dcsr<T>
where
    S: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    with_default_ctx(|ctx| apply_ctx(ctx, a, op, s))
}

/// [`apply`] through an explicit execution context.
pub fn apply_ctx<T: Value, S, O>(ctx: &OpCtx, a: &Dcsr<T>, op: O, s: S) -> Dcsr<T>
where
    S: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    apply_sharded(ctx, a, op, s, Kernel::Apply)
}

/// Fused **apply + prune** kernel: map every stored value through `op`
/// and drop results that are zero under the explicit `drop` semiring —
/// one deterministic row-sharded pass.
///
/// Semantically this is [`apply`] with the zero-dropping role named:
/// `apply`'s semiring argument does no arithmetic, it only decides which
/// op results vanish from the pattern, and call sites that compute in
/// one semiring while pruning in another (the two-semiring DNN layer of
/// the paper's §V.C computes `max(x + b, 0)` in MaxPlus but must prune
/// `0.0` — the *PlusTimes* zero, not MaxPlus's `−∞`) need that choice
/// explicit in the signature. Recorded under
/// [`crate::metrics::Kernel::ApplyPrune`].
pub fn apply_prune<T: Value, SD, O>(a: &Dcsr<T>, op: O, drop: SD) -> Dcsr<T>
where
    SD: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    with_default_ctx(|ctx| apply_prune_ctx(ctx, a, op, drop))
}

/// [`apply_prune`] through an explicit execution context.
pub fn apply_prune_ctx<T: Value, SD, O>(ctx: &OpCtx, a: &Dcsr<T>, op: O, drop: SD) -> Dcsr<T>
where
    SD: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    apply_sharded(ctx, a, op, drop, Kernel::ApplyPrune)
}

/// Shared body of [`apply_ctx`] / [`apply_prune_ctx`]: the semiring
/// argument is used *only* for its zero test on op outputs.
fn apply_sharded<T: Value, S, O>(ctx: &OpCtx, a: &Dcsr<T>, op: O, s: S, kernel: Kernel) -> Dcsr<T>
where
    S: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    let _span = ctx.kernel_span(kernel, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let nrows = a.n_nonempty_rows();
    let nshards = nrows.div_ceil(ROWS_PER_SHARD).max(1);
    // Each shard maps its stored rows independently, recording row ends
    // relative to its own output; stitching adds the running offset.
    // Row order (and so the output) is identical at any thread count.
    let map_rows = |lo: usize, hi: usize| {
        let mut rows = Vec::with_capacity(hi - lo);
        let mut ends = Vec::with_capacity(hi - lo);
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for k in lo..hi {
            let (r, cols, vs) = a.row_at(k);
            let rstart = colidx.len();
            for (&c, v) in cols.iter().zip(vs) {
                let w = op.apply(v.clone());
                if !s.is_zero(&w) {
                    colidx.push(c);
                    vals.push(w);
                }
            }
            if colidx.len() > rstart {
                rows.push(r);
                ends.push(colidx.len());
            }
        }
        (rows, ends, colidx, vals)
    };
    let parts = if nshards == 1 {
        vec![map_rows(0, nrows)]
    } else {
        par_run(ctx.threads(), nshards, |shard| {
            let lo = shard * ROWS_PER_SHARD;
            map_rows(lo, (lo + ROWS_PER_SHARD).min(nrows))
        })
    };
    let mut rows = Vec::with_capacity(nrows);
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(a.nnz());
    let mut vals = Vec::with_capacity(a.nnz());
    for (r, ends, ci, vs) in parts {
        let offset = colidx.len();
        rows.extend(r);
        rowptr.extend(ends.into_iter().map(|e| e + offset));
        colidx.extend(ci);
        vals.extend(vs);
    }
    let c = Dcsr::from_parts(a.nrows(), a.ncols(), rows, rowptr, colidx, vals);
    ctx.metrics().record(
        kernel,
        start.elapsed(),
        a.nnz() as u64,
        c.nnz() as u64,
        a.nnz() as u64, // one operator application per stored entry
        (a.bytes() + c.bytes()) as u64,
    );
    c
}

/// Keep entries satisfying a predicate on `(row, col, value)` —
/// GraphBLAS `GrB_select`.
pub fn select<T: Value, F: Fn(Ix, Ix, &T) -> bool>(a: &Dcsr<T>, keep: F) -> Dcsr<T> {
    with_default_ctx(|ctx| select_ctx(ctx, a, keep))
}

/// [`select`] through an explicit execution context.
pub fn select_ctx<T: Value, F: Fn(Ix, Ix, &T) -> bool>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    keep: F,
) -> Dcsr<T> {
    let _span = ctx.kernel_span(Kernel::Select, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    for (r, cols, vs) in a.iter_rows() {
        let rstart = colidx.len();
        for (&c, v) in cols.iter().zip(vs) {
            if keep(r, c, v) {
                colidx.push(c);
                vals.push(v.clone());
            }
        }
        if colidx.len() > rstart {
            rows.push(r);
            rowptr.push(colidx.len());
        }
    }
    let c = Dcsr::from_parts(a.nrows(), a.ncols(), rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::Select,
        start.elapsed(),
        a.nnz() as u64,
        c.nnz() as u64,
        a.nnz() as u64, // one predicate evaluation per stored entry
        (a.bytes() + c.bytes()) as u64,
    );
    c
}

/// `A(rows, cols)` — submatrix extraction with *reindexing*: output
/// position `(i, j)` is `A(rows[i], cols[j])`. Selector slices must be
/// strictly increasing (GraphBLAS allows duplicates; the associative
/// array layer never produces them, so we keep the stronger contract).
pub fn extract<T: Value>(a: &Dcsr<T>, rows_sel: &[Ix], cols_sel: &[Ix]) -> Dcsr<T> {
    with_default_ctx(|ctx| extract_ctx(ctx, a, rows_sel, cols_sel))
}

/// [`extract`] through an explicit execution context.
pub fn extract_ctx<T: Value>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    rows_sel: &[Ix],
    cols_sel: &[Ix],
) -> Dcsr<T> {
    debug_assert!(rows_sel.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(cols_sel.windows(2).all(|w| w[0] < w[1]));
    let _span = ctx.kernel_span(Kernel::Extract, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let col_pos: HashMap<Ix, Ix> = cols_sel
        .iter()
        .enumerate()
        .map(|(p, &c)| (c, p as Ix))
        .collect();

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    for (new_r, &old_r) in rows_sel.iter().enumerate() {
        let (cols, vs) = a.row(old_r);
        let rstart = colidx.len();
        for (&c, v) in cols.iter().zip(vs) {
            if let Some(&p) = col_pos.get(&c) {
                colidx.push(p);
                vals.push(v.clone());
            }
        }
        if colidx.len() > rstart {
            rows.push(new_r as Ix);
            rowptr.push(colidx.len());
        }
    }
    let c = Dcsr::from_parts(
        rows_sel.len() as Ix,
        cols_sel.len() as Ix,
        rows,
        rowptr,
        colidx,
        vals,
    );
    ctx.metrics().record(
        Kernel::Extract,
        start.elapsed(),
        a.nnz() as u64,
        c.nnz() as u64,
        0,
        (a.bytes() + c.bytes()) as u64,
    );
    c
}

/// Kronecker product `A ⊗ₖ B`: output dimension
/// `(nrows_A·nrows_B) × (ncols_A·ncols_B)`, entry
/// `(i_A·nrows_B + i_B, j_A·ncols_B + j_B) = A(i_A,j_A) ⊗ B(i_B,j_B)`.
/// The generator behind Graph500/RMAT-style power-law graphs.
pub fn kron<T: Value, S: Semiring<Value = T>>(a: &Dcsr<T>, b: &Dcsr<T>, s: S) -> Dcsr<T> {
    with_default_ctx(|ctx| kron_ctx(ctx, a, b, s))
}

/// [`kron`] through an explicit execution context.
pub fn kron_ctx<T: Value, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
) -> Dcsr<T> {
    let nrows = a
        .nrows()
        .checked_mul(b.nrows())
        .expect("kron rows overflow");
    let ncols = a
        .ncols()
        .checked_mul(b.ncols())
        .expect("kron cols overflow");
    let _span = ctx.kernel_span(Kernel::Kron, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let mut flops = 0u64;

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(a.nnz() * b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() * b.nnz());

    // Row ids of the product appear in sorted order because a's rows and
    // b's rows are each sorted and the blocks are disjoint.
    for (ra, acols, avals) in a.iter_rows() {
        for (rb, bcols, bvals) in b.iter_rows() {
            let r = ra * b.nrows() + rb;
            let rstart = colidx.len();
            for (&ca, va) in acols.iter().zip(avals) {
                for (&cb, vb) in bcols.iter().zip(bvals) {
                    let v = s.mul(va.clone(), vb.clone());
                    flops += 1;
                    if !s.is_zero(&v) {
                        colidx.push(ca * b.ncols() + cb);
                        vals.push(v);
                    }
                }
            }
            if colidx.len() > rstart {
                rows.push(r);
                rowptr.push(colidx.len());
            }
        }
    }
    let c = Dcsr::from_parts(nrows, ncols, rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::Kron,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use semiring::{PlusTimes, Relu, ZeroNorm};

    fn m(n: Ix, t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(t.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn transpose_round_trip() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(100, 60, 400, 7, s);
        let t = transpose(&a);
        assert_eq!(t.nrows(), 60);
        assert_eq!(t.ncols(), 100);
        assert_eq!(transpose(&t), a);
        for (r, c, v) in a.iter() {
            assert_eq!(t.get(c, r), Some(v));
        }
    }

    #[test]
    fn transpose_of_product_law() {
        // (AB)ᵀ = BᵀAᵀ (Table II).
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(40, 40, 200, 8, s);
        let b = random_dcsr(40, 40, 200, 9, s);
        let lhs = transpose(&super::super::mxm::mxm(&a, &b, s));
        let rhs = super::super::mxm::mxm(&transpose(&b), &transpose(&a), s);
        let l: Vec<_> = lhs.iter().map(|(i, j, &v)| (i, j, v)).collect();
        let r: Vec<_> = rhs.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(l.len(), r.len());
        for ((li, lj, lv), (ri, rj, rv)) in l.iter().zip(&r) {
            assert_eq!((li, lj), (ri, rj));
            assert!((lv - rv).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_zero_norm_produces_pattern() {
        let a = m(4, &[(0, 1, 7.0), (2, 3, -2.0)]);
        let p = apply(
            &a,
            ZeroNorm(PlusTimes::<f64>::new()),
            PlusTimes::<f64>::new(),
        );
        assert_eq!(p.get(0, 1), Some(&1.0));
        assert_eq!(p.get(2, 3), Some(&1.0));
    }

    #[test]
    fn apply_drops_new_zeros() {
        let a = m(4, &[(0, 1, -7.0), (2, 3, 2.0)]);
        let r = apply(&a, Relu(0.0), PlusTimes::<f64>::new());
        assert_eq!(r.nnz(), 1);
        assert_eq!(r.get(2, 3), Some(&2.0));
    }

    #[test]
    fn select_by_predicate() {
        let a = m(4, &[(0, 1, 1.0), (1, 0, 2.0), (2, 3, 3.0)]);
        let upper = select(&a, |r, c, _| c > r);
        assert_eq!(upper.nnz(), 2);
        assert!(upper.get(1, 0).is_none());
    }

    #[test]
    fn extract_reindexes() {
        let a = m(6, &[(1, 1, 1.0), (1, 4, 2.0), (4, 4, 3.0), (5, 0, 9.0)]);
        let sub = extract(&a, &[1, 4], &[1, 4]);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 2);
        assert_eq!(sub.get(0, 0), Some(&1.0)); // old (1,1)
        assert_eq!(sub.get(0, 1), Some(&2.0)); // old (1,4)
        assert_eq!(sub.get(1, 1), Some(&3.0)); // old (4,4)
        assert_eq!(sub.nnz(), 3);
    }

    #[test]
    fn kron_small() {
        let a = m(2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = m(2, &[(0, 1, 3.0)]);
        let k = kron(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(k.nrows(), 4);
        assert_eq!(k.get(0, 1), Some(&3.0)); // (0,0)⊗(0,1)
        assert_eq!(k.get(2, 3), Some(&6.0)); // (1,1)⊗(0,1)
        assert_eq!(k.nnz(), 2);
    }

    #[test]
    fn kron_nnz_is_product() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(8, 8, 10, 13, s);
        let b = random_dcsr(8, 8, 12, 14, s);
        let k = kron(&a, &b, s);
        assert_eq!(k.nnz(), a.nnz() * b.nnz());
    }

    #[test]
    fn ctx_transform_kernels_record() {
        let s = PlusTimes::<f64>::new();
        let ctx = crate::ctx::OpCtx::new();
        let a = m(4, &[(0, 1, 1.0), (1, 0, 2.0), (2, 3, 3.0)]);
        let _ = transpose_ctx(&ctx, &a);
        let _ = select_ctx(&ctx, &a, |r, c, _| c > r);
        let _ = extract_ctx(&ctx, &a, &[0, 2], &[1, 3]);
        let _ = kron_ctx(&ctx, &a, &a, s);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::Transpose).calls, 1);
        assert_eq!(snap.kernel(Kernel::Select).calls, 1);
        assert_eq!(snap.kernel(Kernel::Extract).calls, 1);
        assert_eq!(snap.kernel(Kernel::Kron).calls, 1);
        assert_eq!(snap.kernel(Kernel::Kron).flops, 9); // 3 nnz × 3 nnz
    }

    #[test]
    fn apply_prune_drop_semiring_is_explicit() {
        use semiring::{FnOp, MaxPlus};
        // op maps -3 → 0.0 and 2 → 3.0. Which of those survive depends
        // entirely on whose zero the drop semiring contributes.
        let a = m(4, &[(0, 1, -3.0), (2, 3, 2.0)]);
        let op = FnOp(|x: f64| (x + 1.0).max(0.0));
        let ctx = crate::ctx::OpCtx::new();
        let pruned = apply_prune_ctx(&ctx, &a, op, PlusTimes::<f64>::new());
        assert_eq!(pruned.nnz(), 1);
        assert_eq!(pruned.get(2, 3), Some(&3.0));
        // MaxPlus-zero is −∞, so the computed 0.0 would be *stored* —
        // the wrong choice for a ReLU prune, and visibly different.
        let kept = apply_prune_ctx(&ctx, &a, op, MaxPlus::<f64>::new());
        assert_eq!(kept.nnz(), 2);
        assert_eq!(kept.get(0, 1), Some(&0.0));
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::ApplyPrune).calls, 2);
        assert_eq!(snap.kernel(Kernel::Apply).calls, 0);
    }

    #[test]
    fn apply_prune_matches_apply_when_semirings_agree() {
        use semiring::FnOp;
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(200, 200, 900, 41, s);
        // Values sit in [1,2), so shifting by -1.5 sends roughly half of
        // them to 0.0 — both spellings must drop exactly those.
        let op = FnOp(|x: f64| (x - 1.5).max(0.0));
        let pruned = apply_prune(&a, op, s);
        assert!(pruned.nnz() > 0 && pruned.nnz() < a.nnz());
        assert_eq!(pruned, apply(&a, op, s));
    }

    #[test]
    fn parallel_apply_prune_is_bit_identical() {
        use semiring::FnOp;
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(4000, 4000, 20_000, 35, s);
        let op = FnOp(|x: f64| (x - 1.5).max(0.0));
        let base = {
            let ctx = crate::ctx::OpCtx::new().with_threads(1);
            apply_prune_ctx(&ctx, &a, op, s)
        };
        assert!(base.nnz() > 0 && base.nnz() < a.nnz());
        for threads in [2, 4, 8] {
            let ctx = crate::ctx::OpCtx::new().with_threads(threads);
            assert!(
                apply_prune_ctx(&ctx, &a, op, s) == base,
                "apply_prune differs at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_apply_is_bit_identical() {
        let s = PlusTimes::<f64>::new();
        // Enough non-empty rows to span several shards, plus values that
        // Relu will drop (negated half) so row patterns shrink.
        let a0 = random_dcsr(4000, 4000, 20_000, 33, s);
        let trips: Vec<(Ix, Ix, f64)> = a0
            .iter()
            .map(|(r, c, v)| (r, c, if (r + c) % 2 == 0 { *v } else { -v }))
            .collect();
        let mut coo = Coo::new(4000, 4000);
        coo.extend(trips);
        let a = coo.build_dcsr(s);
        assert!(a.n_nonempty_rows() > 2 * ROWS_PER_SHARD);
        let base = {
            let ctx = crate::ctx::OpCtx::new().with_threads(1);
            apply_ctx(&ctx, &a, Relu(0.0), s)
        };
        for threads in [2, 4, 8] {
            let ctx = crate::ctx::OpCtx::new().with_threads(threads);
            assert!(
                apply_ctx(&ctx, &a, Relu(0.0), s) == base,
                "apply differs at {threads} threads"
            );
        }
    }
}
