//! Element-wise ⊕ (union) and ⊗ (intersection) — Fig. 5's graph union
//! and graph intersection.
//!
//! Both are sorted two-pointer merges over the non-empty row lists and
//! within-row column lists: `O(nnz(A) + nnz(B))`, never touching the
//! (possibly astronomically large) dimensions.
//!
//! There is exactly **one merge loop per direction**: the generic
//! [`ewise_add_op`]/[`ewise_mul_op`] kernels take an arbitrary combiner,
//! and the classic [`ewise_add`]/[`ewise_mul`] names are the convenience
//! API plugging in the semiring's own ⊕/⊗. Every kernel has a `*_ctx`
//! variant recording into an [`OpCtx`]'s metrics; the ctx-free names use
//! the thread-local default context.
//!
//! **Boolean word path** (DESIGN.md §13): when the combiner is the
//! `LorLand` semiring's own ⊕/⊗, colliding row pairs that are dense
//! relative to the column space merge **word-at-a-time** — each row
//! becomes a presence bitmap plus a truth bitmap, the union/intersection
//! is a handful of bitwise ops per 64 columns, and survivors drain with
//! `trailing_zeros` in ascending order. Output and flop counts are
//! identical to the two-pointer merge ([`OpCtx::set_fast_paths`] ablates
//! the path off); rows too sparse for the bitmaps to pay off
//! (`words > nnz(a_row) + nnz(b_row)`) fall back per pair.

use std::any::{Any, TypeId};
use std::time::Instant;

use semiring::traits::{BinaryOp, Semiring, Value};
use semiring::LorLand;

use crate::ctx::{with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::index::IndexType;
use crate::metrics::Kernel;
use crate::Ix;

/// The semiring's ⊕ as a [`BinaryOp`] combiner.
#[derive(Copy, Clone)]
struct AddOf<S>(S);
impl<T: Value, S: Semiring<Value = T>> BinaryOp<T, T, T> for AddOf<S> {
    #[inline(always)]
    fn apply(&self, a: T, b: T) -> T {
        self.0.add(a, b)
    }
}

/// The semiring's ⊗ as a [`BinaryOp`] combiner.
#[derive(Copy, Clone)]
struct MulOf<S>(S);
impl<T: Value, S: Semiring<Value = T>> BinaryOp<T, T, T> for MulOf<S> {
    #[inline(always)]
    fn apply(&self, a: T, b: T) -> T {
        self.0.mul(a, b)
    }
}

/// `C = A ⊕ B`: union of sparsity patterns, collisions combined with ⊕.
/// An entry present in only one operand passes through unchanged —
/// exactly the `A ⊕ 0 = A` behaviour of Table II.
pub fn ewise_add<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    with_default_ctx(|ctx| ewise_add_ctx(ctx, a, b, s))
}

/// [`ewise_add`] through an explicit execution context.
pub fn ewise_add_ctx<T: Value, I: IndexType, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    ewise_add_op_ctx(ctx, a, b, AddOf(s), s)
}

/// `C = A ⊗ B`: intersection of sparsity patterns, survivors combined
/// with ⊗. Entries present in only one operand meet an implicit `0`,
/// which annihilates — so they vanish (Table II's `A ⊗ 𝟙 = A` dual).
pub fn ewise_mul<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    with_default_ctx(|ctx| ewise_mul_ctx(ctx, a, b, s))
}

/// [`ewise_mul`] through an explicit execution context.
pub fn ewise_mul_ctx<T: Value, I: IndexType, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    ewise_mul_op_ctx(ctx, a, b, MulOf(s), s)
}

/// `C = A ⊕' B` with an *arbitrary* combiner `op` at collisions (GraphBLAS
/// `eWiseAdd` with a user binary op): pass-through entries are untouched,
/// colliding entries combine with `op`, results equal to the semiring
/// zero drop. Used where the combining operation is not the semiring's ⊕
/// (e.g. `second` for "overwrite" merges, `-` for diffs).
pub fn ewise_add_op<T, I, S, O>(a: &Dcsr<T, I>, b: &Dcsr<T, I>, op: O, s: S) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    O: BinaryOp<T, T, T> + 'static,
{
    with_default_ctx(|ctx| ewise_add_op_ctx(ctx, a, b, op, s))
}

/// [`ewise_add_op`] through an explicit execution context. This is *the*
/// union merge loop: [`ewise_add`] and [`ewise_add_op`] both land here.
pub fn ewise_add_op_ctx<T, I, S, O>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    op: O,
    s: S,
) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    O: BinaryOp<T, T, T> + 'static,
{
    assert_dims(a, b);
    let _span = ctx.kernel_span(Kernel::EwiseAdd, || {
        format!("{}×{}, {}+{} nnz", a.nrows(), a.ncols(), a.nnz(), b.nnz())
    });
    let start = Instant::now();
    if ctx.fast_paths() && TypeId::of::<O>() == TypeId::of::<AddOf<LorLand>>() {
        if let Some((c, flops)) = try_bool_union(a, b) {
            record_ewise(ctx, Kernel::EwiseAdd, start, a, b, &c, flops);
            return c;
        }
    }
    let mut flops = 0u64;
    let mut trips: Vec<(Ix, I, T)> = Vec::with_capacity(a.nnz() + b.nnz());
    let (ra, rb) = (a.row_ids(), b.row_ids());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() || j < rb.len() {
        if j >= rb.len() || (i < ra.len() && ra[i] < rb[j]) {
            let (r, cols, vs) = a.row_at(i);
            trips.extend(cols.iter().zip(vs).map(|(&c, v)| (r, c, v.clone())));
            i += 1;
        } else if i >= ra.len() || rb[j] < ra[i] {
            let (r, cols, vs) = b.row_at(j);
            trips.extend(cols.iter().zip(vs).map(|(&c, v)| (r, c, v.clone())));
            j += 1;
        } else {
            let (r, acols, avals) = a.row_at(i);
            let (_, bcols, bvals) = b.row_at(j);
            let (mut p, mut q) = (0usize, 0usize);
            while p < acols.len() || q < bcols.len() {
                if q >= bcols.len() || (p < acols.len() && acols[p] < bcols[q]) {
                    trips.push((r, acols[p], avals[p].clone()));
                    p += 1;
                } else if p >= acols.len() || bcols[q] < acols[p] {
                    trips.push((r, bcols[q], bvals[q].clone()));
                    q += 1;
                } else {
                    let v = op.apply(avals[p].clone(), bvals[q].clone());
                    flops += 1;
                    if !s.is_zero(&v) {
                        trips.push((r, acols[p], v));
                    }
                    p += 1;
                    q += 1;
                }
            }
            i += 1;
            j += 1;
        }
    }
    let c = from_sorted_trips(a.nrows(), a.ncols(), trips);
    record_ewise(ctx, Kernel::EwiseAdd, start, a, b, &c, flops);
    c
}

/// `C = A ⊗' B` with an arbitrary combiner at intersections (GraphBLAS
/// `eWiseMult` with a user binary op).
pub fn ewise_mul_op<T, I, S, O>(a: &Dcsr<T, I>, b: &Dcsr<T, I>, op: O, s: S) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    O: BinaryOp<T, T, T> + 'static,
{
    with_default_ctx(|ctx| ewise_mul_op_ctx(ctx, a, b, op, s))
}

/// [`ewise_mul_op`] through an explicit execution context. This is *the*
/// intersection merge loop: [`ewise_mul`] and [`ewise_mul_op`] both land
/// here.
pub fn ewise_mul_op_ctx<T, I, S, O>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    op: O,
    s: S,
) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    O: BinaryOp<T, T, T> + 'static,
{
    assert_dims(a, b);
    let _span = ctx.kernel_span(Kernel::EwiseMul, || {
        format!("{}×{}, {}+{} nnz", a.nrows(), a.ncols(), a.nnz(), b.nnz())
    });
    let start = Instant::now();
    if ctx.fast_paths() && TypeId::of::<O>() == TypeId::of::<MulOf<LorLand>>() {
        if let Some((c, flops)) = try_bool_intersect(a, b) {
            record_ewise(ctx, Kernel::EwiseMul, start, a, b, &c, flops);
            return c;
        }
    }
    let mut flops = 0u64;
    let mut trips: Vec<(Ix, I, T)> = Vec::new();
    let (ra, rb) = (a.row_ids(), b.row_ids());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < rb.len() {
        match ra[i].cmp(&rb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (r, acols, avals) = a.row_at(i);
                let (_, bcols, bvals) = b.row_at(j);
                let (mut p, mut q) = (0usize, 0usize);
                while p < acols.len() && q < bcols.len() {
                    match acols[p].cmp(&bcols[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            let v = op.apply(avals[p].clone(), bvals[q].clone());
                            flops += 1;
                            if !s.is_zero(&v) {
                                trips.push((r, acols[p], v));
                            }
                            p += 1;
                            q += 1;
                        }
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    let c = from_sorted_trips(a.nrows(), a.ncols(), trips);
    record_ewise(ctx, Kernel::EwiseMul, start, a, b, &c, flops);
    c
}

/// GraphBLAS `eWiseUnion`: like [`ewise_add_op`], but an entry present in
/// only one operand still goes through `op`, paired with the *other
/// operand's default value* — so `op` need not treat "absent" as an
/// identity. E.g. `ewise_union(a, b, minus, 0.0, 0.0, s)` is a true
/// element-wise subtraction `A − B` including `0 − b` cells.
pub fn ewise_union<T, I, S, O>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    op: O,
    a_default: T,
    b_default: T,
    s: S,
) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    O: BinaryOp<T, T, T>,
{
    with_default_ctx(|ctx| ewise_union_ctx(ctx, a, b, op, a_default, b_default, s))
}

/// [`ewise_union`] through an explicit execution context.
pub fn ewise_union_ctx<T, I, S, O>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    op: O,
    a_default: T,
    b_default: T,
    s: S,
) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    O: BinaryOp<T, T, T>,
{
    assert_dims(a, b);
    let _span = ctx.kernel_span(Kernel::EwiseUnion, || {
        format!("{}×{}, {}+{} nnz", a.nrows(), a.ncols(), a.nnz(), b.nnz())
    });
    let start = Instant::now();
    let mut flops = 0u64;
    let mut trips: Vec<(Ix, I, T)> = Vec::with_capacity(a.nnz() + b.nnz());
    let mut push = |r: Ix, c: I, v: T, flops: &mut u64| {
        *flops += 1;
        if !s.is_zero(&v) {
            trips.push((r, c, v));
        }
    };
    let (ra, rb) = (a.row_ids(), b.row_ids());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() || j < rb.len() {
        if j >= rb.len() || (i < ra.len() && ra[i] < rb[j]) {
            let (r, cols, vs) = a.row_at(i);
            for (&c, v) in cols.iter().zip(vs) {
                push(r, c, op.apply(v.clone(), b_default.clone()), &mut flops);
            }
            i += 1;
        } else if i >= ra.len() || rb[j] < ra[i] {
            let (r, cols, vs) = b.row_at(j);
            for (&c, v) in cols.iter().zip(vs) {
                push(r, c, op.apply(a_default.clone(), v.clone()), &mut flops);
            }
            j += 1;
        } else {
            let (r, acols, avals) = a.row_at(i);
            let (_, bcols, bvals) = b.row_at(j);
            let (mut p, mut q) = (0usize, 0usize);
            while p < acols.len() || q < bcols.len() {
                if q >= bcols.len() || (p < acols.len() && acols[p] < bcols[q]) {
                    push(
                        r,
                        acols[p],
                        op.apply(avals[p].clone(), b_default.clone()),
                        &mut flops,
                    );
                    p += 1;
                } else if p >= acols.len() || bcols[q] < acols[p] {
                    push(
                        r,
                        bcols[q],
                        op.apply(a_default.clone(), bvals[q].clone()),
                        &mut flops,
                    );
                    q += 1;
                } else {
                    push(
                        r,
                        acols[p],
                        op.apply(avals[p].clone(), bvals[q].clone()),
                        &mut flops,
                    );
                    p += 1;
                    q += 1;
                }
            }
            i += 1;
            j += 1;
        }
    }
    let c = from_sorted_trips(a.nrows(), a.ncols(), trips);
    record_ewise(ctx, Kernel::EwiseUnion, start, a, b, &c, flops);
    c
}

fn record_ewise<T: Value, I: IndexType>(
    ctx: &OpCtx,
    kernel: Kernel,
    start: Instant,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    c: &Dcsr<T, I>,
    flops: u64,
) {
    ctx.metrics().record(
        kernel,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
}

// ---- boolean word-at-a-time fast paths ----

/// Per-pair bitmaps for the word merges: presence and truth words for
/// each operand row, kept all-zero between pairs (the drain and the
/// `fill(0)` below restore the invariant).
#[derive(Default)]
struct BoolWords {
    pa: Vec<u64>,
    ta: Vec<u64>,
    pb: Vec<u64>,
    tb: Vec<u64>,
}

impl BoolWords {
    fn ensure(&mut self, nw: usize) {
        if self.pa.len() < nw {
            self.pa.resize(nw, 0);
            self.ta.resize(nw, 0);
            self.pb.resize(nw, 0);
            self.tb.resize(nw, 0);
        }
    }

    fn load<I: IndexType>(&mut self, acols: &[I], avals: &[bool], bcols: &[I], bvals: &[bool]) {
        for (&c, &v) in acols.iter().zip(avals) {
            let cz = c.as_usize();
            self.pa[cz >> 6] |= 1u64 << (cz & 63);
            self.ta[cz >> 6] |= (v as u64) << (cz & 63);
        }
        for (&c, &v) in bcols.iter().zip(bvals) {
            let cz = c.as_usize();
            self.pb[cz >> 6] |= 1u64 << (cz & 63);
            self.tb[cz >> 6] |= (v as u64) << (cz & 63);
        }
    }

    fn clear(&mut self, nw: usize) {
        self.pa[..nw].fill(0);
        self.ta[..nw].fill(0);
        self.pb[..nw].fill(0);
        self.tb[..nw].fill(0);
    }
}

/// Columns per colliding row pair must satisfy
/// `words ≤ nnz(a_row) + nnz(b_row)` for the bitmaps to pay off.
fn word_merge_pays_off(nw: usize, na: usize, nb: usize) -> bool {
    nw <= na + nb
}

/// Downcast to the concrete boolean matrices and run the monomorphic
/// union; `None` when `T` is not `bool` (the generic loop handles it).
fn try_bool_union<T: Value, I: IndexType>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
) -> Option<(Dcsr<T, I>, u64)> {
    let ab = (a as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
    let bb = (b as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
    let (c, flops) = bool_union(ab, bb);
    let boxed: Box<dyn Any> = Box::new(c);
    Some((*boxed.downcast::<Dcsr<T, I>>().ok()?, flops))
}

/// Monomorphic `LorLand` union. Pass-through entries (rows or columns in
/// one operand only) keep their stored value — even an explicit `false`
/// — exactly like the generic loop; collisions OR and drop `false`.
fn bool_union<I: IndexType>(a: &Dcsr<bool, I>, b: &Dcsr<bool, I>) -> (Dcsr<bool, I>, u64) {
    let nw_full = (a.ncols() as usize).div_ceil(64);
    let mut words = BoolWords::default();
    let mut flops = 0u64;
    let mut trips: Vec<(Ix, I, bool)> = Vec::with_capacity(a.nnz() + b.nnz());
    let (ra, rb) = (a.row_ids(), b.row_ids());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() || j < rb.len() {
        if j >= rb.len() || (i < ra.len() && ra[i] < rb[j]) {
            let (r, cols, vs) = a.row_at(i);
            trips.extend(cols.iter().zip(vs).map(|(&c, &v)| (r, c, v)));
            i += 1;
        } else if i >= ra.len() || rb[j] < ra[i] {
            let (r, cols, vs) = b.row_at(j);
            trips.extend(cols.iter().zip(vs).map(|(&c, &v)| (r, c, v)));
            j += 1;
        } else {
            let (r, acols, avals) = a.row_at(i);
            let (_, bcols, bvals) = b.row_at(j);
            if word_merge_pays_off(nw_full, acols.len(), bcols.len()) {
                words.ensure(nw_full);
                words.load(acols, avals, bcols, bvals);
                for w in 0..nw_full {
                    let (pa, ta) = (words.pa[w], words.ta[w]);
                    let (pb, tb) = (words.pb[w], words.tb[w]);
                    let coll = pa & pb;
                    flops += u64::from(coll.count_ones());
                    let truth = ta | tb;
                    // A collision where both sides are false ORs to the
                    // semiring zero and drops; everything else survives.
                    let mut out = (pa | pb) & !(coll & !truth);
                    while out != 0 {
                        let cz = (w << 6) | out.trailing_zeros() as usize;
                        out &= out - 1;
                        trips.push((r, I::from_usize(cz), (truth >> (cz & 63)) & 1 == 1));
                    }
                }
                words.clear(nw_full);
            } else {
                let (mut p, mut q) = (0usize, 0usize);
                while p < acols.len() || q < bcols.len() {
                    if q >= bcols.len() || (p < acols.len() && acols[p] < bcols[q]) {
                        trips.push((r, acols[p], avals[p]));
                        p += 1;
                    } else if p >= acols.len() || bcols[q] < acols[p] {
                        trips.push((r, bcols[q], bvals[q]));
                        q += 1;
                    } else {
                        flops += 1;
                        if avals[p] | bvals[q] {
                            trips.push((r, acols[p], true));
                        }
                        p += 1;
                        q += 1;
                    }
                }
            }
            i += 1;
            j += 1;
        }
    }
    (from_sorted_trips(a.nrows(), a.ncols(), trips), flops)
}

/// Downcast to the concrete boolean matrices and run the monomorphic
/// intersection; `None` when `T` is not `bool`.
fn try_bool_intersect<T: Value, I: IndexType>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
) -> Option<(Dcsr<T, I>, u64)> {
    let ab = (a as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
    let bb = (b as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
    let (c, flops) = bool_intersect(ab, bb);
    let boxed: Box<dyn Any> = Box::new(c);
    Some((*boxed.downcast::<Dcsr<T, I>>().ok()?, flops))
}

/// Monomorphic `LorLand` intersection: survivors are exactly the columns
/// present *and true* on both sides (`false ⊗ x` is the semiring zero).
fn bool_intersect<I: IndexType>(a: &Dcsr<bool, I>, b: &Dcsr<bool, I>) -> (Dcsr<bool, I>, u64) {
    let nw_full = (a.ncols() as usize).div_ceil(64);
    let mut words = BoolWords::default();
    let mut flops = 0u64;
    let mut trips: Vec<(Ix, I, bool)> = Vec::new();
    let (ra, rb) = (a.row_ids(), b.row_ids());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < rb.len() {
        match ra[i].cmp(&rb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (r, acols, avals) = a.row_at(i);
                let (_, bcols, bvals) = b.row_at(j);
                if word_merge_pays_off(nw_full, acols.len(), bcols.len()) {
                    words.ensure(nw_full);
                    words.load(acols, avals, bcols, bvals);
                    for w in 0..nw_full {
                        let coll = words.pa[w] & words.pb[w];
                        flops += u64::from(coll.count_ones());
                        let mut out = coll & words.ta[w] & words.tb[w];
                        while out != 0 {
                            let cz = (w << 6) | out.trailing_zeros() as usize;
                            out &= out - 1;
                            trips.push((r, I::from_usize(cz), true));
                        }
                    }
                    words.clear(nw_full);
                } else {
                    let (mut p, mut q) = (0usize, 0usize);
                    while p < acols.len() && q < bcols.len() {
                        match acols[p].cmp(&bcols[q]) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                flops += 1;
                                if avals[p] && bvals[q] {
                                    trips.push((r, acols[p], true));
                                }
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    (from_sorted_trips(a.nrows(), a.ncols(), trips), flops)
}

fn from_sorted_trips<T: Value, I: IndexType>(
    nrows: Ix,
    ncols: Ix,
    trips: Vec<(Ix, I, T)>,
) -> Dcsr<T, I> {
    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(trips.len());
    let mut vals = Vec::with_capacity(trips.len());
    for (r, c, v) in trips {
        if rows.last() != Some(&r) {
            rows.push(r);
            rowptr.push(colidx.len());
        }
        colidx.push(c);
        vals.push(v);
        *rowptr.last_mut().expect("nonempty") = colidx.len();
    }
    Dcsr::from_parts(nrows, ncols, rows, rowptr, colidx, vals)
}

fn assert_dims<T: Value, I: IndexType>(a: &Dcsr<T, I>, b: &Dcsr<T, I>) {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "element-wise operands must share a key space"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use semiring::{MinPlus, PlusTimes, UnionIntersect};

    fn m(n: Ix, t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(t.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn add_is_union_with_combining() {
        let a = m(4, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = m(4, &[(1, 1, 3.0), (2, 2, 4.0)]);
        let c = ewise_add(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.get(0, 0), Some(&1.0));
        assert_eq!(c.get(1, 1), Some(&5.0));
        assert_eq!(c.get(2, 2), Some(&4.0));
    }

    #[test]
    fn mul_is_intersection() {
        let a = m(4, &[(0, 0, 2.0), (1, 1, 2.0), (3, 3, 9.0)]);
        let b = m(4, &[(1, 1, 3.0), (2, 2, 4.0), (3, 3, 1.0)]);
        let c = ewise_mul(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(1, 1), Some(&6.0));
        assert_eq!(c.get(3, 3), Some(&9.0));
        assert_eq!(c.get(0, 0), None);
    }

    #[test]
    fn add_identity_law_on_arrays() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 200, 42, s);
        let zero = Dcsr::<f64>::empty(64, 64);
        assert_eq!(ewise_add(&a, &zero, s), a);
        assert_eq!(ewise_add(&zero, &a, s), a);
    }

    #[test]
    fn mul_with_empty_annihilates() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 200, 43, s);
        let zero = Dcsr::<f64>::empty(64, 64);
        assert_eq!(ewise_mul(&a, &zero, s).nnz(), 0);
    }

    #[test]
    fn cancellation_drops_entries() {
        let a = m(4, &[(0, 0, 5.0)]);
        let b = m(4, &[(0, 0, -5.0)]);
        let c = ewise_add(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(c.nnz(), 0);
        assert!(c.row_ids().is_empty());
    }

    #[test]
    fn tropical_ewise_add_takes_min() {
        let s = MinPlus::<f64>::new();
        let mut ca = Coo::new(4, 4);
        ca.push(0, 0, 5.0);
        let mut cb = Coo::new(4, 4);
        cb.push(0, 0, 3.0);
        let c = ewise_add(&ca.build_dcsr(s), &cb.build_dcsr(s), s);
        assert_eq!(c.get(0, 0), Some(&3.0));
    }

    #[test]
    fn set_valued_union_intersection() {
        use semiring::PSet;
        let s = UnionIntersect;
        let mut ca = Coo::new(2, 2);
        ca.push(0, 0, PSet::from_iter([1, 2]));
        let a = ca.build_dcsr(s);
        let mut cb = Coo::new(2, 2);
        cb.push(0, 0, PSet::from_iter([2, 3]));
        let b = cb.build_dcsr(s);
        assert_eq!(
            ewise_add(&a, &b, s).get(0, 0),
            Some(&PSet::from_iter([1, 2, 3]))
        );
        assert_eq!(ewise_mul(&a, &b, s).get(0, 0), Some(&PSet::from_iter([2])));
    }

    #[test]
    fn commutativity_on_random() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 44, s);
        let b = random_dcsr(64, 64, 300, 45, s);
        assert_eq!(ewise_add(&a, &b, s), ewise_add(&b, &a, s));
        assert_eq!(ewise_mul(&a, &b, s), ewise_mul(&b, &a, s));
    }

    /// A boolean matrix with the given pattern seed; every third stored
    /// value is an explicit `false` (legal when a matrix was built under
    /// another semiring) to exercise the truth-vs-presence distinction.
    fn bool_mat(n: Ix, nnz: usize, seed: u64) -> Dcsr<bool> {
        let pat = random_dcsr(n, n, nnz, seed, PlusTimes::<f64>::new());
        let mut c = Coo::new(n, n);
        for (i, j, _) in pat.iter() {
            c.push(i, j, true);
        }
        let (nr, nc, rows, rowptr, colidx, mut vals) = c.build_dcsr(LorLand).into_parts();
        for v in vals.iter_mut().step_by(3) {
            *v = false;
        }
        Dcsr::from_parts(nr, nc, rows, rowptr, colidx, vals)
    }

    #[test]
    fn bool_word_merge_matches_generic() {
        let s = LorLand;
        // Dense rows in a compact space: the word path engages.
        let a = bool_mat(96, 1400, 70);
        let b = bool_mat(96, 1400, 71);
        // Sparse rows in a wide space: per-pair gate falls back.
        let aw = bool_mat(5000, 900, 72);
        let bw = bool_mat(5000, 900, 73);
        let fast = OpCtx::new();
        let slow = OpCtx::new();
        slow.set_fast_paths(false);
        for (x, y) in [(&a, &b), (&aw, &bw)] {
            assert_eq!(ewise_add_ctx(&fast, x, y, s), ewise_add_ctx(&slow, x, y, s));
            assert_eq!(ewise_mul_ctx(&fast, x, y, s), ewise_mul_ctx(&slow, x, y, s));
        }
        // Flop parity too: the ablation must agree on the metric.
        let f2 = OpCtx::new();
        let s2 = OpCtx::new();
        s2.set_fast_paths(false);
        let _ = ewise_add_ctx(&f2, &a, &b, s);
        let _ = ewise_add_ctx(&s2, &a, &b, s);
        assert_eq!(
            f2.metrics().snapshot().kernel(Kernel::EwiseAdd).flops,
            s2.metrics().snapshot().kernel(Kernel::EwiseAdd).flops
        );
    }

    #[test]
    fn narrow_index_ewise_matches_wide() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(80, 80, 400, 46, s);
        let b = random_dcsr(80, 80, 400, 47, s);
        let an: Dcsr<f64, u32> = a.to_index_width().unwrap();
        let bn: Dcsr<f64, u32> = b.to_index_width().unwrap();
        let wide = ewise_add(&a, &b, s);
        let narrow = ewise_add(&an, &bn, s);
        let wt: Vec<_> = wide.iter().collect();
        let nt: Vec<_> = narrow.iter().collect();
        assert_eq!(wt, nt);
    }

    #[test]
    fn ewise_add_op_second_is_overwrite_merge() {
        use semiring::Second;
        let a = m(4, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = m(4, &[(1, 1, 9.0), (2, 2, 3.0)]);
        let c = ewise_add_op(&a, &b, Second, PlusTimes::<f64>::new());
        assert_eq!(c.get(0, 0), Some(&1.0)); // only in a
        assert_eq!(c.get(1, 1), Some(&9.0)); // b wins the collision
        assert_eq!(c.get(2, 2), Some(&3.0)); // only in b
    }

    #[test]
    fn ewise_add_op_subtract_diffs() {
        use semiring::FnBinOp;
        let a = m(4, &[(0, 0, 5.0), (1, 1, 2.0)]);
        let b = m(4, &[(0, 0, 5.0), (1, 1, 1.5)]);
        let c = ewise_add_op(
            &a,
            &b,
            FnBinOp(|x: f64, y: f64| x - y),
            PlusTimes::<f64>::new(),
        );
        // Equal cells cancel to zero and drop; the differing cell remains.
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(1, 1), Some(&0.5));
    }

    #[test]
    fn ewise_mul_op_max_at_intersections() {
        use semiring::FnBinOp;
        let a = m(4, &[(0, 0, 1.0), (1, 1, 7.0)]);
        let b = m(4, &[(1, 1, 3.0), (2, 2, 9.0)]);
        let c = ewise_mul_op(
            &a,
            &b,
            FnBinOp(|x: f64, y: f64| x.max(y)),
            PlusTimes::<f64>::new(),
        );
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(1, 1), Some(&7.0));
    }

    #[test]
    fn ewise_union_true_subtraction() {
        use semiring::FnBinOp;
        let sr = PlusTimes::<f64>::new();
        let a = m(4, &[(0, 0, 5.0), (1, 1, 2.0)]);
        let b = m(4, &[(1, 1, 2.0), (2, 2, 3.0)]);
        let minus = FnBinOp(|x: f64, y: f64| x - y);
        let c = ewise_union(&a, &b, minus, 0.0, 0.0, sr);
        assert_eq!(c.get(0, 0), Some(&5.0)); // 5 − default(0)
        assert_eq!(c.get(1, 1), None); // 2 − 2 cancels
        assert_eq!(c.get(2, 2), Some(&-3.0)); // default(0) − 3: sign flips!
    }

    #[test]
    fn ewise_union_with_add_matches_ewise_add() {
        use semiring::FnBinOp;
        let sr = PlusTimes::<f64>::new();
        let a = random_dcsr(24, 24, 120, 60, sr);
        let b = random_dcsr(24, 24, 120, 61, sr);
        let plus = FnBinOp(|x: f64, y: f64| x + y);
        assert_eq!(
            ewise_union(&a, &b, plus, 0.0, 0.0, sr),
            ewise_add(&a, &b, sr)
        );
    }

    #[test]
    fn ewise_union_custom_defaults() {
        use semiring::FnBinOp;
        let sr = PlusTimes::<f64>::new();
        let a = m(4, &[(0, 0, 4.0)]);
        let b = m(4, &[(1, 1, 6.0)]);
        // min with +∞ defaults: singleton cells pass through unchanged.
        let mn = FnBinOp(|x: f64, y: f64| x.min(y));
        let c = ewise_union(&a, &b, mn, f64::INFINITY, f64::INFINITY, sr);
        assert_eq!(c.get(0, 0), Some(&4.0));
        assert_eq!(c.get(1, 1), Some(&6.0));
    }

    #[test]
    fn op_variants_reduce_to_semiring_ops() {
        let sr = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 150, 50, sr);
        let b = random_dcsr(32, 32, 150, 51, sr);
        use semiring::FnBinOp;
        assert_eq!(
            ewise_add_op(&a, &b, FnBinOp(|x: f64, y: f64| x + y), sr),
            ewise_add(&a, &b, sr)
        );
        assert_eq!(
            ewise_mul_op(&a, &b, FnBinOp(|x: f64, y: f64| x * y), sr),
            ewise_mul(&a, &b, sr)
        );
    }

    #[test]
    fn ctx_variants_record_metrics() {
        let sr = PlusTimes::<f64>::new();
        let ctx = crate::ctx::OpCtx::new();
        let a = m(4, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = m(4, &[(1, 1, 3.0), (2, 2, 4.0)]);
        let c = ewise_add_ctx(&ctx, &a, &b, sr);
        let _ = ewise_mul_ctx(&ctx, &a, &b, sr);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::EwiseAdd).calls, 1);
        assert_eq!(snap.kernel(Kernel::EwiseAdd).nnz_out, c.nnz() as u64);
        assert_eq!(snap.kernel(Kernel::EwiseAdd).flops, 1); // one collision
        assert_eq!(snap.kernel(Kernel::EwiseMul).calls, 1);
        assert!(snap.kernel(Kernel::EwiseAdd).bytes_touched > 0);
    }

    #[test]
    #[should_panic(expected = "share a key space")]
    fn dim_mismatch_panics() {
        let a = Dcsr::<f64>::empty(3, 3);
        let b = Dcsr::<f64>::empty(4, 4);
        let _ = ewise_add(&a, &b, PlusTimes::<f64>::new());
    }
}
