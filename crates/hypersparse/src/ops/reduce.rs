//! Monoid reductions — the paper's projections `A ⊕.⊗ 𝟙` (§IV).
//!
//! `C = A ⊕.⊗ 𝟙` collapses columns: `C(k₁) = ⊕_{k₂} A(k₁, k₂)` — that is
//! [`reduce_rows`]. `𝟙 ⊕.⊗ A` collapses rows — [`reduce_cols`]. Rather
//! than materialize an all-ones array over a 2⁶⁰ key space, the kernels
//! fold directly; the equivalence with the literal ⊕.⊗-against-ones form
//! is asserted in the `hyperspace-core` semilink tests.
//!
//! Each kernel has a `*_ctx` variant recording into an [`OpCtx`]'s
//! metrics; the ctx-free names wrap the thread-local default context.

use std::collections::HashMap;
use std::time::Instant;

use semiring::traits::{Monoid, Value};

use crate::ctx::{par_run, with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::metrics::Kernel;
use crate::vector::SparseVec;
use crate::Ix;

/// Stored rows per shard when fanning row-wise kernels out over
/// [`par_run`]. Every row's fold happens wholly inside one shard and
/// shards concatenate in row order, so the output is bit-identical at
/// any thread count.
pub(crate) const ROWS_PER_SHARD: usize = 512;

/// Fold each non-empty row with the monoid: `out(i) = ⊕_j A(i, j)`.
pub fn reduce_rows<T: Value, M: Monoid<T>>(a: &Dcsr<T>, m: M) -> SparseVec<T> {
    with_default_ctx(|ctx| reduce_rows_ctx(ctx, a, m))
}

/// [`reduce_rows`] through an explicit execution context.
pub fn reduce_rows_ctx<T: Value, M: Monoid<T>>(ctx: &OpCtx, a: &Dcsr<T>, m: M) -> SparseVec<T> {
    let _span = ctx.kernel_span(Kernel::ReduceRows, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let nrows = a.n_nonempty_rows();
    let nshards = nrows.div_ceil(ROWS_PER_SHARD).max(1);
    let fold_rows = |lo: usize, hi: usize| {
        let mut idx = Vec::with_capacity(hi - lo);
        let mut vals = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let (r, _cols, vs) = a.row_at(k);
            let mut acc = m.identity();
            for v in vs {
                acc = m.combine(acc, v.clone());
            }
            if !m.is_identity(&acc) {
                idx.push(r);
                vals.push(acc);
            }
        }
        (idx, vals)
    };
    let (idx, vals) = if nshards == 1 {
        fold_rows(0, nrows)
    } else {
        let parts = par_run(ctx.threads(), nshards, |shard| {
            let lo = shard * ROWS_PER_SHARD;
            fold_rows(lo, (lo + ROWS_PER_SHARD).min(nrows))
        });
        let mut idx = Vec::with_capacity(nrows);
        let mut vals = Vec::with_capacity(nrows);
        for (i, v) in parts {
            idx.extend(i);
            vals.extend(v);
        }
        (idx, vals)
    };
    let out = SparseVec::from_sorted_parts(a.nrows(), idx, vals);
    ctx.metrics().record(
        Kernel::ReduceRows,
        start.elapsed(),
        a.nnz() as u64,
        out.nnz() as u64,
        a.nnz() as u64, // one combine per stored entry
        (a.bytes() + out.bytes()) as u64,
    );
    out
}

/// Fold each non-empty column: `out(j) = ⊕_i A(i, j)`.
pub fn reduce_cols<T: Value, M: Monoid<T>>(a: &Dcsr<T>, m: M) -> SparseVec<T> {
    with_default_ctx(|ctx| reduce_cols_ctx(ctx, a, m))
}

/// [`reduce_cols`] through an explicit execution context.
pub fn reduce_cols_ctx<T: Value, M: Monoid<T>>(ctx: &OpCtx, a: &Dcsr<T>, m: M) -> SparseVec<T> {
    let _span = ctx.kernel_span(Kernel::ReduceCols, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let mut acc: HashMap<Ix, T> = HashMap::new();
    for (_r, c, v) in a.iter() {
        match acc.entry(c) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let cur = e.get_mut();
                *cur = m.combine(cur.clone(), v.clone());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(v.clone());
            }
        }
    }
    let mut entries: Vec<(Ix, T)> = acc.into_iter().filter(|(_, v)| !m.is_identity(v)).collect();
    entries.sort_by_key(|e| e.0);
    let (idx, vals) = entries.into_iter().unzip();
    let out = SparseVec::from_sorted_parts(a.ncols(), idx, vals);
    ctx.metrics().record(
        Kernel::ReduceCols,
        start.elapsed(),
        a.nnz() as u64,
        out.nnz() as u64,
        a.nnz() as u64,
        (a.bytes() + out.bytes()) as u64,
    );
    out
}

/// Fold every stored entry into one value.
pub fn reduce_scalar<T: Value, M: Monoid<T>>(a: &Dcsr<T>, m: M) -> T {
    with_default_ctx(|ctx| reduce_scalar_ctx(ctx, a, m))
}

/// [`reduce_scalar`] through an explicit execution context.
pub fn reduce_scalar_ctx<T: Value, M: Monoid<T>>(ctx: &OpCtx, a: &Dcsr<T>, m: M) -> T {
    let _span = ctx.kernel_span(Kernel::ReduceScalar, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let mut acc = m.identity();
    for (_, _, v) in a.iter() {
        acc = m.combine(acc, v.clone());
    }
    ctx.metrics().record(
        Kernel::ReduceScalar,
        start.elapsed(),
        a.nnz() as u64,
        1,
        a.nnz() as u64,
        (a.bytes() + std::mem::size_of::<T>()) as u64,
    );
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::{MaxMonoid, MinMonoid, PlusMonoid};

    fn m(t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(8, 8);
        c.extend(t.iter().copied());
        c.build_dcsr(semiring::PlusTimes::<f64>::new())
    }

    #[test]
    fn row_reduction_is_out_degree_weight() {
        let a = m(&[(0, 1, 1.0), (0, 2, 2.0), (3, 3, 5.0)]);
        let r = reduce_rows(&a, PlusMonoid::<f64>::default());
        assert_eq!(r.get(&0), Some(&3.0));
        assert_eq!(r.get(&3), Some(&5.0));
        assert_eq!(r.get(&1), None);
    }

    #[test]
    fn col_reduction_is_in_degree_weight() {
        let a = m(&[(0, 1, 1.0), (2, 1, 2.0), (3, 3, 5.0)]);
        let c = reduce_cols(&a, PlusMonoid::<f64>::default());
        assert_eq!(c.get(&1), Some(&3.0));
        assert_eq!(c.get(&3), Some(&5.0));
    }

    #[test]
    fn scalar_reduction() {
        let a = m(&[(0, 1, 1.0), (2, 1, 2.0), (3, 3, 5.0)]);
        assert_eq!(reduce_scalar(&a, PlusMonoid::<f64>::default()), 8.0);
        assert_eq!(reduce_scalar(&a, MaxMonoid::<f64>::default()), 5.0);
        assert_eq!(reduce_scalar(&a, MinMonoid::<f64>::default()), 1.0);
    }

    #[test]
    fn empty_reduces_to_identity() {
        let a = Dcsr::<f64>::empty(8, 8);
        assert_eq!(reduce_scalar(&a, PlusMonoid::<f64>::default()), 0.0);
        assert!(reduce_rows(&a, PlusMonoid::<f64>::default()).is_empty());
        assert!(reduce_cols(&a, PlusMonoid::<f64>::default()).is_empty());
    }

    #[test]
    fn identity_results_are_dropped() {
        // Row sums that cancel to the monoid identity don't appear.
        let a = m(&[(0, 1, 2.0), (0, 2, -2.0), (1, 1, 1.0)]);
        let r = reduce_rows(&a, PlusMonoid::<f64>::default());
        assert_eq!(r.get(&0), None);
        assert_eq!(r.get(&1), Some(&1.0));
    }

    #[test]
    fn ctx_reductions_record() {
        let ctx = crate::ctx::OpCtx::new();
        let a = m(&[(0, 1, 1.0), (2, 1, 2.0), (3, 3, 5.0)]);
        let _ = reduce_rows_ctx(&ctx, &a, PlusMonoid::<f64>::default());
        let _ = reduce_cols_ctx(&ctx, &a, PlusMonoid::<f64>::default());
        let _ = reduce_scalar_ctx(&ctx, &a, PlusMonoid::<f64>::default());
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::ReduceRows).calls, 1);
        assert_eq!(snap.kernel(Kernel::ReduceCols).calls, 1);
        assert_eq!(snap.kernel(Kernel::ReduceScalar).calls, 1);
        assert_eq!(snap.kernel(Kernel::ReduceRows).flops, 3);
    }

    #[test]
    fn parallel_reduce_rows_is_bit_identical() {
        // Enough non-empty rows to span several shards.
        let a = crate::gen::random_dcsr(4000, 4000, 20_000, 31, semiring::PlusTimes::<f64>::new());
        assert!(a.n_nonempty_rows() > 2 * ROWS_PER_SHARD);
        let base = {
            let ctx = crate::ctx::OpCtx::new().with_threads(1);
            reduce_rows_ctx(&ctx, &a, PlusMonoid::<f64>::default())
        };
        for threads in [2, 4, 8] {
            let ctx = crate::ctx::OpCtx::new().with_threads(threads);
            let got = reduce_rows_ctx(&ctx, &a, PlusMonoid::<f64>::default());
            assert!(got == base, "reduce_rows differs at {threads} threads");
        }
    }
}
