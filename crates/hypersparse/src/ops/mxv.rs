//! Direction-optimized, mask-fused matrix–vector kernels — the engine
//! behind every graph traversal (Fig. 1's `vᵀA`).
//!
//! Three ideas, composable per call:
//!
//! * **Direction optimization** (Beamer-style): a *push* sweep scatters
//!   each frontier entry along its row of `A` (`O(Σ_{i∈v} |A(i,:)|)`),
//!   a *pull* sweep gathers into each output slot over a row of `Aᵀ`
//!   (`O(nnz)` but mask-skippable per output). A density heuristic
//!   ([`choose_direction`]) picks per call whenever a transpose is
//!   available; dense frontiers pull, sparse frontiers push.
//! * **Complement-mask fusion**: `(vᵀA) ⊙ ¬mask` is computed inside the
//!   accumulator loop — push skips masked products, pull skips masked
//!   *rows wholesale* — instead of materializing the full product and
//!   filtering (`SparseVec::without`) afterwards.
//! * **Deterministic parallelism**: push partitions the frontier into
//!   *fixed-size* segments (independent of thread count) and ⊕-merges
//!   the segment partials left-to-right; pull shards output rows (by
//!   merge-path nnz weighting when [`OpCtx::set_shard_balancing`] is
//!   on). Both yield bit-identical results at every thread count, and a
//!   1-thread run *is* the same segmented algorithm — sequential ≡
//!   parallel.
//!
//! Within one accumulator slot, products fold in increasing source-index
//! order starting from the first product (never from `s.zero()`), so
//! push and pull apply the exact same ⊕ chain per output. Only the
//! *grouping* differs once a push frontier spans multiple segments —
//! indistinguishable for the exact semirings graph algorithms use
//! (min/max/any ⊕), and ulp-level for floating-point ⊕.
//!
//! For `PlusTimes/f64` and `LorLand` an unmasked push segment in a
//! compact column space takes a **monomorphic flat-accumulator** path
//! (branch-free `+=`/`|=` plus an occupancy bitmap drained
//! word-at-a-time) instead of the generic `HashMap` scatter; the
//! observable output is identical and [`OpCtx::set_fast_paths`] ablates
//! it off.
//!
//! Every entry point records [`Kernel::Vxm`]/[`Kernel::Mxv`] metrics
//! plus the chosen [`Direction`] and the mask probe/hit counts.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::time::Instant;

use semiring::traits::{Semiring, Value};
use semiring::{LorLand, PlusTimes};

use crate::ctx::{fixed_shards, par_run, plan_weighted_shards, with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::error::OpError;
use crate::index::IndexType;
use crate::metrics::{Direction, Kernel};
use crate::vector::SparseVec;
use crate::Ix;

/// Frontier entries per push segment. Fixed (not derived from the
/// thread count) so the ⊕-merge tree is identical at any parallelism.
const PUSH_SEG: usize = 1024;

/// Stored transpose rows per pull shard (legacy fixed plan, and the
/// cutoff below which pull never shards).
const PULL_ROWS_PER_SHARD: usize = 512;

/// Weighted pull shards per thread (merge-path oversubscription).
const PULL_SHARD_FACTOR: usize = 4;

/// Beamer-style crossover: pull when the push sweep would touch more
/// than `nnz / PULL_ALPHA` edges.
const PULL_ALPHA: u64 = 8;

/// Column spaces at most this wide may take the monomorphic push path
/// (a width-sized flat accumulator must be allocatable).
const MONO_PUSH_MAX_WIDTH: u64 = 1 << 22;

/// The mono push segment must carry at least `width /
/// MONO_PUSH_EDGE_RATIO` edges to amortize zero-initializing the flat
/// accumulator; sparser segments stay on the hash scatter.
const MONO_PUSH_EDGE_RATIO: u64 = 8;

/// Edges a push sweep would touch: `Σ_{i ∈ v} |rows_of(i,:)|`.
fn frontier_edges<T: Value, I: IndexType>(v: &SparseVec<T, I>, rows_of: &Dcsr<T, I>) -> u64 {
    v.indices()
        .iter()
        .map(|&i| rows_of.row(i.to_ix()).0.len() as u64)
        .sum()
}

/// The direction the optimized kernels would take for frontier `v` over
/// `a` (whose rows are indexed by `v`'s key space). With no transpose at
/// hand the answer is always [`Direction::Push`]; callers use this to
/// decide when building one starts paying off.
pub fn choose_direction<T: Value, I: IndexType>(
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    have_transpose: bool,
) -> Direction {
    if !have_transpose {
        return Direction::Push;
    }
    if frontier_edges(v, a).saturating_mul(PULL_ALPHA) > a.nnz() as u64 {
        Direction::Pull
    } else {
        Direction::Push
    }
}

/// One push segment's partial: `(entries, flops, mask_hits, mask_total)`.
type PushPartial<T> = (Vec<(Ix, T)>, u64, u64, u64);

/// Monomorphic unmasked push segment: `PlusTimes/f64` (branch-free
/// fused multiply-add into a flat accumulator) or `LorLand` (bitwise
/// OR). Returns `None` when `S` has no fast path or the gate says the
/// flat accumulator doesn't pay off. Zeros are *kept*, exactly like the
/// hash scatter — the cross-segment merge must see them.
fn push_segment_mono<T, I, S>(
    v: &SparseVec<T, I>,
    rows_of: &Dcsr<T, I>,
    flip: bool,
    lo: usize,
    hi: usize,
) -> Option<PushPartial<T>>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    let width = rows_of.ncols();
    if width > MONO_PUSH_MAX_WIDTH {
        return None;
    }
    let is_f64 = TypeId::of::<S>() == TypeId::of::<PlusTimes<f64>>();
    let is_bool = TypeId::of::<S>() == TypeId::of::<LorLand>();
    if !is_f64 && !is_bool {
        return None;
    }
    let est: u64 = (lo..hi)
        .map(|k| rows_of.row(v.indices()[k].to_ix()).0.len() as u64)
        .sum();
    if est < (width / MONO_PUSH_EDGE_RATIO).max(1) {
        return None;
    }
    let part: Box<dyn Any> = if is_f64 {
        let v64 = (v as &dyn Any).downcast_ref::<SparseVec<f64, I>>()?;
        let r64 = (rows_of as &dyn Any).downcast_ref::<Dcsr<f64, I>>()?;
        Box::new(push_mono_f64(v64, r64, flip, lo, hi))
    } else {
        let vb = (v as &dyn Any).downcast_ref::<SparseVec<bool, I>>()?;
        let rb = (rows_of as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
        Box::new(push_mono_bool(vb, rb, lo, hi))
    };
    let part = *part.downcast::<Vec<(Ix, T)>>().ok()?;
    Some((part, est, 0, 0))
}

fn push_mono_f64<I: IndexType>(
    v: &SparseVec<f64, I>,
    rows_of: &Dcsr<f64, I>,
    flip: bool,
    lo: usize,
    hi: usize,
) -> Vec<(Ix, f64)> {
    let width = rows_of.ncols() as usize;
    let mut flat = vec![0.0f64; width];
    let mut occ = vec![0u64; width.div_ceil(64)];
    let (idx, vals) = (v.indices(), v.values());
    let (mut lo_w, mut hi_w) = (usize::MAX, 0usize);
    for k in lo..hi {
        let x = vals[k];
        let (cols, avals) = rows_of.row(idx[k].to_ix());
        for (&j, &aij) in cols.iter().zip(avals) {
            let jz = j.as_usize();
            // Operand order mirrors the generic `s.mul` call exactly,
            // so the partials match the hash scatter bit for bit.
            let (l, r) = if flip { (aij, x) } else { (x, aij) };
            flat[jz] += l * r;
            let w = jz >> 6;
            occ[w] |= 1u64 << (jz & 63);
            lo_w = lo_w.min(w);
            hi_w = hi_w.max(w);
        }
    }
    let mut out = Vec::new();
    if lo_w <= hi_w {
        for (w, &word) in occ.iter().enumerate().take(hi_w + 1).skip(lo_w) {
            let mut bits = word;
            while bits != 0 {
                let jz = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push((jz as Ix, flat[jz]));
            }
        }
    }
    out
}

fn push_mono_bool<I: IndexType>(
    v: &SparseVec<bool, I>,
    rows_of: &Dcsr<bool, I>,
    lo: usize,
    hi: usize,
) -> Vec<(Ix, bool)> {
    let width = rows_of.ncols() as usize;
    let mut flat = vec![false; width];
    let mut occ = vec![0u64; width.div_ceil(64)];
    let (idx, vals) = (v.indices(), v.values());
    let (mut lo_w, mut hi_w) = (usize::MAX, 0usize);
    for k in lo..hi {
        let x = vals[k];
        let (cols, avals) = rows_of.row(idx[k].to_ix());
        for (&j, &aij) in cols.iter().zip(avals) {
            let jz = j.as_usize();
            flat[jz] |= x && aij;
            let w = jz >> 6;
            occ[w] |= 1u64 << (jz & 63);
            lo_w = lo_w.min(w);
            hi_w = hi_w.max(w);
        }
    }
    let mut out = Vec::new();
    if lo_w <= hi_w {
        for (w, &word) in occ.iter().enumerate().take(hi_w + 1).skip(lo_w) {
            let mut bits = word;
            while bits != 0 {
                let jz = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push((jz as Ix, flat[jz]));
            }
        }
    }
    out
}

/// One push segment: scatter frontier entries `[lo, hi)` along their
/// rows, ⊕-folding collisions in increasing source order. Returns
/// sorted `(index, value)` partials (zeros *kept* — they are filtered
/// once, after the cross-segment merge) plus flop/mask counters.
#[allow(clippy::too_many_arguments)]
fn push_segment<T, I, S>(
    v: &SparseVec<T, I>,
    rows_of: &Dcsr<T, I>,
    mask: Option<&[Ix]>,
    flip: bool,
    s: S,
    lo: usize,
    hi: usize,
    fast: bool,
) -> PushPartial<T>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    if fast && mask.is_none() {
        if let Some(res) = push_segment_mono::<T, I, S>(v, rows_of, flip, lo, hi) {
            return res;
        }
    }
    let mut acc: HashMap<Ix, T> = HashMap::new();
    let (idx, vals) = (v.indices(), v.values());
    let (mut flops, mut probes, mut hits) = (0u64, 0u64, 0u64);
    for k in lo..hi {
        let x = &vals[k];
        let (cols, avals) = rows_of.row(idx[k].to_ix());
        for (&j, aij) in cols.iter().zip(avals) {
            let j = j.to_ix();
            if let Some(m) = mask {
                probes += 1;
                if m.binary_search(&j).is_ok() {
                    hits += 1;
                    continue;
                }
            }
            let p = if flip {
                s.mul(aij.clone(), x.clone())
            } else {
                s.mul(x.clone(), aij.clone())
            };
            flops += 1;
            match acc.entry(j) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    s.add_assign(e.get_mut(), p);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(p);
                }
            }
        }
    }
    let mut out: Vec<(Ix, T)> = acc.into_iter().collect();
    out.sort_by_key(|e| e.0);
    (out, flops, probes, hits)
}

/// ⊕-merge two sorted segment partials; `left` holds the earlier
/// frontier segment, so `s.add(left, right)` preserves the sequential
/// fold order. Zeros stay until the final assembly.
fn merge_partials<T, S>(left: Vec<(Ix, T)>, right: Vec<(Ix, T)>, s: S) -> Vec<(Ix, T)>
where
    T: Value,
    S: Semiring<Value = T>,
{
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut r = right.into_iter().peekable();
    for (li, lv) in left {
        while r.peek().is_some_and(|(ri, _)| *ri < li) {
            out.push(r.next().expect("peeked"));
        }
        if r.peek().is_some_and(|(ri, _)| *ri == li) {
            let (_, rv) = r.next().expect("peeked");
            out.push((li, s.add(lv, rv)));
        } else {
            out.push((li, lv));
        }
    }
    out.extend(r);
    out
}

/// Push sweep over fixed frontier segments, fanned out via [`par_run`].
fn run_push<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    rows_of: &Dcsr<T, I>,
    mask: Option<&[Ix]>,
    flip: bool,
    s: S,
) -> PushPartial<T>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    let fast = ctx.fast_paths();
    let n = v.nnz();
    let nsegs = n.div_ceil(PUSH_SEG).max(1);
    if nsegs == 1 {
        return push_segment(v, rows_of, mask, flip, s, 0, n, fast);
    }
    let parts = par_run(ctx.threads(), nsegs, |seg| {
        let lo = seg * PUSH_SEG;
        push_segment(v, rows_of, mask, flip, s, lo, (lo + PUSH_SEG).min(n), fast)
    });
    let (mut flops, mut probes, mut hits) = (0u64, 0u64, 0u64);
    let mut merged: Vec<(Ix, T)> = Vec::new();
    for (seg, (part, f, p, h)) in parts.into_iter().enumerate() {
        flops += f;
        probes += p;
        hits += h;
        merged = if seg == 0 {
            part
        } else {
            merge_partials(merged, part, s)
        };
    }
    (merged, flops, probes, hits)
}

/// One pull shard: gather stored rows `[lo, hi)` of `rows_of` against
/// `v` by two-pointer intersection. Masked rows are skipped wholesale —
/// the payoff of fusing the complement mask into the pull direction.
fn pull_rows<T, I, S>(
    v: &SparseVec<T, I>,
    rows_of: &Dcsr<T, I>,
    mask: Option<&[Ix]>,
    flip: bool,
    s: S,
    lo: usize,
    hi: usize,
) -> PushPartial<T>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    let mut out = Vec::new();
    let (vidx, vvals) = (v.indices(), v.values());
    let (mut flops, mut probes, mut hits) = (0u64, 0u64, 0u64);
    for k in lo..hi {
        let (j, cols, avals) = rows_of.row_at(k);
        if let Some(m) = mask {
            probes += 1;
            if m.binary_search(&j).is_ok() {
                hits += 1;
                continue;
            }
        }
        let mut acc: Option<T> = None;
        let mut fold = |p: usize, q: usize, flops: &mut u64| {
            let t = if flip {
                s.mul(avals[p].clone(), vvals[q].clone())
            } else {
                s.mul(vvals[q].clone(), avals[p].clone())
            };
            *flops += 1;
            match acc.as_mut() {
                Some(a) => s.add_assign(a, t),
                None => acc = Some(t),
            }
        };
        // Hybrid intersect, order-preserving either way (increasing source
        // index): when the frontier dwarfs this row, probe it per element
        // instead of merging past it — O(row·log nnz(v)) vs O(row+nnz(v)).
        if vidx.len() > 16 * cols.len() {
            for (p, c) in cols.iter().enumerate() {
                if let Ok(q) = vidx.binary_search(c) {
                    fold(p, q, &mut flops);
                }
            }
        } else {
            let (mut p, mut q) = (0usize, 0usize);
            while p < cols.len() && q < vidx.len() {
                match cols[p].cmp(&vidx[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        fold(p, q, &mut flops);
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
        if let Some(val) = acc {
            out.push((j, val));
        }
    }
    (out, flops, probes, hits)
}

/// Pull sweep sharded by stored output rows — each output is computed
/// wholly inside one shard, so determinism is structural under either
/// sharding policy (merge-path weighted or legacy fixed).
fn run_pull<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    rows_of: &Dcsr<T, I>,
    mask: Option<&[Ix]>,
    flip: bool,
    s: S,
) -> PushPartial<T>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    let nrows = rows_of.n_nonempty_rows();
    if nrows <= PULL_ROWS_PER_SHARD {
        return pull_rows(v, rows_of, mask, flip, s, 0, nrows);
    }
    let shards = if ctx.shard_balancing() {
        plan_weighted_shards(nrows, ctx.threads() * PULL_SHARD_FACTOR, |k| {
            rows_of.row_len_at(k) as u64
        })
    } else {
        fixed_shards(nrows, PULL_ROWS_PER_SHARD)
    };
    let parts = par_run(ctx.threads(), shards.len(), |shard| {
        let (lo, hi) = shards[shard];
        pull_rows(v, rows_of, mask, flip, s, lo, hi)
    });
    let (mut flops, mut probes, mut hits) = (0u64, 0u64, 0u64);
    let mut out = Vec::new();
    for (part, f, p, h) in parts {
        flops += f;
        probes += p;
        hits += h;
        out.extend(part);
    }
    (out, flops, probes, hits)
}

/// Shared driver: pick a direction, sweep, filter zeros, record metrics.
///
/// `push_src` holds the matrix whose *rows are indexed by `v`* (that is
/// `A` for vxm, `Aᵀ` for mxv); `pull_src` holds the matrix whose *rows
/// are indexed by the output* (`Aᵀ` for vxm, `A` for mxv). `flip` puts
/// the matrix value on the left of ⊗ (mxv orientation).
#[allow(clippy::too_many_arguments)]
fn run_mv<T, I, S>(
    ctx: &OpCtx,
    kernel: Kernel,
    v: &SparseVec<T, I>,
    push_src: Option<&Dcsr<T, I>>,
    pull_src: Option<&Dcsr<T, I>>,
    mask: Option<&[Ix]>,
    flip: bool,
    out_dim: Ix,
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    debug_assert!(mask.is_none_or(|m| m.windows(2).all(|w| w[0] < w[1])));
    let mat = push_src.or(pull_src).expect("some operand");
    let _span = ctx.kernel_span(kernel, || {
        format!("{}×{} mat, {} nnz v", mat.nrows(), mat.ncols(), v.nnz())
    });
    let start = Instant::now();
    let dir = match (push_src, pull_src) {
        (Some(a), Some(_)) => choose_direction(v, a, true),
        (Some(_), None) => Direction::Push,
        (None, Some(_)) => Direction::Pull,
        (None, None) => unreachable!("one operand orientation is always supplied"),
    };
    let (entries, flops, probes, hits) = match dir {
        Direction::Push => run_push(ctx, v, push_src.expect("push chosen"), mask, flip, s),
        Direction::Pull => run_pull(ctx, v, pull_src.expect("pull chosen"), mask, flip, s),
    };
    let mut idx = Vec::with_capacity(entries.len());
    let mut vals = Vec::with_capacity(entries.len());
    for (j, val) in entries {
        if !s.is_zero(&val) {
            idx.push(I::from_ix(j));
            vals.push(val);
        }
    }
    let out = SparseVec::from_sorted_parts(out_dim, idx, vals);
    let mat = push_src.or(pull_src).expect("some operand");
    ctx.metrics().record(
        kernel,
        start.elapsed(),
        (v.nnz() + mat.nnz()) as u64,
        out.nnz() as u64,
        flops,
        (v.bytes() + mat.bytes() + out.bytes()) as u64,
    );
    ctx.metrics().record_mv_direction(dir, probes, hits);
    out
}

fn check_vxm<T: Value, I: IndexType>(v: &SparseVec<T, I>, a: &Dcsr<T, I>) -> Result<(), OpError> {
    if v.dim() != a.nrows() {
        return Err(OpError::DimensionMismatch {
            op: "vxm",
            a: (1, v.dim()),
            b: (a.nrows(), a.ncols()),
            rule: "dimension mismatch",
        });
    }
    Ok(())
}

fn check_mxv<T: Value, I: IndexType>(a: &Dcsr<T, I>, v: &SparseVec<T, I>) -> Result<(), OpError> {
    if v.dim() != a.ncols() {
        return Err(OpError::DimensionMismatch {
            op: "mxv",
            a: (a.nrows(), a.ncols()),
            b: (v.dim(), 1),
            rule: "dimension mismatch",
        });
    }
    Ok(())
}

// ---- vxm family ----

/// `vᵀ A` over a semiring: `out(j) = ⊕_i v(i) ⊗ A(i,j)` — one frontier
/// expansion, push direction, parallel over fixed frontier segments.
pub fn vxm_ctx<T, I, S>(ctx: &OpCtx, v: &SparseVec<T, I>, a: &Dcsr<T, I>, s: S) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    try_vxm_ctx(ctx, v, a, s).unwrap_or_else(|e| panic!("{e}"))
}

/// [`vxm_ctx`] against the thread-local default context.
pub fn vxm<T, I, S>(v: &SparseVec<T, I>, a: &Dcsr<T, I>, s: S) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| vxm_ctx(ctx, v, a, s))
}

/// Fallible [`vxm_ctx`]: dimension mismatch becomes an [`OpError`].
pub fn try_vxm_ctx<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    s: S,
) -> Result<SparseVec<T, I>, OpError>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    check_vxm(v, a)?;
    Ok(run_mv(
        ctx,
        Kernel::Vxm,
        v,
        Some(a),
        None,
        None,
        false,
        a.ncols(),
        s,
    ))
}

/// Fallible [`vxm`] against the thread-local default context.
pub fn try_vxm<T, I, S>(
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    s: S,
) -> Result<SparseVec<T, I>, OpError>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| try_vxm_ctx(ctx, v, a, s))
}

/// Direction-optimized `vᵀ A`: supply `at = Aᵀ` (e.g. from
/// [`crate::Matrix::cached_transpose_ctx`]) and the kernel picks push or
/// pull per call via [`choose_direction`].
pub fn vxm_opt_ctx<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    at: Option<&Dcsr<T, I>>,
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    assert_eq!(v.dim(), a.nrows(), "dimension mismatch");
    debug_assert!(at.is_none_or(|t| t.nrows() == a.ncols() && t.ncols() == a.nrows()));
    run_mv(ctx, Kernel::Vxm, v, Some(a), at, None, false, a.ncols(), s)
}

/// Mask-fused frontier expansion: `(vᵀA) ⊙ ¬mask` with the complement
/// mask (a sorted index slice, e.g. the visited set) applied *inside*
/// the accumulator loop. Equivalent to `vxm(...).without(mask)` without
/// materializing the masked-off work.
pub fn vxm_masked_ctx<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    mask: &[Ix],
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    vxm_masked_opt_ctx(ctx, v, a, None, mask, s)
}

/// [`vxm_masked_ctx`] with direction optimization over an optional
/// transpose. In pull direction a masked output skips its whole gather
/// row — the mask's biggest win.
pub fn vxm_masked_opt_ctx<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    at: Option<&Dcsr<T, I>>,
    mask: &[Ix],
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    assert_eq!(v.dim(), a.nrows(), "dimension mismatch");
    debug_assert!(at.is_none_or(|t| t.nrows() == a.ncols() && t.ncols() == a.nrows()));
    run_mv(
        ctx,
        Kernel::Vxm,
        v,
        Some(a),
        at,
        Some(mask),
        false,
        a.ncols(),
        s,
    )
}

/// Force-push `vᵀ A` (ablation entry point).
pub fn vxm_push_ctx<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    a: &Dcsr<T, I>,
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    assert_eq!(v.dim(), a.nrows(), "dimension mismatch");
    run_mv(
        ctx,
        Kernel::Vxm,
        v,
        Some(a),
        None,
        None,
        false,
        a.ncols(),
        s,
    )
}

/// Force-pull `vᵀ A` given `at = Aᵀ` (ablation entry point).
pub fn vxm_pull_ctx<T, I, S>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    at: &Dcsr<T, I>,
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    assert_eq!(v.dim(), at.ncols(), "dimension mismatch");
    run_mv(
        ctx,
        Kernel::Vxm,
        v,
        None,
        Some(at),
        None,
        false,
        at.nrows(),
        s,
    )
}

/// Dense-accumulator pull `vᵀ A` for compact key spaces (PageRank's
/// inner loop): for every stored row `j` of `at = Aᵀ`,
/// `out[j] ⊕= ⊕_i v[i] ⊗ at(j,i)` folding in increasing `i` — slots of
/// `out` act as per-output accumulator seeds and untouched slots keep
/// their initial value. Output-sharded (merge-path weighted when the
/// context enables balancing), so bit-identical at any thread count.
pub fn vxm_dense_pull_ctx<T, I, S>(ctx: &OpCtx, v: &[T], at: &Dcsr<T, I>, out: &mut [T], s: S)
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    assert_eq!(v.len() as Ix, at.ncols(), "dimension mismatch");
    assert_eq!(out.len() as Ix, at.nrows(), "dimension mismatch");
    let _span = ctx.kernel_span(Kernel::Vxm, || {
        format!("dense-pull {}×{}, {} nnz", at.nrows(), at.ncols(), at.nnz())
    });
    let start = Instant::now();
    let nrows = at.n_nonempty_rows();
    let shards = if nrows <= PULL_ROWS_PER_SHARD {
        vec![(0, nrows)]
    } else if ctx.shard_balancing() {
        plan_weighted_shards(nrows, ctx.threads() * PULL_SHARD_FACTOR, |k| {
            at.row_len_at(k) as u64
        })
    } else {
        fixed_shards(nrows, PULL_ROWS_PER_SHARD)
    };
    let sweep = |lo: usize, hi: usize, out: &[T]| -> (Vec<(usize, T)>, u64) {
        let mut updates = Vec::with_capacity(hi - lo);
        let mut flops = 0u64;
        for k in lo..hi {
            let (j, cols, avals) = at.row_at(k);
            let j = j as usize;
            let mut acc = out[j].clone();
            for (&i, aji) in cols.iter().zip(avals) {
                let t = s.mul(v[i.as_usize()].clone(), aji.clone());
                flops += 1;
                s.add_assign(&mut acc, t);
            }
            updates.push((j, acc));
        }
        (updates, flops)
    };
    // Shards only *read* `out` (their rows are disjoint); writes land
    // after the fan-out completes.
    let parts = par_run(ctx.threads(), shards.len(), |shard| {
        let (lo, hi) = shards[shard];
        sweep(lo, hi, out)
    });
    let mut flops = 0u64;
    let mut touched = 0u64;
    for (updates, f) in parts {
        flops += f;
        touched += updates.len() as u64;
        for (j, val) in updates {
            out[j] = val;
        }
    }
    ctx.metrics().record(
        Kernel::Vxm,
        start.elapsed(),
        (v.len() + at.nnz()) as u64,
        touched,
        flops,
        (std::mem::size_of::<T>() * (v.len() + out.len()) + at.bytes()) as u64,
    );
    ctx.metrics().record_mv_direction(Direction::Pull, 0, 0);
}

// ---- mxv family ----

/// `A v` over a semiring: `out(i) = ⊕_j A(i,j) ⊗ v(j)` — sparse row-dot
/// products (the natural direction is a *pull* over `A`'s own rows),
/// parallel over row shards.
pub fn mxv_ctx<T, I, S>(ctx: &OpCtx, a: &Dcsr<T, I>, v: &SparseVec<T, I>, s: S) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    try_mxv_ctx(ctx, a, v, s).unwrap_or_else(|e| panic!("{e}"))
}

/// [`mxv_ctx`] against the thread-local default context.
pub fn mxv<T, I, S>(a: &Dcsr<T, I>, v: &SparseVec<T, I>, s: S) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| mxv_ctx(ctx, a, v, s))
}

/// Fallible [`mxv_ctx`]: dimension mismatch becomes an [`OpError`].
pub fn try_mxv_ctx<T, I, S>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    v: &SparseVec<T, I>,
    s: S,
) -> Result<SparseVec<T, I>, OpError>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    check_mxv(a, v)?;
    Ok(run_mv(
        ctx,
        Kernel::Mxv,
        v,
        None,
        Some(a),
        None,
        true,
        a.nrows(),
        s,
    ))
}

/// Fallible [`mxv`] against the thread-local default context.
pub fn try_mxv<T, I, S>(
    a: &Dcsr<T, I>,
    v: &SparseVec<T, I>,
    s: S,
) -> Result<SparseVec<T, I>, OpError>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| try_mxv_ctx(ctx, a, v, s))
}

/// Direction-optimized `A v`: supply `at = Aᵀ` and a sparse `v` can be
/// *pushed* along `at`'s rows instead of intersecting every row of `A`.
pub fn mxv_opt_ctx<T, I, S>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    at: Option<&Dcsr<T, I>>,
    v: &SparseVec<T, I>,
    s: S,
) -> SparseVec<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
{
    assert_eq!(v.dim(), a.ncols(), "dimension mismatch");
    debug_assert!(at.is_none_or(|t| t.nrows() == a.ncols() && t.ncols() == a.nrows()));
    run_mv(ctx, Kernel::Mxv, v, at, Some(a), None, true, a.nrows(), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use crate::ops::transform::transpose;
    use semiring::{MinPlus, PlusTimes};

    fn pt() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    /// Independent oracle: the pre-kernel HashMap scatter.
    fn vxm_oracle<T: Value, S: Semiring<Value = T>>(
        v: &SparseVec<T>,
        a: &Dcsr<T>,
        s: S,
    ) -> SparseVec<T> {
        let mut acc: HashMap<Ix, T> = HashMap::new();
        for (i, x) in v.iter() {
            let (cols, vals) = a.row(i);
            for (&j, aij) in cols.iter().zip(vals) {
                let p = s.mul(x.clone(), aij.clone());
                match acc.entry(j) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        let mut entries: Vec<(Ix, T)> = acc.into_iter().filter(|(_, x)| !s.is_zero(x)).collect();
        entries.sort_by_key(|e| e.0);
        let (idx, vals) = entries.into_iter().unzip();
        SparseVec::from_sorted_parts(a.ncols(), idx, vals)
    }

    fn frontier(n: Ix, k: usize, seed: u64) -> SparseVec<f64> {
        let step = (n / k as Ix).max(1);
        SparseVec::from_entries(
            n,
            (0..k as Ix)
                .map(|i| ((i * step + seed) % n, 1.0 + (i % 7) as f64))
                .collect(),
            pt(),
        )
    }

    #[test]
    fn vxm_matches_oracle() {
        let ctx = OpCtx::new();
        let a = random_dcsr(300, 300, 2000, 11, pt());
        let v = frontier(300, 40, 3);
        assert_eq!(vxm_ctx(&ctx, &v, &a, pt()), vxm_oracle(&v, &a, pt()));
    }

    #[test]
    fn mono_push_matches_generic_scatter() {
        // A busy frontier in a compact column space takes the flat
        // fast path; ablating it off must not change a bit.
        let a = random_dcsr(512, 512, 8000, 51, pt());
        let v = frontier(512, 400, 1);
        let fast = OpCtx::new().with_threads(1);
        let generic = OpCtx::new().with_threads(1);
        generic.set_fast_paths(false);
        assert_eq!(
            vxm_ctx(&fast, &v, &a, pt()),
            vxm_ctx(&generic, &v, &a, pt())
        );
        // And for a frontier spanning multiple segments.
        let big = random_dcsr(4000, 4000, 60_000, 52, pt());
        let vf = frontier(4000, 3000, 2);
        let fast4 = OpCtx::new().with_threads(4);
        let generic4 = OpCtx::new().with_threads(4);
        generic4.set_fast_paths(false);
        assert_eq!(
            vxm_push_ctx(&fast4, &vf, &big, pt()),
            vxm_push_ctx(&generic4, &vf, &big, pt())
        );
    }

    #[test]
    fn narrow_index_vxm_matches_wide() {
        let a = random_dcsr(300, 300, 2000, 53, pt());
        let v = frontier(300, 40, 3);
        let an: Dcsr<f64, u32> = a.to_index_width().unwrap();
        let vn: SparseVec<f64, u32> = v.to_index_width().unwrap();
        let wide = vxm(&v, &a, pt());
        let narrow = vxm(&vn, &an, pt());
        let wt: Vec<_> = wide.iter().map(|(i, &x)| (i, x)).collect();
        let nt: Vec<_> = narrow.iter().map(|(i, &x)| (i, x)).collect();
        assert_eq!(wt, nt);
    }

    #[test]
    fn masked_equals_unfused_then_without() {
        let ctx = OpCtx::new();
        let a = random_dcsr(200, 200, 1500, 5, pt());
        let v = frontier(200, 30, 1);
        let mask: Vec<Ix> = (0..200).step_by(3).collect();
        let mask_vec = SparseVec::from_entries(200, mask.iter().map(|&i| (i, 1.0)).collect(), pt());
        let fused = vxm_masked_ctx(&ctx, &v, &a, &mask, pt());
        let unfused = vxm_ctx(&ctx, &v, &a, pt()).without(&mask_vec);
        assert_eq!(fused, unfused);
        // And the pull direction agrees too.
        let at = transpose(&a);
        let pulled = vxm_masked_opt_ctx(&ctx, &v, &a, Some(&at), &mask, pt());
        assert_eq!(pulled, unfused);
    }

    #[test]
    fn push_equals_pull() {
        let ctx = OpCtx::new();
        let a = random_dcsr(256, 256, 3000, 9, pt());
        let at = transpose(&a);
        let v = frontier(256, 200, 2);
        let push = vxm_push_ctx(&ctx, &v, &a, pt());
        let pull = vxm_pull_ctx(&ctx, &v, &at, pt());
        assert_eq!(push, pull);
    }

    #[test]
    fn heuristic_pushes_sparse_pulls_dense() {
        let a = random_dcsr(1000, 1000, 8000, 4, pt());
        let sparse = frontier(1000, 2, 0);
        let dense = frontier(1000, 900, 0);
        assert_eq!(choose_direction(&sparse, &a, true), Direction::Push);
        assert_eq!(choose_direction(&dense, &a, true), Direction::Pull);
        assert_eq!(choose_direction(&dense, &a, false), Direction::Push);
    }

    #[test]
    fn parallel_equals_sequential_across_thread_counts() {
        // Frontier spans several PUSH_SEG segments; min-plus ⊕ is exact
        // under regrouping, so every thread count is bit-identical.
        let s = MinPlus::<f64>::new();
        let n = 6000;
        let a = random_dcsr(n, n, 40_000, 21, s);
        let at = transpose(&a);
        let v = frontier(n, 3000, 7);
        let base = {
            let ctx = OpCtx::new().with_threads(1);
            (
                vxm_ctx(&ctx, &v, &a, s),
                vxm_pull_ctx(&ctx, &v, &at, s),
                mxv_ctx(&ctx, &a, &v, s),
            )
        };
        for threads in [2, 4, 8] {
            let ctx = OpCtx::new().with_threads(threads);
            assert_eq!(vxm_ctx(&ctx, &v, &a, s), base.0, "push @{threads}");
            assert_eq!(vxm_pull_ctx(&ctx, &v, &at, s), base.1, "pull @{threads}");
            assert_eq!(mxv_ctx(&ctx, &a, &v, s), base.2, "mxv @{threads}");
        }
    }

    #[test]
    fn pull_weighted_and_fixed_sharding_agree() {
        let s = MinPlus::<f64>::new();
        let n = 6000;
        let a = random_dcsr(n, n, 40_000, 22, s);
        let at = transpose(&a);
        let v = frontier(n, 3000, 7);
        let balanced = OpCtx::new().with_threads(4);
        let fixed = OpCtx::new().with_threads(4);
        fixed.set_shard_balancing(false);
        assert_eq!(
            vxm_pull_ctx(&balanced, &v, &at, s),
            vxm_pull_ctx(&fixed, &v, &at, s)
        );
    }

    #[test]
    fn mxv_matches_legacy_row_intersect() {
        // Oracle: the original two-pointer row-dot loop.
        let a = random_dcsr(300, 300, 2500, 14, pt());
        let v = frontier(300, 80, 5);
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (r, cols, avals) in a.iter_rows() {
            let mut acc = pt().zero();
            let (mut p, mut q) = (0usize, 0usize);
            while p < cols.len() && q < v.indices().len() {
                match cols[p].cmp(&v.indices()[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        let t = pt().mul(avals[p], v.values()[q]);
                        pt().add_assign(&mut acc, t);
                        p += 1;
                        q += 1;
                    }
                }
            }
            if !pt().is_zero(&acc) {
                idx.push(r);
                vals.push(acc);
            }
        }
        let want = SparseVec::from_sorted_parts(a.nrows(), idx, vals);
        assert_eq!(mxv(&a, &v, pt()), want);
        // Push direction (via the transpose) agrees.
        let ctx = OpCtx::new();
        let at = transpose(&a);
        let sparse_v = frontier(300, 3, 5);
        assert_eq!(
            mxv_opt_ctx(&ctx, &a, Some(&at), &sparse_v, pt()),
            mxv(&a, &sparse_v, pt())
        );
    }

    #[test]
    fn mxv_respects_non_commutative_product_order() {
        // MinFirst: a ⊗ b keeps `a` (unless b is absent) — orientation
        // matters, so mxv must put the matrix value on the left.
        let s = semiring::MinFirst;
        let mut c = Coo::new(4, 4);
        c.extend([(0u64, 1u64, 7u64), (2, 1, 3)]);
        let a = c.build_dcsr(s);
        let v = SparseVec::from_entries(4, vec![(1, 9u64)], s);
        let got = mxv(&a, &v, s);
        assert_eq!(got.get(&0), Some(&7));
        assert_eq!(got.get(&2), Some(&3));
        let ctx = OpCtx::new();
        let at = transpose(&a);
        assert_eq!(mxv_opt_ctx(&ctx, &a, Some(&at), &v, s), got);
    }

    #[test]
    fn try_variants_report_dimension_mismatch() {
        let a = random_dcsr(10, 12, 30, 1, pt());
        let bad = SparseVec::<f64>::empty(11);
        let e = try_vxm(&bad, &a, pt()).unwrap_err();
        assert!(e.to_string().contains("vxm: dimension mismatch"), "{e}");
        let e = try_mxv(&a, &bad, pt()).unwrap_err();
        assert!(e.to_string().contains("mxv: dimension mismatch"), "{e}");
        assert!(try_vxm(&SparseVec::empty(10), &a, pt()).is_ok());
        assert!(try_mxv(&a, &SparseVec::empty(12), pt()).is_ok());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn vxm_panics_on_mismatch() {
        let a = random_dcsr(10, 12, 30, 1, pt());
        let _ = vxm(&SparseVec::<f64>::empty(11), &a, pt());
    }

    #[test]
    fn metrics_record_direction_flops_and_mask_hits() {
        let ctx = OpCtx::new();
        let a = random_dcsr(100, 100, 900, 8, pt());
        let at = transpose(&a);
        let dense_v = frontier(100, 90, 0);
        let _ = vxm_opt_ctx(&ctx, &dense_v, &a, Some(&at), pt());
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::Vxm).calls, 1);
        assert_eq!(snap.mv_pull_calls, 1);
        assert!(snap.kernel(Kernel::Vxm).flops > 0);
        assert!(snap.kernel(Kernel::Vxm).bytes_touched > 0);

        let mask: Vec<Ix> = (0..100).collect(); // everything masked
        let masked = vxm_masked_opt_ctx(&ctx, &dense_v, &a, Some(&at), &mask, pt());
        assert!(masked.is_empty());
        let snap = ctx.metrics().snapshot();
        assert!(snap.mask_probes > 0);
        assert_eq!(snap.mask_probes, snap.mask_hits, "full mask hits always");
        assert!(snap.mask_hit_rate() > 0.99);

        let _ = mxv_ctx(&ctx, &a, &dense_v, pt());
        assert_eq!(ctx.metrics().snapshot().kernel(Kernel::Mxv).calls, 1);
    }

    #[test]
    fn dense_pull_matches_scalar_scatter() {
        let n = 64usize;
        let a = random_dcsr(n as Ix, n as Ix, 500, 17, pt());
        let at = transpose(&a);
        let v: Vec<f64> = (0..n).map(|i| 0.25 + i as f64 * 0.5).collect();
        // Scalar oracle: scatter rows of `a` in row order.
        let mut want = vec![0.125f64; n];
        for (r, cols, vals) in a.iter_rows() {
            for (&c, w) in cols.iter().zip(vals) {
                want[c as usize] += v[r as usize] * w;
            }
        }
        for threads in [1, 2, 4] {
            let ctx = OpCtx::new().with_threads(threads);
            let mut out = vec![0.125f64; n];
            vxm_dense_pull_ctx(&ctx, &v, &at, &mut out, pt());
            // Same fold order per slot: bitwise equality, any thread count.
            assert!(out.iter().zip(&want).all(|(x, y)| x == y), "@{threads}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let ctx = OpCtx::new();
        let a = Dcsr::<f64>::empty(8, 8);
        let v = SparseVec::<f64>::empty(8);
        assert!(vxm_ctx(&ctx, &v, &a, pt()).is_empty());
        assert!(mxv_ctx(&ctx, &a, &v, pt()).is_empty());
        let full = frontier(8, 4, 0);
        assert!(vxm_ctx(&ctx, &full, &a, pt()).is_empty());
    }
}
