//! Monomorphic semiring fast paths (DESIGN.md §13).
//!
//! The generic Gustavson kernels pay for their generality in the inner
//! loop: an `Option<T>` dense slot costs a discriminant branch per
//! product, and the epilogue machinery walks a sorted touched list. For
//! the two semirings that dominate this workspace's workloads —
//! arithmetic `PlusTimes/f64` and boolean `LorLand` — this module
//! provides branch-free replacements:
//!
//! * a **flat accumulator** (`Vec<f64>` / `Vec<bool>`) written
//!   unconditionally (`acc[j] += a*b`, `acc[j] |= a&&b`) — no `Option`
//!   discriminant, no per-product branch;
//! * an **occupancy bitmap** (`Vec<u64>`, one bit per column) that is
//!   OR-updated per product and drained **word-at-a-time** with
//!   `trailing_zeros`, yielding columns in ascending order without a
//!   sort. The drain zeroes each word and slot as it consumes them, so
//!   the pooled scratch returns clean (the invariant
//!   [`MxmScratch`] documents).
//!
//! Dispatch is by `TypeId`: the semiring operator structs are zero-sized
//! `Copy` types, so type identity *is* behavioral identity, and the
//! downcasts go through `&dyn Any` (this crate forbids `unsafe`).
//!
//! **Equivalence contract** (proven by `tests/hotpath_props.rs`): the
//! fast kernels are bit-identical to the generic dense-accumulator
//! path. Products are folded in the same visitation order; columns are
//! emitted ascending; semiring zeros are dropped before the epilogue
//! exactly as the generic drain does. The only internal divergence is
//! the `f64` accumulator seed (`0.0 + p` versus storing `p` directly),
//! which can differ solely when every addend is a signed zero — and
//! such sums are semiring zeros, dropped by both paths.

use std::any::{Any, TypeId};

use semiring::traits::{Semiring, Value};
use semiring::{LorLand, PlusTimes};

use crate::ctx::MxmScratch;
use crate::dcsr::Dcsr;
use crate::index::IndexType;
use crate::ops::mxm::RowsChunk;

/// `true` when semiring `S` (with value type `T`) has a monomorphic
/// SpGEMM fast path.
pub(crate) fn has_mono_semiring<T: Value, S: Semiring<Value = T>>() -> bool {
    TypeId::of::<S>() == TypeId::of::<PlusTimes<f64>>()
        || TypeId::of::<S>() == TypeId::of::<LorLand>()
}

/// Try the monomorphic SpGEMM row-range kernel. Returns `None` when `S`
/// has no fast path (caller falls back to the generic accumulators).
/// The caller has already decided the flat accumulator pays off
/// (`dense_acc_pays_off`), applies `ep` semantics via `ep_identity`:
/// when `false`, each surviving value passes through `ep` and `None`
/// results are dropped (the fused-prune contract).
#[allow(clippy::type_complexity)]
pub(crate) fn try_mono_mxm_rows<T, I, S, E>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
    ep_identity: bool,
    ep: &E,
) -> Option<(RowsChunk<T, I>, u64)>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    E: Fn(T) -> Option<T>,
{
    let (chunk, flops) = if TypeId::of::<S>() == TypeId::of::<PlusTimes<f64>>() {
        let a64 = (a as &dyn Any).downcast_ref::<Dcsr<f64, I>>()?;
        let b64 = (b as &dyn Any).downcast_ref::<Dcsr<f64, I>>()?;
        let ws64 = (scratch as &mut dyn Any).downcast_mut::<MxmScratch<f64>>()?;
        let (chunk, flops) = mono_rows_f64(a64, b64, start, end, ws64);
        (rechunk::<f64, T, I>(chunk)?, flops)
    } else if TypeId::of::<S>() == TypeId::of::<LorLand>() {
        let ab = (a as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
        let bb = (b as &dyn Any).downcast_ref::<Dcsr<bool, I>>()?;
        let wsb = (scratch as &mut dyn Any).downcast_mut::<MxmScratch<bool>>()?;
        let (chunk, flops) = mono_rows_bool(ab, bb, start, end, wsb);
        (rechunk::<bool, T, I>(chunk)?, flops)
    } else {
        return None;
    };
    Some((apply_epilogue(chunk, ep_identity, ep), flops))
}

/// Convert a concretely-typed chunk back to the caller's generic `T`
/// (which type identity has already proven equal) — one boxed downcast
/// for the whole chunk, nothing per element.
fn rechunk<C: Value, T: Value, I: IndexType>(chunk: RowsChunk<C, I>) -> Option<RowsChunk<T, I>> {
    let boxed: Box<dyn Any> = Box::new(chunk);
    boxed.downcast::<RowsChunk<T, I>>().ok().map(|b| *b)
}

/// Run the drain-time epilogue over a finished chunk. The mono kernels
/// have already dropped semiring zeros, so `ep` sees exactly the values
/// the generic drain would hand it, in the same (ascending-column)
/// order.
fn apply_epilogue<T, I, E>(mut chunk: RowsChunk<T, I>, ep_identity: bool, ep: &E) -> RowsChunk<T, I>
where
    T: Value,
    I: IndexType,
    E: Fn(T) -> Option<T>,
{
    if ep_identity {
        return chunk;
    }
    for (_, row) in chunk.iter_mut() {
        row.retain_mut(|(_, v)| match ep(v.clone()) {
            Some(w) => {
                *v = w;
                true
            }
            None => false,
        });
    }
    chunk.retain(|(_, row)| !row.is_empty());
    chunk
}

/// Branch-free `PlusTimes/f64` row range: flat `f64` accumulator +
/// occupancy bitmap, drained word-at-a-time in ascending column order.
fn mono_rows_f64<I: IndexType>(
    a: &Dcsr<f64, I>,
    b: &Dcsr<f64, I>,
    start: usize,
    end: usize,
    ws: &mut MxmScratch<f64>,
) -> (RowsChunk<f64, I>, u64) {
    let width = b.ncols() as usize;
    ws.ensure_flat_width(width, 0.0);
    ws.ensure_words(width.div_ceil(64));
    let flat = &mut ws.flat;
    let occ = &mut ws.words;
    let mut out: RowsChunk<f64, I> = Vec::new();
    let mut flops = 0u64;
    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        let (mut lo_w, mut hi_w) = (usize::MAX, 0usize);
        for (&k, &aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k.to_ix());
            flops += bcols.len() as u64;
            for (&j, &bkj) in bcols.iter().zip(bvals) {
                let jz = j.as_usize();
                flat[jz] += aik * bkj;
                let w = jz >> 6;
                occ[w] |= 1u64 << (jz & 63);
                lo_w = lo_w.min(w);
                hi_w = hi_w.max(w);
            }
        }
        if lo_w > hi_w {
            continue;
        }
        let mut row: Vec<(I, f64)> = Vec::new();
        for (w, word) in occ.iter_mut().enumerate().take(hi_w + 1).skip(lo_w) {
            let mut bits = std::mem::take(word);
            while bits != 0 {
                let jz = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = std::mem::take(&mut flat[jz]);
                if v != 0.0 {
                    row.push((I::from_usize(jz), v));
                }
            }
        }
        if !row.is_empty() {
            out.push((i, row));
        }
    }
    (out, flops)
}

/// Bitwise `LorLand` row range: flat `bool` accumulator OR-updated per
/// product (a stored `false` — legal if a matrix was built under a
/// different semiring — still only contributes `false`), occupancy
/// bitmap drained word-at-a-time.
fn mono_rows_bool<I: IndexType>(
    a: &Dcsr<bool, I>,
    b: &Dcsr<bool, I>,
    start: usize,
    end: usize,
    ws: &mut MxmScratch<bool>,
) -> (RowsChunk<bool, I>, u64) {
    let width = b.ncols() as usize;
    ws.ensure_flat_width(width, false);
    ws.ensure_words(width.div_ceil(64));
    let flat = &mut ws.flat;
    let occ = &mut ws.words;
    let mut out: RowsChunk<bool, I> = Vec::new();
    let mut flops = 0u64;
    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        let (mut lo_w, mut hi_w) = (usize::MAX, 0usize);
        for (&k, &aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k.to_ix());
            flops += bcols.len() as u64;
            for (&j, &bkj) in bcols.iter().zip(bvals) {
                let jz = j.as_usize();
                flat[jz] |= aik && bkj;
                let w = jz >> 6;
                occ[w] |= 1u64 << (jz & 63);
                lo_w = lo_w.min(w);
                hi_w = hi_w.max(w);
            }
        }
        if lo_w > hi_w {
            continue;
        }
        let mut row: Vec<(I, bool)> = Vec::new();
        for (w, word) in occ.iter_mut().enumerate().take(hi_w + 1).skip(lo_w) {
            let mut bits = std::mem::take(word);
            while bits != 0 {
                let jz = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = std::mem::take(&mut flat[jz]);
                if v {
                    row.push((I::from_usize(jz), v));
                }
            }
        }
        if !row.is_empty() {
            out.push((i, row));
        }
    }
    (out, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::MinPlus;

    #[test]
    fn mono_detection_is_exact() {
        assert!(has_mono_semiring::<f64, PlusTimes<f64>>());
        assert!(has_mono_semiring::<bool, LorLand>());
        assert!(!has_mono_semiring::<f64, MinPlus<f64>>());
        assert!(!has_mono_semiring::<f32, PlusTimes<f32>>());
    }

    #[test]
    fn mono_leaves_scratch_clean() {
        use crate::gen::random_dcsr;
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 400, 41, s);
        let b = random_dcsr(64, 64, 400, 42, s);
        let mut ws = MxmScratch::<f64>::default();
        let got = try_mono_mxm_rows::<f64, u64, PlusTimes<f64>, _>(
            &a,
            &b,
            0,
            a.n_nonempty_rows(),
            &mut ws,
            true,
            &Some,
        );
        assert!(got.is_some());
        assert!(ws.words.iter().all(|&w| w == 0), "bitmap left dirty");
        assert!(ws.flat.iter().all(|&v| v == 0.0), "flat acc left dirty");
    }
}
