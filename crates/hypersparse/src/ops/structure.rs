//! Structural composition: assign, concatenation, diagonals, triangles,
//! matrix powers — the remaining GraphBLAS surface.
//!
//! The heavyweight kernels have `*_ctx` variants recording into an
//! [`OpCtx`]'s metrics; the ctx-free names wrap the thread-local default
//! context.

use std::time::Instant;

use semiring::traits::{Semiring, Value};

use crate::ctx::{with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::metrics::Kernel;
use crate::vector::SparseVec;
use crate::Ix;

/// `A(rows, cols) = B` — submatrix assignment (GraphBLAS `GrB_assign`):
/// entry `B(i, j)` lands at `A(rows[i], cols[j])`, replacing anything in
/// the selected cross-pattern (cells selected but absent in `B` are
/// cleared). Selectors must be strictly increasing.
pub fn assign<T: Value>(a: &Dcsr<T>, rows_sel: &[Ix], cols_sel: &[Ix], b: &Dcsr<T>) -> Dcsr<T> {
    with_default_ctx(|ctx| assign_ctx(ctx, a, rows_sel, cols_sel, b))
}

/// [`assign`] through an explicit execution context.
pub fn assign_ctx<T: Value>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    rows_sel: &[Ix],
    cols_sel: &[Ix],
    b: &Dcsr<T>,
) -> Dcsr<T> {
    debug_assert!(rows_sel.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(cols_sel.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(b.nrows(), rows_sel.len() as Ix, "assign row conformance");
    assert_eq!(b.ncols(), cols_sel.len() as Ix, "assign col conformance");
    let _span = ctx.kernel_span(Kernel::Assign, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();

    let row_set: std::collections::HashSet<Ix> = rows_sel.iter().copied().collect();
    let col_set: std::collections::HashSet<Ix> = cols_sel.iter().copied().collect();

    // Survivors of A: everything outside the selected cross-pattern.
    let mut trips: Vec<(Ix, Ix, T)> = a
        .iter()
        .filter(|(r, c, _)| !(row_set.contains(r) && col_set.contains(c)))
        .map(|(r, c, v)| (r, c, v.clone()))
        .collect();
    // Incoming entries of B, mapped through the selectors.
    for (i, j, v) in b.iter() {
        trips.push((rows_sel[i as usize], cols_sel[j as usize], v.clone()));
    }
    trips.sort_by_key(|&(r, c, _)| (r, c));

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(trips.len());
    let mut vals = Vec::with_capacity(trips.len());
    for (r, c, v) in trips {
        if rows.last() != Some(&r) {
            rows.push(r);
            rowptr.push(colidx.len());
        }
        colidx.push(c);
        vals.push(v);
        *rowptr.last_mut().expect("nonempty") = colidx.len();
    }
    let c = Dcsr::from_parts(a.nrows(), a.ncols(), rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::Assign,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        0,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    c
}

/// Stack `a` on top of `b` (column dimensions must match).
pub fn concat_rows<T: Value>(a: &Dcsr<T>, b: &Dcsr<T>) -> Dcsr<T> {
    with_default_ctx(|ctx| concat_rows_ctx(ctx, a, b))
}

/// [`concat_rows`] through an explicit execution context.
pub fn concat_rows_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>, b: &Dcsr<T>) -> Dcsr<T> {
    assert_eq!(a.ncols(), b.ncols(), "concat_rows column conformance");
    let _span = ctx.kernel_span(Kernel::ConcatRows, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let (nra, nc) = (a.nrows(), a.ncols());
    let nrows = nra.checked_add(b.nrows()).expect("row overflow");

    let mut rows: Vec<Ix> = a.row_ids().to_vec();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    for (_, cols, vs) in a.iter_rows() {
        colidx.extend_from_slice(cols);
        vals.extend_from_slice(vs);
        rowptr.push(colidx.len());
    }
    for (r, cols, vs) in b.iter_rows() {
        rows.push(nra + r);
        colidx.extend_from_slice(cols);
        vals.extend_from_slice(vs);
        rowptr.push(colidx.len());
    }
    let c = Dcsr::from_parts(nrows, nc, rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::ConcatRows,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        0,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    c
}

/// Place `a` to the left of `b` (row dimensions must match).
pub fn concat_cols<T: Value>(a: &Dcsr<T>, b: &Dcsr<T>) -> Dcsr<T> {
    with_default_ctx(|ctx| concat_cols_ctx(ctx, a, b))
}

/// [`concat_cols`] through an explicit execution context.
pub fn concat_cols_ctx<T: Value>(ctx: &OpCtx, a: &Dcsr<T>, b: &Dcsr<T>) -> Dcsr<T> {
    assert_eq!(a.nrows(), b.nrows(), "concat_cols row conformance");
    let _span = ctx.kernel_span(Kernel::ConcatCols, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let shift = a.ncols();
    let ncols = shift.checked_add(b.ncols()).expect("col overflow");

    // Merge per row: a's columns first (unchanged), then b's shifted.
    let (ra, rb) = (a.row_ids(), b.row_ids());
    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() || j < rb.len() {
        let r;
        if j >= rb.len() || (i < ra.len() && ra[i] < rb[j]) {
            r = ra[i];
        } else if i >= ra.len() || rb[j] < ra[i] {
            r = rb[j];
        } else {
            r = ra[i];
        }
        let row_start = colidx.len();
        if i < ra.len() && ra[i] == r {
            let (_, cols, vs) = a.row_at(i);
            colidx.extend_from_slice(cols);
            vals.extend_from_slice(vs);
            i += 1;
        }
        if j < rb.len() && rb[j] == r {
            let (_, cols, vs) = b.row_at(j);
            colidx.extend(cols.iter().map(|&c| c + shift));
            vals.extend_from_slice(vs);
            j += 1;
        }
        if colidx.len() > row_start {
            rows.push(r);
            rowptr.push(colidx.len());
        }
    }
    let c = Dcsr::from_parts(a.nrows(), ncols, rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::ConcatCols,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        0,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    c
}

/// Diagonal matrix from a sparse vector: `D(i, i) = v(i)`.
pub fn diag<T: Value>(v: &SparseVec<T>) -> Dcsr<T> {
    let n = v.dim();
    let mut rows = Vec::with_capacity(v.nnz());
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(v.nnz());
    let mut vals = Vec::with_capacity(v.nnz());
    for (i, x) in v.iter() {
        rows.push(i);
        colidx.push(i);
        vals.push(x.clone());
        rowptr.push(colidx.len());
    }
    Dcsr::from_parts(n, n, rows, rowptr, colidx, vals)
}

/// Extract the main diagonal of a matrix as a sparse vector.
pub fn diag_of<T: Value>(a: &Dcsr<T>) -> SparseVec<T> {
    let dim = a.nrows().min(a.ncols());
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (r, cols, vs) in a.iter_rows() {
        if let Ok(p) = cols.binary_search(&r) {
            idx.push(r);
            vals.push(vs[p].clone());
        }
    }
    SparseVec::from_sorted_parts(dim.max(idx.last().map_or(0, |l| l + 1)), idx, vals)
}

/// Strictly-lower-triangular part (`c < r`).
pub fn tril<T: Value>(a: &Dcsr<T>) -> Dcsr<T> {
    super::transform::select(a, |r, c, _| c < r)
}

/// Strictly-upper-triangular part (`c > r`).
pub fn triu<T: Value>(a: &Dcsr<T>) -> Dcsr<T> {
    super::transform::select(a, |r, c, _| c > r)
}

/// `A^k` over a semiring, by repeated squaring (`A⁰ = 𝕀` is disallowed —
/// identity matrices over huge key spaces are exactly the paper's
/// closing open problem; require `k ≥ 1`).
pub fn matrix_power<T: Value, S: Semiring<Value = T>>(a: &Dcsr<T>, k: u32, s: S) -> Dcsr<T> {
    with_default_ctx(|ctx| matrix_power_ctx(ctx, a, k, s))
}

/// [`matrix_power`] through an explicit execution context: the repeated
/// squarings run as [`super::mxm::mxm_ctx`] against the same context (so
/// they share its workspace arena and show up under the `mxm` counters),
/// while the overall call is recorded under `power`.
pub fn matrix_power_ctx<T: Value, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    k: u32,
    s: S,
) -> Dcsr<T> {
    assert!(k >= 1, "matrix_power requires k ≥ 1");
    assert_eq!(a.nrows(), a.ncols(), "power of a square matrix");
    let _span = ctx.kernel_span(Kernel::Power, || {
        format!("{}×{}, {} nnz", a.nrows(), a.ncols(), a.nnz())
    });
    let start = Instant::now();
    let mut result: Option<Dcsr<T>> = None;
    let mut base = a.clone();
    let mut kk = k;
    while kk > 0 {
        if kk & 1 == 1 {
            result = Some(match result {
                None => base.clone(),
                Some(r) => super::mxm::mxm_ctx(ctx, &r, &base, s),
            });
        }
        kk >>= 1;
        if kk > 0 {
            base = super::mxm::mxm_ctx(ctx, &base, &base, s);
        }
    }
    let c = result.expect("k ≥ 1");
    ctx.metrics().record(
        Kernel::Power,
        start.elapsed(),
        a.nnz() as u64,
        c.nnz() as u64,
        0,
        (a.bytes() + c.bytes()) as u64,
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use semiring::{LorLand, MinPlus, PlusTimes};

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn m(n: Ix, t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(t.iter().copied());
        c.build_dcsr(s())
    }

    #[test]
    fn assign_replaces_cross_pattern() {
        let a = m(4, &[(0, 0, 1.0), (1, 1, 2.0), (3, 3, 4.0), (1, 3, 9.0)]);
        let b = m(2, &[(0, 0, 7.0)]); // 2×2 block
                                      // Assign into rows {1,3} × cols {1,3}: clears (1,1), (3,3), (1,3);
                                      // writes b(0,0)=7 at (1,1).
        let out = assign(&a, &[1, 3], &[1, 3], &b.clone());
        assert_eq!(out.get(0, 0), Some(&1.0)); // untouched
        assert_eq!(out.get(1, 1), Some(&7.0)); // replaced
        assert_eq!(out.get(3, 3), None); // cleared
        assert_eq!(out.get(1, 3), None); // cleared
        assert_eq!(out.nnz(), 2);
    }

    #[test]
    fn assign_then_extract_round_trips() {
        let a = random_dcsr(16, 16, 60, 1, s());
        let b = random_dcsr(4, 4, 8, 2, s());
        let rows = [2u64, 5, 9, 13];
        let cols = [0u64, 3, 8, 15];
        let out = assign(&a, &rows, &cols, &b);
        assert_eq!(super::super::transform::extract(&out, &rows, &cols), b);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = m(2, &[(0, 1, 1.0)]);
        let b = m(2, &[(1, 0, 2.0)]);
        let c = concat_rows(&a, &b);
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.get(0, 1), Some(&1.0));
        assert_eq!(c.get(3, 0), Some(&2.0));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn concat_cols_widens() {
        let a = m(2, &[(0, 1, 1.0), (1, 0, 5.0)]);
        let b = m(2, &[(0, 0, 2.0)]);
        let c = concat_cols(&a, &b);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.get(0, 1), Some(&1.0));
        assert_eq!(c.get(0, 2), Some(&2.0)); // shifted by 2
        assert_eq!(c.get(1, 0), Some(&5.0));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn concat_block_identity() {
        // [A | B] stacked twice == 4-block matrix with right dims.
        let a = random_dcsr(8, 8, 20, 3, s());
        let b = random_dcsr(8, 8, 20, 4, s());
        let wide = concat_cols(&a, &b);
        let tall = concat_rows(&wide, &wide);
        assert_eq!(tall.nrows(), 16);
        assert_eq!(tall.ncols(), 16);
        assert_eq!(tall.nnz(), 2 * (a.nnz() + b.nnz()));
    }

    #[test]
    fn diag_round_trip() {
        let v = SparseVec::from_entries(8, vec![(1, 2.0), (5, 3.0)], s());
        let d = diag(&v);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(5, 5), Some(&3.0));
        assert_eq!(diag_of(&d), v);
    }

    #[test]
    fn diag_of_skips_off_diagonal() {
        let a = m(4, &[(0, 0, 1.0), (0, 1, 9.0), (2, 2, 3.0)]);
        let d = diag_of(&a);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(&0), Some(&1.0));
        assert_eq!(d.get(&2), Some(&3.0));
    }

    #[test]
    fn tril_triu_partition_offdiagonal() {
        let a = random_dcsr(16, 16, 80, 5, s());
        let low = tril(&a);
        let up = triu(&a);
        let dg = diag_of(&a);
        assert_eq!(low.nnz() + up.nnz() + dg.nnz(), a.nnz());
        assert!(low.iter().all(|(r, c, _)| c < r));
        assert!(up.iter().all(|(r, c, _)| c > r));
    }

    #[test]
    fn power_counts_paths() {
        // Path 0→1→2→3: A² has the 2-hop pairs, A³ the single 3-hop.
        let a = m(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let a2 = matrix_power(&a, 2, s());
        assert_eq!(a2.get(0, 2), Some(&1.0));
        assert_eq!(a2.nnz(), 2);
        let a3 = matrix_power(&a, 3, s());
        assert_eq!(a3.get(0, 3), Some(&1.0));
        assert_eq!(a3.nnz(), 1);
    }

    #[test]
    fn power_equals_iterated_mxm() {
        let a = random_dcsr(12, 12, 40, 6, s());
        let direct = super::super::mxm::mxm(&super::super::mxm::mxm(&a, &a, s()), &a, s());
        let fast = matrix_power(&a, 3, s());
        let d: Vec<_> = direct.iter().map(|(r, c, &v)| (r, c, v)).collect();
        let f: Vec<_> = fast.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(d.len(), f.len());
        for ((dr, dc, dv), (fr, fc, fv)) in d.iter().zip(&f) {
            assert_eq!((dr, dc), (fr, fc));
            assert!((dv - fv).abs() < 1e-9);
        }
    }

    #[test]
    fn tropical_power_is_k_hop_shortest_paths() {
        let sm = MinPlus::<f64>::new();
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 9.0)]);
        let a = c.build_dcsr(sm);
        let a2 = matrix_power(&a, 2, sm);
        assert_eq!(a2.get(0, 2), Some(&3.0));
    }

    #[test]
    fn boolean_power_is_exact_k_reachability() {
        let mut c = Coo::new(4, 4);
        for (x, y) in [(0u64, 1u64), (1, 2), (2, 3)] {
            c.push(x, y, true);
        }
        let a = c.build_dcsr(LorLand);
        assert_eq!(matrix_power(&a, 3, LorLand).get(0, 3), Some(&true));
        assert_eq!(matrix_power(&a, 2, LorLand).get(0, 3), None);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zeroth_power_rejected() {
        let a = m(4, &[(0, 1, 1.0)]);
        let _ = matrix_power(&a, 0, s());
    }
}
