//! Sparse matrix–matrix multiply (SpGEMM) — the array ⊕.⊗ of Table II.
//!
//! Gustavson's row-wise algorithm: for each non-empty row *i* of `A`,
//! accumulate `⊕_k A(i,k) ⊗ B(k,:)`. Three accumulator strategies:
//!
//! * **hash** — a `HashMap<col, T>` per row: `O(flops)` regardless of the
//!   column dimension; the only choice in hypersparse column spaces.
//! * **dense scratch** — a reusable `Vec<Option<T>>` of width `ncols`:
//!   faster constants when the column space is compact.
//! * **monomorphic flat scratch** (the private `ops::fastpath`) — for
//!   `PlusTimes/f64` and `LorLand` the dense path is replaced by a
//!   branch-free flat accumulator plus an occupancy bitmap drained
//!   word-at-a-time; bit-identical to the generic dense path and
//!   toggleable via [`OpCtx::set_fast_paths`] for ablation.
//!
//! [`mxm_ctx`] picks automatically (and the `ablation_accumulator` bench
//! measures the crossover). Accumulator scratch is **leased from the
//! context's workspace arena** ([`OpCtx::lease_mxm_scratch`]) so repeated
//! multiplies on a hot path stop allocating per call, and parallelism is
//! governed by the context's thread cap: rows of `A` are sharded by
//! **merge-path weighted planning** (`plan_weighted_shards` — shard
//! boundaries equalize nnz, not row count, so one heavy RMAT row no
//! longer serializes a fixed-size shard) and per-shard outputs
//! concatenate in row order, so the result is bit-for-bit identical at
//! every thread count and under either sharding policy
//! ([`OpCtx::set_shard_balancing`]). The ctx-free [`mxm`]/[`mxm_seq`]
//! signatures wrap the thread-local default context.
//!
//! All entry points are generic over the physical column-id width
//! [`IndexType`]: `Dcsr<f64, u32>` operands run the same kernels with
//! half the index bandwidth (DESIGN.md §13).

use std::time::Instant;

use semiring::traits::{Semiring, UnaryOp, Value};

use crate::ctx::{
    fixed_shards, par_run, plan_weighted_shards, with_default_ctx, MxmScratch, OpCtx,
};
use crate::dcsr::Dcsr;
use crate::error::OpError;
use crate::index::IndexType;
use crate::metrics::Kernel;
use crate::ops::fastpath;
use crate::Ix;

/// Column spaces at most this wide *may* use the dense scratch
/// accumulator — provided the row range also carries enough estimated
/// flops (see [`dense_acc_pays_off`]).
const DENSE_ACC_MAX: u64 = 1 << 22;

/// Dense scratch must be amortized: require at least `width /
/// DENSE_ACC_FLOP_RATIO` estimated ⊗ applications before leasing a
/// `Vec<Option<T>>` of `width` slots. A hypersparse `B` with a wide but
/// nearly-empty column space fails this and stays on the hash path.
const DENSE_ACC_FLOP_RATIO: u64 = 8;

/// Output-density guard on the dense accumulator: besides the total-work
/// floor above, each row in the range must *on average* justify walking
/// `width / 64` occupancy words (or a touched list) — require `est ≥
/// rows · width / DENSE_ACC_ROW_RATIO`. Tall-skinny products (many rows,
/// each producing a handful of entries in a wide-but-compact column
/// space) used to sneak past the total-work floor and then pay a
/// width-proportional drain per row; they now stay on the hash path.
const DENSE_ACC_ROW_RATIO: u64 = 4096;

/// Rows of `A` per shard under the legacy fixed plan, and (×2) the
/// sequential cutoff below which sharding is never worth it.
const ROWS_PER_SHARD: usize = 256;

/// Weighted shards per thread: oversubscribe the merge-path plan so the
/// atomic job queue can still balance residual skew between shards.
const SHARD_FACTOR: usize = 4;

/// Shape detail for span/slow-op records: `r×c·r×c nnz a+b`.
fn mm_detail<T: Value, U: Value, I: IndexType, J: IndexType>(
    a: &Dcsr<T, I>,
    b: &Dcsr<U, J>,
) -> String {
    format!(
        "{}×{} · {}×{} nnz {}+{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols(),
        a.nnz(),
        b.nnz()
    )
}

/// Row-range plan for `nrows_ne` non-empty rows of `a`: merge-path
/// weighted when the context enables balancing, legacy fixed-256
/// otherwise. Either plan yields bit-identical results (rows never
/// split; concat is in row order).
fn shard_plan<T: Value, I: IndexType>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    nrows_ne: usize,
) -> Vec<(usize, usize)> {
    if ctx.shard_balancing() {
        plan_weighted_shards(nrows_ne, ctx.threads() * SHARD_FACTOR, |k| {
            a.row_len_at(k) as u64
        })
    } else {
        fixed_shards(nrows_ne, ROWS_PER_SHARD)
    }
}

/// `C = A ⊕.⊗ B` through an explicit execution context: scratch comes
/// from `ctx`'s workspace arena, parallelism follows `ctx.threads()`,
/// and the invocation is recorded in `ctx.metrics()`.
pub fn mxm_ctx<T: Value, I: IndexType, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let _span = ctx.kernel_span(Kernel::Mxm, || mm_detail(a, b));
    let start = Instant::now();
    let nrows_ne = a.n_nonempty_rows();
    let threads = ctx.threads();
    let fast = ctx.fast_paths();

    let (c, flops) = if threads == 1 || nrows_ne < 2 * ROWS_PER_SHARD {
        let mut lease = ctx.lease_mxm_scratch::<T>();
        let (chunk, flops) = multiply_row_range_ws(a, b, s, 0, nrows_ne, lease.get(), fast);
        (assemble(a.nrows(), b.ncols(), [chunk]), flops)
    } else {
        let shards = shard_plan(ctx, a, nrows_ne);
        let shard_results = par_run(threads, shards.len(), |shard| {
            let (lo, hi) = shards[shard];
            let mut lease = ctx.lease_mxm_scratch::<T>();
            multiply_row_range_ws(a, b, s, lo, hi, lease.get(), fast)
        });
        let flops = shard_results.iter().map(|(_, f)| f).sum();
        let chunks: Vec<_> = shard_results.into_iter().map(|(c, _)| c).collect();
        (assemble(a.nrows(), b.ncols(), chunks), flops)
    };

    ctx.metrics().record(
        Kernel::Mxm,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    c
}

/// Sequential SpGEMM through an explicit context — [`mxm_ctx`] with the
/// thread cap overridden to 1 for this call (the workspace arena and
/// metrics still come from `ctx`).
pub fn mxm_seq_ctx<T: Value, I: IndexType, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let _span = ctx.kernel_span(Kernel::Mxm, || mm_detail(a, b));
    let start = Instant::now();
    let fast = ctx.fast_paths();
    let mut lease = ctx.lease_mxm_scratch::<T>();
    let (chunk, flops) = multiply_row_range_ws(a, b, s, 0, a.n_nonempty_rows(), lease.get(), fast);
    drop(lease);
    let c = assemble(a.nrows(), b.ncols(), [chunk]);
    ctx.metrics().record(
        Kernel::Mxm,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    c
}

/// `C = A ⊕.⊗ B`, parallel and deterministic (thread-local default ctx).
pub fn mxm<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    with_default_ctx(|ctx| mxm_ctx(ctx, a, b, s))
}

/// Sequential reference SpGEMM (same output as [`mxm`]).
pub fn mxm_seq<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
) -> Dcsr<T, I> {
    with_default_ctx(|ctx| mxm_seq_ctx(ctx, a, b, s))
}

/// Fused SpGEMM + prune: `C = prune(op(A ⊕.⊗ B))` in one pass, with no
/// intermediate product ever materialized. The epilogue runs at
/// accumulator-drain time: each accumulated value that is *not* an `s`
/// zero (exactly the entries plain [`mxm_ctx`] would store) is mapped
/// through `op`, and results that are zero under the `drop` semiring
/// are discarded. That ordering makes the kernel bit-identical to
/// `apply_prune_ctx(ctx, &mxm_ctx(ctx, a, b, s), op, drop)` — in
/// particular `op` is never evaluated at absent positions, which is the
/// invariant the sparse DNN layer `Y W ⊗ b ⊕ 0` relies on (`relu(0+b)`
/// for `b > 0` must stay absent, not appear).
///
/// Sharding, accumulator choice, and metrics ([`crate::metrics::Kernel::Mxm`],
/// flops = ⊗ count) match [`mxm_ctx`], so the result is identical at
/// every thread count.
pub fn mxm_apply_prune_ctx<T, I, S, SD, O>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    op: O,
    drop: SD,
) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    SD: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    try_mxm_apply_prune_ctx(ctx, a, b, s, op, drop).unwrap_or_else(|e| panic!("{e}"))
}

/// Fused SpGEMM + prune (thread-local default ctx). See
/// [`mxm_apply_prune_ctx`].
pub fn mxm_apply_prune<T, I, S, SD, O>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    op: O,
    drop: SD,
) -> Dcsr<T, I>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    SD: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    with_default_ctx(|ctx| mxm_apply_prune_ctx(ctx, a, b, s, op, drop))
}

/// Fallible [`mxm_apply_prune_ctx`]: non-conforming inner dimensions
/// become an [`OpError::DimensionMismatch`] instead of a panic.
pub fn try_mxm_apply_prune_ctx<T, I, S, SD, O>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    op: O,
    drop: SD,
) -> Result<Dcsr<T, I>, OpError>
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    SD: Semiring<Value = T>,
    O: UnaryOp<T, T>,
{
    if a.ncols() != b.nrows() {
        return Err(OpError::DimensionMismatch {
            op: "mxm_apply_prune",
            a: (a.nrows(), a.ncols()),
            b: (b.nrows(), b.ncols()),
            rule: "inner dimensions differ",
        });
    }
    let _span = ctx.kernel_span(Kernel::Mxm, || mm_detail(a, b));
    let start = Instant::now();
    let ep = move |v: T| {
        let w = op.apply(v);
        if drop.is_zero(&w) {
            None
        } else {
            Some(w)
        }
    };
    let nrows_ne = a.n_nonempty_rows();
    let threads = ctx.threads();
    let fast = ctx.fast_paths();

    let (c, flops) = if threads == 1 || nrows_ne < 2 * ROWS_PER_SHARD {
        let mut lease = ctx.lease_mxm_scratch::<T>();
        let (chunk, flops) =
            multiply_row_range_ep(a, b, s, 0, nrows_ne, lease.get(), fast, false, &ep);
        (assemble(a.nrows(), b.ncols(), [chunk]), flops)
    } else {
        let shards = shard_plan(ctx, a, nrows_ne);
        let shard_results = par_run(threads, shards.len(), |shard| {
            let (lo, hi) = shards[shard];
            let mut lease = ctx.lease_mxm_scratch::<T>();
            multiply_row_range_ep(a, b, s, lo, hi, lease.get(), fast, false, &ep)
        });
        let flops = shard_results.iter().map(|(_, f)| f).sum();
        let chunks: Vec<_> = shard_results.into_iter().map(|(c, _)| c).collect();
        (assemble(a.nrows(), b.ncols(), chunks), flops)
    };

    ctx.metrics().record(
        Kernel::Mxm,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
        (a.bytes() + b.bytes() + c.bytes()) as u64,
    );
    Ok(c)
}

/// Masked SpGEMM through an explicit context: `C = (A ⊕.⊗ B) ⊙ mask`
/// (structural mask, i.e. only positions stored in `mask` are
/// computed/kept; `complement` inverts the selection). Fusing the mask
/// into the accumulator loop is what makes masked triangle counting
/// `O(flops into the mask)` instead of `O(all flops)`.
pub fn mxm_masked_ctx<T: Value, M: Value, I: IndexType, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    mask: &Dcsr<M, I>,
    complement: bool,
    s: S,
) -> Dcsr<T, I> {
    try_mxm_masked_ctx(ctx, a, b, mask, complement, s).unwrap_or_else(|e| panic!("{e}"))
}

/// Masked SpGEMM (thread-local default ctx). See [`mxm_masked_ctx`].
pub fn mxm_masked<T: Value, M: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    mask: &Dcsr<M, I>,
    complement: bool,
    s: S,
) -> Dcsr<T, I> {
    with_default_ctx(|ctx| mxm_masked_ctx(ctx, a, b, mask, complement, s))
}

/// Fallible [`mxm_masked_ctx`]: non-conforming inner dimensions or a
/// mask that doesn't share the result's key space become an
/// [`OpError::DimensionMismatch`] instead of a panic.
pub fn try_mxm_masked_ctx<T: Value, M: Value, I: IndexType, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    mask: &Dcsr<M, I>,
    complement: bool,
    s: S,
) -> Result<Dcsr<T, I>, OpError> {
    if a.ncols() != b.nrows() {
        return Err(OpError::DimensionMismatch {
            op: "mxm_masked",
            a: (a.nrows(), a.ncols()),
            b: (b.nrows(), b.ncols()),
            rule: "inner dimensions differ",
        });
    }
    if mask.nrows() != a.nrows() || mask.ncols() != b.ncols() {
        return Err(OpError::DimensionMismatch {
            op: "mxm_masked",
            a: (a.nrows(), b.ncols()),
            b: (mask.nrows(), mask.ncols()),
            rule: "mask must share the result's key space",
        });
    }
    let _span = ctx.kernel_span(Kernel::MxmMasked, || mm_detail(a, b));
    let start = Instant::now();
    let nrows_ne = a.n_nonempty_rows();
    let threads = ctx.threads();
    let fast = ctx.fast_paths();

    // Same deterministic sharding as the unmasked kernel: rows of `A`
    // split into shards whose outputs concatenate in row order, so
    // neither thread count nor the sharding policy changes a bit of the
    // result.
    let (c, flops) = if threads == 1 || nrows_ne < 2 * ROWS_PER_SHARD {
        let mut lease = ctx.lease_mxm_scratch::<T>();
        let (chunk, flops) =
            multiply_masked_row_range_ws(a, b, mask, complement, s, 0, nrows_ne, lease.get(), fast);
        drop(lease);
        (assemble(a.nrows(), b.ncols(), [chunk]), flops)
    } else {
        let shards = shard_plan(ctx, a, nrows_ne);
        let shard_results = par_run(threads, shards.len(), |shard| {
            let (lo, hi) = shards[shard];
            let mut lease = ctx.lease_mxm_scratch::<T>();
            multiply_masked_row_range_ws(a, b, mask, complement, s, lo, hi, lease.get(), fast)
        });
        let flops = shard_results.iter().map(|(_, f)| f).sum();
        let chunks: Vec<_> = shard_results.into_iter().map(|(c, _)| c).collect();
        (assemble(a.nrows(), b.ncols(), chunks), flops)
    };

    ctx.metrics().record(
        Kernel::MxmMasked,
        start.elapsed(),
        (a.nnz() + b.nnz() + mask.nnz()) as u64,
        c.nnz() as u64,
        flops,
        (a.bytes() + b.bytes() + mask.bytes() + c.bytes()) as u64,
    );
    Ok(c)
}

/// Fallible [`mxm_masked`] (thread-local default ctx).
pub fn try_mxm_masked<T: Value, M: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    mask: &Dcsr<M, I>,
    complement: bool,
    s: S,
) -> Result<Dcsr<T, I>, OpError> {
    with_default_ctx(|ctx| try_mxm_masked_ctx(ctx, a, b, mask, complement, s))
}

/// Masked multiply of rows `start..end` of `A` (hash accumulator — the
/// mask filter keeps per-row fill small regardless of the column space).
///
/// In compact column spaces (and unless fast paths are ablated off) the
/// per-product mask probe is a **word-bitmap test** on pooled scratch:
/// the mask row's bits are set once, each probe is a shift+AND instead
/// of a `binary_search` over the mask row, and the touched words are
/// cleared on the way out. The probe is structural either way, so the
/// output is identical.
#[allow(clippy::too_many_arguments)]
fn multiply_masked_row_range_ws<T: Value, M: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    mask: &Dcsr<M, I>,
    complement: bool,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
    fast: bool,
) -> (RowsChunk<T, I>, u64) {
    let width = b.ncols();
    let mask_bitmap = fast && width <= DENSE_ACC_MAX;
    if mask_bitmap {
        scratch.ensure_words((width as usize).div_ceil(64));
    }
    let MxmScratch {
        hash: acc,
        words: occ,
        ..
    } = scratch;
    let mut out = Vec::new();
    let mut flops = 0u64;
    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        let (mcols, _) = mask.row(i);
        if mcols.is_empty() && !complement {
            continue; // nothing of this row can survive the mask
        }
        let row_bitmap = mask_bitmap && !mcols.is_empty();
        if row_bitmap {
            for &m in mcols {
                let mz = m.as_usize();
                occ[mz >> 6] |= 1u64 << (mz & 63);
            }
        }
        acc.clear();
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k.to_ix());
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let in_mask = if row_bitmap {
                    let jz = j.as_usize();
                    (occ[jz >> 6] >> (jz & 63)) & 1 == 1
                } else {
                    mcols.binary_search(&j).is_ok()
                };
                if in_mask == complement {
                    continue;
                }
                let p = s.mul(aik.clone(), bkj.clone());
                flops += 1;
                match acc.entry(j.to_ix()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        if row_bitmap {
            for &m in mcols {
                occ[m.as_usize() >> 6] = 0;
            }
        }
        let mut row: Vec<(I, T)> = acc
            .drain()
            .filter(|(_, v)| !s.is_zero(v))
            .map(|(j, v)| (I::from_ix(j), v))
            .collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|e| e.0);
        out.push((i, row));
    }
    (out, flops)
}

/// Per-shard result: `(row id, sorted (col, val) entries)` pairs. The
/// column ids carry the operands' physical index width `I`.
pub type RowsChunk<T, I = Ix> = Vec<(Ix, Vec<(I, T)>)>;

/// Concatenate row chunks (already in global row order) into a DCSR.
fn assemble<T: Value, I: IndexType>(
    nrows: Ix,
    ncols: Ix,
    chunks: impl IntoIterator<Item = RowsChunk<T, I>>,
) -> Dcsr<T, I> {
    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    for chunk in chunks {
        for (r, cv) in chunk {
            rows.push(r);
            for (c, v) in cv {
                colidx.push(c);
                vals.push(v);
            }
            rowptr.push(colidx.len());
        }
    }
    Dcsr::from_parts(nrows, ncols, rows, rowptr, colidx, vals)
}

/// Multiply rows `start..end` of `A` against `B` using workspace
/// `scratch`, returning the rows plus the ⊗ count.
fn multiply_row_range_ws<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
    fast: bool,
) -> (RowsChunk<T, I>, u64) {
    multiply_row_range_ep(a, b, s, start, end, scratch, fast, true, &Some)
}

/// [`multiply_row_range_ws`] with a drain-time epilogue: every
/// accumulated value that survives the semiring-zero filter passes
/// through `ep` before being stored, and `None` results are dropped.
/// This is what lets `mxm_apply_prune_ctx` fuse a bias+ReLU prune into
/// the multiply without materializing the intermediate product.
/// `ep_identity` marks `ep` as the trivial `Some` so the monomorphic
/// fast path can skip the epilogue walk entirely.
#[allow(clippy::too_many_arguments)]
fn multiply_row_range_ep<T, I, S, E>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
    fast: bool,
    ep_identity: bool,
    ep: &E,
) -> (RowsChunk<T, I>, u64)
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    E: Fn(T) -> Option<T>,
{
    if dense_acc_pays_off(a, b, start, end) {
        if fast && fastpath::has_mono_semiring::<T, S>() {
            if let Some(res) = fastpath::try_mono_mxm_rows::<T, I, S, E>(
                a,
                b,
                start,
                end,
                scratch,
                ep_identity,
                ep,
            ) {
                return res;
            }
        }
        multiply_rows_dense_ws(a, b, s, start, end, scratch, ep)
    } else {
        multiply_rows_hash_ws(a, b, s, start, end, scratch, ep)
    }
}

/// Whether a width-proportional accumulator (dense `Vec<Option<T>>` or
/// the monomorphic flat scratch) is worth leasing for rows
/// `start..end`: the column space must be compact (`≤ DENSE_ACC_MAX`)
/// **and** the range must carry enough estimated flops both in total
/// (`width / DENSE_ACC_FLOP_RATIO`) and per row
/// (`rows · width / DENSE_ACC_ROW_RATIO` — the tall-skinny guard). The
/// estimate walks `A`'s entries summing `|B.row(k)|` (the exact ⊗
/// count) and early-exits at the threshold, so hypersparse ranges
/// answer "no" after touching only their own nnz. Either accumulator
/// yields identical output, so this per-range choice never affects
/// determinism.
fn dense_acc_pays_off<T: Value, I: IndexType>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    start: usize,
    end: usize,
) -> bool {
    let width = b.ncols();
    if width > DENSE_ACC_MAX {
        return false;
    }
    let rows = (end - start) as u64;
    let need = (width / DENSE_ACC_FLOP_RATIO)
        .max(1)
        .max(rows * (width / DENSE_ACC_ROW_RATIO));
    let mut est = 0u64;
    for k_row in start..end {
        let (_, acols, _) = a.row_at(k_row);
        for &k in acols {
            est += b.row(k.to_ix()).0.len() as u64;
            if est >= need {
                return true;
            }
        }
    }
    false
}

fn multiply_rows_hash_ws<T, I, S, E>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
    ep: &E,
) -> (RowsChunk<T, I>, u64)
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    E: Fn(T) -> Option<T>,
{
    let acc = &mut scratch.hash;
    let mut out = Vec::new();
    let mut flops = 0u64;
    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        acc.clear();
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k.to_ix());
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let p = s.mul(aik.clone(), bkj.clone());
                flops += 1;
                match acc.entry(j.to_ix()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        // Order matters: s-zeros are dropped BEFORE the epilogue runs,
        // so `ep` only ever sees values the two-pass path would store.
        let mut row: Vec<(I, T)> = acc
            .drain()
            .filter_map(|(j, v)| {
                if s.is_zero(&v) {
                    None
                } else {
                    ep(v).map(|w| (I::from_ix(j), w))
                }
            })
            .collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|e| e.0);
        out.push((i, row));
    }
    (out, flops)
}

fn multiply_rows_dense_ws<T, I, S, E>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
    ep: &E,
) -> (RowsChunk<T, I>, u64)
where
    T: Value,
    I: IndexType,
    S: Semiring<Value = T>,
    E: Fn(T) -> Option<T>,
{
    let width = b.ncols() as usize;
    scratch.ensure_dense_width(width);
    let dense = &mut scratch.dense;
    let touched = &mut scratch.touched;
    let mut out = Vec::new();
    let mut flops = 0u64;

    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k.to_ix());
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let p = s.mul(aik.clone(), bkj.clone());
                flops += 1;
                match &mut dense[j.as_usize()] {
                    Some(v) => s.add_assign(v, p),
                    slot @ None => {
                        *slot = Some(p);
                        touched.push(j.to_ix());
                    }
                }
            }
        }
        if touched.is_empty() {
            continue;
        }
        touched.sort_unstable();
        let mut row: Vec<(I, T)> = Vec::with_capacity(touched.len());
        for &j in touched.iter() {
            if let Some(v) = dense[j as usize].take() {
                // Same epilogue contract as the hash path: drop s-zeros
                // first, then let `ep` transform/prune the survivor.
                if !s.is_zero(&v) {
                    if let Some(w) = ep(v) {
                        row.push((I::from_ix(j), w));
                    }
                }
            }
        }
        touched.clear();
        if !row.is_empty() {
            out.push((i, row));
        }
    }
    (out, flops)
}

/// Hash-accumulator row multiply — `O(flops)` in any column space.
/// Public for the accumulator ablation bench; use [`mxm_ctx`] otherwise.
pub fn multiply_rows_hash_acc<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T, I> {
    let mut scratch = MxmScratch::default();
    multiply_rows_hash_ws(a, b, s, start, end, &mut scratch, &Some).0
}

/// Dense-scratch row multiply — a `Vec<Option<T>>` of width `ncols`,
/// reset via a touched-columns list so each row costs `O(flops)` too,
/// with far better constants in compact column spaces. Public for the
/// accumulator ablation bench; use [`mxm_ctx`] otherwise.
pub fn multiply_rows_dense_acc<T: Value, I: IndexType, S: Semiring<Value = T>>(
    a: &Dcsr<T, I>,
    b: &Dcsr<T, I>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T, I> {
    let mut scratch = MxmScratch::default();
    multiply_rows_dense_ws(a, b, s, start, end, &mut scratch, &Some).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use semiring::{LorLand, MinPlus, PlusTimes};

    fn from_triplets(n: Ix, t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(t.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    /// Naive dense oracle over a semiring.
    fn oracle<S: Semiring<Value = f64>>(a: &Dcsr<f64>, b: &Dcsr<f64>, s: S) -> Vec<(Ix, Ix, f64)> {
        let mut acc: std::collections::BTreeMap<(Ix, Ix), f64> = Default::default();
        for (i, k, av) in a.iter() {
            for (k2, j, bv) in b.iter() {
                if k == k2 {
                    let p = s.mul(*av, *bv);
                    acc.entry((i, j))
                        .and_modify(|x| *x = s.add(*x, p))
                        .or_insert(p);
                }
            }
        }
        acc.into_iter()
            .filter(|(_, v)| !s.is_zero(v))
            .map(|((i, j), v)| (i, j, v))
            .collect()
    }

    #[test]
    fn small_known_product() {
        // [[1,2],[0,3]] * [[4,0],[5,6]] = [[14,12],[15,18]]
        let a = from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        let b = from_triplets(2, &[(0, 0, 4.0), (1, 0, 5.0), (1, 1, 6.0)]);
        let c = mxm(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(c.get(0, 0), Some(&14.0));
        assert_eq!(c.get(0, 1), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&15.0));
        assert_eq!(c.get(1, 1), Some(&18.0));
    }

    #[test]
    fn matches_oracle_on_random() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 1, s);
        let b = random_dcsr(64, 64, 300, 2, s);
        let c = mxm(&a, &b, s);
        let got: Vec<_> = c.iter().map(|(i, j, &v)| (i, j, v)).collect();
        let want = oracle(&a, &b, s);
        assert_eq!(got.len(), want.len());
        for ((gi, gj, gv), (wi, wj, wv)) in got.iter().zip(&want) {
            assert_eq!((gi, gj), (wi, wj));
            assert!((gv - wv).abs() < 1e-9, "{gv} vs {wv}");
        }
    }

    #[test]
    fn min_plus_mxm_is_path_relaxation() {
        let s = MinPlus::<f64>::new();
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 9.0)]);
        let a = c.build_dcsr(s);
        let a2 = mxm(&a, &a, s);
        // Two-hop: 0→1→2 costs 3.
        assert_eq!(a2.get(0, 2), Some(&3.0));
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = PlusTimes::<f64>::new();
        // Big enough to trigger the parallel path (>512 non-empty rows).
        let a = random_dcsr(2000, 2000, 20_000, 3, s);
        let b = random_dcsr(2000, 2000, 20_000, 4, s);
        assert_eq!(mxm(&a, &b, s), mxm_seq(&a, &b, s));
    }

    #[test]
    fn thread_cap_one_equals_thread_cap_n() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(2000, 2000, 20_000, 3, s);
        let b = random_dcsr(2000, 2000, 20_000, 4, s);
        let ctx1 = OpCtx::new().with_threads(1);
        let reference = mxm_ctx(&ctx1, &a, &b, s);
        for threads in [2, 4, 8] {
            let ctxn = OpCtx::new().with_threads(threads);
            assert_eq!(mxm_ctx(&ctxn, &a, &b, s), reference);
        }
    }

    #[test]
    fn weighted_and_fixed_sharding_agree() {
        // Deliberately skewed rows: determinism must hold under either
        // sharding policy, and across thread counts within each.
        let s = PlusTimes::<f64>::new();
        let a = crate::gen::rmat_dcsr(crate::gen::RmatParams::default(), 35, s);
        let b = crate::gen::rmat_dcsr(crate::gen::RmatParams::default(), 36, s);
        let balanced = OpCtx::new().with_threads(4);
        let fixed = OpCtx::new().with_threads(4);
        fixed.set_shard_balancing(false);
        assert!(balanced.shard_balancing() && !fixed.shard_balancing());
        assert_eq!(mxm_ctx(&balanced, &a, &b, s), mxm_ctx(&fixed, &a, &b, s));
    }

    #[test]
    fn mono_fast_path_matches_generic_bit_for_bit() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(2000, 2000, 30_000, 61, s);
        let b = random_dcsr(2000, 2000, 30_000, 62, s);
        let fast = OpCtx::new().with_threads(2);
        let generic = OpCtx::new().with_threads(2);
        generic.set_fast_paths(false);
        assert_eq!(mxm_ctx(&fast, &a, &b, s), mxm_ctx(&generic, &a, &b, s));
    }

    #[test]
    fn bool_mono_fast_path_matches_generic() {
        let s = LorLand;
        let f = PlusTimes::<f64>::new();
        let pat_a = random_dcsr(256, 256, 3000, 63, f);
        let pat_b = random_dcsr(256, 256, 3000, 64, f);
        let to_bool = |m: &Dcsr<f64>| {
            let mut c = Coo::new(m.nrows(), m.ncols());
            c.extend(m.iter().map(|(i, j, _)| (i, j, true)));
            c.build_dcsr(LorLand)
        };
        let (a, b) = (to_bool(&pat_a), to_bool(&pat_b));
        let fast = OpCtx::new().with_threads(1);
        let generic = OpCtx::new().with_threads(1);
        generic.set_fast_paths(false);
        let got = mxm_ctx(&fast, &a, &b, s);
        assert_eq!(got, mxm_ctx(&generic, &a, &b, s));
        assert!(got.nnz() > 0);
    }

    #[test]
    fn narrow_index_mxm_matches_wide() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(128, 128, 900, 65, s);
        let b = random_dcsr(128, 128, 900, 66, s);
        let an: Dcsr<f64, u32> = a.to_index_width().unwrap();
        let bn: Dcsr<f64, u32> = b.to_index_width().unwrap();
        let wide = mxm(&a, &b, s);
        let narrow = mxm(&an, &bn, s);
        let wt: Vec<_> = wide.iter().map(|(i, j, &v)| (i, j, v)).collect();
        let nt: Vec<_> = narrow.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(wt, nt);
    }

    #[test]
    fn ctx_mxm_records_metrics_and_reuses_scratch() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 21, s);
        let b = random_dcsr(64, 64, 300, 22, s);
        let ctx = OpCtx::new().with_threads(1);
        let c = mxm_ctx(&ctx, &a, &b, s);
        let snap = ctx.metrics().snapshot();
        let m = snap.kernel(Kernel::Mxm);
        assert_eq!(m.calls, 1);
        assert_eq!(m.nnz_in, (a.nnz() + b.nnz()) as u64);
        assert_eq!(m.nnz_out, c.nnz() as u64);
        assert!(m.flops > 0);
        assert_eq!(m.bytes_touched, (a.bytes() + b.bytes() + c.bytes()) as u64);
        // Repeated same-shape multiplies are all pool hits after the first.
        for _ in 0..10 {
            let _ = mxm_ctx(&ctx, &a, &b, s);
        }
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.workspace_misses, 1);
        assert_eq!(snap.workspace_hits, 10);
        assert_eq!(ctx.pooled_buffers(), 1);
    }

    #[test]
    fn hash_and_dense_accumulators_agree() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(128, 128, 800, 5, s);
        let b = random_dcsr(128, 128, 800, 6, s);
        let h = multiply_rows_hash_acc(&a, &b, s, 0, a.n_nonempty_rows());
        let d = multiply_rows_dense_acc(&a, &b, s, 0, a.n_nonempty_rows());
        assert_eq!(h, d);
    }

    #[test]
    fn hypersparse_product_in_huge_space() {
        let n = 1u64 << 50;
        let s = PlusTimes::<f64>::new();
        let mut ca = Coo::new(n, n);
        ca.extend([(7, 1 << 40, 2.0), (9, 3, 5.0)]);
        let mut cb = Coo::new(n, n);
        cb.extend([(1 << 40, 123, 3.0), (3, 456, 7.0)]);
        let c = mxm(&ca.build_dcsr(s), &cb.build_dcsr(s), s);
        assert_eq!(c.get(7, 123), Some(&6.0));
        assert_eq!(c.get(9, 456), Some(&35.0));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn masked_mxm_keeps_only_mask_positions() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 7, s);
        let b = random_dcsr(32, 32, 200, 8, s);
        let mask = random_dcsr(32, 32, 100, 9, s);
        let full = mxm(&a, &b, s);
        let masked = mxm_masked(&a, &b, &mask, false, s);
        for (i, j, v) in masked.iter() {
            assert!(mask.get(i, j).is_some());
            assert_eq!(full.get(i, j), Some(v));
        }
        // And every full-product entry inside the mask is present.
        for (i, j, v) in full.iter() {
            if mask.get(i, j).is_some() {
                assert_eq!(masked.get(i, j), Some(v));
            }
        }
    }

    #[test]
    fn complement_masked_mxm() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 10, s);
        let b = random_dcsr(32, 32, 200, 11, s);
        let mask = random_dcsr(32, 32, 100, 12, s);
        let comp = mxm_masked(&a, &b, &mask, true, s);
        for (i, j, _) in comp.iter() {
            assert!(mask.get(i, j).is_none());
        }
    }

    #[test]
    fn masked_bitmap_probe_matches_binary_search() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 500, 71, s);
        let b = random_dcsr(64, 64, 500, 72, s);
        let mask = random_dcsr(64, 64, 300, 73, s);
        let fast = OpCtx::new().with_threads(1);
        let slow = OpCtx::new().with_threads(1);
        slow.set_fast_paths(false);
        for complement in [false, true] {
            assert_eq!(
                mxm_masked_ctx(&fast, &a, &b, &mask, complement, s),
                mxm_masked_ctx(&slow, &a, &b, &mask, complement, s),
                "complement={complement}"
            );
        }
        // Bitmap scratch must come back clean for the next lease.
        let mut lease = fast.lease_mxm_scratch::<f64>();
        assert!(lease.get().words.iter().all(|&w| w == 0));
    }

    #[test]
    fn boolean_reachability_product() {
        let s = LorLand;
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, true), (1, 2, true)]);
        let a = c.build_dcsr(s);
        let a2 = mxm(&a, &a, s);
        assert_eq!(a2.get(0, 2), Some(&true));
        assert_eq!(a2.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn conformance_checked() {
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let _ = mxm(&a, &b, PlusTimes::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ: 3×4 · 5×3")]
    fn seq_conformance_panic_carries_shapes() {
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let _ = mxm_seq(&a, &b, PlusTimes::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ: 3×4 vs 5×3")]
    fn masked_conformance_panic_carries_shapes() {
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let mask = Dcsr::<f64>::empty(3, 3);
        let _ = mxm_masked(&a, &b, &mask, false, PlusTimes::<f64>::new());
    }

    #[test]
    fn try_masked_reports_typed_errors() {
        let s = PlusTimes::<f64>::new();
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let mask = Dcsr::<f64>::empty(3, 3);
        let e = try_mxm_masked(&a, &b, &mask, false, s).unwrap_err();
        assert!(
            matches!(
                e,
                OpError::DimensionMismatch {
                    op: "mxm_masked",
                    rule: "inner dimensions differ",
                    ..
                }
            ),
            "{e:?}"
        );
        let b = Dcsr::<f64>::empty(4, 6);
        let e = try_mxm_masked(&a, &b, &mask, false, s).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("mask must share the result's key space"),
            "{msg}"
        );
        assert!(msg.contains("3×6 vs 3×3"), "{msg}");
        let mask = Dcsr::<f64>::empty(3, 6);
        assert!(try_mxm_masked(&a, &b, &mask, false, s).is_ok());
    }

    #[test]
    fn masked_parallel_equals_sequential_all_semirings() {
        // Big enough to trigger the sharded path (>512 non-empty rows).
        let gen = PlusTimes::<f64>::new();
        let a = random_dcsr(2000, 2000, 20_000, 13, gen);
        let b = random_dcsr(2000, 2000, 20_000, 14, gen);
        let mask = random_dcsr(2000, 2000, 10_000, 15, gen);
        let ctx1 = OpCtx::new().with_threads(1);
        for complement in [false, true] {
            let want_pt = mxm_masked_ctx(&ctx1, &a, &b, &mask, complement, gen);
            let want_mp = mxm_masked_ctx(&ctx1, &a, &b, &mask, complement, MinPlus::<f64>::new());
            for threads in [2, 4, 8] {
                let ctxn = OpCtx::new().with_threads(threads);
                assert_eq!(
                    mxm_masked_ctx(&ctxn, &a, &b, &mask, complement, gen),
                    want_pt,
                    "PlusTimes complement={complement} threads={threads}"
                );
                assert_eq!(
                    mxm_masked_ctx(&ctxn, &a, &b, &mask, complement, MinPlus::<f64>::new()),
                    want_mp,
                    "MinPlus complement={complement} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn wide_empty_column_space_skips_dense_scratch() {
        // B's column space is wide (2^21 ≤ DENSE_ACC_MAX) but nearly
        // empty: a handful of flops must not lease a multi-megabyte
        // dense accumulator (generic `Vec<Option<T>>` or mono flat).
        let s = PlusTimes::<f64>::new();
        let n = 1u64 << 21;
        let mut ca = Coo::new(8, n);
        ca.extend([(0, 5, 1.0), (1, 9, 2.0)]);
        let mut cb = Coo::new(n, n);
        cb.extend([(5, 1_000_000, 3.0), (9, 2_000_000, 4.0)]);
        let ctx = OpCtx::new().with_threads(1);
        let c = mxm_ctx(&ctx, &ca.build_dcsr(s), &cb.build_dcsr(s), s);
        assert_eq!(c.get(0, 1_000_000), Some(&3.0));
        assert_eq!(c.get(1, 2_000_000), Some(&8.0));
        // The pooled scratch must never have grown a width-sized
        // accumulator of either kind.
        let mut lease = ctx.lease_mxm_scratch::<f64>();
        assert_eq!(lease.get().dense_capacity(), 0, "dense scratch was leased");
        assert_eq!(lease.get().flat_capacity(), 0, "flat scratch was leased");
    }

    #[test]
    fn compact_busy_column_space_uses_flat_fast_scratch() {
        // PlusTimes/f64 in a compact busy column space takes the
        // monomorphic flat accumulator, not the generic Vec<Option<T>>.
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(128, 128, 800, 16, s);
        let b = random_dcsr(128, 128, 800, 17, s);
        let ctx = OpCtx::new().with_threads(1);
        let _ = mxm_ctx(&ctx, &a, &b, s);
        let mut lease = ctx.lease_mxm_scratch::<f64>();
        assert_eq!(lease.get().flat_capacity(), 128);
        assert_eq!(lease.get().dense_capacity(), 0);
    }

    #[test]
    fn compact_busy_column_space_still_uses_dense_scratch() {
        // Generic semirings (no mono fast path) still take the dense
        // Vec<Option<T>> accumulator in compact busy column spaces —
        // and so does PlusTimes when fast paths are ablated off.
        let mp = MinPlus::<f64>::new();
        let gen = PlusTimes::<f64>::new();
        let a = random_dcsr(128, 128, 800, 16, gen);
        let b = random_dcsr(128, 128, 800, 17, gen);
        let ctx = OpCtx::new().with_threads(1);
        let _ = mxm_ctx(&ctx, &a, &b, mp);
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            assert_eq!(lease.get().dense_capacity(), 128);
        }
        let ablated = OpCtx::new().with_threads(1);
        ablated.set_fast_paths(false);
        let _ = mxm_ctx(&ablated, &a, &b, gen);
        let mut lease = ablated.lease_mxm_scratch::<f64>();
        assert_eq!(lease.get().dense_capacity(), 128);
        assert_eq!(lease.get().flat_capacity(), 0);
    }

    #[test]
    fn fused_prune_equals_mxm_then_apply_prune() {
        use crate::ops::transform::apply_prune_ctx;
        use semiring::FnOp;
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 31, s);
        let b = random_dcsr(64, 64, 300, 32, s);
        let ctx = OpCtx::new().with_threads(1);
        // Bias + ReLU epilogues, including a positive bias where
        // op(0) = 5 > 0: the fused kernel must still never materialize
        // entries at positions the plain product leaves absent.
        for bias in [-0.5, 0.0, 5.0] {
            let op = FnOp(move |x: f64| (x + bias).max(0.0));
            let fused = mxm_apply_prune_ctx(&ctx, &a, &b, s, op, s);
            let two_pass = apply_prune_ctx(&ctx, &mxm_ctx(&ctx, &a, &b, s), op, s);
            assert!(fused == two_pass, "bias={bias}");
        }
    }

    #[test]
    fn fused_prune_is_thread_invariant() {
        use semiring::FnOp;
        let s = PlusTimes::<f64>::new();
        // Big enough to trigger the sharded path (>512 non-empty rows).
        let a = random_dcsr(2000, 2000, 20_000, 33, s);
        let b = random_dcsr(2000, 2000, 20_000, 34, s);
        // Product entries are sums of ~1–3 terms from [1,4), so a -3.0
        // shift prunes a real fraction without emptying the result.
        let op = FnOp(|x: f64| (x - 3.0).max(0.0));
        let ctx1 = OpCtx::new().with_threads(1);
        let reference = mxm_apply_prune_ctx(&ctx1, &a, &b, s, op, s);
        assert!(reference.nnz() > 0);
        for threads in [2, 4, 8] {
            let ctxn = OpCtx::new().with_threads(threads);
            assert_eq!(mxm_apply_prune_ctx(&ctxn, &a, &b, s, op, s), reference);
        }
    }

    #[test]
    fn try_fused_prune_reports_typed_error() {
        use semiring::FnOp;
        let s = PlusTimes::<f64>::new();
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let op = FnOp(|x: f64| x);
        let ctx = OpCtx::new();
        let e = try_mxm_apply_prune_ctx(&ctx, &a, &b, s, op, s).unwrap_err();
        assert!(
            matches!(
                e,
                OpError::DimensionMismatch {
                    op: "mxm_apply_prune",
                    rule: "inner dimensions differ",
                    ..
                }
            ),
            "{e:?}"
        );
    }

    #[test]
    fn masked_mxm_records_span_when_traced() {
        use crate::trace::TraceMode;
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 7, s);
        let b = random_dcsr(32, 32, 200, 8, s);
        let mask = random_dcsr(32, 32, 100, 9, s);
        let ctx = OpCtx::new().with_threads(1);
        ctx.trace().set_mode(TraceMode::Full);
        let _ = mxm_masked_ctx(&ctx, &a, &b, &mask, false, s);
        let spans = ctx.trace().spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].name, "mxm_masked");
        assert!(spans[0].detail.contains("32×32"), "{:?}", spans[0]);
    }
}
