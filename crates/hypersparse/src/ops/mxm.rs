//! Sparse matrix–matrix multiply (SpGEMM) — the array ⊕.⊗ of Table II.
//!
//! Gustavson's row-wise algorithm: for each non-empty row *i* of `A`,
//! accumulate `⊕_k A(i,k) ⊗ B(k,:)`. Two accumulator strategies:
//!
//! * **hash** — a `HashMap<col, T>` per row: `O(flops)` regardless of the
//!   column dimension; the only choice in hypersparse column spaces.
//! * **dense scratch** — a reusable `Vec<Option<T>>` of width `ncols`:
//!   faster constants when the column space is compact.
//!
//! [`mxm_ctx`] picks automatically (and the `ablation_accumulator` bench
//! measures the crossover). Accumulator scratch is **leased from the
//! context's workspace arena** ([`OpCtx::lease_mxm_scratch`]) so repeated
//! multiplies on a hot path stop allocating per call, and parallelism is
//! governed by the context's thread cap: rows of `A` are sharded across
//! `ctx.threads()` OS threads and per-shard outputs concatenate in row
//! order, so the result is bit-for-bit identical at every thread count.
//! The ctx-free [`mxm`]/[`mxm_seq`] signatures wrap the thread-local
//! default context.

use std::time::Instant;

use semiring::traits::{Semiring, Value};

use crate::ctx::{par_run, with_default_ctx, MxmScratch, OpCtx};
use crate::dcsr::Dcsr;
use crate::metrics::Kernel;
use crate::Ix;

/// Column spaces at most this wide use the dense scratch accumulator.
const DENSE_ACC_MAX: u64 = 1 << 22;

/// Rows of `A` per parallel shard.
const ROWS_PER_SHARD: usize = 256;

/// `C = A ⊕.⊗ B` through an explicit execution context: scratch comes
/// from `ctx`'s workspace arena, parallelism follows `ctx.threads()`,
/// and the invocation is recorded in `ctx.metrics()`.
pub fn mxm_ctx<T: Value, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
) -> Dcsr<T> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let start = Instant::now();
    let nrows_ne = a.n_nonempty_rows();
    let threads = ctx.threads();

    let (c, flops) = if threads == 1 || nrows_ne < 2 * ROWS_PER_SHARD {
        let mut lease = ctx.lease_mxm_scratch::<T>();
        let (chunk, flops) = multiply_row_range_ws(a, b, s, 0, nrows_ne, lease.get());
        (assemble(a.nrows(), b.ncols(), [chunk]), flops)
    } else {
        let nshards = nrows_ne.div_ceil(ROWS_PER_SHARD);
        let shard_results = par_run(threads, nshards, |shard| {
            let lo = shard * ROWS_PER_SHARD;
            let hi = (lo + ROWS_PER_SHARD).min(nrows_ne);
            let mut lease = ctx.lease_mxm_scratch::<T>();
            multiply_row_range_ws(a, b, s, lo, hi, lease.get())
        });
        let flops = shard_results.iter().map(|(_, f)| f).sum();
        let chunks: Vec<_> = shard_results.into_iter().map(|(c, _)| c).collect();
        (assemble(a.nrows(), b.ncols(), chunks), flops)
    };

    ctx.metrics().record(
        Kernel::Mxm,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
    );
    c
}

/// Sequential SpGEMM through an explicit context — [`mxm_ctx`] with the
/// thread cap overridden to 1 for this call (the workspace arena and
/// metrics still come from `ctx`).
pub fn mxm_seq_ctx<T: Value, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
) -> Dcsr<T> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions differ");
    let start = Instant::now();
    let mut lease = ctx.lease_mxm_scratch::<T>();
    let (chunk, flops) = multiply_row_range_ws(a, b, s, 0, a.n_nonempty_rows(), lease.get());
    drop(lease);
    let c = assemble(a.nrows(), b.ncols(), [chunk]);
    ctx.metrics().record(
        Kernel::Mxm,
        start.elapsed(),
        (a.nnz() + b.nnz()) as u64,
        c.nnz() as u64,
        flops,
    );
    c
}

/// `C = A ⊕.⊗ B`, parallel and deterministic (thread-local default ctx).
pub fn mxm<T: Value, S: Semiring<Value = T>>(a: &Dcsr<T>, b: &Dcsr<T>, s: S) -> Dcsr<T> {
    with_default_ctx(|ctx| mxm_ctx(ctx, a, b, s))
}

/// Sequential reference SpGEMM (same output as [`mxm`]).
pub fn mxm_seq<T: Value, S: Semiring<Value = T>>(a: &Dcsr<T>, b: &Dcsr<T>, s: S) -> Dcsr<T> {
    with_default_ctx(|ctx| mxm_seq_ctx(ctx, a, b, s))
}

/// Masked SpGEMM through an explicit context: `C = (A ⊕.⊗ B) ⊙ mask`
/// (structural mask, i.e. only positions stored in `mask` are
/// computed/kept; `complement` inverts the selection). Fusing the mask
/// into the accumulator loop is what makes masked triangle counting
/// `O(flops into the mask)` instead of `O(all flops)`.
pub fn mxm_masked_ctx<T: Value, M: Value, S: Semiring<Value = T>>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    mask: &Dcsr<M>,
    complement: bool,
    s: S,
) -> Dcsr<T> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions differ");
    assert_eq!(mask.nrows(), a.nrows(), "mask row dimension");
    assert_eq!(mask.ncols(), b.ncols(), "mask column dimension");
    let start = Instant::now();
    let mut flops = 0u64;

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();

    let mut lease = ctx.lease_mxm_scratch::<T>();
    let acc = &mut lease.get().hash;
    for (i, acols, avals) in a.iter_rows() {
        let (mcols, _) = mask.row(i);
        acc.clear();
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let in_mask = mcols.binary_search(&j).is_ok();
                if in_mask == complement {
                    continue;
                }
                let p = s.mul(aik.clone(), bkj.clone());
                flops += 1;
                match acc.entry(j) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        let mut row: Vec<(Ix, T)> = acc.drain().filter(|(_, v)| !s.is_zero(v)).collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|e| e.0);
        rows.push(i);
        for (c, v) in row {
            colidx.push(c);
            vals.push(v);
        }
        rowptr.push(colidx.len());
    }
    drop(lease);
    let c = Dcsr::from_parts(a.nrows(), b.ncols(), rows, rowptr, colidx, vals);
    ctx.metrics().record(
        Kernel::MxmMasked,
        start.elapsed(),
        (a.nnz() + b.nnz() + mask.nnz()) as u64,
        c.nnz() as u64,
        flops,
    );
    c
}

/// Masked SpGEMM (thread-local default ctx). See [`mxm_masked_ctx`].
pub fn mxm_masked<T: Value, M: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    mask: &Dcsr<M>,
    complement: bool,
    s: S,
) -> Dcsr<T> {
    with_default_ctx(|ctx| mxm_masked_ctx(ctx, a, b, mask, complement, s))
}

/// Per-shard result: `(row id, sorted (col, val) entries)` pairs.
pub type RowsChunk<T> = Vec<(Ix, Vec<(Ix, T)>)>;

/// Concatenate row chunks (already in global row order) into a DCSR.
fn assemble<T: Value>(
    nrows: Ix,
    ncols: Ix,
    chunks: impl IntoIterator<Item = RowsChunk<T>>,
) -> Dcsr<T> {
    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    for chunk in chunks {
        for (r, cv) in chunk {
            rows.push(r);
            for (c, v) in cv {
                colidx.push(c);
                vals.push(v);
            }
            rowptr.push(colidx.len());
        }
    }
    Dcsr::from_parts(nrows, ncols, rows, rowptr, colidx, vals)
}

/// Multiply rows `start..end` of `A` against `B` using workspace
/// `scratch`, returning the rows plus the ⊗ count.
fn multiply_row_range_ws<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
) -> (RowsChunk<T>, u64) {
    if b.ncols() <= DENSE_ACC_MAX {
        multiply_rows_dense_ws(a, b, s, start, end, scratch)
    } else {
        multiply_rows_hash_ws(a, b, s, start, end, scratch)
    }
}

fn multiply_rows_hash_ws<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
) -> (RowsChunk<T>, u64) {
    let acc = &mut scratch.hash;
    let mut out = Vec::new();
    let mut flops = 0u64;
    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        acc.clear();
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let p = s.mul(aik.clone(), bkj.clone());
                flops += 1;
                match acc.entry(j) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        let mut row: Vec<(Ix, T)> = acc.drain().filter(|(_, v)| !s.is_zero(v)).collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|e| e.0);
        out.push((i, row));
    }
    (out, flops)
}

fn multiply_rows_dense_ws<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
    scratch: &mut MxmScratch<T>,
) -> (RowsChunk<T>, u64) {
    let width = b.ncols() as usize;
    scratch.ensure_dense_width(width);
    let dense = &mut scratch.dense;
    let touched = &mut scratch.touched;
    let mut out = Vec::new();
    let mut flops = 0u64;

    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let p = s.mul(aik.clone(), bkj.clone());
                flops += 1;
                match &mut dense[j as usize] {
                    Some(v) => s.add_assign(v, p),
                    slot @ None => {
                        *slot = Some(p);
                        touched.push(j);
                    }
                }
            }
        }
        if touched.is_empty() {
            continue;
        }
        touched.sort_unstable();
        let mut row: Vec<(Ix, T)> = Vec::with_capacity(touched.len());
        for &j in touched.iter() {
            if let Some(v) = dense[j as usize].take() {
                if !s.is_zero(&v) {
                    row.push((j, v));
                }
            }
        }
        touched.clear();
        if !row.is_empty() {
            out.push((i, row));
        }
    }
    (out, flops)
}

/// Hash-accumulator row multiply — `O(flops)` in any column space.
/// Public for the accumulator ablation bench; use [`mxm_ctx`] otherwise.
pub fn multiply_rows_hash_acc<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T> {
    let mut scratch = MxmScratch::default();
    multiply_rows_hash_ws(a, b, s, start, end, &mut scratch).0
}

/// Dense-scratch row multiply — a `Vec<Option<T>>` of width `ncols`,
/// reset via a touched-columns list so each row costs `O(flops)` too,
/// with far better constants in compact column spaces. Public for the
/// accumulator ablation bench; use [`mxm_ctx`] otherwise.
pub fn multiply_rows_dense_acc<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T> {
    let mut scratch = MxmScratch::default();
    multiply_rows_dense_ws(a, b, s, start, end, &mut scratch).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use semiring::{LorLand, MinPlus, PlusTimes};

    fn from_triplets(n: Ix, t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(t.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    /// Naive dense oracle over a semiring.
    fn oracle<S: Semiring<Value = f64>>(a: &Dcsr<f64>, b: &Dcsr<f64>, s: S) -> Vec<(Ix, Ix, f64)> {
        let mut acc: std::collections::BTreeMap<(Ix, Ix), f64> = Default::default();
        for (i, k, av) in a.iter() {
            for (k2, j, bv) in b.iter() {
                if k == k2 {
                    let p = s.mul(*av, *bv);
                    acc.entry((i, j))
                        .and_modify(|x| *x = s.add(*x, p))
                        .or_insert(p);
                }
            }
        }
        acc.into_iter()
            .filter(|(_, v)| !s.is_zero(v))
            .map(|((i, j), v)| (i, j, v))
            .collect()
    }

    #[test]
    fn small_known_product() {
        // [[1,2],[0,3]] * [[4,0],[5,6]] = [[14,12],[15,18]]
        let a = from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        let b = from_triplets(2, &[(0, 0, 4.0), (1, 0, 5.0), (1, 1, 6.0)]);
        let c = mxm(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(c.get(0, 0), Some(&14.0));
        assert_eq!(c.get(0, 1), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&15.0));
        assert_eq!(c.get(1, 1), Some(&18.0));
    }

    #[test]
    fn matches_oracle_on_random() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 1, s);
        let b = random_dcsr(64, 64, 300, 2, s);
        let c = mxm(&a, &b, s);
        let got: Vec<_> = c.iter().map(|(i, j, &v)| (i, j, v)).collect();
        let want = oracle(&a, &b, s);
        assert_eq!(got.len(), want.len());
        for ((gi, gj, gv), (wi, wj, wv)) in got.iter().zip(&want) {
            assert_eq!((gi, gj), (wi, wj));
            assert!((gv - wv).abs() < 1e-9, "{gv} vs {wv}");
        }
    }

    #[test]
    fn min_plus_mxm_is_path_relaxation() {
        let s = MinPlus::<f64>::new();
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 9.0)]);
        let a = c.build_dcsr(s);
        let a2 = mxm(&a, &a, s);
        // Two-hop: 0→1→2 costs 3.
        assert_eq!(a2.get(0, 2), Some(&3.0));
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = PlusTimes::<f64>::new();
        // Big enough to trigger the parallel path (>512 non-empty rows).
        let a = random_dcsr(2000, 2000, 20_000, 3, s);
        let b = random_dcsr(2000, 2000, 20_000, 4, s);
        assert_eq!(mxm(&a, &b, s), mxm_seq(&a, &b, s));
    }

    #[test]
    fn thread_cap_one_equals_thread_cap_n() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(2000, 2000, 20_000, 3, s);
        let b = random_dcsr(2000, 2000, 20_000, 4, s);
        let ctx1 = OpCtx::new().with_threads(1);
        let reference = mxm_ctx(&ctx1, &a, &b, s);
        for threads in [2, 4, 8] {
            let ctxn = OpCtx::new().with_threads(threads);
            assert_eq!(mxm_ctx(&ctxn, &a, &b, s), reference);
        }
    }

    #[test]
    fn ctx_mxm_records_metrics_and_reuses_scratch() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 21, s);
        let b = random_dcsr(64, 64, 300, 22, s);
        let ctx = OpCtx::new().with_threads(1);
        let c = mxm_ctx(&ctx, &a, &b, s);
        let snap = ctx.metrics().snapshot();
        let m = snap.kernel(Kernel::Mxm);
        assert_eq!(m.calls, 1);
        assert_eq!(m.nnz_in, (a.nnz() + b.nnz()) as u64);
        assert_eq!(m.nnz_out, c.nnz() as u64);
        assert!(m.flops > 0);
        // Repeated same-shape multiplies are all pool hits after the first.
        for _ in 0..10 {
            let _ = mxm_ctx(&ctx, &a, &b, s);
        }
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.workspace_misses, 1);
        assert_eq!(snap.workspace_hits, 10);
        assert_eq!(ctx.pooled_buffers(), 1);
    }

    #[test]
    fn hash_and_dense_accumulators_agree() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(128, 128, 800, 5, s);
        let b = random_dcsr(128, 128, 800, 6, s);
        let h = multiply_rows_hash_acc(&a, &b, s, 0, a.n_nonempty_rows());
        let d = multiply_rows_dense_acc(&a, &b, s, 0, a.n_nonempty_rows());
        assert_eq!(h, d);
    }

    #[test]
    fn hypersparse_product_in_huge_space() {
        let n = 1u64 << 50;
        let s = PlusTimes::<f64>::new();
        let mut ca = Coo::new(n, n);
        ca.extend([(7, 1 << 40, 2.0), (9, 3, 5.0)]);
        let mut cb = Coo::new(n, n);
        cb.extend([(1 << 40, 123, 3.0), (3, 456, 7.0)]);
        let c = mxm(&ca.build_dcsr(s), &cb.build_dcsr(s), s);
        assert_eq!(c.get(7, 123), Some(&6.0));
        assert_eq!(c.get(9, 456), Some(&35.0));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn masked_mxm_keeps_only_mask_positions() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 7, s);
        let b = random_dcsr(32, 32, 200, 8, s);
        let mask = random_dcsr(32, 32, 100, 9, s);
        let full = mxm(&a, &b, s);
        let masked = mxm_masked(&a, &b, &mask, false, s);
        for (i, j, v) in masked.iter() {
            assert!(mask.get(i, j).is_some());
            assert_eq!(full.get(i, j), Some(v));
        }
        // And every full-product entry inside the mask is present.
        for (i, j, v) in full.iter() {
            if mask.get(i, j).is_some() {
                assert_eq!(masked.get(i, j), Some(v));
            }
        }
    }

    #[test]
    fn complement_masked_mxm() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 10, s);
        let b = random_dcsr(32, 32, 200, 11, s);
        let mask = random_dcsr(32, 32, 100, 12, s);
        let comp = mxm_masked(&a, &b, &mask, true, s);
        for (i, j, _) in comp.iter() {
            assert!(mask.get(i, j).is_none());
        }
    }

    #[test]
    fn boolean_reachability_product() {
        let s = LorLand;
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, true), (1, 2, true)]);
        let a = c.build_dcsr(s);
        let a2 = mxm(&a, &a, s);
        assert_eq!(a2.get(0, 2), Some(&true));
        assert_eq!(a2.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn conformance_checked() {
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let _ = mxm(&a, &b, PlusTimes::<f64>::new());
    }
}
