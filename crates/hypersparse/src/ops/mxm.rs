//! Sparse matrix–matrix multiply (SpGEMM) — the array ⊕.⊗ of Table II.
//!
//! Gustavson's row-wise algorithm: for each non-empty row *i* of `A`,
//! accumulate `⊕_k A(i,k) ⊗ B(k,:)`. Two accumulator strategies:
//!
//! * **hash** — a `HashMap<col, T>` per row: `O(flops)` regardless of the
//!   column dimension; the only choice in hypersparse column spaces.
//! * **dense scratch** — a reusable `Vec<Option<T>>` of width `ncols`:
//!   faster constants when the column space is compact.
//!
//! [`mxm`] picks automatically (and the `ablation_accumulator` bench
//! measures the crossover); the parallel front end shards rows of `A`
//! across rayon tasks and concatenates per-shard outputs in row order, so
//! the result is identical to [`mxm_seq`].

use std::collections::HashMap;

use rayon::prelude::*;
use semiring::traits::{Semiring, Value};

use crate::dcsr::Dcsr;
use crate::Ix;

/// Column spaces at most this wide use the dense scratch accumulator.
const DENSE_ACC_MAX: u64 = 1 << 22;

/// Rows of `A` per parallel shard.
const ROWS_PER_SHARD: usize = 256;

/// `C = A ⊕.⊗ B`, parallel and deterministic.
pub fn mxm<T: Value, S: Semiring<Value = T>>(a: &Dcsr<T>, b: &Dcsr<T>, s: S) -> Dcsr<T> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let nrows_ne = a.n_nonempty_rows();
    if nrows_ne < 2 * ROWS_PER_SHARD {
        return mxm_seq(a, b, s);
    }

    let shard_results: Vec<RowsChunk<T>> = (0..nrows_ne)
        .into_par_iter()
        .step_by(ROWS_PER_SHARD)
        .map(|start| {
            let end = (start + ROWS_PER_SHARD).min(nrows_ne);
            multiply_row_range(a, b, s, start, end)
        })
        .collect();

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    for chunk in shard_results {
        for (r, cv) in chunk {
            rows.push(r);
            for (c, v) in cv {
                colidx.push(c);
                vals.push(v);
            }
            rowptr.push(colidx.len());
        }
    }
    Dcsr::from_parts(a.nrows(), b.ncols(), rows, rowptr, colidx, vals)
}

/// Sequential reference SpGEMM (same output as [`mxm`]).
pub fn mxm_seq<T: Value, S: Semiring<Value = T>>(a: &Dcsr<T>, b: &Dcsr<T>, s: S) -> Dcsr<T> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions differ");
    let chunk = multiply_row_range(a, b, s, 0, a.n_nonempty_rows());
    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    for (r, cv) in chunk {
        rows.push(r);
        for (c, v) in cv {
            colidx.push(c);
            vals.push(v);
        }
        rowptr.push(colidx.len());
    }
    Dcsr::from_parts(a.nrows(), b.ncols(), rows, rowptr, colidx, vals)
}

/// Masked SpGEMM: `C = (A ⊕.⊗ B) ⊙ mask` (structural mask, i.e. only
/// positions stored in `mask` are computed/kept; `complement` inverts the
/// selection). Fusing the mask into the accumulator loop is what makes
/// masked triangle counting `O(flops into the mask)` instead of
/// `O(all flops)`.
pub fn mxm_masked<T: Value, M: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    mask: &Dcsr<M>,
    complement: bool,
    s: S,
) -> Dcsr<T> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions differ");
    assert_eq!(mask.nrows(), a.nrows(), "mask row dimension");
    assert_eq!(mask.ncols(), b.ncols(), "mask column dimension");

    let mut rows = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();

    for (i, acols, avals) in a.iter_rows() {
        let (mcols, _) = mask.row(i);
        let mut acc: HashMap<Ix, T> = HashMap::new();
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let in_mask = mcols.binary_search(&j).is_ok();
                if in_mask == complement {
                    continue;
                }
                let p = s.mul(aik.clone(), bkj.clone());
                match acc.entry(j) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        let mut row: Vec<(Ix, T)> = acc.into_iter().filter(|(_, v)| !s.is_zero(v)).collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|e| e.0);
        rows.push(i);
        for (c, v) in row {
            colidx.push(c);
            vals.push(v);
        }
        rowptr.push(colidx.len());
    }
    Dcsr::from_parts(a.nrows(), b.ncols(), rows, rowptr, colidx, vals)
}

/// Per-shard result: `(row id, sorted (col, val) entries)` pairs.
pub type RowsChunk<T> = Vec<(Ix, Vec<(Ix, T)>)>;

fn multiply_row_range<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T> {
    if b.ncols() <= DENSE_ACC_MAX {
        multiply_rows_dense_acc(a, b, s, start, end)
    } else {
        multiply_rows_hash_acc(a, b, s, start, end)
    }
}

/// Hash-accumulator row multiply — `O(flops)` in any column space.
/// Public for the accumulator ablation bench; use [`mxm`] otherwise.
pub fn multiply_rows_hash_acc<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T> {
    let mut out = Vec::new();
    let mut acc: HashMap<Ix, T> = HashMap::new();
    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        acc.clear();
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let p = s.mul(aik.clone(), bkj.clone());
                match acc.entry(j) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        s.add_assign(e.get_mut(), p)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
        let mut row: Vec<(Ix, T)> = acc.drain().filter(|(_, v)| !s.is_zero(v)).collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|e| e.0);
        out.push((i, row));
    }
    out
}

/// Dense-scratch row multiply — a `Vec<Option<T>>` of width `ncols`,
/// reset via a touched-columns list so each row costs `O(flops)` too,
/// with far better constants in compact column spaces. Public for the
/// accumulator ablation bench; use [`mxm`] otherwise.
pub fn multiply_rows_dense_acc<T: Value, S: Semiring<Value = T>>(
    a: &Dcsr<T>,
    b: &Dcsr<T>,
    s: S,
    start: usize,
    end: usize,
) -> RowsChunk<T> {
    let width = b.ncols() as usize;
    let mut scratch: Vec<Option<T>> = vec![None; width];
    let mut touched: Vec<Ix> = Vec::new();
    let mut out = Vec::new();

    for k_row in start..end {
        let (i, acols, avals) = a.row_at(k_row);
        for (&k, aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, bkj) in bcols.iter().zip(bvals) {
                let p = s.mul(aik.clone(), bkj.clone());
                match &mut scratch[j as usize] {
                    Some(v) => s.add_assign(v, p),
                    slot @ None => {
                        *slot = Some(p);
                        touched.push(j);
                    }
                }
            }
        }
        if touched.is_empty() {
            continue;
        }
        touched.sort_unstable();
        let mut row: Vec<(Ix, T)> = Vec::with_capacity(touched.len());
        for &j in &touched {
            if let Some(v) = scratch[j as usize].take() {
                if !s.is_zero(&v) {
                    row.push((j, v));
                }
            }
        }
        touched.clear();
        if !row.is_empty() {
            out.push((i, row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::random_dcsr;
    use semiring::{LorLand, MinPlus, PlusTimes};

    fn from_triplets(n: Ix, t: &[(Ix, Ix, f64)]) -> Dcsr<f64> {
        let mut c = Coo::new(n, n);
        c.extend(t.iter().copied());
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    /// Naive dense oracle over a semiring.
    fn oracle<S: Semiring<Value = f64>>(a: &Dcsr<f64>, b: &Dcsr<f64>, s: S) -> Vec<(Ix, Ix, f64)> {
        let mut acc: std::collections::BTreeMap<(Ix, Ix), f64> = Default::default();
        for (i, k, av) in a.iter() {
            for (k2, j, bv) in b.iter() {
                if k == k2 {
                    let p = s.mul(*av, *bv);
                    acc.entry((i, j))
                        .and_modify(|x| *x = s.add(*x, p))
                        .or_insert(p);
                }
            }
        }
        acc.into_iter()
            .filter(|(_, v)| !s.is_zero(v))
            .map(|((i, j), v)| (i, j, v))
            .collect()
    }

    #[test]
    fn small_known_product() {
        // [[1,2],[0,3]] * [[4,0],[5,6]] = [[14,12],[15,18]]
        let a = from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        let b = from_triplets(2, &[(0, 0, 4.0), (1, 0, 5.0), (1, 1, 6.0)]);
        let c = mxm(&a, &b, PlusTimes::<f64>::new());
        assert_eq!(c.get(0, 0), Some(&14.0));
        assert_eq!(c.get(0, 1), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&15.0));
        assert_eq!(c.get(1, 1), Some(&18.0));
    }

    #[test]
    fn matches_oracle_on_random() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(64, 64, 300, 1, s);
        let b = random_dcsr(64, 64, 300, 2, s);
        let c = mxm(&a, &b, s);
        let got: Vec<_> = c.iter().map(|(i, j, &v)| (i, j, v)).collect();
        let want = oracle(&a, &b, s);
        assert_eq!(got.len(), want.len());
        for ((gi, gj, gv), (wi, wj, wv)) in got.iter().zip(&want) {
            assert_eq!((gi, gj), (wi, wj));
            assert!((gv - wv).abs() < 1e-9, "{gv} vs {wv}");
        }
    }

    #[test]
    fn min_plus_mxm_is_path_relaxation() {
        let s = MinPlus::<f64>::new();
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 9.0)]);
        let a = c.build_dcsr(s);
        let a2 = mxm(&a, &a, s);
        // Two-hop: 0→1→2 costs 3.
        assert_eq!(a2.get(0, 2), Some(&3.0));
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = PlusTimes::<f64>::new();
        // Big enough to trigger the parallel path (>512 non-empty rows).
        let a = random_dcsr(2000, 2000, 20_000, 3, s);
        let b = random_dcsr(2000, 2000, 20_000, 4, s);
        assert_eq!(mxm(&a, &b, s), mxm_seq(&a, &b, s));
    }

    #[test]
    fn hash_and_dense_accumulators_agree() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(128, 128, 800, 5, s);
        let b = random_dcsr(128, 128, 800, 6, s);
        let h = multiply_rows_hash_acc(&a, &b, s, 0, a.n_nonempty_rows());
        let d = multiply_rows_dense_acc(&a, &b, s, 0, a.n_nonempty_rows());
        assert_eq!(h, d);
    }

    #[test]
    fn hypersparse_product_in_huge_space() {
        let n = 1u64 << 50;
        let s = PlusTimes::<f64>::new();
        let mut ca = Coo::new(n, n);
        ca.extend([(7, 1 << 40, 2.0), (9, 3, 5.0)]);
        let mut cb = Coo::new(n, n);
        cb.extend([(1 << 40, 123, 3.0), (3, 456, 7.0)]);
        let c = mxm(&ca.build_dcsr(s), &cb.build_dcsr(s), s);
        assert_eq!(c.get(7, 123), Some(&6.0));
        assert_eq!(c.get(9, 456), Some(&35.0));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn masked_mxm_keeps_only_mask_positions() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 7, s);
        let b = random_dcsr(32, 32, 200, 8, s);
        let mask = random_dcsr(32, 32, 100, 9, s);
        let full = mxm(&a, &b, s);
        let masked = mxm_masked(&a, &b, &mask, false, s);
        for (i, j, v) in masked.iter() {
            assert!(mask.get(i, j).is_some());
            assert_eq!(full.get(i, j), Some(v));
        }
        // And every full-product entry inside the mask is present.
        for (i, j, v) in full.iter() {
            if mask.get(i, j).is_some() {
                assert_eq!(masked.get(i, j), Some(v));
            }
        }
    }

    #[test]
    fn complement_masked_mxm() {
        let s = PlusTimes::<f64>::new();
        let a = random_dcsr(32, 32, 200, 10, s);
        let b = random_dcsr(32, 32, 200, 11, s);
        let mask = random_dcsr(32, 32, 100, 12, s);
        let comp = mxm_masked(&a, &b, &mask, true, s);
        for (i, j, _) in comp.iter() {
            assert!(mask.get(i, j).is_none());
        }
    }

    #[test]
    fn boolean_reachability_product() {
        let s = LorLand;
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, true), (1, 2, true)]);
        let a = c.build_dcsr(s);
        let a2 = mxm(&a, &a, s);
        assert_eq!(a2.get(0, 2), Some(&true));
        assert_eq!(a2.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn conformance_checked() {
        let a = Dcsr::<f64>::empty(3, 4);
        let b = Dcsr::<f64>::empty(5, 3);
        let _ = mxm(&a, &b, PlusTimes::<f64>::new());
    }
}
