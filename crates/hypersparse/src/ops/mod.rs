//! Semiring kernels over the hypersparse compute format ([`crate::Dcsr`]).
//!
//! Every kernel is generic over a [`semiring::Semiring`] (or a monoid for
//! reductions), drops semiring zeros from its output, and is
//! deterministic — the parallel SpGEMM partitions work by row and
//! assembles results in row order, so thread count never changes a bit of
//! the answer.

pub mod ewise;
pub mod mxm;
pub mod reduce;
pub mod structure;
pub mod transform;

pub use ewise::{ewise_add, ewise_add_op, ewise_mul, ewise_mul_op, ewise_union};
pub use mxm::{mxm, mxm_masked, mxm_seq};
pub use reduce::{reduce_cols, reduce_rows, reduce_scalar};
pub use structure::{assign, concat_cols, concat_rows, diag, diag_of, matrix_power, tril, triu};
pub use transform::{apply, extract, kron, select, transpose};
