//! Semiring kernels over the hypersparse compute format ([`crate::Dcsr`]).
//!
//! Every kernel is generic over a [`semiring::Semiring`] (or a monoid for
//! reductions), drops semiring zeros from its output, and is
//! deterministic — the parallel SpGEMM partitions work by row and
//! assembles results in row order, so thread count never changes a bit of
//! the answer.
//!
//! Every kernel comes in two spellings: a `*_ctx` entry point taking an
//! explicit [`crate::ctx::OpCtx`] (workspace arena + thread cap +
//! metrics), and the classic ctx-free name, which is a thin wrapper over
//! the thread-local default context.

pub mod ewise;
pub(crate) mod fastpath;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod structure;
pub mod topk;
pub mod transform;

pub use ewise::{
    ewise_add, ewise_add_ctx, ewise_add_op, ewise_add_op_ctx, ewise_mul, ewise_mul_ctx,
    ewise_mul_op, ewise_mul_op_ctx, ewise_union, ewise_union_ctx,
};
pub use mxm::{
    mxm, mxm_apply_prune, mxm_apply_prune_ctx, mxm_ctx, mxm_masked, mxm_masked_ctx, mxm_seq,
    mxm_seq_ctx, try_mxm_apply_prune_ctx, try_mxm_masked, try_mxm_masked_ctx,
};
pub use mxv::{
    choose_direction, mxv, mxv_ctx, mxv_opt_ctx, try_mxv, try_mxv_ctx, try_vxm, try_vxm_ctx, vxm,
    vxm_ctx, vxm_dense_pull_ctx, vxm_masked_ctx, vxm_masked_opt_ctx, vxm_opt_ctx, vxm_pull_ctx,
    vxm_push_ctx,
};
pub use reduce::{
    reduce_cols, reduce_cols_ctx, reduce_rows, reduce_rows_ctx, reduce_scalar, reduce_scalar_ctx,
};
pub use structure::{
    assign, assign_ctx, concat_cols, concat_cols_ctx, concat_rows, concat_rows_ctx, diag, diag_of,
    matrix_power, matrix_power_ctx, tril, triu,
};
pub use topk::{top_k, top_k_cols, top_k_cols_ctx, top_k_ctx, top_k_rows, top_k_rows_ctx};
pub use transform::{
    apply, apply_ctx, apply_prune, apply_prune_ctx, extract, extract_ctx, kron, kron_ctx, select,
    select_ctx, transpose, transpose_ctx,
};
