//! Top-k selection — heavy-hitter extraction as a first-class kernel.
//!
//! Network-analytics workloads (and any "who are the biggest players"
//! query) repeatedly need *the k largest entries of a reduction*: top
//! talkers by packet volume, hottest destinations by fan-in. Rather
//! than every workload open-coding a sort over a [`SparseVec`], the
//! kernel layer provides it once, with the partial-sort trade the ad hoc
//! versions always miss: `O(n)` selection of the k-boundary
//! (`select_nth_unstable_by`) followed by an `O(k log k)` sort of only
//! the winners — never an `O(n log n)` sort of the whole vector.
//!
//! Ordering is total and deterministic: descending by value
//! (`PartialOrd`; incomparable values — IEEE NaN — rank strictly last),
//! ties broken by ascending index. Every entry point records into the
//! [`Kernel::TopK`] metrics row; the fused `top_k_rows`/`top_k_cols`
//! forms additionally record their inner reduction under its own kernel,
//! so flame-graphs and Prometheus keep the two costs separate.

use std::cmp::Ordering;
use std::time::Instant;

use semiring::traits::{Monoid, Value};

use crate::ctx::{with_default_ctx, OpCtx};
use crate::dcsr::Dcsr;
use crate::index::IndexType;
use crate::metrics::Kernel;
use crate::ops::reduce::{reduce_cols_ctx, reduce_rows_ctx};
use crate::vector::SparseVec;
use crate::Ix;

/// Total order for ranking: larger values first, incomparable values
/// (IEEE NaN — the only `PartialOrd` incomparables in practice) rank
/// strictly after every comparable value, ties broken by smaller index
/// first.
///
/// Treating incomparable pairs as `Equal` (the previous behaviour) is
/// **not** a total order: `select_nth_unstable_by` and `sort_by` require
/// transitivity, and with `NaN "=" 1.0` and `NaN "=" 9.0` but
/// `1.0 < 9.0`, a NaN landing near the k-boundary could
/// nondeterministically displace a genuine heavy hitter. Self-comparison
/// via `partial_cmp` detects incomparables without requiring `T: Float`.
fn rank<T: Value + PartialOrd>(a: &(Ix, T), b: &(Ix, T)) -> Ordering {
    let a_nan = a.1.partial_cmp(&a.1).is_none();
    let b_nan = b.1.partial_cmp(&b.1).is_none();
    match (a_nan, b_nan) {
        (true, true) => a.0.cmp(&b.0),
        (true, false) => Ordering::Greater, // NaN sorts last (after b)
        (false, true) => Ordering::Less,
        (false, false) => {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        }
    }
}

/// The `k` largest entries of a sparse vector, descending by value with
/// ascending-index tie-breaks. Returns fewer than `k` pairs when the
/// vector has fewer stored entries.
pub fn top_k<T: Value + PartialOrd, I: IndexType>(v: &SparseVec<T, I>, k: usize) -> Vec<(Ix, T)> {
    with_default_ctx(|ctx| top_k_ctx(ctx, v, k))
}

/// [`top_k`] through an explicit execution context.
pub fn top_k_ctx<T: Value + PartialOrd, I: IndexType>(
    ctx: &OpCtx,
    v: &SparseVec<T, I>,
    k: usize,
) -> Vec<(Ix, T)> {
    let _span = ctx.kernel_span(Kernel::TopK, || format!("k={k} of {} nnz", v.nnz()));
    let start = Instant::now();
    let mut entries: Vec<(Ix, T)> = v.iter().map(|(i, val)| (i, val.clone())).collect();
    if k < entries.len() {
        // O(n) boundary selection, then sort only the surviving prefix.
        entries.select_nth_unstable_by(k, rank);
        entries.truncate(k);
    }
    entries.sort_by(rank);
    ctx.metrics().record(
        Kernel::TopK,
        start.elapsed(),
        v.nnz() as u64,
        entries.len() as u64,
        v.nnz() as u64, // comparison work is linear in stored entries
        (v.bytes() + entries.len() * (std::mem::size_of::<Ix>() + std::mem::size_of::<T>())) as u64,
    );
    entries
}

/// Heavy-hitter rows: ⊕-reduce every row, then take the `k` largest
/// folds — e.g. top traffic sources by total packet volume.
pub fn top_k_rows<T, M>(a: &Dcsr<T>, k: usize, m: M) -> Vec<(Ix, T)>
where
    T: Value + PartialOrd,
    M: Monoid<T>,
{
    with_default_ctx(|ctx| top_k_rows_ctx(ctx, a, k, m))
}

/// [`top_k_rows`] through an explicit execution context.
pub fn top_k_rows_ctx<T, M>(ctx: &OpCtx, a: &Dcsr<T>, k: usize, m: M) -> Vec<(Ix, T)>
where
    T: Value + PartialOrd,
    M: Monoid<T>,
{
    let reduced = reduce_rows_ctx(ctx, a, m);
    top_k_ctx(ctx, &reduced, k)
}

/// Heavy-hitter columns: ⊕-reduce every column, then take the `k`
/// largest folds — e.g. top traffic destinations by total volume.
pub fn top_k_cols<T, M>(a: &Dcsr<T>, k: usize, m: M) -> Vec<(Ix, T)>
where
    T: Value + PartialOrd,
    M: Monoid<T>,
{
    with_default_ctx(|ctx| top_k_cols_ctx(ctx, a, k, m))
}

/// [`top_k_cols`] through an explicit execution context.
pub fn top_k_cols_ctx<T, M>(ctx: &OpCtx, a: &Dcsr<T>, k: usize, m: M) -> Vec<(Ix, T)>
where
    T: Value + PartialOrd,
    M: Monoid<T>,
{
    let reduced = reduce_cols_ctx(ctx, a, m);
    top_k_ctx(ctx, &reduced, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::{PlusMonoid, PlusTimes};

    fn vec_of(entries: &[(Ix, f64)]) -> SparseVec<f64> {
        SparseVec::from_entries(1 << 20, entries.to_vec(), PlusTimes::<f64>::new())
    }

    #[test]
    fn top_k_orders_desc_with_index_tiebreak() {
        let v = vec_of(&[(5, 2.0), (1, 9.0), (7, 2.0), (3, 4.0)]);
        assert_eq!(top_k(&v, 3), vec![(1, 9.0), (3, 4.0), (5, 2.0)]);
        // Tie at 2.0: the smaller index wins the last slot.
        assert_eq!(top_k(&v, 4), vec![(1, 9.0), (3, 4.0), (5, 2.0), (7, 2.0)]);
    }

    #[test]
    fn k_larger_than_nnz_returns_everything_sorted() {
        let v = vec_of(&[(2, 1.0), (9, 3.0)]);
        assert_eq!(top_k(&v, 10), vec![(9, 3.0), (2, 1.0)]);
        assert!(top_k(&SparseVec::<f64>::empty(8), 3).is_empty());
        assert!(top_k(&v, 0).is_empty());
    }

    #[test]
    fn partial_sort_agrees_with_full_sort() {
        // Enough entries that the select_nth path actually runs.
        let entries: Vec<(Ix, f64)> = (0..500u64)
            .map(|i| (i, ((i * 2_654_435_761) % 997) as f64))
            .collect();
        let v = vec_of(&entries);
        let mut full: Vec<(Ix, f64)> = entries.clone();
        full.sort_by(rank);
        full.truncate(17);
        assert_eq!(top_k(&v, 17), full);
    }

    #[test]
    fn nan_ranks_last_and_ordering_is_total() {
        // NaN must never displace a real heavy hitter, whatever its
        // position relative to the select_nth k-boundary.
        let v = vec_of(&[(0, f64::NAN), (1, 9.0), (2, f64::NAN), (3, 4.0), (4, 7.0)]);
        assert_eq!(top_k(&v, 2), vec![(1, 9.0), (4, 7.0)]);
        assert_eq!(top_k(&v, 3), vec![(1, 9.0), (4, 7.0), (3, 4.0)]);
        // Asking for more than the comparable entries: NaNs trail, in
        // index order — fully deterministic.
        let all = top_k(&v, 5);
        assert_eq!(&all[..3], &[(1, 9.0), (4, 7.0), (3, 4.0)]);
        assert_eq!(all[3].0, 0);
        assert!(all[3].1.is_nan());
        assert_eq!(all[4].0, 2);
        assert!(all[4].1.is_nan());

        // Totality on a larger NaN-riddled vector: result is identical
        // to a full sort under the same comparator (transitivity means
        // select_nth + partial sort can't diverge from it).
        let entries: Vec<(Ix, f64)> = (0..300u64)
            .map(|i| {
                let v = if i % 7 == 0 {
                    f64::NAN
                } else {
                    ((i * 2_654_435_761) % 991) as f64
                };
                (i, v)
            })
            .collect();
        let v = vec_of(&entries);
        let mut full = entries.clone();
        full.sort_by(rank);
        full.truncate(40);
        let got = top_k(&v, 40);
        assert_eq!(got.len(), 40);
        for (g, f) in got.iter().zip(&full) {
            assert_eq!(g.0, f.0);
            assert!(g.1 == f.1 || (g.1.is_nan() && f.1.is_nan()));
        }
        assert!(
            got.iter().all(|(_, v)| !v.is_nan()),
            "40 < 257 comparable entries, so no NaN may surface"
        );
    }

    #[test]
    fn fused_row_and_col_forms_reduce_then_rank() {
        let mut c = Coo::new(16, 16);
        // Row 3 sums to 7, row 1 to 5, row 9 to 1.
        c.extend([(3, 0, 3.0), (3, 4, 4.0), (1, 2, 5.0), (9, 9, 1.0)]);
        let a = c.build_dcsr(PlusTimes::<f64>::new());
        assert_eq!(
            top_k_rows(&a, 2, PlusMonoid::<f64>::default()),
            vec![(3, 7.0), (1, 5.0)]
        );
        assert_eq!(
            top_k_cols(&a, 1, PlusMonoid::<f64>::default()),
            vec![(2, 5.0)]
        );
    }

    #[test]
    fn topk_records_its_own_metrics_row() {
        let ctx = OpCtx::new();
        let v = vec_of(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let _ = top_k_ctx(&ctx, &v, 2);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::TopK).calls, 1);
        assert_eq!(snap.kernel(Kernel::TopK).nnz_in, 3);
        assert_eq!(snap.kernel(Kernel::TopK).nnz_out, 2);

        // The fused form books the reduction separately.
        let mut c = Coo::new(8, 8);
        c.extend([(0, 1, 1.0), (2, 3, 2.0)]);
        let a = c.build_dcsr(PlusTimes::<f64>::new());
        let _ = top_k_rows_ctx(&ctx, &a, 1, PlusMonoid::<f64>::default());
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::TopK).calls, 2);
        assert_eq!(snap.kernel(Kernel::ReduceRows).calls, 1);
    }
}
