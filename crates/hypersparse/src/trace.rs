//! Span tracing, latency histograms, and Prometheus exposition.
//!
//! The deployed-analytics lineage of this work (GraphBLAS hypersparse
//! network telemetry) lives or dies by per-stage timing visibility: which
//! kernel, inside which snapshot, inside which query, is eating the
//! budget. The counter layer ([`crate::metrics`]) answers *how much
//! total*; this module answers *how distributed* and *in what shape*:
//!
//! * [`Histogram`] — log₂-bucketed latency distributions, recorded with
//!   one relaxed atomic add on the hot path, mergeable across shard
//!   registries exactly like [`crate::MetricsSnapshot`] counters (merge
//!   is element-wise add, hence associative and commutative). p50/p95/p99
//!   fall out of the cumulative buckets ([`HistogramSnapshot::quantile`]).
//! * [`TraceRegistry`] / [`Span`] — RAII span guards forming a
//!   per-context hierarchical timing tree. Every `*_ctx` kernel and every
//!   pipeline stage enters a span; nesting is tracked per thread, so a
//!   `snapshot` span owns the `stream_merge`/`ewise_add` kernel spans its
//!   ⊕-fold triggers. A configurable **slow-op threshold** flags spans
//!   that overran it, carrying the operand shapes the kernel recorded.
//! * [`write_prometheus_histogram`] and friends — the text-exposition
//!   building blocks `MetricsSnapshot::render_prometheus` and the
//!   pipeline layer assemble their `/metrics` payload from.
//!
//! **Disabled mode is the default and costs one relaxed atomic load per
//! span site** — no clock read, no allocation, no thread-local touch
//! (measured <2% on `pipeline_throughput`; see `EXPERIMENTS.md`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also catches sub-nanosecond
/// readings), and the last bucket absorbs everything from ~9 minutes up.
pub const BUCKETS: usize = 40;

/// The bucket a duration of `ns` nanoseconds lands in.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    ((63 - ns.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound (exclusive), in nanoseconds, of bucket `i` — the
/// Prometheus `le` boundary. The last bucket is unbounded (`+Inf`).
#[inline]
pub fn bucket_le_ns(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some(1u64 << (i + 1))
    }
}

/// A live log₂-bucketed latency histogram. Recording is one relaxed
/// `fetch_add` per bucket plus one for the sum — safe and cheap from
/// parallel shards.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos() as u64);
    }

    /// Record one observation given directly in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Freeze the buckets into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
    }
}

/// A frozen [`Histogram`]: plain counts, mergeable and comparable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per log₂ bucket (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed durations, in nanoseconds.
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise add `other` into `self`. Associative and
    /// commutative, so shard histograms fold in any order to the same
    /// total — the same contract `MetricsSnapshot` merging relies on.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (t, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *t += o;
        }
        self.sum_ns += other.sum_ns;
    }

    /// Upper-bound estimate of the `q`-quantile (`0 < q ≤ 1`) in
    /// nanoseconds: the exclusive upper edge of the bucket holding the
    /// `⌈q·count⌉`-th observation (`u64::MAX` for the unbounded last
    /// bucket, `0` when empty). `quantile(0.5)`/`(0.95)`/`(0.99)` are
    /// p50/p95/p99.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_le_ns(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Mean observation, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }
}

/// Append one Prometheus histogram (cumulative `_bucket` lines from the
/// first through the last non-empty bucket, then `+Inf`, `_sum`,
/// `_count`) for metric `name` with label set `labels` (e.g.
/// `kernel="mxm"`; pass `""` for none).
pub fn write_prometheus_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    h: &HistogramSnapshot,
) {
    use std::fmt::Write;
    let sep = if labels.is_empty() { "" } else { "," };
    let first = h.buckets.iter().position(|&c| c > 0);
    if let Some(first) = first {
        let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(first);
        let mut cum = 0u64;
        for i in 0..=last {
            cum += h.buckets[i];
            if i < first {
                continue;
            }
            // The unbounded last bucket is covered by the +Inf line below.
            if let Some(le) = bucket_le_ns(i) {
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
                    le as f64 / 1e9
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    let brace_labels: String = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{brace_labels} {}", h.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{brace_labels} {}", h.count());
}

/// Append one `# HELP` + `# TYPE` header pair.
pub fn write_prometheus_header(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// How much span machinery runs (see [`TraceRegistry::set_mode`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No spans: one relaxed atomic load per span site, nothing else.
    #[default]
    Disabled,
    /// Spans are timed but only those over the slow-op threshold are
    /// retained (production-friendly: bounded memory, offenders kept).
    SlowOnly,
    /// Every span is retained, with parent links for tree rendering.
    Full,
}

impl TraceMode {
    fn from_u8(v: u8) -> TraceMode {
        match v {
            1 => TraceMode::SlowOnly,
            2 => TraceMode::Full,
            _ => TraceMode::Disabled,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TraceMode::Disabled => 0,
            TraceMode::SlowOnly => 1,
            TraceMode::Full => 2,
        }
    }
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Registry-unique span id.
    pub id: u64,
    /// Enclosing span on the same registry and thread, if any.
    pub parent: Option<u64>,
    /// Span name (a kernel name or pipeline stage).
    pub name: &'static str,
    /// Operand shapes / free-form detail captured at entry.
    pub detail: String,
    /// Start offset from the registry's origin, in nanoseconds.
    pub start_ns: u64,
    /// Span duration, in nanoseconds.
    pub elapsed_ns: u64,
    /// Whether the span overran the slow-op threshold.
    pub slow: bool,
}

thread_local! {
    /// Per-thread stack of (registry identity, span id) for active spans.
    static ACTIVE: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Per-context span collector. Lives inside [`crate::ctx::OpCtx`]
/// (reachable as `ctx.trace()`); disabled by default.
#[derive(Debug)]
pub struct TraceRegistry {
    mode: AtomicU8,
    slow_ns: AtomicU64,
    next_id: AtomicU64,
    dropped: AtomicU64,
    max_spans: AtomicUsize,
    spans: Mutex<Vec<SpanRecord>>,
    origin: Instant,
}

/// Retained spans are capped (oldest kept) so a forgotten `Full` trace
/// cannot grow without bound; `dropped()` reports the overflow.
const DEFAULT_MAX_SPANS: usize = 1 << 16;

impl Default for TraceRegistry {
    fn default() -> Self {
        TraceRegistry {
            mode: AtomicU8::new(0),
            slow_ns: AtomicU64::new(u64::MAX),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            max_spans: AtomicUsize::new(DEFAULT_MAX_SPANS),
            spans: Mutex::new(Vec::new()),
            origin: Instant::now(),
        }
    }
}

impl TraceRegistry {
    /// The active [`TraceMode`].
    pub fn mode(&self) -> TraceMode {
        TraceMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Switch tracing on or off. Takes `&self` so a shared context can
    /// be toggled mid-flight.
    pub fn set_mode(&self, mode: TraceMode) {
        self.mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// Spans at or over `threshold` are flagged `slow` (and retained
    /// even in [`TraceMode::SlowOnly`]). Pass `None` to clear.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        self.slow_ns.store(
            threshold.map_or(u64::MAX, |d| d.as_nanos() as u64),
            Ordering::Relaxed,
        );
    }

    /// Cap on retained spans (further spans are counted, not kept).
    pub fn set_max_spans(&self, max: usize) {
        self.max_spans.store(max, Ordering::Relaxed);
    }

    /// Spans discarded because the retention cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Open a span. `detail` is evaluated only when tracing is active,
    /// so shape strings cost nothing in disabled mode. The returned
    /// guard records the span on drop.
    #[inline]
    pub fn span(&self, name: &'static str, detail: impl FnOnce() -> String) -> Span<'_> {
        let mode = self.mode();
        if mode == TraceMode::Disabled {
            return Span {
                reg: None,
                id: 0,
                parent: None,
                name,
                detail: String::new(),
                start: self.origin,
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = if mode == TraceMode::Full {
            let key = self as *const TraceRegistry as usize;
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                let parent = a.iter().rev().find(|(k, _)| *k == key).map(|&(_, id)| id);
                a.push((key, id));
                parent
            })
        } else {
            None
        };
        Span {
            reg: Some(self),
            id,
            parent,
            name,
            detail: detail(),
            start: Instant::now(),
        }
    }

    /// Record a span measured externally (e.g. a restore that completed
    /// before any registry existed to host its guard).
    pub fn record_span(&self, name: &'static str, detail: String, elapsed: Duration) {
        if self.mode() == TraceMode::Disabled {
            return;
        }
        let elapsed_ns = elapsed.as_nanos() as u64;
        let slow = elapsed_ns >= self.slow_ns.load(Ordering::Relaxed);
        if self.mode() == TraceMode::SlowOnly && !slow {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent: None,
            name,
            detail,
            start_ns: self.origin.elapsed().as_nanos() as u64,
            elapsed_ns,
            slow,
        });
    }

    fn push(&self, rec: SpanRecord) {
        let mut spans = self.spans.lock().expect("trace mutex");
        if spans.len() >= self.max_spans.load(Ordering::Relaxed) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(rec);
        }
    }

    /// Take every retained span, clearing the registry.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock().expect("trace mutex"))
    }

    /// Clone of every retained span.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace mutex").clone()
    }

    /// Retained spans that overran the slow-op threshold.
    pub fn slow_spans(&self) -> Vec<SpanRecord> {
        self.spans().into_iter().filter(|s| s.slow).collect()
    }

    /// Discard retained spans and reset the drop counter.
    pub fn clear(&self) {
        self.spans.lock().expect("trace mutex").clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Render the span tree: children indented under parents, siblings
    /// in start order, slow spans flagged `[slow]`.
    pub fn report(&self) -> String {
        render_tree(&self.spans())
    }
}

/// Render a set of [`SpanRecord`]s as an indented tree.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    use std::fmt::Write;
    let mut children: std::collections::HashMap<u64, Vec<&SpanRecord>> = Default::default();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let by_start = |a: &&SpanRecord, b: &&SpanRecord| a.start_ns.cmp(&b.start_ns);
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(by_start);
    }
    let mut out = String::new();
    fn emit(
        out: &mut String,
        s: &SpanRecord,
        depth: usize,
        children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    ) {
        let pad = "  ".repeat(depth);
        let slow = if s.slow { "  [slow]" } else { "" };
        let detail = if s.detail.is_empty() {
            String::new()
        } else {
            format!("  ({})", s.detail)
        };
        let _ = writeln!(
            out,
            "{pad}{:<width$} {:>10.3} ms{detail}{slow}",
            s.name,
            s.elapsed_ns as f64 / 1e6,
            width = 24usize.saturating_sub(pad.len()),
        );
        for c in children.get(&s.id).map(|v| v.as_slice()).unwrap_or(&[]) {
            emit(out, c, depth + 1, children);
        }
    }
    for r in roots {
        emit(&mut out, r, 0, &children);
    }
    out
}

/// RAII span guard: times the region from construction to drop and
/// records it into the owning [`TraceRegistry`]. In disabled mode the
/// guard is inert (no clock read, no record).
pub struct Span<'a> {
    reg: Option<&'a TraceRegistry>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: String,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(reg) = self.reg else { return };
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        let mode = reg.mode();
        if mode == TraceMode::Full {
            let key = reg as *const TraceRegistry as usize;
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                if let Some(pos) = a.iter().rposition(|&e| e == (key, self.id)) {
                    a.remove(pos);
                }
            });
        }
        let slow = elapsed_ns >= reg.slow_ns.load(Ordering::Relaxed);
        if mode == TraceMode::SlowOnly && !slow {
            return;
        }
        if mode == TraceMode::Disabled {
            return; // mode flipped off mid-span: drop the record
        }
        reg.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            detail: std::mem::take(&mut self.detail),
            start_ns: self.start.duration_since(reg.origin).as_nanos() as u64,
            elapsed_ns,
            slow,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_le_ns(0), Some(2));
        assert_eq!(bucket_le_ns(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record_ns(1_000); // bucket 9, le 1024ns
        }
        for _ in 0..9 {
            h.record_ns(1 << 20); // ~1ms
        }
        h.record_ns(1 << 30); // ~1s outlier
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.5), 1024);
        assert_eq!(s.quantile(0.95), 1 << 21);
        assert_eq!(s.quantile(0.99), 1 << 21);
        assert_eq!(s.quantile(1.0), 1 << 31);
        assert_eq!(s.sum_ns, 90 * 1_000 + 9 * (1 << 20) + (1 << 30));
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_elementwise_and_associative() {
        let mk = |ns: &[u64]| {
            let h = Histogram::default();
            for &n in ns {
                h.record_ns(n);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&[5, 80, 3000]), mk(&[17]), mk(&[1 << 25, 2]));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.count(), 6);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let reg = TraceRegistry::default();
        {
            let _s = reg.span("mxm", || panic!("detail must not be evaluated"));
        }
        assert!(reg.spans().is_empty());
    }

    #[test]
    fn full_mode_builds_a_tree() {
        let reg = TraceRegistry::default();
        reg.set_mode(TraceMode::Full);
        {
            let _outer = reg.span("snapshot", || "epoch 3".into());
            {
                let _inner = reg.span("stream_merge", String::new);
            }
            {
                let _inner = reg.span("ewise_add", String::new);
            }
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "snapshot").unwrap();
        for inner in spans.iter().filter(|s| s.name != "snapshot") {
            assert_eq!(inner.parent, Some(outer.id), "{inner:?}");
        }
        let tree = reg.report();
        let (o, i) = (
            tree.find("snapshot").unwrap(),
            tree.find("  stream_merge").unwrap(),
        );
        assert!(o < i, "parent renders before indented child:\n{tree}");
        assert!(tree.contains("(epoch 3)"), "{tree}");
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let reg = TraceRegistry::default();
        reg.set_mode(TraceMode::Full);
        {
            let _a = reg.span("a", String::new);
        }
        {
            let _b = reg.span("b", String::new);
        }
        let spans = reg.spans();
        assert!(spans.iter().all(|s| s.parent.is_none()), "{spans:?}");
    }

    #[test]
    fn two_registries_on_one_thread_stay_separate() {
        let r1 = TraceRegistry::default();
        let r2 = TraceRegistry::default();
        r1.set_mode(TraceMode::Full);
        r2.set_mode(TraceMode::Full);
        {
            let _outer = r1.span("outer", String::new);
            let _other = r2.span("other", String::new);
            let _inner = r1.span("inner", String::new);
        }
        let other = &r2.spans()[0];
        assert_eq!(other.parent, None, "r1's span must not parent r2's");
        let spans = r1.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn slow_only_keeps_offenders() {
        let reg = TraceRegistry::default();
        reg.set_mode(TraceMode::SlowOnly);
        reg.set_slow_threshold(Some(Duration::from_millis(5)));
        {
            let _fast = reg.span("fast", String::new);
        }
        {
            let _slow = reg.span("slow", || "4096×4096 nnz=1e6".into());
            std::thread::sleep(Duration::from_millis(6));
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].name, "slow");
        assert!(spans[0].slow);
        assert_eq!(spans[0].detail, "4096×4096 nnz=1e6");
        assert_eq!(reg.slow_spans().len(), 1);
        assert!(reg.report().contains("[slow]"));
    }

    #[test]
    fn span_cap_bounds_memory() {
        let reg = TraceRegistry::default();
        reg.set_mode(TraceMode::Full);
        reg.set_max_spans(3);
        for _ in 0..5 {
            let _s = reg.span("k", String::new);
        }
        assert_eq!(reg.spans().len(), 3);
        assert_eq!(reg.dropped(), 2);
        reg.clear();
        assert_eq!(reg.dropped(), 0);
        assert!(reg.spans().is_empty());
    }

    #[test]
    fn record_span_respects_mode() {
        let reg = TraceRegistry::default();
        reg.record_span("restore", String::new(), Duration::from_millis(1));
        assert!(reg.spans().is_empty(), "disabled mode records nothing");
        reg.set_mode(TraceMode::Full);
        reg.record_span("restore", "gen 3".into(), Duration::from_millis(1));
        assert_eq!(reg.spans().len(), 1);
    }

    #[test]
    fn prometheus_histogram_exposition_shape() {
        let h = Histogram::default();
        h.record_ns(1_000); // bucket 9 → le 1024
        h.record_ns(1_500); // bucket 10 → le 2048
        let mut out = String::new();
        write_prometheus_histogram(&mut out, "x_seconds", "kernel=\"mxm\"", &h.snapshot());
        assert!(
            out.contains("x_seconds_bucket{kernel=\"mxm\",le=\"0.000001024\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("x_seconds_bucket{kernel=\"mxm\",le=\"0.000002048\"} 2"),
            "{out}"
        );
        assert!(
            out.contains("x_seconds_bucket{kernel=\"mxm\",le=\"+Inf\"} 2"),
            "{out}"
        );
        assert!(
            out.contains("x_seconds_sum{kernel=\"mxm\"} 0.0000025"),
            "{out}"
        );
        assert!(out.contains("x_seconds_count{kernel=\"mxm\"} 2"), "{out}");
        let mut bare = String::new();
        write_prometheus_histogram(&mut bare, "y_seconds", "", &HistogramSnapshot::default());
        assert!(bare.contains("y_seconds_bucket{le=\"+Inf\"} 0"), "{bare}");
        assert!(bare.contains("y_seconds_count 0"), "{bare}");
    }
}
