//! The execution context threaded through every computational kernel.
//!
//! SuiteSparse:GraphBLAS kernels owe their production viability to three
//! things the naive formulation lacks: **scratch reuse** (Gustavson
//! accumulators are not reallocated per multiply), **explicit parallelism
//! control** (`GxB_NTHREADS`), and **introspection** (`GxB_*` statistics).
//! [`OpCtx`] packages all three:
//!
//! * a **workspace arena** pooling SpGEMM scratch (dense accumulator +
//!   touched list + hash accumulator, per value type) so hot paths that
//!   repeat same-shaped multiplies stop allocating per call;
//! * a **thread cap** replacing the old `mxm` vs `mxm_seq` split: `1`
//!   forces sequential execution, `n` shards rows across `n` OS threads,
//!   `auto` (the default) uses the machine's available parallelism —
//!   results are bit-for-bit identical at every setting;
//! * the **metrics registry** ([`crate::metrics`]) every `*_ctx` kernel
//!   reports into.
//!
//! Kernels take `&OpCtx`; the context is [`Sync`], so one context can
//! serve parallel shards (scratch leases go through a mutex that is
//! touched once per shard, not per row). The existing ctx-free kernel
//! signatures remain available as thin wrappers over a **thread-local
//! default context** ([`with_default_ctx`]), so existing callers keep
//! both their API and their workspace-reuse benefits.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use semiring::traits::Value;

use crate::metrics::{Kernel, MetricsRegistry};
use crate::trace::{Span, TraceRegistry};
use crate::Ix;

/// Reusable Gustavson-accumulator scratch for SpGEMM over value type `T`.
///
/// Holds both accumulator strategies so the kernel's per-call
/// dense-vs-hash choice never forces an allocation: the dense scratch
/// grows monotonically to the widest column space seen, the hash map
/// keeps its capacity across calls.
#[derive(Debug)]
pub struct MxmScratch<T> {
    /// Dense accumulator, one slot per column of the compact column space.
    pub dense: Vec<Option<T>>,
    /// Columns written this row (reset list for `dense`).
    pub touched: Vec<Ix>,
    /// Hash accumulator for hypersparse column spaces.
    pub hash: HashMap<Ix, T>,
}

impl<T> Default for MxmScratch<T> {
    fn default() -> Self {
        MxmScratch {
            dense: Vec::new(),
            touched: Vec::new(),
            hash: HashMap::new(),
        }
    }
}

impl<T: Clone> MxmScratch<T> {
    /// Grow the dense accumulator to at least `width` slots (never
    /// shrinks — capacity is the point of pooling).
    pub fn ensure_dense_width(&mut self, width: usize) {
        if self.dense.len() < width {
            self.dense.resize(width, None);
        }
    }

    /// Current heap footprint of the dense accumulator, in slots.
    pub fn dense_capacity(&self) -> usize {
        self.dense.len()
    }
}

/// Type-erased pools of [`MxmScratch`] buffers, keyed by value type.
#[derive(Debug, Default)]
struct Workspace {
    pools: HashMap<TypeId, Vec<Box<dyn Any + Send>>>,
}

/// A leased [`MxmScratch`], returned to the context's pool on drop.
pub struct ScratchLease<'a, T: Value> {
    ctx: &'a OpCtx,
    scratch: Option<MxmScratch<T>>,
}

impl<T: Value> ScratchLease<'_, T> {
    /// The leased scratch buffers.
    pub fn get(&mut self) -> &mut MxmScratch<T> {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl<T: Value> Drop for ScratchLease<'_, T> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            let mut ws = self.ctx.workspace.lock().expect("workspace mutex");
            ws.pools
                .entry(TypeId::of::<MxmScratch<T>>())
                .or_default()
                .push(Box::new(scratch));
        }
    }
}

/// Execution context: workspace arena + parallelism control + metrics.
///
/// See the [module docs](self) for the design; see
/// [`crate::ops::mxm_ctx`] for the canonical kernel entry point.
#[derive(Debug, Default)]
pub struct OpCtx {
    /// Requested thread cap; `0` means "auto" (available parallelism).
    threads: AtomicUsize,
    workspace: Mutex<Workspace>,
    metrics: MetricsRegistry,
    trace: TraceRegistry,
}

impl OpCtx {
    /// A fresh context: auto parallelism, empty workspace, zero counters.
    pub fn new() -> Self {
        OpCtx::default()
    }

    /// Builder-style thread cap (`0` = auto). See [`OpCtx::set_threads`].
    pub fn with_threads(self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Cap kernel parallelism: `1` forces sequential execution, `n` uses
    /// at most `n` OS threads, `0` restores auto (machine parallelism).
    /// Takes `&self` so a cap can be adjusted mid-flight on a shared
    /// context.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads, Ordering::Relaxed);
    }

    /// The resolved thread count (≥ 1) kernels will use right now.
    pub fn threads(&self) -> usize {
        match self.threads.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// The context's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The context's span registry ([`crate::trace`]): disabled by
    /// default; switch on with `ctx.trace().set_mode(TraceMode::Full)`.
    pub fn trace(&self) -> &TraceRegistry {
        &self.trace
    }

    /// Open a span named after `kernel`. Every `*_ctx` kernel calls this
    /// on entry; `detail` (operand shapes) is evaluated only when
    /// tracing is enabled, so the disabled-mode cost is one atomic load.
    #[inline]
    pub fn kernel_span(&self, kernel: Kernel, detail: impl FnOnce() -> String) -> Span<'_> {
        self.trace.span(kernel.name(), detail)
    }

    /// Zero every metrics counter (workspace contents are kept).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Lease SpGEMM scratch for value type `T` from the arena. The lease
    /// returns the (possibly grown) buffers to the pool on drop; a pool
    /// hit costs one mutex lock and zero allocations.
    pub fn lease_mxm_scratch<T: Value>(&self) -> ScratchLease<'_, T> {
        let mut ws = self.workspace.lock().expect("workspace mutex");
        let scratch = ws
            .pools
            .get_mut(&TypeId::of::<MxmScratch<T>>())
            .and_then(|pool| pool.pop())
            .map(|boxed| {
                *boxed
                    .downcast::<MxmScratch<T>>()
                    .expect("pool keyed by type")
            });
        drop(ws);
        match scratch {
            Some(mut scratch) => {
                self.metrics.record_ws_hit();
                scratch.touched.clear();
                scratch.hash.clear();
                ScratchLease {
                    ctx: self,
                    scratch: Some(scratch),
                }
            }
            None => {
                self.metrics.record_ws_miss();
                ScratchLease {
                    ctx: self,
                    scratch: Some(MxmScratch::default()),
                }
            }
        }
    }

    /// Number of scratch buffers currently parked in the arena (all
    /// value types). Diagnostic; used by the reuse tests.
    pub fn pooled_buffers(&self) -> usize {
        let ws = self.workspace.lock().expect("workspace mutex");
        ws.pools.values().map(|p| p.len()).sum()
    }

    /// Drop every pooled scratch buffer (e.g. after a one-off huge
    /// multiply whose dense accumulator should not stay resident).
    pub fn trim_workspace(&self) {
        let mut ws = self.workspace.lock().expect("workspace mutex");
        ws.pools.clear();
    }
}

thread_local! {
    static DEFAULT_CTX: OpCtx = OpCtx::new();
}

/// Run `f` against this thread's default context — the context behind
/// every ctx-free kernel signature. The default context persists for the
/// thread's lifetime, so even legacy callers get workspace reuse; its
/// metrics accumulate across all ctx-free calls on the thread.
pub fn with_default_ctx<R>(f: impl FnOnce(&OpCtx) -> R) -> R {
    DEFAULT_CTX.with(f)
}

/// Deterministic fan-out: run `jobs` closures on up to `threads` OS
/// threads and return their results **in job order** regardless of
/// completion order. Jobs are claimed from a shared atomic counter, so
/// skewed job costs balance; determinism comes from indexing results by
/// job id, never from scheduling.
pub(crate) fn par_run<R, F>(threads: usize, jobs: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(jobs).max(1);
    if threads == 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    let slots = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs {
                    break;
                }
                let out = job(idx);
                let mut guard = slots.lock().expect("result mutex");
                guard[idx] = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cap_resolution() {
        let ctx = OpCtx::new().with_threads(3);
        assert_eq!(ctx.threads(), 3);
        ctx.set_threads(1);
        assert_eq!(ctx.threads(), 1);
        ctx.set_threads(0);
        assert!(ctx.threads() >= 1);
    }

    #[test]
    fn scratch_lease_pools_and_reuses() {
        let ctx = OpCtx::new();
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            lease.get().ensure_dense_width(1024);
            lease.get().touched.push(7);
            lease.get().hash.insert(3, 1.5);
        }
        assert_eq!(ctx.pooled_buffers(), 1);
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            // Reused: capacity survives, per-call state is clean.
            assert_eq!(lease.get().dense_capacity(), 1024);
            assert!(lease.get().touched.is_empty());
            assert!(lease.get().hash.is_empty());
        }
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.workspace_misses, 1);
        assert_eq!(snap.workspace_hits, 1);
    }

    #[test]
    fn scratch_pools_are_per_type() {
        let ctx = OpCtx::new();
        drop(ctx.lease_mxm_scratch::<f64>());
        {
            let mut lease = ctx.lease_mxm_scratch::<bool>();
            assert_eq!(lease.get().dense_capacity(), 0);
        }
        assert_eq!(ctx.pooled_buffers(), 2);
        assert_eq!(ctx.metrics().snapshot().workspace_misses, 2);
        ctx.trim_workspace();
        assert_eq!(ctx.pooled_buffers(), 0);
    }

    #[test]
    fn par_run_is_deterministic_and_ordered() {
        let sequential = par_run(1, 64, |i| i * i);
        for threads in [2, 3, 8] {
            assert_eq!(par_run(threads, 64, |i| i * i), sequential);
        }
        assert_eq!(par_run(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn default_ctx_persists_per_thread() {
        let before = with_default_ctx(|c| c.metrics().snapshot().workspace_misses);
        with_default_ctx(|c| drop(c.lease_mxm_scratch::<u32>()));
        with_default_ctx(|c| drop(c.lease_mxm_scratch::<u32>()));
        let after = with_default_ctx(|c| c.metrics().snapshot());
        assert_eq!(after.workspace_misses, before + 1, "second lease pooled");
        assert!(after.workspace_hits >= 1);
    }
}
