//! The execution context threaded through every computational kernel.
//!
//! SuiteSparse:GraphBLAS kernels owe their production viability to three
//! things the naive formulation lacks: **scratch reuse** (Gustavson
//! accumulators are not reallocated per multiply), **explicit parallelism
//! control** (`GxB_NTHREADS`), and **introspection** (`GxB_*` statistics).
//! [`OpCtx`] packages all three:
//!
//! * a **workspace arena** pooling SpGEMM scratch (dense accumulator +
//!   touched list + hash accumulator, per value type) so hot paths that
//!   repeat same-shaped multiplies stop allocating per call;
//! * a **thread cap** replacing the old `mxm` vs `mxm_seq` split: `1`
//!   forces sequential execution, `n` shards rows across `n` OS threads,
//!   `auto` (the default) uses the machine's available parallelism —
//!   results are bit-for-bit identical at every setting;
//! * the **metrics registry** ([`crate::metrics`]) every `*_ctx` kernel
//!   reports into.
//!
//! Kernels take `&OpCtx`; the context is [`Sync`], so one context can
//! serve parallel shards (scratch leases go through a mutex that is
//! touched once per shard, not per row). The existing ctx-free kernel
//! signatures remain available as thin wrappers over a **thread-local
//! default context** ([`with_default_ctx`]), so existing callers keep
//! both their API and their workspace-reuse benefits.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use semiring::traits::Value;

use crate::metrics::{Kernel, MetricsRegistry};
use crate::trace::{Span, TraceRegistry};
use crate::Ix;

/// Reusable Gustavson-accumulator scratch for SpGEMM over value type `T`.
///
/// Holds both accumulator strategies so the kernel's per-call
/// dense-vs-hash choice never forces an allocation: the dense scratch
/// grows monotonically to the widest column space seen, the hash map
/// keeps its capacity across calls.
#[derive(Debug)]
pub struct MxmScratch<T> {
    /// Dense accumulator, one slot per column of the compact column space.
    pub dense: Vec<Option<T>>,
    /// Columns written this row (reset list for `dense`).
    pub touched: Vec<Ix>,
    /// Hash accumulator for hypersparse column spaces.
    pub hash: HashMap<Ix, T>,
    /// Flat branch-free accumulator for the monomorphic fast paths
    /// (DESIGN.md §13). **Invariant:** every slot is the semiring zero
    /// between kernel calls — the word-at-a-time drain restores zeros as
    /// it consumes entries, so no per-call clear is needed.
    pub flat: Vec<T>,
    /// Occupancy / mask bitmap, one bit per column, operated on a word
    /// at a time. **Invariant:** all-zero between kernel calls (checked
    /// in debug builds at lease time).
    pub words: Vec<u64>,
}

impl<T> Default for MxmScratch<T> {
    fn default() -> Self {
        MxmScratch {
            dense: Vec::new(),
            touched: Vec::new(),
            hash: HashMap::new(),
            flat: Vec::new(),
            words: Vec::new(),
        }
    }
}

impl<T: Clone> MxmScratch<T> {
    /// Grow the dense accumulator to at least `width` slots (never
    /// shrinks — capacity is the point of pooling).
    pub fn ensure_dense_width(&mut self, width: usize) {
        if self.dense.len() < width {
            self.dense.resize(width, None);
        }
    }

    /// Current heap footprint of the dense accumulator, in slots.
    pub fn dense_capacity(&self) -> usize {
        self.dense.len()
    }

    /// Grow the flat accumulator to at least `width` slots, filling new
    /// slots with `zero` (existing slots are already zero per the
    /// invariant above).
    pub fn ensure_flat_width(&mut self, width: usize, zero: T) {
        if self.flat.len() < width {
            self.flat.resize(width, zero);
        }
    }

    /// Current heap footprint of the flat accumulator, in slots.
    pub fn flat_capacity(&self) -> usize {
        self.flat.len()
    }

    /// Grow the bitmap to at least `nwords` zeroed words.
    pub fn ensure_words(&mut self, nwords: usize) {
        if self.words.len() < nwords {
            self.words.resize(nwords, 0);
        }
    }
}

/// Type-erased pools of [`MxmScratch`] buffers, keyed by value type.
#[derive(Debug, Default)]
struct Workspace {
    pools: HashMap<TypeId, Vec<Box<dyn Any + Send>>>,
}

/// A leased [`MxmScratch`], returned to the context's pool on drop.
pub struct ScratchLease<'a, T: Value> {
    ctx: &'a OpCtx,
    scratch: Option<MxmScratch<T>>,
}

impl<T: Value> ScratchLease<'_, T> {
    /// The leased scratch buffers.
    pub fn get(&mut self) -> &mut MxmScratch<T> {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl<T: Value> Drop for ScratchLease<'_, T> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            let mut ws = self.ctx.workspace.lock().expect("workspace mutex");
            ws.pools
                .entry(TypeId::of::<MxmScratch<T>>())
                .or_default()
                .push(Box::new(scratch));
        }
    }
}

/// Execution context: workspace arena + parallelism control + metrics.
///
/// See the [module docs](self) for the design; see
/// [`crate::ops::mxm_ctx`] for the canonical kernel entry point.
#[derive(Debug, Default)]
pub struct OpCtx {
    /// Requested thread cap; `0` means "auto" (available parallelism).
    threads: AtomicUsize,
    /// Inverted so the derived `Default` (false) means fast paths *on*.
    fast_paths_off: AtomicBool,
    /// Inverted so the derived `Default` (false) means balancing *on*.
    shard_balancing_off: AtomicBool,
    workspace: Mutex<Workspace>,
    metrics: MetricsRegistry,
    trace: TraceRegistry,
}

impl OpCtx {
    /// A fresh context: auto parallelism, empty workspace, zero counters.
    pub fn new() -> Self {
        OpCtx::default()
    }

    /// Builder-style thread cap (`0` = auto). See [`OpCtx::set_threads`].
    pub fn with_threads(self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Cap kernel parallelism: `1` forces sequential execution, `n` uses
    /// at most `n` OS threads, `0` restores auto (machine parallelism).
    /// Takes `&self` so a cap can be adjusted mid-flight on a shared
    /// context.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads, Ordering::Relaxed);
    }

    /// The resolved thread count (≥ 1) kernels will use right now.
    pub fn threads(&self) -> usize {
        match self.threads.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Enable/disable the monomorphic semiring fast paths (on by
    /// default). Proptests and bench ablations switch them off to pin
    /// the generic kernels; outputs are bit-identical either way
    /// (DESIGN.md §13).
    pub fn set_fast_paths(&self, on: bool) {
        self.fast_paths_off.store(!on, Ordering::Relaxed);
    }

    /// Whether monomorphic fast paths are engaged.
    pub fn fast_paths(&self) -> bool {
        !self.fast_paths_off.load(Ordering::Relaxed)
    }

    /// Enable/disable nnz-weighted (merge-path) shard balancing (on by
    /// default). Off restores the legacy fixed rows-per-shard split;
    /// outputs are bit-identical either way.
    pub fn set_shard_balancing(&self, on: bool) {
        self.shard_balancing_off.store(!on, Ordering::Relaxed);
    }

    /// Whether nnz-weighted shard balancing is engaged.
    pub fn shard_balancing(&self) -> bool {
        !self.shard_balancing_off.load(Ordering::Relaxed)
    }

    /// The context's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The context's span registry ([`crate::trace`]): disabled by
    /// default; switch on with `ctx.trace().set_mode(TraceMode::Full)`.
    pub fn trace(&self) -> &TraceRegistry {
        &self.trace
    }

    /// Open a span named after `kernel`. Every `*_ctx` kernel calls this
    /// on entry; `detail` (operand shapes) is evaluated only when
    /// tracing is enabled, so the disabled-mode cost is one atomic load.
    #[inline]
    pub fn kernel_span(&self, kernel: Kernel, detail: impl FnOnce() -> String) -> Span<'_> {
        self.trace.span(kernel.name(), detail)
    }

    /// Zero every metrics counter (workspace contents are kept).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Lease SpGEMM scratch for value type `T` from the arena. The lease
    /// returns the (possibly grown) buffers to the pool on drop; a pool
    /// hit costs one mutex lock and zero allocations.
    pub fn lease_mxm_scratch<T: Value>(&self) -> ScratchLease<'_, T> {
        let mut ws = self.workspace.lock().expect("workspace mutex");
        let scratch = ws
            .pools
            .get_mut(&TypeId::of::<MxmScratch<T>>())
            .and_then(|pool| pool.pop())
            .map(|boxed| {
                *boxed
                    .downcast::<MxmScratch<T>>()
                    .expect("pool keyed by type")
            });
        drop(ws);
        match scratch {
            Some(mut scratch) => {
                self.metrics.record_ws_hit();
                scratch.touched.clear();
                scratch.hash.clear();
                debug_assert!(
                    scratch.words.iter().all(|&w| w == 0),
                    "bitmap scratch returned dirty"
                );
                ScratchLease {
                    ctx: self,
                    scratch: Some(scratch),
                }
            }
            None => {
                self.metrics.record_ws_miss();
                ScratchLease {
                    ctx: self,
                    scratch: Some(MxmScratch::default()),
                }
            }
        }
    }

    /// Number of scratch buffers currently parked in the arena (all
    /// value types). Diagnostic; used by the reuse tests.
    pub fn pooled_buffers(&self) -> usize {
        let ws = self.workspace.lock().expect("workspace mutex");
        ws.pools.values().map(|p| p.len()).sum()
    }

    /// Drop every pooled scratch buffer (e.g. after a one-off huge
    /// multiply whose dense accumulator should not stay resident).
    pub fn trim_workspace(&self) {
        let mut ws = self.workspace.lock().expect("workspace mutex");
        ws.pools.clear();
    }
}

thread_local! {
    static DEFAULT_CTX: OpCtx = OpCtx::new();
}

/// Run `f` against this thread's default context — the context behind
/// every ctx-free kernel signature. The default context persists for the
/// thread's lifetime, so even legacy callers get workspace reuse; its
/// metrics accumulate across all ctx-free calls on the thread.
pub fn with_default_ctx<R>(f: impl FnOnce(&OpCtx) -> R) -> R {
    DEFAULT_CTX.with(f)
}

/// Merge-path row sharding: split `rows` work items into at most
/// `target` contiguous shards whose *weights* (per-row nnz plus one, so
/// empty-weight rows still advance the path) are as equal as the
/// row-granular snapping allows.
///
/// This is the merge-path decomposition of the `(rows, nnz)` merge
/// curve: shard boundaries sit where the cumulative path length
/// `Σ (wᵢ + 1)` crosses successive `total/target` diagonals. A single
/// pathological RMAT row can no longer serialize its 255 fixed-shard
/// neighbours behind it.
///
/// Determinism: boundaries depend only on `(rows, target, weights)` —
/// never on scheduling — and every output row is computed wholly inside
/// one shard, so any boundary choice yields bit-identical results after
/// the in-order concat (DESIGN.md §13).
pub(crate) fn plan_weighted_shards(
    rows: usize,
    target: usize,
    weight: impl Fn(usize) -> u64,
) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    let target = target.clamp(1, rows) as u128;
    if target == 1 {
        return vec![(0, rows)];
    }
    let total: u128 = (0..rows).map(|k| u128::from(weight(k)) + 1).sum();
    let mut shards = Vec::with_capacity(target as usize);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    let mut boundary: u128 = 1;
    for k in 0..rows {
        acc += u128::from(weight(k)) + 1;
        while boundary < target && acc * target >= boundary * total {
            if k + 1 > start && k + 1 < rows {
                shards.push((start, k + 1));
                start = k + 1;
            }
            boundary += 1;
        }
    }
    shards.push((start, rows));
    shards
}

/// Legacy fixed-size sharding (`shard_size` rows each) — kept as the
/// `shard_balancing(false)` ablation baseline for the weighted planner.
pub(crate) fn fixed_shards(rows: usize, shard_size: usize) -> Vec<(usize, usize)> {
    (0..rows.div_ceil(shard_size))
        .map(|s| (s * shard_size, ((s + 1) * shard_size).min(rows)))
        .collect()
}

/// Deterministic fan-out: run `jobs` closures on up to `threads` OS
/// threads and return their results **in job order** regardless of
/// completion order. Jobs are claimed from a shared atomic counter, so
/// skewed job costs balance; determinism comes from indexing results by
/// job id, never from scheduling.
pub(crate) fn par_run<R, F>(threads: usize, jobs: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(jobs).max(1);
    if threads == 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    let slots = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs {
                    break;
                }
                let out = job(idx);
                let mut guard = slots.lock().expect("result mutex");
                guard[idx] = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cap_resolution() {
        let ctx = OpCtx::new().with_threads(3);
        assert_eq!(ctx.threads(), 3);
        ctx.set_threads(1);
        assert_eq!(ctx.threads(), 1);
        ctx.set_threads(0);
        assert!(ctx.threads() >= 1);
    }

    #[test]
    fn scratch_lease_pools_and_reuses() {
        let ctx = OpCtx::new();
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            lease.get().ensure_dense_width(1024);
            lease.get().touched.push(7);
            lease.get().hash.insert(3, 1.5);
        }
        assert_eq!(ctx.pooled_buffers(), 1);
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            // Reused: capacity survives, per-call state is clean.
            assert_eq!(lease.get().dense_capacity(), 1024);
            assert!(lease.get().touched.is_empty());
            assert!(lease.get().hash.is_empty());
        }
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.workspace_misses, 1);
        assert_eq!(snap.workspace_hits, 1);
    }

    #[test]
    fn scratch_pools_are_per_type() {
        let ctx = OpCtx::new();
        drop(ctx.lease_mxm_scratch::<f64>());
        {
            let mut lease = ctx.lease_mxm_scratch::<bool>();
            assert_eq!(lease.get().dense_capacity(), 0);
        }
        assert_eq!(ctx.pooled_buffers(), 2);
        assert_eq!(ctx.metrics().snapshot().workspace_misses, 2);
        ctx.trim_workspace();
        assert_eq!(ctx.pooled_buffers(), 0);
    }

    #[test]
    fn par_run_is_deterministic_and_ordered() {
        let sequential = par_run(1, 64, |i| i * i);
        for threads in [2, 3, 8] {
            assert_eq!(par_run(threads, 64, |i| i * i), sequential);
        }
        assert_eq!(par_run(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn fast_path_and_balancing_flags_default_on() {
        let ctx = OpCtx::new();
        assert!(ctx.fast_paths());
        assert!(ctx.shard_balancing());
        ctx.set_fast_paths(false);
        ctx.set_shard_balancing(false);
        assert!(!ctx.fast_paths());
        assert!(!ctx.shard_balancing());
        ctx.set_fast_paths(true);
        assert!(ctx.fast_paths());
    }

    #[test]
    fn flat_scratch_pools_like_dense() {
        let ctx = OpCtx::new();
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            lease.get().ensure_flat_width(256, 0.0);
            lease.get().ensure_words(4);
        }
        {
            let mut lease = ctx.lease_mxm_scratch::<f64>();
            assert_eq!(lease.get().flat_capacity(), 256);
            assert_eq!(lease.get().words.len(), 4);
            assert!(lease.get().flat.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn weighted_shards_cover_and_balance() {
        // Skewed: one huge row then uniform tail.
        let w = |k: usize| if k == 0 { 1000 } else { 1 };
        let shards = plan_weighted_shards(100, 4, w);
        assert!(shards.len() <= 4);
        assert_eq!(shards[0].0, 0);
        assert_eq!(shards.last().unwrap().1, 100);
        for win in shards.windows(2) {
            assert_eq!(win[0].1, win[1].0, "shards must be contiguous");
        }
        assert!(shards.iter().all(|&(lo, hi)| lo < hi));
        // The heavy row gets a shard of its own (or nearly): the first
        // shard must not also swallow most of the tail.
        assert!(shards[0].1 <= 2, "heavy row should terminate its shard");
        // Deterministic.
        assert_eq!(shards, plan_weighted_shards(100, 4, w));
    }

    #[test]
    fn weighted_shards_edge_cases() {
        assert!(plan_weighted_shards(0, 4, |_| 1).is_empty());
        assert_eq!(plan_weighted_shards(5, 1, |_| 1), vec![(0, 5)]);
        assert_eq!(plan_weighted_shards(3, 10, |_| 0).len(), 3);
        // All-zero weights still make progress via the +1 path term.
        let shards = plan_weighted_shards(64, 8, |_| 0);
        assert_eq!(shards.last().unwrap().1, 64);
        assert_eq!(shards.len(), 8);
    }

    #[test]
    fn default_ctx_persists_per_thread() {
        let before = with_default_ctx(|c| c.metrics().snapshot().workspace_misses);
        with_default_ctx(|c| drop(c.lease_mxm_scratch::<u32>()));
        with_default_ctx(|c| drop(c.lease_mxm_scratch::<u32>()));
        let after = with_default_ctx(|c| c.metrics().snapshot());
        assert_eq!(after.workspace_misses, before + 1, "second lease pooled");
        assert!(after.workspace_hits >= 1);
    }
}
